//! # noftl-regions — workspace facade
//!
//! Reproduction of *"Revisiting DBMS Space Management for Native Flash"*
//! (Hardock, Petrov, Gottstein, Buchmann — EDBT 2016).  This crate simply
//! re-exports the workspace members under short names so that examples and
//! downstream users can depend on a single crate:
//!
//! * [`flash`] — the native NAND flash device simulator (`flash-sim`);
//! * [`ftl`] — the conventional FTL-based SSD baseline (`ftl-sim`);
//! * [`noftl`] — NoFTL regions, the paper's contribution (`noftl-core`);
//! * [`dbms`] — the storage engine that runs on either stack (`dbms-engine`);
//! * [`tpcc`] — the TPC-C workload and placement configurations
//!   (`tpcc-workload`);
//! * [`workload`] — the workload lab: deterministic YCSB A–F generators,
//!   rate-controlled trace replay and multi-tenant scenarios
//!   (`noftl-workload`);
//! * [`bench`](mod@bench) — the experiment harness used by the figure
//!   binaries (`noftl-bench`);
//! * [`obs`] — the cross-layer observability layer: metrics registry,
//!   latency histograms and the event tracer (`noftl-obs`).
//!
//! See `README.md` for a tour, `DESIGN.md` for the system inventory and
//! `EXPERIMENTS.md` for the paper-vs-measured comparison.

#![warn(missing_docs)]

pub use dbms_engine as dbms;
pub use flash_sim as flash;
pub use ftl_sim as ftl;
pub use noftl_bench as bench;
pub use noftl_core as noftl;
pub use noftl_obs as obs;
pub use noftl_workload as workload;
pub use tpcc_workload as tpcc;

// The one-call rendering facade (`obs::dump::{table, prometheus,
// chrome_trace}`) is what examples reach for, so it gets a root alias.
pub use noftl_obs::dump;

// Die-level write placement is part of the repo's top-level story (the
// queue-aware allocation redesign), so the policy types are additionally
// re-exported at the root: the policy trait, its two implementations, the
// serialisable selector and the per-die load snapshot they steer by.
pub use flash_sim::DieLoad;
pub use noftl_core::{PlacementPolicy, PlacementPolicyKind, QueueAware, RoundRobin};
