//! Region administration from the DBA's point of view: creating regions
//! with limits, binding tablespaces, growing/shrinking regions for global
//! wear leveling, and dropping them again.
//!
//! ```text
//! cargo run --example region_ddl
//! ```

use std::sync::Arc;

use noftl_regions::flash::{DeviceBuilder, FlashGeometry, SimTime, TimingModel};
use noftl_regions::noftl::{ddl, Ddl, NoFtl, NoFtlConfig};

fn main() {
    let device = Arc::new(
        DeviceBuilder::new(FlashGeometry::edbt_paper()).timing(TimingModel::mlc_2015()).build(),
    );
    let noftl = NoFtl::new(device.clone(), NoFtlConfig::paper_defaults());
    println!("free dies at start: {}", noftl.free_die_count());

    // Parse-only view of a statement.
    let stmt =
        ddl::parse_statement("CREATE REGION rgDemo (MAX_CHIPS=2, MAX_CHANNELS=2, MAX_SIZE=512M)")
            .expect("parses");
    println!("parsed: {stmt:?}");

    // Execute a small administration script.
    let executor = Ddl::new(&noftl);
    executor
        .run_script(
            "CREATE REGION rgHot (DIES=8);
             CREATE REGION rgCold (DIES=4);
             CREATE TABLESPACE tsHot (REGION=rgHot, EXTENT_SIZE=128K);
             CREATE TABLESPACE tsCold (REGION=rgCold, EXTENT_SIZE=1M);
             CREATE TABLE orders (o_id NUMBER(8), o_entry_d DATE) TABLESPACE tsHot;
             CREATE TABLE archive (a_id NUMBER(8), a_blob VARCHAR(256)) TABLESPACE tsCold;",
        )
        .expect("script executes");
    println!("free dies after CREATE REGION: {}", noftl.free_die_count());

    // Put some data into both tables.
    let orders = executor.table("orders").unwrap();
    let archive = executor.table("archive").unwrap();
    let mut now = SimTime::ZERO;
    for p in 0..256u64 {
        now = noftl.write(orders, p, &vec![1u8; 4096], now).unwrap();
        if p % 4 == 0 {
            now = noftl.write(archive, p / 4, &vec![2u8; 4096], now).unwrap();
        }
    }

    // Regions can change membership over time (the paper lists global wear
    // leveling as one reason): grow the hot region, shrink the cold one.
    let rg_hot = noftl.region_id("rgHot").unwrap();
    let rg_cold = noftl.region_id("rgCold").unwrap();
    noftl.grow_region(rg_hot, 2).unwrap();
    let done = noftl.shrink_region(rg_cold, 2, now).expect("data migrates off the removed dies");
    println!(
        "after rebalance: rgHot={} dies, rgCold={} dies (migration finished at {done})",
        noftl.region_info(rg_hot).unwrap().dies.len(),
        noftl.region_info(rg_cold).unwrap().dies.len(),
    );
    // The archived data survived the shrink.
    let (data, _) = noftl.read(archive, 10, done).unwrap();
    assert_eq!(data, vec![2u8; 4096]);
    println!("archive data intact after shrinking its region");

    // Region statistics per region.
    for rid in noftl.region_ids() {
        let info = noftl.region_info(rid).unwrap();
        let stats = noftl.region_stats(rid).unwrap();
        println!(
            "region {:<8} dies={:<2} host_writes={:<6} gc_copybacks={:<6} gc_erases={}",
            info.name,
            info.dies.len(),
            stats.host_writes,
            stats.gc_copybacks,
            stats.gc_erases
        );
    }

    // Clean up: drop the table and its region.
    executor.run_script("DROP TABLE archive; DROP REGION rgCold;").expect("cleanup");
    println!("free dies after DROP REGION: {}", noftl.free_die_count());
}
