//! Workload lab tour: the six YCSB core workloads on NoFTL-KV and the
//! dbms B+-tree over *identical* key streams, an open-loop trace replay
//! at a fixed offered rate, and the OLTP-beside-compaction multi-tenant
//! scenario.
//!
//! ```text
//! cargo run --release --example workload_lab
//! ```
//!
//! Every number printed is simulated device time — run it twice and the
//! output is byte-identical.

use std::sync::Arc;

use noftl_regions::flash::{DeviceBuilder, FlashGeometry, SimTime, TimingModel};
use noftl_regions::noftl::kv::KvConfig;
use noftl_regions::noftl::{NoFtl, NoFtlConfig, PlacementConfig, RegionSpec};
use noftl_regions::obs::MetricsRegistry;
use noftl_regions::workload::trace::from_spec;
use noftl_regions::workload::{
    load_phase, oltp_beside_compaction, replay, run_ycsb, BtreeBackend, KvBackend,
    MultiTenantConfig, WorkloadBackend, YcsbSpec,
};

fn kv_backend() -> (KvBackend, SimTime) {
    let dev = Arc::new(
        DeviceBuilder::new(FlashGeometry::example()).timing(TimingModel::mlc_2015()).build(),
    );
    let noftl = Arc::new(NoFtl::new(dev, NoFtlConfig::default()));
    let rid = noftl.create_region(RegionSpec::named("rgYcsb").with_die_count(4)).unwrap();
    KvBackend::create(noftl, rid, "lab", KvConfig::default(), SimTime::ZERO).unwrap()
}

fn btree_backend(value_len: usize) -> (BtreeBackend, SimTime) {
    let dev = Arc::new(
        DeviceBuilder::new(FlashGeometry::example()).timing(TimingModel::mlc_2015()).build(),
    );
    let noftl = Arc::new(NoFtl::new(dev, NoFtlConfig::default()));
    let placement = PlacementConfig::traditional(4, ["usertable".to_string()]);
    BtreeBackend::create(
        noftl,
        &placement,
        noftl_regions::dbms::DatabaseConfig::default(),
        value_len,
        SimTime::ZERO,
    )
    .unwrap()
}

fn run_on(spec: &YcsbSpec, backend: &dyn WorkloadBackend, at: SimTime) {
    let loaded = load_phase(spec, backend, at).unwrap();
    let registry = MetricsRegistry::new();
    let r = run_ycsb(spec, backend, &registry, loaded).unwrap();
    println!(
        "  YCSB-{} on {:<5}  {:>8.1} kops   p50 {:>8.1} us   p99 {:>8.1} us   p999 {:>8.1} us   digest {:016x}",
        r.workload, r.backend, r.throughput_kops, r.p50_us, r.p99_us, r.p999_us, r.stream_digest
    );
}

fn main() {
    println!("== YCSB core workloads, identical streams on both backends ==");
    for which in ['A', 'B', 'C', 'D', 'E', 'F'] {
        let spec = YcsbSpec::core(which, 300, 500, 0x1ab).unwrap();
        let (kv, t) = kv_backend();
        run_on(&spec, &kv, t);
        let (bt, t) = btree_backend(spec.value_len);
        run_on(&spec, &bt, t);
    }

    println!("\n== Open-loop trace replay (workload B stream at 5 kops offered) ==");
    let spec = YcsbSpec::core('B', 300, 500, 0x1ab).unwrap();
    let trace = from_spec(&spec, 5.0);
    let (kv, t) = kv_backend();
    let loaded = load_phase(&spec, &kv, t).unwrap();
    let registry = MetricsRegistry::new();
    let rep = replay(&trace, &kv, &registry, "lab", 100, loaded).unwrap();
    println!(
        "  offered {:.2} kops, achieved {:.2} kops, p50 {:.1} us, p99 {:.1} us, p999 {:.1} us, {} misses",
        rep.offered_kops, rep.achieved_kops, rep.p50_us, rep.p99_us, rep.p999_us, rep.misses
    );

    println!("\n== Multi-tenant: latency-sensitive OLTP beside a compacting KV neighbor ==");
    let mt = oltp_beside_compaction(&MultiTenantConfig::quick()).unwrap();
    println!(
        "  oltp shared:  {:>6.2} kops   p50 {:>8.1} us   p99 {:>8.1} us",
        mt.oltp_shared.achieved_kops, mt.oltp_shared.p50_us, mt.oltp_shared.p99_us
    );
    println!(
        "  oltp alone:   {:>6.2} kops   p50 {:>8.1} us   p99 {:>8.1} us",
        mt.oltp_alone.achieved_kops, mt.oltp_alone.p50_us, mt.oltp_alone.p99_us
    );
    println!(
        "  compact:      {:>6.2} kops   p99 {:>8.1} us   ({} flushes, {} compactions)",
        mt.compact_shared.achieved_kops,
        mt.compact_shared.p99_us,
        mt.compact_flushes,
        mt.compact_compactions
    );
    println!("  p99 noisy-neighbor penalty: {:.2}x", mt.p99_penalty);
}
