//! NoFTL-KV walkthrough: a log-structured key-value store whose flushes
//! and compactions are region-local queued multi-die batches.
//!
//! ```text
//! cargo run --example kv_store
//! ```
//!
//! The example loads a working set, shows the memtable flushing to
//! sorted runs through the command-queue submission API, lets
//! size-tiered compaction merge and retire runs through the region's GC
//! path, and finishes with a power cut in the middle of a flush — after
//! reboot + mount + reopen, every acknowledged key is still there and
//! the torn tail run has been discarded.

use std::sync::Arc;

use noftl_regions::flash::{DeviceBuilder, FlashGeometry, NandDevice, SimTime, TimingModel};
use noftl_regions::noftl::kv::{KvConfig, KvStore};
use noftl_regions::noftl::{NoFtl, NoFtlConfig, RegionSpec};

fn key(i: u64) -> Vec<u8> {
    format!("user{i:06}").into_bytes()
}

fn val(i: u64, round: u64) -> Vec<u8> {
    format!("profile-{i:06}-v{round}-{}", "x".repeat(32)).into_bytes()
}

fn main() {
    // Device → storage manager → a 6-die region for the KV store.
    let device = Arc::new(
        DeviceBuilder::new(FlashGeometry::example()).timing(TimingModel::mlc_2015()).build(),
    );
    let noftl = Arc::new(NoFtl::new(device.clone(), NoFtlConfig::default()));
    let region = noftl.create_region(RegionSpec::named("rgKv").with_die_count(6)).unwrap();
    let config =
        KvConfig { memtable_bytes: 16 * 1024, compaction_threshold: 3, ..KvConfig::default() };
    let (store, mut t) =
        KvStore::create(Arc::clone(&noftl), region, "users", config, SimTime::ZERO).unwrap();
    println!("created store 'users' over a 6-die region\n");

    // Load three rounds of the same working set: the memtable threshold
    // flushes level-0 runs, and the third run triggers a merge.
    for round in 1..=3u64 {
        for i in 0..400u64 {
            t = store.put(&key(i), &val(i, round), t).unwrap();
        }
        t = store.flush(t).unwrap();
        let s = store.stats();
        println!(
            "round {round}: {} flushes, {} compactions, {} runs live, queue submissions {}",
            s.flushes,
            s.compactions,
            store.run_count(),
            noftl.io_queue_stats().submitted,
        );
    }
    let stats = store.stats();
    println!(
        "\nflushed {} pages + compacted {} pages, all as queued multi-die batches",
        stats.flushed_pages, stats.compacted_pages
    );

    // Reads: memtable first, then runs newest-to-oldest via the sparse
    // per-run index.
    let (got, t2) = store.get(&key(42), t).unwrap();
    t = t2;
    println!("get(user000042) -> {:?}", String::from_utf8_lossy(&got.unwrap()));
    let (rows, t3) = store.scan(Some(&key(100)), Some(&key(104)), t).unwrap();
    t = t3;
    println!("scan(user000100..=user000104) -> {} rows", rows.len());

    // Crash in the middle of the next flush: a working set small enough
    // to stay below the memtable threshold (so nothing auto-flushes),
    // then a power cut armed shortly after the explicit flush starts.
    for i in 0..150u64 {
        t = store.put(&key(i), &val(i, 9), t).unwrap();
    }
    let quiesce = device.quiesce_time().max(t);
    device.arm_power_cut(quiesce + noftl_regions::flash::Duration(40_000));
    match store.flush(quiesce) {
        Ok(_) => println!("\nflush completed before the cut"),
        Err(e) => println!("\npower cut during flush: {e}"),
    }

    let snap = device.snapshot();
    let device2 = Arc::new(NandDevice::from_snapshot(&snap, TimingModel::mlc_2015()).unwrap());
    let (noftl2, mount) = NoFtl::mount(device2, NoFtlConfig::default(), quiesce).unwrap();
    println!(
        "mounted: checkpoint #{}, {} torn pages discarded",
        mount.checkpoint_seq, mount.torn_pages_discarded
    );
    let (store2, report) =
        KvStore::open(Arc::new(noftl2), "users", config, mount.completed_at).unwrap();
    println!(
        "reopened: {} runs recovered, {} torn runs discarded, {} entries",
        report.runs_recovered, report.torn_runs_discarded, report.entries_recovered
    );

    // Every key acknowledged by the last completed flush is intact.
    let (got, _) = store2.get(&key(42), report.completed_at).unwrap();
    println!(
        "get(user000042) after crash -> {:?} (round-3 value, the unacknowledged round-9 \
         flush was discarded)",
        String::from_utf8_lossy(&got.unwrap())
    );
}
