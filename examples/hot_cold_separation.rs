//! Demonstrates the core mechanism of the paper: separating hot and cold
//! data into different regions reduces garbage-collection copybacks and
//! erases compared with mixing them on the same dies.
//!
//! ```text
//! cargo run --release --example hot_cold_separation
//! ```

use std::sync::Arc;

use noftl_regions::flash::{DeviceBuilder, FlashGeometry, NandDevice, SimTime, TimingModel};
use noftl_regions::noftl::{NoFtl, NoFtlConfig, RegionSpec};

/// Run a skewed update workload against two objects (one hot, one cold)
/// and report the device counters.
fn run(separate_regions: bool) -> (u64, u64, f64) {
    let geometry = FlashGeometry {
        channels: 2,
        chips_per_channel: 2,
        dies_per_chip: 2,
        planes_per_die: 1,
        blocks_per_plane: 64,
        pages_per_block: 32,
        page_size: 4096,
        oob_size: 64,
    };
    let device: Arc<NandDevice> = Arc::new(
        DeviceBuilder::new(geometry).timing(TimingModel::mlc_2015()).store_data(false).build(),
    );
    let noftl = NoFtl::new(device.clone(), NoFtlConfig::paper_defaults());
    let (hot_region, cold_region) = if separate_regions {
        (
            noftl.create_region(RegionSpec::named("rgHot").with_die_count(4)).unwrap(),
            noftl.create_region(RegionSpec::named("rgCold").with_die_count(4)).unwrap(),
        )
    } else {
        let all = noftl.create_region(RegionSpec::named("rgAll").with_die_count(8)).unwrap();
        (all, all)
    };
    let hot = noftl.create_object("hot_table", hot_region).unwrap();
    let cold = noftl.create_object("cold_table", cold_region).unwrap();

    let page = vec![0u8; 4096];
    let t = SimTime::ZERO;
    let hot_pages = 256u64;
    let cold_pages = 4_096u64;
    let mut cold_written = 0u64;
    // Interleave: a stream of cold inserts with constant hot updates, the
    // pattern TPC-C produces (ORDERLINE inserts vs. STOCK updates).
    for round in 0..200u64 {
        for p in 0..hot_pages / 4 {
            noftl.write(hot, (round * 13 + p) % hot_pages, &page, t).unwrap();
        }
        while cold_written < cold_pages && cold_written < (round + 1) * (cold_pages / 200) {
            noftl.write(cold, cold_written, &page, t).unwrap();
            cold_written += 1;
        }
    }
    let stats = device.stats();
    let wa = (stats.page_programs + stats.copybacks) as f64 / stats.page_programs.max(1) as f64;
    (stats.copybacks, stats.block_erases, wa)
}

fn main() {
    println!("skewed workload: hot updates interleaved with a cold insert stream\n");
    let (mixed_cb, mixed_er, mixed_wa) = run(false);
    let (sep_cb, sep_er, sep_wa) = run(true);
    println!(
        "{:<28} {:>12} {:>10} {:>20}",
        "placement", "copybacks", "erases", "write amplification"
    );
    println!(
        "{:<28} {:>12} {:>10} {:>20.3}",
        "mixed (single region)", mixed_cb, mixed_er, mixed_wa
    );
    println!("{:<28} {:>12} {:>10} {:>20.3}", "separated (two regions)", sep_cb, sep_er, sep_wa);
    let cb_delta = 100.0 * (mixed_cb as f64 - sep_cb as f64) / mixed_cb.max(1) as f64;
    let er_delta = 100.0 * (mixed_er as f64 - sep_er as f64) / mixed_er.max(1) as f64;
    println!("\nregion separation: {cb_delta:.1}% fewer copybacks, {er_delta:.1}% fewer erases");
    println!(
        "(the paper's Figure 3 reports ~20% fewer copybacks and ~4% fewer erases under TPC-C)"
    );
}
