//! Quickstart: create a native-flash device, define regions with the
//! paper's DDL, place a table in a tablespace bound to a region, and do
//! some I/O.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use std::sync::Arc;

use noftl_regions::flash::{DeviceBuilder, FlashGeometry, SimTime, TimingModel};
use noftl_regions::noftl::{Ddl, NoFtl, NoFtlConfig};

fn main() {
    // 1. A simulated native flash device: 64 dies over 4 channels, 4 KiB pages.
    let device = Arc::new(
        DeviceBuilder::new(FlashGeometry::edbt_paper()).timing(TimingModel::mlc_2015()).build(),
    );
    println!(
        "device: {} dies, {} channels, {:.1} GiB raw capacity",
        device.geometry().total_dies(),
        device.geometry().channels,
        device.geometry().capacity_bytes() as f64 / (1 << 30) as f64
    );

    // 2. The NoFTL storage manager owns the physical address space.
    let noftl = NoFtl::new(device.clone(), NoFtlConfig::paper_defaults());

    // 3. The DBA speaks plain DDL — exactly the statements from the paper.
    let ddl = Ddl::new(&noftl);
    ddl.run_script(
        "CREATE REGION rgHotTbl (MAX_CHIPS=8, MAX_CHANNELS=4, MAX_SIZE=1280M);
         CREATE TABLESPACE tsHotTbl (REGION=rgHotTbl, EXTENT_SIZE=128K);
         CREATE TABLE T (t_id NUMBER(3)) TABLESPACE tsHotTbl;",
    )
    .expect("DDL executes");

    let region = ddl.tablespace("tsHotTbl").unwrap().region;
    let info = noftl.region_info(region).unwrap();
    println!(
        "region {} owns {} dies ({} pages of effective capacity)",
        info.name,
        info.dies.len(),
        info.effective_capacity_pages
    );

    // 4. Write and read pages of table T through the storage manager.
    let table = ddl.table("T").unwrap();
    let mut now = SimTime::ZERO;
    for page in 0..64u64 {
        let data = vec![page as u8; 4096];
        now = noftl.write(table, page, &data, now).expect("write");
    }
    let (data, done) = noftl.read(table, 17, now).expect("read");
    println!("page 17 read back correctly: {}", data == vec![17u8; 4096]);
    println!("64 writes + 1 read finished at simulated t = {done}");

    // 5. Every flash command is visible in the device statistics.
    let stats = device.stats();
    println!(
        "device stats: {} programs, {} reads, {} erases, {} copybacks, avg read {:.0} us, avg program {:.0} us",
        stats.page_programs,
        stats.page_reads,
        stats.block_erases,
        stats.copybacks,
        stats.avg_read_latency_us(),
        stats.avg_program_latency_us()
    );
}
