//! End-to-end observability tour: run a mixed KV + OLTP workload on one
//! flash device, then look at everything the stack recorded about it —
//! the metrics table, the Prometheus text exposition, and a Chrome
//! `trace_event` JSON you can load in `chrome://tracing` or Perfetto.
//!
//! ```text
//! cargo run --example observe [-- <trace-output-path>]
//! ```
//!
//! The trace is written to `target/observe.trace.json` by default.
//! Every layer records into the *same* registry (shared with the
//! device), so the final snapshot spans flash commands, queue waits, GC,
//! placement decisions, flush windows, the WAL, the buffer pool and the
//! KV store — with zero configuration beyond enabling the tracer.

use std::sync::Arc;

use noftl_regions::dbms::ColumnType;
use noftl_regions::dbms::{Database, DatabaseConfig, NoFtlBackend, Schema, Value};
use noftl_regions::dump;
use noftl_regions::flash::{DeviceBuilder, FlashGeometry, SimTime, TimingModel};
use noftl_regions::noftl::kv::{KvConfig, KvStore};
use noftl_regions::noftl::{NoFtl, NoFtlConfig, PlacementConfig, RegionSpec};
use noftl_regions::obs::validate_chrome_trace;

fn main() {
    let trace_path =
        std::env::args().nth(1).unwrap_or_else(|| "target/observe.trace.json".to_string());

    // One device, one registry, tracer on.
    let device = Arc::new(
        DeviceBuilder::new(FlashGeometry::example()).timing(TimingModel::mlc_2015()).build(),
    );
    device.metrics().tracer().set_enabled(true);
    let noftl = Arc::new(NoFtl::new(device.clone(), NoFtlConfig::default()));

    // OLTP half: a 4-die region under the storage engine, WAL on.
    let placement = PlacementConfig::traditional(4, ["acct".to_string()]);
    let backend = Arc::new(NoFtlBackend::new(Arc::clone(&noftl), &placement).unwrap());
    let db = Database::open(backend, DatabaseConfig::default()).unwrap();
    db.create_table("acct", account_schema(), SimTime::ZERO).unwrap();
    let mut now = db.checkpoint(SimTime::ZERO).unwrap();
    for i in 0..200i64 {
        let mut txn = db.begin(now);
        db.insert(&mut txn, "acct", &vec![Value::Int(i), Value::Int(i * 13)], &[]).unwrap();
        db.commit(&mut txn).unwrap();
        now = txn.now;
    }
    now = db.checkpoint(now).unwrap();

    // KV half: a 3-die region next to it (the metadata journal claimed
    // one die), small memtable so flushes and a compaction happen
    // during the load.
    let kv_region = noftl.create_region(RegionSpec::named("rgKv").with_die_count(3)).unwrap();
    let config =
        KvConfig { memtable_bytes: 16 * 1024, compaction_threshold: 3, ..KvConfig::default() };
    let (store, mut t) =
        KvStore::create(Arc::clone(&noftl), kv_region, "users", config, now).unwrap();
    for round in 0..3u64 {
        for i in 0..300u64 {
            let key = format!("user{i:06}").into_bytes();
            let val = format!("v{round}-{}", "x".repeat(40)).into_bytes();
            t = store.put(&key, &val, t).unwrap();
        }
        t = store.flush(t).unwrap();
    }

    // ---- What the stack saw ------------------------------------------
    let registry = noftl.metrics();
    println!("== metrics table ==\n{}", dump::table(registry));

    let prom = dump::prometheus(registry);
    let excerpt: Vec<&str> = prom.lines().take(12).collect();
    println!("== prometheus exposition (first lines) ==\n{}\n...", excerpt.join("\n"));

    let trace = dump::chrome_trace(registry);
    let events = validate_chrome_trace(&trace).expect("trace must be valid trace_event JSON");
    if let Some(parent) = std::path::Path::new(&trace_path).parent() {
        std::fs::create_dir_all(parent).ok();
    }
    std::fs::write(&trace_path, &trace).expect("write trace file");
    println!("== chrome trace ==");
    println!("{events} events written to {trace_path}");
    println!("load it in chrome://tracing or https://ui.perfetto.dev");
}

fn account_schema() -> Schema {
    Schema::new(vec![("id", ColumnType::Int), ("balance", ColumnType::Int)])
}
