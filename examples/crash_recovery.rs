//! Crash consistency end to end: run a workload, cut power mid-flight,
//! reboot the device from a file-backed image, remount the storage
//! manager and recover the database from the WAL tail.
//!
//! ```text
//! cargo run --example crash_recovery
//! ```

use noftl_regions::dbms::crash_harness::{run_crash_cycle, CrashHarnessConfig};

fn main() {
    // The harness drives a mixed insert/update/delete workload over an
    // indexed table, with checkpoints and WAL truncations firing along
    // the way.  `fraction` places the power cut within the workload's
    // simulated time span.
    for fraction in [0.25, 0.5, 0.85] {
        let cfg = CrashHarnessConfig {
            txns: 120,
            image_file: true, // persist the torn device to a file and boot the image
            ..CrashHarnessConfig::default()
        };
        let outcome = run_crash_cycle(&cfg, fraction).expect("recovery verifies");
        println!(
            "cut at {:>12} ns ({}):",
            outcome.cut_at.as_nanos(),
            if outcome.cut_during_commit { "during a commit" } else { "between commits" },
        );
        println!(
            "  before: {} committed txns, WAL {} pages",
            outcome.committed_txns, outcome.wal_pages_at_crash
        );
        println!(
            "  mount : checkpoint #{}, {} pages scanned, {} torn discarded, {} remapped from OOB",
            outcome.mount.checkpoint_seq,
            outcome.mount.pages_scanned,
            outcome.mount.torn_pages_discarded,
            outcome.mount.pages_after_checkpoint,
        );
        println!(
            "  redo  : {} records scanned, {} committed txns, {} page images replayed",
            outcome.recovery.wal_records_scanned,
            outcome.recovery.committed_txns,
            outcome.recovery.redo_pages_applied,
        );
        println!(
            "  verify: {} rows intact{}\n",
            outcome.rows_verified,
            if outcome.in_flight_survived { " (in-flight commit survived whole)" } else { "" },
        );
    }
    println!("all cuts recovered: no torn pages served, no committed writes lost");
}
