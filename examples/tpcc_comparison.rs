//! A scaled-down version of the paper's Figure 3 experiment that runs in a
//! few seconds: TPC-C under traditional placement vs. the six-region
//! placement, on a 16-die device.
//!
//! For the full-size comparison use the bench binary:
//! `cargo run --release -p noftl-bench --bin figure3`.
//!
//! ```text
//! cargo run --release --example tpcc_comparison
//! ```

use noftl_bench::Experiment;
use noftl_regions::tpcc::{placement, ComparisonReport, ScaleConfig};

fn small(exp: Experiment) -> Experiment {
    let mut exp = exp;
    // 16 dies, one warehouse, a few thousand transactions.
    exp.geometry.chips_per_channel = 2;
    exp.geometry.dies_per_chip = 2;
    exp.geometry.blocks_per_plane = 32;
    exp.scale = ScaleConfig::tiny();
    exp.buffer_pages = 128;
    exp.driver.clients = 8;
    exp.driver.total_transactions = 2_000;
    exp
}

fn main() {
    let dies = 16;
    println!("TPC-C (tiny scale) on {dies} dies: traditional vs. six-region placement\n");
    let traditional =
        small(Experiment::figure3_base(placement::traditional(dies), "Traditional data placement"))
            .run();
    let regions =
        small(Experiment::figure3_base(placement::figure2(dies), "Data placement using Regions"))
            .run();

    println!("per-region view of the multi-region run:\n{}", regions.region_table());
    let cmp = ComparisonReport {
        traditional: traditional.report.clone(),
        regions: regions.report.clone(),
    };
    println!("{}", cmp.to_table());
}
