//! Wear leveling under NoFTL: dynamic allocation, static migrations and
//! the wear summary that quantifies device longevity (the paper's second
//! benefit of region-aware placement).
//!
//! ```text
//! cargo run --release --example wear_leveling
//! ```

use std::sync::Arc;

use noftl_regions::flash::{DeviceBuilder, FlashGeometry, SimTime, TimingModel};
use noftl_regions::noftl::{NoFtl, NoFtlConfig, RegionSpec, WearLevelingPolicy};

fn run(policy: WearLevelingPolicy) -> (f64, u64, u64) {
    let geometry = FlashGeometry {
        channels: 2,
        chips_per_channel: 1,
        dies_per_chip: 2,
        planes_per_die: 1,
        blocks_per_plane: 32,
        pages_per_block: 16,
        page_size: 4096,
        oob_size: 64,
    };
    let device = Arc::new(
        DeviceBuilder::new(geometry).timing(TimingModel::instant()).store_data(false).build(),
    );
    let config = NoFtlConfig { wear_leveling: policy, ..NoFtlConfig::paper_defaults() };
    let noftl = NoFtl::new(device.clone(), config);
    let rg = noftl.create_region(RegionSpec::named("rg").with_die_count(4)).unwrap();
    let cold = noftl.create_object("cold", rg).unwrap();
    let hot = noftl.create_object("hot", rg).unwrap();
    let page = vec![0u8; 4096];
    let t = SimTime::ZERO;
    // A cold data set that never changes...
    for p in 0..512u64 {
        noftl.write(cold, p, &page, t).unwrap();
    }
    // ...and a small hot set hammered hard.
    for i in 0..60_000u64 {
        noftl.write(hot, i % 32, &page, t).unwrap();
    }
    let wear = device.wear_summary();
    let stats = noftl.region_stats(rg).unwrap();
    (wear.imbalance(), wear.max_erase_count, stats.wl_migrations)
}

fn main() {
    println!("hot/cold skew on one region under three wear-leveling policies\n");
    println!(
        "{:<22} {:>16} {:>16} {:>16}",
        "policy", "wear imbalance", "max erase count", "WL migrations"
    );
    for (name, policy) in [
        ("none", WearLevelingPolicy::None),
        ("dynamic", WearLevelingPolicy::Dynamic),
        ("dynamic + static(8)", WearLevelingPolicy::Static { threshold: 8 }),
    ] {
        let (imbalance, max_erase, migrations) = run(policy);
        println!("{name:<22} {imbalance:>16.2} {max_erase:>16} {migrations:>16}");
    }
    println!("\nlower imbalance = more even wear = longer device lifetime");
}
