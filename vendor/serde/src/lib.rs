//! Offline stand-in for `serde`.
//!
//! The build environment has no access to crates.io, and the workspace never
//! actually serializes anything — `Serialize`/`Deserialize` are derived on
//! stats/config types only so that downstream users *could* persist them.
//! This stub keeps those derives compiling: the traits are empty markers and
//! the derive macros (re-exported from the `serde_derive` stub) emit empty
//! impls. Swapping in real serde later is a Cargo.toml-only change.

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`. The real trait is
/// `Deserialize<'de>`; the lifetime is dropped here because no call site in
/// the workspace names the trait with a lifetime.
pub trait Deserialize {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
