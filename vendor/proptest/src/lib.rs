//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API used by this workspace's unit
//! tests: the `proptest!` macro over functions whose arguments are
//! `ident in strategy` pairs, integer/float range strategies, `any::<T>()`
//! for primitives, tuple strategies, `prop::collection::vec`, simple
//! character-class string strategies (`"[a-z]{0,16}"`), `prop_assert!`/
//! `prop_assert_eq!`/`prop_assume!` and `ProptestConfig::with_cases`.
//!
//! Differences from the real crate, deliberately accepted for an offline
//! stub: cases are drawn from a fixed deterministic seed (reproducible but
//! not configurable), failing inputs are not shrunk, and rejected cases
//! (`prop_assume!`) are simply skipped without a rejection quota.
//!
//! Like the real crate, the `PROPTEST_CASES` environment variable
//! overrides the *default* case count (CI pins it to bound property-test
//! runtime); an explicit `ProptestConfig::with_cases` in the source still
//! wins.

use std::ops::Range;

/// Runtime configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test function.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(64);
        ProptestConfig { cases }
    }
}

impl ProptestConfig {
    /// Run `cases` random cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Why a single generated case did not complete.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case was rejected by `prop_assume!` — skipped, not a failure.
    Reject,
}

/// Deterministic SplitMix64 generator used to drive all strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Fixed-seed construction: every `cargo test` run sees the same cases.
    pub fn deterministic() -> Self {
        TestRng { state: 0x9E37_79B9_7F4A_7C15 }
    }

    /// Next raw 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty range");
        self.next_u64() % bound
    }
}

/// A generator of values for one `proptest!` argument.
pub trait Strategy {
    /// The type of value produced.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

/// Strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

/// Any value of a primitive type (full bit range; floats may be NaN/inf,
/// mirroring real proptest's `any::<f64>()`).
pub fn any<T>() -> Any<T>
where
    Any<T>: Strategy,
{
    Any(std::marker::PhantomData)
}

macro_rules! impl_any_int {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_any_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Strategy for Any<bool> {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Strategy for Any<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        f64::from_bits(rng.next_u64())
    }
}

impl Strategy for Any<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        f32::from_bits(rng.next_u64() as u32)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident.$idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// Simple character-class string strategy: `"[a-z0-9 ]{lo,hi}"`.
///
/// Only the `[class]{lo,hi}` shape is parsed (the single shape used in this
/// workspace); any other pattern is generated as the literal string itself.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        match parse_class_pattern(self) {
            Some((chars, lo, hi)) if !chars.is_empty() => {
                let len = lo + rng.below((hi - lo + 1) as u64) as usize;
                (0..len).map(|_| chars[rng.below(chars.len() as u64) as usize]).collect()
            }
            _ => (*self).to_string(),
        }
    }
}

/// Parse `[a-z0-9 ]{lo,hi}` into (expanded characters, lo, hi).
fn parse_class_pattern(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pattern.strip_prefix('[')?;
    let (class, bounds) = rest.split_once(']')?;
    let bounds = bounds.strip_prefix('{')?.strip_suffix('}')?;
    let (lo, hi) = bounds.split_once(',')?;
    let (lo, hi) = (lo.trim().parse().ok()?, hi.trim().parse().ok()?);
    if lo > hi {
        return None;
    }
    let mut chars = Vec::new();
    let mut it = class.chars().peekable();
    while let Some(c) = it.next() {
        if it.peek() == Some(&'-') {
            let mut ahead = it.clone();
            ahead.next();
            if let Some(&end) = ahead.peek() {
                it.next();
                it.next();
                for v in c as u32..=end as u32 {
                    chars.extend(char::from_u32(v));
                }
                continue;
            }
        }
        chars.push(c);
    }
    Some((chars, lo, hi))
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with length drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// A vector whose elements come from `element` and whose length lies in
    /// `len` (half-open, like proptest's `SizeRange` from a `Range`).
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.len.end - self.len.start) as u64;
            let len = self.len.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Re-export of the crate root under the name test code uses (`prop::...`).
pub use crate as prop;

/// The glob-importable prelude, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Any,
        ProptestConfig, Strategy, TestCaseError,
    };
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Fail the current case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Fail the current case unless the two values differ.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Skip the current case (without failing) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Run each contained `#[test]` function over many generated inputs.
#[macro_export]
macro_rules! proptest {
    (@block ($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        )+
    ) => {
        $(
            $(#[$meta])*
            // The immediately-called closure gives `prop_assume!` an early
            // return point, mirroring real proptest's expansion.
            #[allow(clippy::redundant_closure_call)]
            fn $name() {
                let __config: $crate::ProptestConfig = $config;
                let mut __rng = $crate::TestRng::deterministic();
                for __case in 0..__config.cases {
                    let __outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                        $(let $arg = $crate::Strategy::generate(&($strategy), &mut __rng);)+
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    match __outcome {
                        ::std::result::Result::Ok(()) => {}
                        ::std::result::Result::Err($crate::TestCaseError::Reject) => continue,
                    }
                }
            }
        )+
    };
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@block ($config) $($rest)*);
    };
    (
        $($rest:tt)*
    ) => {
        $crate::proptest!(@block ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn class_pattern_parsing() {
        let (chars, lo, hi) = crate::parse_class_pattern("[a-c0-2 ]{0,16}").unwrap();
        assert_eq!(chars, vec!['a', 'b', 'c', '0', '1', '2', ' ']);
        assert_eq!((lo, hi), (0, 16));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn ranges_and_collections(x in -50i64..50, flags in prop::collection::vec(any::<bool>(), 1..8)) {
            prop_assert!((-50..50).contains(&x));
            prop_assert!(!flags.is_empty() && flags.len() < 8);
        }

        #[test]
        fn assume_skips(x in 0u32..10) {
            prop_assume!(x != 3);
            prop_assert_ne!(x, 3);
        }

        #[test]
        fn string_class(s in "[a-z]{2,4}") {
            prop_assert!(s.len() >= 2 && s.len() <= 4);
            prop_assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }
    }
}
