//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! The workspace only relies on the parking_lot API shape — `lock()`,
//! `read()` and `write()` returning guards directly instead of a
//! `Result` — not on its performance characteristics. Poisoning is ignored
//! (the poisoned inner value is recovered), matching parking_lot's behavior
//! of not having poisoning at all.

use std::fmt;

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;
/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// A mutual-exclusion lock with parking_lot's panic-free `lock()` signature.
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create a new mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutably access the inner value without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// A reader-writer lock with parking_lot's panic-free `read()`/`write()`.
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Create a new lock holding `value`.
    pub const fn new(value: T) -> Self {
        Self(std::sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutably access the inner value without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}
