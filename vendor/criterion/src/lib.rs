//! Offline stand-in for `criterion`.
//!
//! Implements the slice of the criterion 0.5 API used by this workspace's
//! benches (`benchmark_group`, `sample_size`, `bench_function`, `Bencher::
//! iter`, `black_box`, `criterion_group!`, `criterion_main!`). Instead of
//! criterion's statistical analysis it reports the mean wall-clock time per
//! iteration over `sample_size` timed samples — enough to compare runs by
//! hand while keeping `cargo bench` fully offline.

use std::time::Instant;

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Entry point handed to each benchmark function.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { default_sample_size: 10 }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        let sample_size = self.default_sample_size;
        BenchmarkGroup { _criterion: self, sample_size }
    }

    /// Run a single benchmark outside a group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(name, self.default_sample_size, f);
        self
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(name, self.sample_size, f);
        self
    }

    /// End the group (kept for API compatibility; reporting is immediate).
    pub fn finish(self) {}
}

/// Timer handle passed to the benchmark closure.
pub struct Bencher {
    samples: usize,
    mean_ns: f64,
}

impl Bencher {
    /// Time `routine`, running it once per sample plus one warm-up call.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(routine());
        }
        self.mean_ns = start.elapsed().as_nanos() as f64 / self.samples as f64;
    }
}

fn run_benchmark<F>(name: &str, samples: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher { samples, mean_ns: 0.0 };
    f(&mut bencher);
    let (value, unit) = humanize_ns(bencher.mean_ns);
    println!("  {name}: {value:.2} {unit}/iter (mean of {samples} samples)");
}

fn humanize_ns(ns: f64) -> (f64, &'static str) {
    if ns >= 1e9 {
        (ns / 1e9, "s")
    } else if ns >= 1e6 {
        (ns / 1e6, "ms")
    } else if ns >= 1e3 {
        (ns / 1e3, "µs")
    } else {
        (ns, "ns")
    }
}

/// Build a function that runs the listed benchmark functions in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Build the bench binary's `main` from one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
