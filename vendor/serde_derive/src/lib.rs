//! Offline stand-in for `serde_derive`.
//!
//! The workspace uses `#[derive(Serialize, Deserialize)]` purely as a marker
//! (no wire format is ever produced — reports are printed as text tables), so
//! the derive macros only need to emit empty impls of the marker traits
//! defined by the sibling `serde` stub. Implemented directly on
//! `proc_macro::TokenStream` to avoid a dependency on `syn`/`quote`, which are
//! unavailable in the offline build environment.

use proc_macro::{TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    marker_impl(input, "Serialize")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    marker_impl(input, "Deserialize")
}

/// Emit `impl ::serde::<Trait> for <Type> {}` for the struct/enum in `input`.
///
/// Only non-generic types are supported; generic types would need their
/// parameters forwarded, which nothing in this workspace requires.
fn marker_impl(input: TokenStream, trait_name: &str) -> TokenStream {
    let name = type_name(input).expect("serde_derive stub: could not find type name");
    format!("impl ::serde::{trait_name} for {name} {{}}").parse().unwrap()
}

/// Scan the item's tokens for the identifier following `struct` or `enum`.
fn type_name(input: TokenStream) -> Option<String> {
    let mut saw_keyword = false;
    for tree in input {
        if let TokenTree::Ident(ident) = tree {
            let text = ident.to_string();
            if saw_keyword {
                return Some(text);
            }
            if text == "struct" || text == "enum" {
                saw_keyword = true;
            }
        }
    }
    None
}
