//! Offline stand-in for `rand` (0.9 API surface).
//!
//! Provides exactly what the workspace uses: `rngs::StdRng`,
//! `SeedableRng::seed_from_u64`, and `Rng::random_range` over integer and
//! float ranges. The generator is SplitMix64 — statistically solid for
//! simulation workloads and fully deterministic for a given seed, which is
//! what the TPC-C driver and bad-block model rely on. It is NOT the CSPRNG
//! the real `StdRng` is; nothing here is security-sensitive.

use std::ops::{Range, RangeInclusive};

/// Types that can be sampled uniformly from a range by [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draw one value from `self` using `rng`. Panics if the range is empty.
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// A source of randomness (subset of `rand::Rng`).
pub trait Rng {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform value in `range` (`lo..hi` or `lo..=hi`).
    fn random_range<T, S>(&mut self, range: S) -> T
    where
        S: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable construction (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// The seed array type.
    type Seed: Default + AsMut<[u8]>;

    /// Build from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build from a `u64`, expanded with SplitMix64 like the real crate.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let x = splitmix64(&mut state);
            for (dst, src) in chunk.iter_mut().zip(x.to_le_bytes()) {
                *dst = src;
            }
        }
        Self::from_seed(seed)
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Commonly used generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic stand-in for `rand::rngs::StdRng` (SplitMix64 core).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            super::splitmix64(&mut self.state)
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut state = 0u64;
            for chunk in seed.chunks(8) {
                let mut bytes = [0u8; 8];
                bytes[..chunk.len()].copy_from_slice(chunk);
                state ^= u64::from_le_bytes(bytes);
            }
            StdRng { state }
        }
    }
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + v) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}

impl_int_sample_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! impl_float_sample_range {
    ($($t:ty => $bits:expr),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                // Exactly mantissa-many high bits: the quotient is then
                // representable, so `unit` stays in [0, 1) instead of
                // rounding up to 1.0 and leaking `end` out of the range.
                let unit = (rng.next_u64() >> (64 - $bits)) as $t / (1u64 << $bits) as $t;
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}

impl_float_sample_range!(f32 => 24, f64 => 53);

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: i64 = r.random_range(-5..=17);
            assert!((-5..=17).contains(&v));
            let u: usize = r.random_range(0..62);
            assert!(u < 62);
            let f: f64 = r.random_range(0.0..1.0);
            assert!((0.0..1.0).contains(&f));
            let g: f32 = r.random_range(0.0f32..1.0);
            assert!((0.0..1.0).contains(&g), "f32 sample must stay below end");
        }
    }

    #[test]
    fn covers_full_inclusive_range() {
        let mut r = StdRng::seed_from_u64(3);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[r.random_range(0..=9usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
