//! The simulated NAND device and its native command interface.
//!
//! [`NandDevice`] is the single entry point used by both flash management
//! layers in this repository: the traditional FTL (`ftl-sim`) and the
//! NoFTL storage manager (`noftl-core`).  It enforces NAND programming
//! rules, models per-die/per-channel timing, tracks wear and maintains
//! the statistics needed to reproduce the paper's evaluation.
//!
//! ## Concurrency model
//!
//! Device state is sharded by die: every die (planes, blocks, busy clock)
//! lives behind its own mutex, every channel behind its own, and only a
//! thin shared section (aggregate statistics, the operation trace) is
//! device-global.  Concurrent clients operating on different dies
//! therefore never contend on a common lock — the host-side analogue of
//! the die-level parallelism the timing model already exposes.  The lock
//! hierarchy is fixed (die → channel → shared) so operations that touch a
//! die and its channel cannot deadlock.  Every acquisition goes through
//! one choke point per class (`die_shard`, `channel_shard`,
//! `shared_shard`, `lock_all_dies`), which the [`crate::lockorder`]
//! sanitizer checks against the documented order in debug builds and the
//! `noftl-analyzer` lock-order rule checks statically.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use noftl_obs::MetricsRegistry;
use parking_lot::Mutex;

use crate::addr::{BlockAddr, DieId, PageAddr};
use crate::arbiter::{ArbiterConfig, IoTag, ServiceClass, TokenBucket};
use crate::badblock::BadBlockPolicy;
use crate::block::{Block, BlockInfo, BlockSnapshot, BlockState, PageState};
use crate::die::{Channel, ChannelPolicy, Die};
use crate::error::FlashError;
use crate::geometry::FlashGeometry;
use crate::lockorder::{self, LockClass, TrackedGuard};
use crate::metadata::PageMetadata;
use crate::obs::{ArbiterObs, DeviceObs};
use crate::sched;
use crate::stats::{DeviceStats, DieStats, UtilizationSummary, WearSummary};
use crate::time::{Duration, SimTime};
use crate::timing::TimingModel;
use crate::trace::{FlashOp, OpKind, TraceBuffer};
use crate::Result;

/// Sentinel for "no power cut armed" in the atomic cut register.
const POWER_CUT_NONE: u64 = u64::MAX;

/// Result of a successfully scheduled flash operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpOutcome {
    /// When the operation started executing on the die.
    pub started_at: SimTime,
    /// When the operation completed (result available to the host).
    pub completed_at: SimTime,
}

/// Instantaneous load of one die, as reported by [`NandDevice::die_load`]
/// and [`NandDevice::die_loads`]: the input of queue-aware write
/// placement.  `busy_until` is the instant the die's accepted work drains;
/// `queue_depth` counts the commands still in flight at the observation
/// time (0 = idle).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DieLoad {
    /// The die is executing accepted operations until this instant.
    pub busy_until: SimTime,
    /// Commands in flight (executing or queued) at the observation time.
    pub queue_depth: u32,
}

impl DieLoad {
    /// Earliest instant an operation issued at `at` could start on this
    /// die — the sort key queue-aware placement orders dies by.
    pub fn earliest_start(&self, at: SimTime) -> SimTime {
        self.busy_until.max(at)
    }
}

/// Builder for [`NandDevice`].
#[derive(Debug, Clone)]
pub struct DeviceBuilder {
    geometry: FlashGeometry,
    timing: TimingModel,
    bad_blocks: BadBlockPolicy,
    store_data: bool,
    trace_capacity: usize,
    strict_copyback_plane: bool,
    metrics: Option<Arc<MetricsRegistry>>,
    arbiter: Option<ArbiterConfig>,
}

impl DeviceBuilder {
    /// Start building a device with the given geometry and default timing.
    pub fn new(geometry: FlashGeometry) -> Self {
        DeviceBuilder {
            geometry,
            timing: TimingModel::default(),
            bad_blocks: BadBlockPolicy::none(),
            store_data: true,
            trace_capacity: 0,
            strict_copyback_plane: false,
            metrics: None,
            arbiter: None,
        }
    }

    /// Use a specific timing model.
    pub fn timing(mut self, timing: TimingModel) -> Self {
        self.timing = timing;
        self
    }

    /// Use a specific bad-block / endurance policy.
    pub fn bad_blocks(mut self, policy: BadBlockPolicy) -> Self {
        self.bad_blocks = policy;
        self
    }

    /// Whether the device stores page payloads (true by default).  Disable
    /// for pure performance experiments that never read data back.
    pub fn store_data(mut self, store: bool) -> Self {
        self.store_data = store;
        self
    }

    /// Retain a trace of the `cap` most recent operations.
    pub fn trace_capacity(mut self, cap: usize) -> Self {
        self.trace_capacity = cap;
        self
    }

    /// Require copyback source and destination to share a plane (real
    /// devices often do); off by default.
    pub fn strict_copyback_plane(mut self, strict: bool) -> Self {
        self.strict_copyback_plane = strict;
        self
    }

    /// Enable the cross-region I/O arbiter with the given tuning: per-
    /// region channel-bandwidth budgets for `Background`-class transfers
    /// plus gap backfilling for foreground traffic.  Off by default —
    /// without it, tagged submissions schedule byte-identically to
    /// untagged ones.
    pub fn arbiter(mut self, config: ArbiterConfig) -> Self {
        self.arbiter = Some(config);
        self
    }

    /// Record metrics into an existing registry (e.g.
    /// [`noftl_obs::global()`], or one shared across devices).  By
    /// default each device gets its own enabled registry, so tests and
    /// benches observe only their own stack.
    pub fn metrics(mut self, registry: Arc<MetricsRegistry>) -> Self {
        self.metrics = Some(registry);
        self
    }

    /// Build the device.
    ///
    /// # Panics
    /// Panics if the geometry fails validation; geometry errors are
    /// programming errors, not runtime conditions.
    pub fn build(self) -> NandDevice {
        // analyzer:allow(panic_freedom) geometry failures are programming errors, documented under `# Panics`
        self.geometry.validate().unwrap_or_else(|e| panic!("invalid flash geometry: {e}"));
        let g = self.geometry;
        let mut dies: Vec<Die> = (0..g.total_dies())
            .map(|_| Die::new(g.planes_per_die, g.blocks_per_plane, g.pages_per_block))
            .collect();
        // Mark factory-bad blocks.
        let total_blocks = g.total_blocks();
        for idx in self.bad_blocks.factory_bad_blocks(total_blocks) {
            let blocks_per_die = g.blocks_per_die() as u64;
            let die = (idx / blocks_per_die) as u32;
            let within = idx % blocks_per_die;
            let plane = (within / g.blocks_per_plane as u64) as u32;
            let block = (within % g.blocks_per_plane as u64) as u32;
            dies[die as usize].planes[plane as usize].blocks[block as usize].state =
                BlockState::Bad;
        }
        let registry = self.metrics.unwrap_or_else(|| Arc::new(MetricsRegistry::new()));
        let arbiter = self.arbiter.map(|config| ArbiterSlot {
            config,
            obs: ArbiterObs::new(&registry),
            state: Mutex::new(ArbiterState { buckets: std::collections::HashMap::new() }),
        });
        NandDevice {
            geometry: g,
            timing: self.timing,
            endurance: self.bad_blocks.endurance_cycles,
            store_data: self.store_data,
            strict_copyback_plane: self.strict_copyback_plane,
            dies: dies.into_iter().map(Mutex::new).collect(),
            channels: (0..g.channels).map(|_| Mutex::new(Channel::default())).collect(),
            epoch: AtomicU64::new(0),
            power_cut: AtomicU64::new(POWER_CUT_NONE),
            shared: Mutex::new(Shared {
                stats: DeviceStats::default(),
                trace: TraceBuffer::new(self.trace_capacity),
            }),
            touched: (0..g.total_dies()).map(|_| AtomicBool::new(false)).collect(),
            obs: DeviceObs::new(registry, g.total_dies()),
            arbiter,
        }
    }
}

/// Admission state of an arbiter-enabled device: one token bucket per
/// `(region, channel)` pair, created on first use.
struct ArbiterState {
    buckets: std::collections::HashMap<(u32, u32), TokenBucket>,
}

/// The arbiter of an enabled device: tuning, admission state behind its
/// own lock class, and pre-bound decision counters.
struct ArbiterSlot {
    config: ArbiterConfig,
    state: Mutex<ArbiterState>,
    obs: ArbiterObs,
}

/// Device-global state that every operation may touch: aggregate counters
/// and the optional operation trace.  Kept deliberately small so that the
/// hot path holds this lock only for a few counter bumps.
struct Shared {
    stats: DeviceStats,
    trace: TraceBuffer,
}

/// A complete image of the device state, used both as a read-only summary
/// (tests, examples and report generators read `stats`/`die_stats`/`wear`)
/// and as the persistence unit of the crash-consistency subsystem: the
/// snapshot captures every block's pages, OOB metadata and wear, can be
/// saved to / loaded from a file-backed image (see [`DeviceSnapshot::save`])
/// and turned back into a live device with [`NandDevice::from_snapshot`] —
/// the simulator's equivalent of power-cycling the board.
#[derive(Debug, Clone)]
pub struct DeviceSnapshot {
    /// Aggregate operation statistics.
    pub stats: DeviceStats,
    /// Per-die utilisation.
    pub die_stats: Vec<DieStats>,
    /// Wear distribution summary.
    pub wear: WearSummary,
    /// The device geometry (needed to rebuild the device).
    pub geometry: FlashGeometry,
    /// Device-wide write epoch counter at capture time.
    pub epoch: u64,
    /// Whether the device stores page payloads.
    pub store_data: bool,
    /// Per-block endurance budget.
    pub endurance: u64,
    /// Every block of the device in `(die, plane, block)` row-major order.
    pub blocks: Vec<BlockSnapshot>,
}

/// The simulated native NAND flash device.
///
/// All methods take the host's issue time and return an [`OpOutcome`]
/// carrying the completion time; the device never blocks real threads.
/// The device is `Send + Sync` with per-die lock shards: concurrent
/// clients whose operations target different dies proceed without
/// contending on any common lock (see the module docs), which is what the
/// submission-queue API in [`crate::queue`] builds on.
pub struct NandDevice {
    geometry: FlashGeometry,
    timing: TimingModel,
    endurance: u64,
    store_data: bool,
    strict_copyback_plane: bool,
    /// Per-die shards: planes, blocks and the die's busy clock.
    dies: Vec<Mutex<Die>>,
    /// Per-channel transfer-bus occupancy.
    channels: Vec<Mutex<Channel>>,
    /// Device-wide write sequence number, stamped into page metadata when
    /// the caller does not supply an epoch.
    epoch: AtomicU64,
    /// When armed, the simulated instant at which the device loses power
    /// (nanoseconds; `POWER_CUT_NONE` when disarmed): operations issued at
    /// or after it fail with `FlashError::PowerLoss`, and an operation
    /// still in flight at that instant is torn.
    power_cut: AtomicU64,
    /// Aggregate statistics and trace (thin shared section).
    shared: Mutex<Shared>,
    /// Per-die "ever programmed/erased" flags (lock-free), kept so
    /// `NoFtl::mount` can skip the OOB scan of dies that never held data.
    touched: Vec<AtomicBool>,
    /// Pre-registered metric handles (atomics-only; see `crate::obs`).
    obs: DeviceObs,
    /// Cross-region I/O arbiter (None = disabled, the pre-arbiter path).
    arbiter: Option<ArbiterSlot>,
}

impl std::fmt::Debug for NandDevice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NandDevice")
            .field("geometry", &self.geometry)
            .field("timing", &self.timing)
            .finish_non_exhaustive()
    }
}

impl NandDevice {
    /// Device geometry.
    pub fn geometry(&self) -> &FlashGeometry {
        &self.geometry
    }

    /// Timing model in use.
    pub fn timing(&self) -> &TimingModel {
        &self.timing
    }

    /// The device's metrics registry (shared by the whole stack above:
    /// the command queue, `NoFtl` and the storage engine all record
    /// here).  Snapshot it, export it, or flip its tracer on.
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        self.obs.registry()
    }

    /// The armed power-cut instant, if any (atomic read).
    fn cut_instant(&self) -> Option<SimTime> {
        let v = self.power_cut.load(Ordering::Acquire);
        (v != POWER_CUT_NONE).then_some(SimTime(v))
    }

    /// Record a failed operation in the aggregate statistics.
    fn note_error(&self) {
        self.shared_shard().stats.errors += 1;
    }

    /// Fail if the device has already lost power at `at`.
    fn check_powered(&self, at: SimTime) -> Result<()> {
        match self.cut_instant() {
            Some(cut) if at >= cut => {
                self.note_error();
                Err(FlashError::PowerLoss { at: cut })
            }
            _ => Ok(()),
        }
    }

    fn check_page(&self, addr: PageAddr) -> Result<()> {
        if self.geometry.contains_page(addr) {
            Ok(())
        } else {
            Err(FlashError::oob(addr))
        }
    }

    fn check_block(&self, addr: BlockAddr) -> Result<()> {
        if self.geometry.contains_block(addr) {
            Ok(())
        } else {
            Err(FlashError::oob(addr))
        }
    }

    /// Lock the shard owning `die`.  Addresses are bounds-checked before
    /// this is called.  This is the sole acquisition site of die shards.
    fn die_shard(&self, die: DieId) -> TrackedGuard<'_, Die> {
        lockorder::lock_tracked(LockClass::Die(die.0), &self.dies[die.0 as usize])
    }

    /// Lock channel `ch`'s transfer-bus shard.  This is the sole
    /// acquisition site of channel shards; it must only be reached while
    /// no later-ordered lock is held.
    fn channel_shard(&self, ch: u32) -> TrackedGuard<'_, Channel> {
        lockorder::lock_tracked(LockClass::Channel(ch), &self.channels[ch as usize])
    }

    /// Lock the device-global shared section (stats + trace).  This is
    /// the sole acquisition site of the shared shard and the last lock in
    /// the documented order.
    fn shared_shard(&self) -> TrackedGuard<'_, Shared> {
        lockorder::lock_tracked(LockClass::Shared, &self.shared)
    }

    /// Lock the arbiter's admission state.  This is the sole acquisition
    /// site of the arbiter lock; it sits between the queue and the die
    /// shards in the documented order and is always released before any
    /// die or channel lock is taken.
    fn arbiter_shard<'a>(&self, slot: &'a ArbiterSlot) -> TrackedGuard<'a, ArbiterState> {
        let _ = self;
        lockorder::lock_tracked(LockClass::Arbiter, &slot.state)
    }

    /// Whether the cross-region arbiter is enabled on this device.
    pub fn arbiter_enabled(&self) -> bool {
        self.arbiter.is_some()
    }

    /// Decide the issue time and channel policy of a tagged transfer op
    /// whose channel occupancy is `xfer`.  With the arbiter disabled this
    /// is the identity: issue at `at`, schedule exactly as before.
    fn admit(
        &self,
        tag: IoTag,
        region_channel: u32,
        xfer: Duration,
        at: SimTime,
    ) -> (SimTime, ChannelPolicy) {
        let Some(slot) = &self.arbiter else {
            return (at, ChannelPolicy::Direct);
        };
        slot.obs.note_class(tag.class);
        if tag.exempt {
            slot.obs.exempt.inc();
            return (at, ChannelPolicy::Backfill);
        }
        match tag.class {
            ServiceClass::Latency | ServiceClass::Throughput => (at, ChannelPolicy::Backfill),
            ServiceClass::Background => {
                let key = (tag.region.unwrap_or(u32::MAX), region_channel);
                let admission = {
                    let mut state = self.arbiter_shard(slot);
                    let bucket =
                        state.buckets.entry(key).or_insert_with(|| TokenBucket::new(&slot.config));
                    bucket.admit(&slot.config, at, xfer.as_nanos())
                };
                if admission.deferred {
                    slot.obs.deferred.inc();
                    slot.obs.deferral_ns.add(admission.issue.as_nanos() - at.as_nanos());
                    if admission.aged {
                        slot.obs.aging_capped.inc();
                    }
                }
                (admission.issue, ChannelPolicy::Append)
            }
        }
    }

    /// Record a backfilled transfer (arbiter-enabled devices only).
    fn note_backfill(&self, backfilled: bool) {
        if backfilled {
            if let Some(slot) = &self.arbiter {
                slot.obs.backfills.inc();
            }
        }
    }

    /// Read a page: returns the payload (empty if the device does not store
    /// data), its OOB metadata, and the operation outcome.
    pub fn read_page(
        &self,
        addr: PageAddr,
        at: SimTime,
    ) -> Result<(Vec<u8>, Option<PageMetadata>, OpOutcome)> {
        self.read_page_tagged(addr, at, IoTag::default())
    }

    /// [`NandDevice::read_page`] carrying an arbiter [`IoTag`].  On an
    /// arbiter-enabled device a `Background` tag runs the channel
    /// transfer through its region's bandwidth budget (possibly deferring
    /// the operation) while foreground tags may backfill idle gaps; with
    /// the arbiter disabled the tag is ignored.
    pub fn read_page_tagged(
        &self,
        addr: PageAddr,
        at: SimTime,
        tag: IoTag,
    ) -> Result<(Vec<u8>, Option<PageMetadata>, OpOutcome)> {
        self.check_page(addr)?;
        self.check_powered(at)?;
        let ch = self.geometry.channel_of_die(addr.die);
        let (issue, policy) =
            self.admit(tag, ch, self.timing.transfer_time(self.geometry.page_size), at);
        let mut die = self.die_shard(addr.die);
        {
            let block = &die.planes[addr.plane as usize].blocks[addr.block as usize];
            if block.state == BlockState::Bad {
                self.note_error();
                return Err(FlashError::BadBlock { addr: addr.block() });
            }
            if block.pages[addr.page as usize] == PageState::Free {
                self.note_error();
                return Err(FlashError::UnwrittenPage { addr });
            }
        }
        let sched = {
            let mut chan = self.channel_shard(ch);
            sched::schedule_read(
                &mut die,
                &mut chan,
                &self.timing,
                issue,
                self.geometry.page_size,
                policy,
            )
        };
        self.note_backfill(sched.backfilled);
        // A read whose result would only arrive after the power cut never
        // reaches the host.
        if let Some(cut) = self.cut_instant() {
            if sched.complete > cut {
                self.note_error();
                return Err(FlashError::PowerLoss { at: cut });
            }
        }
        let block = &die.planes[addr.plane as usize].blocks[addr.block as usize];
        let data = if self.store_data {
            let psz = self.geometry.page_size as usize;
            block
                .data
                .as_ref()
                .map(|d| d[addr.page as usize * psz..(addr.page as usize + 1) * psz].to_vec())
                .unwrap_or_else(|| vec![0u8; psz])
        } else {
            Vec::new()
        };
        let meta = block.meta[addr.page as usize];
        self.obs.note_op(OpKind::Read, addr.die, &sched, at, die.busy_time.as_nanos());
        let mut shared = self.shared_shard();
        shared.stats.page_reads += 1;
        shared.stats.bytes_transferred += self.geometry.page_size as u64;
        shared.stats.read_latency_sum += sched.complete - at;
        shared.stats.queue_depth_hwm = shared.stats.queue_depth_hwm.max(sched.depth as u64);
        shared.trace.record(FlashOp {
            kind: OpKind::Read,
            addr,
            issued_at: at,
            completed_at: sched.complete,
            latency: sched.latency(at),
            queue_depth: sched.depth,
        });
        Ok((data, meta, OpOutcome { started_at: sched.start, completed_at: sched.complete }))
    }

    /// Read only the OOB metadata of a page (cheaper than a full read);
    /// used by GC and recovery to discover which logical page a physical
    /// page holds.
    pub fn read_metadata(
        &self,
        addr: PageAddr,
        at: SimTime,
    ) -> Result<(Option<PageMetadata>, OpOutcome)> {
        self.read_metadata_tagged(addr, at, IoTag::default())
    }

    /// [`NandDevice::read_metadata`] carrying an arbiter [`IoTag`] (see
    /// [`NandDevice::read_page_tagged`]).
    pub fn read_metadata_tagged(
        &self,
        addr: PageAddr,
        at: SimTime,
        tag: IoTag,
    ) -> Result<(Option<PageMetadata>, OpOutcome)> {
        self.check_page(addr)?;
        self.check_powered(at)?;
        let ch = self.geometry.channel_of_die(addr.die);
        let (issue, policy) = self.admit(tag, ch, self.timing.oob_transfer_time(), at);
        let mut die = self.die_shard(addr.die);
        {
            let block = &die.planes[addr.plane as usize].blocks[addr.block as usize];
            if block.state == BlockState::Bad {
                self.note_error();
                return Err(FlashError::BadBlock { addr: addr.block() });
            }
        }
        let sched = {
            let mut chan = self.channel_shard(ch);
            sched::schedule_metadata_read(
                &mut die,
                &mut chan,
                &self.timing,
                issue,
                self.geometry.oob_size,
                policy,
            )
        };
        self.note_backfill(sched.backfilled);
        if let Some(cut) = self.cut_instant() {
            if sched.complete > cut {
                self.note_error();
                return Err(FlashError::PowerLoss { at: cut });
            }
        }
        let meta =
            die.planes[addr.plane as usize].blocks[addr.block as usize].meta[addr.page as usize];
        self.obs.note_op(OpKind::MetadataRead, addr.die, &sched, at, die.busy_time.as_nanos());
        let mut shared = self.shared_shard();
        shared.stats.metadata_reads += 1;
        shared.stats.bytes_transferred += self.geometry.oob_size as u64;
        shared.stats.queue_depth_hwm = shared.stats.queue_depth_hwm.max(sched.depth as u64);
        shared.trace.record(FlashOp {
            kind: OpKind::MetadataRead,
            addr,
            issued_at: at,
            completed_at: sched.complete,
            latency: sched.latency(at),
            queue_depth: sched.depth,
        });
        Ok((meta, OpOutcome { started_at: sched.start, completed_at: sched.complete }))
    }

    /// Program a page with payload `data` and OOB metadata `meta`.
    ///
    /// Enforces NAND rules: the target page must be erased and must be the
    /// next sequential page of its block.  If `meta.epoch` is zero the
    /// device stamps the next device-wide epoch.
    pub fn program_page(
        &self,
        addr: PageAddr,
        data: &[u8],
        meta: PageMetadata,
        at: SimTime,
    ) -> Result<OpOutcome> {
        self.program_page_inner(addr, data, meta, at, true, IoTag::default())
    }

    /// [`NandDevice::program_page`] carrying an arbiter [`IoTag`] (see
    /// [`NandDevice::read_page_tagged`]).
    pub fn program_page_tagged(
        &self,
        addr: PageAddr,
        data: &[u8],
        meta: PageMetadata,
        at: SimTime,
        tag: IoTag,
    ) -> Result<OpOutcome> {
        self.program_page_inner(addr, data, meta, at, true, tag)
    }

    /// Program a page as part of a replication rebuild: identical to
    /// [`NandDevice::program_page`] except that a caller-assigned epoch
    /// does **not** ratchet the device-wide epoch counter.
    ///
    /// The counter is the high-water mark of the *consistent* history
    /// this device holds.  A rebuild replays source pages (with their
    /// original epochs) onto a stale device; until the rebuild commits,
    /// those pages are not part of a consistent history, and advancing
    /// the counter early would let a crash mid-rebuild leave a
    /// half-copied device that claims — by epoch — to be as current as
    /// its source.  The mirror calls [`NandDevice::ratchet_epoch`] once
    /// the rebuild completes.
    pub fn program_replica(
        &self,
        addr: PageAddr,
        data: &[u8],
        meta: PageMetadata,
        at: SimTime,
    ) -> Result<OpOutcome> {
        // Rebuild copies are maintenance traffic: tagged `Background` so
        // an arbiter-enabled device budgets them like GC and compaction.
        self.program_page_inner(addr, data, meta, at, false, IoTag::background(None))
    }

    /// Commit a rebuilt history: advance the epoch counter to `to` (never
    /// backwards).  See [`NandDevice::program_replica`].
    pub fn ratchet_epoch(&self, to: u64) {
        self.epoch.fetch_max(to, Ordering::AcqRel);
    }

    fn program_page_inner(
        &self,
        addr: PageAddr,
        data: &[u8],
        mut meta: PageMetadata,
        at: SimTime,
        ratchet: bool,
        tag: IoTag,
    ) -> Result<OpOutcome> {
        self.check_page(addr)?;
        self.note_touched(addr.die);
        if self.store_data && !data.is_empty() && data.len() != self.geometry.page_size as usize {
            return Err(FlashError::BadPageSize {
                expected: self.geometry.page_size,
                got: data.len(),
            });
        }
        self.check_powered(at)?;
        let ch = self.geometry.channel_of_die(addr.die);
        let (issue, policy) =
            self.admit(tag, ch, self.timing.transfer_time(self.geometry.page_size), at);
        let mut die = self.die_shard(addr.die);
        {
            let block = &die.planes[addr.plane as usize].blocks[addr.block as usize];
            if block.state == BlockState::Bad {
                self.note_error();
                return Err(FlashError::BadBlock { addr: addr.block() });
            }
            if block.pages[addr.page as usize] != PageState::Free {
                self.note_error();
                return Err(FlashError::PageNotErased { addr });
            }
            if addr.page != block.write_ptr {
                self.note_error();
                return Err(FlashError::NonSequentialProgram {
                    addr,
                    expected_next: block.write_ptr,
                });
            }
        }
        if meta.epoch == 0 {
            meta.epoch = self.epoch.fetch_add(1, Ordering::AcqRel) + 1;
        } else if ratchet {
            // Caller-assigned epoch (a mirror stamping a shared sequence):
            // ratchet the counter so `current_epoch` — and the snapshot
            // that persists it — reports the newest epoch this device has
            // stored as part of its consistent history.  Rebuild replays
            // (`program_replica`) deliberately skip this.
            self.epoch.fetch_max(meta.epoch, Ordering::AcqRel);
        }
        let sched = {
            let mut chan = self.channel_shard(ch);
            sched::schedule_program(
                &mut die,
                &mut chan,
                &self.timing,
                issue,
                self.geometry.page_size,
                policy,
            )
        };
        self.note_backfill(sched.backfilled);
        let pages_per_block = self.geometry.pages_per_block;
        let psz = self.geometry.page_size as usize;
        let store = self.store_data;
        if let Some(cut) = self.cut_instant() {
            if sched.complete > cut {
                // Torn program: power failed while the cells were being
                // written.  The page looks programmed (it consumes its slot
                // in the block's sequential order) but holds only a prefix
                // of the payload; the OOB area is written in the second
                // half of the operation, so an early tear loses the
                // metadata entirely.  Recovery detects the former through
                // the payload checksum and the latter through the missing
                // metadata.
                if sched.start < cut {
                    let dur = (sched.complete - sched.start).0.max(1);
                    let elapsed = (cut - sched.start).0;
                    let done = ((psz as u128 * elapsed as u128) / dur as u128) as usize;
                    let block = &mut die.planes[addr.plane as usize].blocks[addr.block as usize];
                    if store {
                        let buf = block
                            .data
                            .get_or_insert_with(|| vec![0u8; pages_per_block as usize * psz]);
                        let off = addr.page as usize * psz;
                        buf[off..off + psz].fill(0);
                        if !data.is_empty() {
                            let done = done.min(psz).min(data.len());
                            buf[off..off + done].copy_from_slice(&data[..done]);
                        }
                    }
                    block.meta[addr.page as usize] =
                        if elapsed * 2 >= dur { Some(meta) } else { None };
                    block.pages[addr.page as usize] = PageState::Valid;
                    block.valid_pages += 1;
                    block.write_ptr = addr.page + 1;
                    block.state = if block.write_ptr == pages_per_block {
                        BlockState::Full
                    } else {
                        BlockState::Open
                    };
                }
                self.note_error();
                return Err(FlashError::PowerLoss { at: cut });
            }
        }
        let block = &mut die.planes[addr.plane as usize].blocks[addr.block as usize];
        if store {
            let buf = block.data.get_or_insert_with(|| vec![0u8; pages_per_block as usize * psz]);
            let off = addr.page as usize * psz;
            if data.is_empty() {
                buf[off..off + psz].fill(0);
            } else {
                buf[off..off + psz].copy_from_slice(data);
            }
        }
        block.pages[addr.page as usize] = PageState::Valid;
        block.meta[addr.page as usize] = Some(meta);
        block.valid_pages += 1;
        block.write_ptr = addr.page + 1;
        block.state =
            if block.write_ptr == pages_per_block { BlockState::Full } else { BlockState::Open };
        self.obs.note_op(OpKind::Program, addr.die, &sched, at, die.busy_time.as_nanos());
        let mut shared = self.shared_shard();
        shared.stats.page_programs += 1;
        shared.stats.bytes_transferred += self.geometry.page_size as u64;
        shared.stats.program_latency_sum += sched.complete - at;
        shared.stats.queue_depth_hwm = shared.stats.queue_depth_hwm.max(sched.depth as u64);
        shared.trace.record(FlashOp {
            kind: OpKind::Program,
            addr,
            issued_at: at,
            completed_at: sched.complete,
            latency: sched.latency(at),
            queue_depth: sched.depth,
        });
        Ok(OpOutcome { started_at: sched.start, completed_at: sched.complete })
    }

    /// Erase a block, returning it to the free state.  Fails permanently if
    /// the block exceeds its endurance budget (the block is then retired).
    pub fn erase_block(&self, addr: BlockAddr, at: SimTime) -> Result<OpOutcome> {
        self.check_block(addr)?;
        self.note_touched(addr.die);
        self.check_powered(at)?;
        let mut die = self.die_shard(addr.die);
        {
            let block = &die.planes[addr.plane as usize].blocks[addr.block as usize];
            if block.state == BlockState::Bad {
                self.note_error();
                return Err(FlashError::BadBlock { addr });
            }
            if block.erase_count >= self.endurance {
                let count = block.erase_count;
                die.planes[addr.plane as usize].blocks[addr.block as usize].state = BlockState::Bad;
                self.note_error();
                return Err(FlashError::WornOut { addr, erase_count: count });
            }
        }
        let sched = sched::schedule_erase(&mut die, &self.timing, at);
        if let Some(cut) = self.cut_instant() {
            if sched.complete > cut {
                // Interrupted erase: the cells are left in an indeterminate
                // state — payloads and OOB metadata are destroyed, but the
                // block is *not* erased (its write pointer and page states
                // are unchanged, so it must be erased again after reboot
                // before it can be programmed).  The wear counter is not
                // charged for the incomplete cycle.
                if sched.start < cut {
                    let block = &mut die.planes[addr.plane as usize].blocks[addr.block as usize];
                    if let Some(buf) = block.data.as_mut() {
                        buf.fill(0xFF);
                    }
                    for m in &mut block.meta {
                        *m = None;
                    }
                }
                self.note_error();
                return Err(FlashError::PowerLoss { at: cut });
            }
        }
        let block = &mut die.planes[addr.plane as usize].blocks[addr.block as usize];
        block.reset_erased();
        block.erase_count += 1;
        self.obs.note_op(OpKind::Erase, addr.die, &sched, at, die.busy_time.as_nanos());
        let mut shared = self.shared_shard();
        shared.stats.block_erases += 1;
        shared.stats.erase_latency_sum += sched.complete - at;
        shared.stats.queue_depth_hwm = shared.stats.queue_depth_hwm.max(sched.depth as u64);
        shared.trace.record(FlashOp {
            kind: OpKind::Erase,
            addr: addr.page(0),
            issued_at: at,
            completed_at: sched.complete,
            latency: sched.latency(at),
            queue_depth: sched.depth,
        });
        Ok(OpOutcome { started_at: sched.start, completed_at: sched.complete })
    }

    /// Copy a valid page to a free page **on the same die** without moving
    /// the data over the channel.  This is the operation GC uses to
    /// relocate still-valid pages out of a victim block.
    pub fn copyback(&self, src: PageAddr, dst: PageAddr, at: SimTime) -> Result<OpOutcome> {
        self.check_page(src)?;
        self.check_page(dst)?;
        self.note_touched(dst.die);
        if src.die != dst.die || (self.strict_copyback_plane && src.plane != dst.plane) {
            return Err(FlashError::CopybackCrossDie { src, dst });
        }
        self.check_powered(at)?;
        let mut die = self.die_shard(src.die);
        // Validate source.
        let (src_meta, src_data) = {
            let sblock = &die.planes[src.plane as usize].blocks[src.block as usize];
            if sblock.state == BlockState::Bad {
                self.note_error();
                return Err(FlashError::BadBlock { addr: src.block() });
            }
            if sblock.pages[src.page as usize] == PageState::Free {
                self.note_error();
                return Err(FlashError::UnwrittenPage { addr: src });
            }
            let psz = self.geometry.page_size as usize;
            let data = if self.store_data {
                sblock
                    .data
                    .as_ref()
                    .map(|d| d[src.page as usize * psz..(src.page as usize + 1) * psz].to_vec())
            } else {
                None
            };
            (sblock.meta[src.page as usize], data)
        };
        // Validate destination.
        {
            let dblock = &die.planes[dst.plane as usize].blocks[dst.block as usize];
            if dblock.state == BlockState::Bad {
                self.note_error();
                return Err(FlashError::BadBlock { addr: dst.block() });
            }
            if dblock.pages[dst.page as usize] != PageState::Free {
                self.note_error();
                return Err(FlashError::PageNotErased { addr: dst });
            }
            if dst.page != dblock.write_ptr {
                self.note_error();
                return Err(FlashError::NonSequentialProgram {
                    addr: dst,
                    expected_next: dblock.write_ptr,
                });
            }
        }
        let sched = sched::schedule_copyback(&mut die, &self.timing, at);
        let pages_per_block = self.geometry.pages_per_block;
        let psz = self.geometry.page_size as usize;
        let store = self.store_data;
        if let Some(cut) = self.cut_instant() {
            if sched.complete > cut {
                // Torn copyback: the destination page may be partially
                // written (same model as a torn program) and the source is
                // left untouched — the host died before it could mark the
                // source invalid, so recovery may find both copies and must
                // break the epoch tie.
                if sched.start < cut {
                    let dur = (sched.complete - sched.start).0.max(1);
                    let elapsed = (cut - sched.start).0;
                    let done = ((psz as u128 * elapsed as u128) / dur as u128) as usize;
                    let dblock = &mut die.planes[dst.plane as usize].blocks[dst.block as usize];
                    if store {
                        let buf = dblock
                            .data
                            .get_or_insert_with(|| vec![0u8; pages_per_block as usize * psz]);
                        let off = dst.page as usize * psz;
                        buf[off..off + psz].fill(0);
                        if let Some(d) = &src_data {
                            let done = done.min(psz).min(d.len());
                            buf[off..off + done].copy_from_slice(&d[..done]);
                        }
                    }
                    dblock.meta[dst.page as usize] =
                        if elapsed * 2 >= dur { src_meta } else { None };
                    dblock.pages[dst.page as usize] = PageState::Valid;
                    dblock.valid_pages += 1;
                    dblock.write_ptr = dst.page + 1;
                    dblock.state = if dblock.write_ptr == pages_per_block {
                        BlockState::Full
                    } else {
                        BlockState::Open
                    };
                }
                self.note_error();
                return Err(FlashError::PowerLoss { at: cut });
            }
        }
        let dblock = &mut die.planes[dst.plane as usize].blocks[dst.block as usize];
        if store {
            let buf = dblock.data.get_or_insert_with(|| vec![0u8; pages_per_block as usize * psz]);
            let off = dst.page as usize * psz;
            match &src_data {
                Some(d) => buf[off..off + psz].copy_from_slice(d),
                None => buf[off..off + psz].fill(0),
            }
        }
        dblock.pages[dst.page as usize] = PageState::Valid;
        dblock.meta[dst.page as usize] = src_meta;
        dblock.valid_pages += 1;
        dblock.write_ptr = dst.page + 1;
        dblock.state =
            if dblock.write_ptr == pages_per_block { BlockState::Full } else { BlockState::Open };
        // Source page becomes invalid.
        let sblock = &mut die.planes[src.plane as usize].blocks[src.block as usize];
        if sblock.pages[src.page as usize] == PageState::Valid {
            sblock.pages[src.page as usize] = PageState::Invalid;
            sblock.valid_pages = sblock.valid_pages.saturating_sub(1);
        }
        self.obs.note_op(OpKind::Copyback, src.die, &sched, at, die.busy_time.as_nanos());
        let mut shared = self.shared_shard();
        shared.stats.copybacks += 1;
        shared.stats.copyback_latency_sum += sched.complete - at;
        shared.stats.queue_depth_hwm = shared.stats.queue_depth_hwm.max(sched.depth as u64);
        shared.trace.record(FlashOp {
            kind: OpKind::Copyback,
            addr: dst,
            issued_at: at,
            completed_at: sched.complete,
            latency: sched.latency(at),
            queue_depth: sched.depth,
        });
        Ok(OpOutcome { started_at: sched.start, completed_at: sched.complete })
    }

    /// Mark a page as invalid (superseded by an out-of-place update).
    ///
    /// This is host-maintained bookkeeping (no flash command is issued and
    /// no time passes); the simulator keeps it next to the physical page so
    /// that block-level valid-page counts used by GC victim selection stay
    /// consistent.
    pub fn mark_invalid(&self, addr: PageAddr) -> Result<()> {
        self.check_page(addr)?;
        let mut die = self.die_shard(addr.die);
        let block = &mut die.planes[addr.plane as usize].blocks[addr.block as usize];
        match block.pages[addr.page as usize] {
            PageState::Valid => {
                block.pages[addr.page as usize] = PageState::Invalid;
                block.valid_pages = block.valid_pages.saturating_sub(1);
                Ok(())
            }
            PageState::Invalid => Ok(()),
            PageState::Free => Err(FlashError::UnwrittenPage { addr }),
        }
    }

    /// Mark a whole block bad (e.g. after a program failure).
    pub fn retire_block(&self, addr: BlockAddr) -> Result<()> {
        self.check_block(addr)?;
        self.note_touched(addr.die);
        let mut die = self.die_shard(addr.die);
        die.planes[addr.plane as usize].blocks[addr.block as usize].state = BlockState::Bad;
        Ok(())
    }

    /// Snapshot of one block's state.
    pub fn block_info(&self, addr: BlockAddr) -> Result<BlockInfo> {
        self.check_block(addr)?;
        let die = self.die_shard(addr.die);
        Ok(BlockInfo::from_block(&die.planes[addr.plane as usize].blocks[addr.block as usize]))
    }

    /// State of a single page.
    pub fn page_state(&self, addr: PageAddr) -> Result<PageState> {
        self.check_page(addr)?;
        let die = self.die_shard(addr.die);
        Ok(die.planes[addr.plane as usize].blocks[addr.block as usize].pages[addr.page as usize])
    }

    /// Aggregate device statistics.
    pub fn stats(&self) -> DeviceStats {
        self.shared_shard().stats.clone()
    }

    /// Latest completion time over all dies and channels — i.e. when the
    /// device becomes fully idle given the operations issued so far.
    pub fn quiesce_time(&self) -> SimTime {
        let die_max = (0..self.dies.len())
            .map(|i| self.die_shard(DieId(i as u32)).busy_until)
            .max()
            .unwrap_or(SimTime::ZERO);
        let ch_max = (0..self.channels.len())
            .map(|i| self.channel_shard(i as u32).busy_until)
            .max()
            .unwrap_or(SimTime::ZERO);
        die_max.max(ch_max)
    }

    /// Busy-until time of a single die (used by allocation policies that
    /// prefer idle dies).  An out-of-range die reports as idle.
    pub fn die_busy_until(&self, die: DieId) -> SimTime {
        if (die.0 as usize) < self.dies.len() {
            self.die_shard(die).busy_until
        } else {
            SimTime::ZERO
        }
    }

    /// Record that a die's contents may have changed (lock-free flag).
    fn note_touched(&self, die: DieId) {
        if let Some(flag) = self.touched.get(die.0 as usize) {
            flag.store(true, Ordering::Release);
        }
    }

    /// Has this die ever been programmed, erased or retired?  A `false`
    /// answer is a guarantee: every block of the die is still in its
    /// factory state, so a mount scan of it cannot find anything.
    pub fn die_touched(&self, die: DieId) -> bool {
        self.touched.get(die.0 as usize).is_some_and(|f| f.load(Ordering::Acquire))
    }

    /// Instantaneous load snapshot of one die as of `at`: when its current
    /// work drains and how many commands are still in flight.  This is the
    /// cheap per-die view queue-aware placement policies steer by — one
    /// shard lock, no allocation, and purely observational (the timing
    /// state is not perturbed).  An out-of-range die reports as idle.
    pub fn die_load(&self, die: DieId, at: SimTime) -> DieLoad {
        if (die.0 as usize) >= self.dies.len() {
            return DieLoad::default();
        }
        let d = self.die_shard(die);
        DieLoad { busy_until: d.busy_until, queue_depth: d.pending_at(at) }
    }

    /// Load snapshots of every die as of `at`, indexed by die id.  Shards
    /// are locked one at a time (not all at once), so concurrent I/O on
    /// other dies is never stalled by a load scan.
    pub fn die_loads(&self, at: SimTime) -> Vec<DieLoad> {
        (0..self.dies.len())
            .map(|i| {
                let d = self.die_shard(DieId(i as u32));
                DieLoad { busy_until: d.busy_until, queue_depth: d.pending_at(at) }
            })
            .collect()
    }

    fn die_stats_from(die: &Die) -> DieStats {
        let total_erases: u64 =
            die.planes.iter().flat_map(|p| p.blocks.iter()).map(|b| b.erase_count).sum();
        let max_erase_count = die
            .planes
            .iter()
            .flat_map(|p| p.blocks.iter())
            .map(|b| b.erase_count)
            .max()
            .unwrap_or(0);
        DieStats {
            ops: die.ops,
            busy_time: die.busy_time,
            total_erases,
            max_erase_count,
            queue_depth_hwm: die.queue_depth_hwm,
        }
    }

    /// Per-die statistics.
    pub fn die_stats(&self) -> Vec<DieStats> {
        (0..self.dies.len())
            .map(|i| Self::die_stats_from(&self.die_shard(DieId(i as u32))))
            .collect()
    }

    /// Utilisation summary over the whole device: per-die busy fraction of
    /// the window from time zero to the current quiesce time, plus the
    /// deepest per-die queue observed.  This is the headline figure of the
    /// queue-depth bench: with parallel submission the mean approaches the
    /// per-die maximum; with serial submission it collapses to `1/dies`.
    pub fn utilization(&self) -> UtilizationSummary {
        let elapsed = self.quiesce_time().since(SimTime::ZERO);
        UtilizationSummary::from_die_stats(&self.die_stats(), elapsed)
    }

    fn wear_summary_from(dies: &[TrackedGuard<'_, Die>]) -> WearSummary {
        let mut bad = 0u64;
        let counts: Vec<u64> = dies
            .iter()
            .flat_map(|d| d.planes.iter())
            .flat_map(|p| p.blocks.iter())
            .map(|b| {
                if b.state == BlockState::Bad {
                    bad += 1;
                }
                b.erase_count
            })
            .collect();
        WearSummary::from_counts(counts.into_iter(), bad)
    }

    /// Lock every die shard in ascending index order (the only sanctioned
    /// way to observe a consistent multi-die image).
    fn lock_all_dies(&self) -> Vec<TrackedGuard<'_, Die>> {
        (0..self.dies.len()).map(|i| self.die_shard(DieId(i as u32))).collect()
    }

    /// Wear distribution over the whole device.
    pub fn wear_summary(&self) -> WearSummary {
        let dies = self.lock_all_dies();
        Self::wear_summary_from(&dies)
    }

    /// Arm a simulated power cut at instant `at`.  Operations issued at or
    /// after `at` fail with [`FlashError::PowerLoss`]; an operation that is
    /// *in flight* at `at` (issued before, completing after) is torn:
    ///
    /// * a torn **program** leaves the page looking programmed but holding
    ///   only a prefix of the payload (detected via the OOB checksum), with
    ///   the OOB metadata itself lost if less than half the operation ran;
    /// * a torn **erase** destroys payloads and metadata without resetting
    ///   the block, so it must be re-erased before reuse;
    /// * a torn **copyback** behaves like a torn program of the destination
    ///   and leaves the source untouched.
    ///
    /// After the cut, capture the device with [`NandDevice::snapshot`] and
    /// "reboot" it with [`NandDevice::from_snapshot`].
    pub fn arm_power_cut(&self, at: SimTime) {
        self.power_cut.store(at.0, Ordering::Release);
    }

    /// The armed power-cut instant, if any.
    pub fn power_cut_at(&self) -> Option<SimTime> {
        self.cut_instant()
    }

    /// Disarm a previously armed power cut.
    pub fn clear_power_cut(&self) {
        self.power_cut.store(POWER_CUT_NONE, Ordering::Release);
    }

    /// Current device-wide write epoch (the stamp given to the most recent
    /// program that did not supply its own).  Recovery uses this as the
    /// checkpoint watermark: pages with a larger epoch were written after
    /// the checkpoint was taken.
    pub fn current_epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Whether the device stores page payloads.
    pub fn stores_data(&self) -> bool {
        self.store_data
    }

    /// Full snapshot: summary statistics plus the complete per-block state
    /// (page payloads, OOB metadata, wear, bad blocks), captured with every
    /// die shard locked so it is a consistent point-in-time image.
    /// The snapshot can be persisted with [`DeviceSnapshot::save`] and
    /// rebuilt into a live device with [`NandDevice::from_snapshot`].
    pub fn snapshot(&self) -> DeviceSnapshot {
        let dies = self.lock_all_dies();
        let shared = self.shared_shard();
        DeviceSnapshot {
            stats: shared.stats.clone(),
            die_stats: dies.iter().map(|d| Self::die_stats_from(d)).collect(),
            wear: Self::wear_summary_from(&dies),
            geometry: self.geometry,
            epoch: self.epoch.load(Ordering::Acquire),
            store_data: self.store_data,
            endurance: self.endurance,
            blocks: dies
                .iter()
                .flat_map(|d| d.planes.iter())
                .flat_map(|p| p.blocks.iter())
                .map(|b| b.to_snapshot())
                .collect(),
        }
    }

    /// Rebuild a device from a snapshot — the simulator's power cycle.
    ///
    /// Block contents, wear, bad-block marks and the write-epoch counter
    /// are restored exactly; the die/channel busy clocks start idle (a
    /// rebooted device has no operations in flight) and any armed power
    /// cut is cleared.  The caller supplies the timing model, which is a
    /// property of the simulation rather than of the persisted state.
    pub fn from_snapshot(snap: &DeviceSnapshot, timing: TimingModel) -> Result<NandDevice> {
        let g = snap.geometry;
        g.validate().map_err(|e| FlashError::Image { message: format!("bad geometry: {e}") })?;
        if snap.blocks.len() as u64 != g.total_blocks() {
            return Err(FlashError::Image {
                message: format!(
                    "snapshot holds {} blocks, geometry needs {}",
                    snap.blocks.len(),
                    g.total_blocks()
                ),
            });
        }
        let psz = g.page_size as usize;
        let ppb = g.pages_per_block as usize;
        for (i, b) in snap.blocks.iter().enumerate() {
            if b.pages.len() != ppb || b.meta.len() != ppb {
                return Err(FlashError::Image {
                    message: format!("block {i} has wrong page count"),
                });
            }
            if let Some(data) = &b.data {
                if data.len() != ppb * psz {
                    return Err(FlashError::Image {
                        message: format!("block {i} has wrong data length"),
                    });
                }
            }
        }
        // A die counts as touched if any of its blocks ever left the
        // pristine state — the same condition under which the mount scan
        // could find anything.
        let touched: Vec<AtomicBool> =
            snap.blocks
                .chunks(g.blocks_per_die() as usize)
                .map(|chunk| {
                    AtomicBool::new(chunk.iter().any(|b| {
                        b.write_ptr > 0 || b.erase_count > 0 || b.state != BlockState::Free
                    }))
                })
                .collect();
        // `total_blocks == total_dies * blocks_per_die` was validated
        // above, so chunking yields exactly one full chunk per die.
        let dies: Vec<Die> = snap
            .blocks
            .chunks(g.blocks_per_die() as usize)
            .map(|chunk| {
                let mut die = Die::new(g.planes_per_die, g.blocks_per_plane, g.pages_per_block);
                for (slot, snapshot) in
                    die.planes.iter_mut().flat_map(|p| p.blocks.iter_mut()).zip(chunk)
                {
                    *slot = Block::from_snapshot(snapshot);
                }
                die
            })
            .collect();
        Ok(NandDevice {
            geometry: g,
            timing,
            endurance: snap.endurance,
            store_data: snap.store_data,
            strict_copyback_plane: false,
            dies: dies.into_iter().map(Mutex::new).collect(),
            channels: (0..g.channels).map(|_| Mutex::new(Channel::default())).collect(),
            epoch: AtomicU64::new(snap.epoch),
            power_cut: AtomicU64::new(POWER_CUT_NONE),
            shared: Mutex::new(Shared { stats: snap.stats.clone(), trace: TraceBuffer::new(0) }),
            touched,
            obs: DeviceObs::new(Arc::new(MetricsRegistry::new()), g.total_dies()),
            arbiter: None,
        })
    }

    /// Retained operation trace (oldest first); empty when tracing is off.
    pub fn trace(&self) -> Vec<FlashOp> {
        self.shared_shard().trace.ops().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dev() -> NandDevice {
        DeviceBuilder::new(FlashGeometry::small_test()).build()
    }

    fn page(die: u32, block: u32, page: u32) -> PageAddr {
        PageAddr::new(DieId(die), 0, block, page)
    }

    fn payload(byte: u8, dev: &NandDevice) -> Vec<u8> {
        vec![byte; dev.geometry().page_size as usize]
    }

    #[test]
    fn program_then_read_roundtrips_data_and_metadata() {
        let d = dev();
        let p = page(0, 0, 0);
        let data = payload(0xAB, &d);
        let meta = PageMetadata::new(7, 42);
        let out = d.program_page(p, &data, meta, SimTime::ZERO).unwrap();
        assert!(out.completed_at > SimTime::ZERO);
        let (read, rmeta, _) = d.read_page(p, out.completed_at).unwrap();
        assert_eq!(read, data);
        let rmeta = rmeta.unwrap();
        assert_eq!(rmeta.object_id, 7);
        assert_eq!(rmeta.logical_page, 42);
        assert!(rmeta.epoch > 0, "device stamps an epoch");
    }

    #[test]
    fn reading_unwritten_page_fails() {
        let d = dev();
        let err = d.read_page(page(0, 0, 0), SimTime::ZERO).unwrap_err();
        assert!(matches!(err, FlashError::UnwrittenPage { .. }));
    }

    #[test]
    fn in_place_update_is_rejected() {
        let d = dev();
        let p = page(0, 0, 0);
        d.program_page(p, &payload(1, &d), PageMetadata::new(1, 0), SimTime::ZERO).unwrap();
        let err =
            d.program_page(p, &payload(2, &d), PageMetadata::new(1, 0), SimTime::ZERO).unwrap_err();
        assert!(matches!(err, FlashError::PageNotErased { .. }));
    }

    #[test]
    fn non_sequential_program_is_rejected() {
        let d = dev();
        let err = d
            .program_page(page(0, 0, 3), &payload(1, &d), PageMetadata::new(1, 0), SimTime::ZERO)
            .unwrap_err();
        assert!(matches!(err, FlashError::NonSequentialProgram { expected_next: 0, .. }));
    }

    #[test]
    fn erase_resets_block_and_counts_wear() {
        let d = dev();
        let b = BlockAddr::new(DieId(0), 0, 0);
        for i in 0..d.geometry().pages_per_block {
            d.program_page(
                b.page(i),
                &payload(i as u8, &d),
                PageMetadata::new(1, i as u64),
                SimTime::ZERO,
            )
            .unwrap();
        }
        assert_eq!(d.block_info(b).unwrap().state, BlockState::Full);
        d.erase_block(b, SimTime::ZERO).unwrap();
        let info = d.block_info(b).unwrap();
        assert_eq!(info.state, BlockState::Free);
        assert_eq!(info.erase_count, 1);
        assert_eq!(info.valid_pages, 0);
        // Programmable again from page 0.
        d.program_page(b.page(0), &payload(9, &d), PageMetadata::new(1, 0), SimTime::ZERO).unwrap();
    }

    #[test]
    fn copyback_moves_data_within_a_die() {
        let d = dev();
        let src = page(1, 0, 0);
        let dst = page(1, 1, 0);
        let data = payload(0x5A, &d);
        d.program_page(src, &data, PageMetadata::new(3, 10), SimTime::ZERO).unwrap();
        let stats_before = d.stats();
        d.copyback(src, dst, SimTime::ZERO).unwrap();
        let stats_after = d.stats();
        // No channel traffic for the copyback itself.
        assert_eq!(stats_after.bytes_transferred, stats_before.bytes_transferred);
        assert_eq!(stats_after.copybacks, 1);
        // Source invalidated, destination valid with the same metadata.
        assert_eq!(d.page_state(src).unwrap(), PageState::Invalid);
        let (read, meta, _) = d.read_page(dst, SimTime::ZERO).unwrap();
        assert_eq!(read, data);
        assert_eq!(meta.unwrap().logical_page, 10);
    }

    #[test]
    fn copyback_across_dies_is_rejected() {
        let d = dev();
        let src = page(0, 0, 0);
        d.program_page(src, &payload(1, &d), PageMetadata::new(1, 0), SimTime::ZERO).unwrap();
        let err = d.copyback(src, page(1, 0, 0), SimTime::ZERO).unwrap_err();
        assert!(matches!(err, FlashError::CopybackCrossDie { .. }));
    }

    #[test]
    fn mark_invalid_updates_block_counts() {
        let d = dev();
        let p = page(0, 0, 0);
        d.program_page(p, &payload(1, &d), PageMetadata::new(1, 0), SimTime::ZERO).unwrap();
        assert_eq!(d.block_info(p.block()).unwrap().valid_pages, 1);
        d.mark_invalid(p).unwrap();
        assert_eq!(d.block_info(p.block()).unwrap().valid_pages, 0);
        assert_eq!(d.page_state(p).unwrap(), PageState::Invalid);
        // Idempotent.
        d.mark_invalid(p).unwrap();
        // Marking a free page invalid is an error.
        assert!(d.mark_invalid(page(0, 0, 5)).is_err());
    }

    #[test]
    fn endurance_limit_retires_blocks() {
        let g = FlashGeometry::small_test();
        let d = DeviceBuilder::new(g)
            .bad_blocks(BadBlockPolicy { factory_bad_fraction: 0.0, endurance_cycles: 2, seed: 0 })
            .build();
        let b = BlockAddr::new(DieId(0), 0, 0);
        d.erase_block(b, SimTime::ZERO).unwrap();
        d.erase_block(b, SimTime::ZERO).unwrap();
        let err = d.erase_block(b, SimTime::ZERO).unwrap_err();
        assert!(matches!(err, FlashError::WornOut { .. }));
        // Block is now bad: programs fail too.
        let err =
            d.program_page(b.page(0), &[], PageMetadata::new(1, 0), SimTime::ZERO).unwrap_err();
        assert!(matches!(err, FlashError::BadBlock { .. }));
    }

    #[test]
    fn operations_on_different_dies_overlap_in_time() {
        let d = dev();
        let t0 = SimTime::ZERO;
        let a =
            d.program_page(page(0, 0, 0), &payload(1, &d), PageMetadata::new(1, 0), t0).unwrap();
        let b =
            d.program_page(page(2, 0, 0), &payload(2, &d), PageMetadata::new(1, 1), t0).unwrap();
        // Dies 0 and 2 are on different channels in the small_test geometry,
        // so the operations complete at the same simulated time.
        assert_eq!(a.completed_at, b.completed_at);
        // Same die: the second operation queues.
        let c =
            d.program_page(page(0, 0, 1), &payload(3, &d), PageMetadata::new(1, 2), t0).unwrap();
        assert!(c.completed_at > a.completed_at);
    }

    #[test]
    fn stats_track_operations_and_latency() {
        let d = dev();
        let p = page(0, 0, 0);
        d.program_page(p, &payload(1, &d), PageMetadata::new(1, 0), SimTime::ZERO).unwrap();
        // Issue the reads once the device is idle so no queueing delay is
        // included in their latencies.
        let idle = d.quiesce_time();
        d.read_page(p, idle).unwrap();
        d.read_metadata(p, d.quiesce_time()).unwrap();
        let s = d.stats();
        assert_eq!(s.page_programs, 1);
        assert_eq!(s.page_reads, 1);
        assert_eq!(s.metadata_reads, 1);
        assert!(s.avg_read_latency_us() > 0.0);
        assert!(s.avg_program_latency_us() > s.avg_read_latency_us());
        assert!(s.total_ops() >= 3);
        // Every op found its die idle: the high-water mark stays at 1.
        assert_eq!(s.queue_depth_hwm, 1);
    }

    #[test]
    fn queue_depth_high_water_mark_tracks_bursts() {
        let d = dev();
        let b = BlockAddr::new(DieId(0), 0, 0);
        // Four programs to one die, all issued at t=0: depths 1..4.
        for i in 0..4 {
            d.program_page(
                b.page(i),
                &payload(i as u8, &d),
                PageMetadata::new(1, i as u64),
                SimTime::ZERO,
            )
            .unwrap();
        }
        assert_eq!(d.stats().queue_depth_hwm, 4);
        let ds = d.die_stats();
        assert_eq!(ds[0].queue_depth_hwm, 4);
        assert_eq!(ds[1].queue_depth_hwm, 0, "untouched die never queued");
        let util = d.utilization();
        assert_eq!(util.queue_depth_hwm, 4);
        assert!(util.per_die[0] > 0.9, "die 0 was busy almost the whole window");
        assert_eq!(util.per_die[1], 0.0);
        assert!(util.max >= util.mean && util.mean >= util.min);
    }

    #[test]
    fn die_loads_report_busy_until_and_in_flight_depth() {
        let d = dev();
        let b = BlockAddr::new(DieId(0), 0, 0);
        // Three programs queued on die 0 at t=0; die 1 untouched.
        let mut last = SimTime::ZERO;
        for i in 0..3 {
            last = d
                .program_page(
                    b.page(i),
                    &payload(i as u8, &d),
                    PageMetadata::new(1, i as u64),
                    SimTime::ZERO,
                )
                .unwrap()
                .completed_at;
        }
        let loads = d.die_loads(SimTime::ZERO);
        assert_eq!(loads.len(), 4);
        assert_eq!(loads[0].busy_until, last);
        assert_eq!(loads[0].queue_depth, 3, "all three programs still in flight at t=0");
        assert_eq!(loads[1], DieLoad::default(), "untouched die is idle");
        assert_eq!(loads[0].earliest_start(SimTime::ZERO), last);
        assert_eq!(loads[1].earliest_start(SimTime::from_us(7)), SimTime::from_us(7));
        // Observed after everything drained: depth 0, busy_until unchanged.
        let after = d.die_load(DieId(0), last);
        assert_eq!(after.queue_depth, 0);
        assert_eq!(after.busy_until, last);
        // Observation is non-destructive: the timing state is unchanged.
        assert_eq!(d.die_load(DieId(0), SimTime::ZERO).queue_depth, 3);
        // Out-of-range dies report as idle.
        assert_eq!(d.die_load(DieId(99), SimTime::ZERO), DieLoad::default());
    }

    #[test]
    fn snapshot_and_wear_summary() {
        let d = dev();
        let b = BlockAddr::new(DieId(0), 0, 0);
        d.erase_block(b, SimTime::ZERO).unwrap();
        let snap = d.snapshot();
        assert_eq!(snap.stats.block_erases, 1);
        assert_eq!(snap.wear.total_erases, 1);
        assert_eq!(snap.die_stats.len(), 4);
        assert_eq!(snap.die_stats[0].total_erases, 1);
        assert_eq!(snap.die_stats[1].total_erases, 0);
    }

    #[test]
    fn quiesce_time_tracks_latest_completion() {
        let d = dev();
        assert_eq!(d.quiesce_time(), SimTime::ZERO);
        let out = d
            .program_page(
                page(0, 0, 0),
                &payload(1, &d),
                PageMetadata::new(1, 0),
                SimTime::from_us(50),
            )
            .unwrap();
        assert_eq!(d.quiesce_time(), out.completed_at);
    }

    #[test]
    fn out_of_bounds_addresses_are_rejected() {
        let d = dev();
        assert!(d.read_page(page(99, 0, 0), SimTime::ZERO).is_err());
        assert!(d.erase_block(BlockAddr::new(DieId(0), 0, 999), SimTime::ZERO).is_err());
        assert!(d.block_info(BlockAddr::new(DieId(9), 0, 0)).is_err());
    }

    #[test]
    fn bad_page_size_is_rejected() {
        let d = dev();
        let err = d
            .program_page(page(0, 0, 0), &[1, 2, 3], PageMetadata::new(1, 0), SimTime::ZERO)
            .unwrap_err();
        assert!(matches!(err, FlashError::BadPageSize { .. }));
    }

    #[test]
    fn trace_records_operations_when_enabled() {
        let d = DeviceBuilder::new(FlashGeometry::small_test()).trace_capacity(10).build();
        d.program_page(page(0, 0, 0), &[], PageMetadata::new(1, 0), SimTime::ZERO).unwrap();
        d.read_page(page(0, 0, 0), SimTime::ZERO).unwrap();
        let trace = d.trace();
        assert_eq!(trace.len(), 2);
        assert_eq!(trace[0].kind, OpKind::Program);
        assert_eq!(trace[1].kind, OpKind::Read);
        // Trace entries carry end-to-end latency and the die queue depth.
        assert_eq!(trace[0].latency, trace[0].completed_at - trace[0].issued_at);
        assert_eq!(trace[0].queue_depth, 1);
        assert_eq!(trace[1].queue_depth, 2, "read issued at t=0 queues behind the program");
        assert!(trace[1].latency > trace[0].latency);
    }

    #[test]
    fn factory_bad_blocks_reject_operations() {
        let g = FlashGeometry::small_test();
        let d = DeviceBuilder::new(g)
            .bad_blocks(BadBlockPolicy {
                factory_bad_fraction: 1.0,
                endurance_cycles: u64::MAX,
                seed: 1,
            })
            .build();
        // Every block is bad with fraction 1.0.
        let err =
            d.program_page(page(0, 0, 0), &[], PageMetadata::new(1, 0), SimTime::ZERO).unwrap_err();
        assert!(matches!(err, FlashError::BadBlock { .. }));
        assert!(d.wear_summary().bad_blocks > 0);
    }

    #[test]
    fn retire_block_marks_bad() {
        let d = dev();
        let b = BlockAddr::new(DieId(1), 0, 3);
        d.retire_block(b).unwrap();
        assert_eq!(d.block_info(b).unwrap().state, BlockState::Bad);
    }

    #[test]
    fn snapshot_roundtrip_restores_byte_identical_reads() {
        // Satellite requirement: snapshot → restore → byte-identical reads,
        // including bad-block and wear state.
        let d =
            DeviceBuilder::new(FlashGeometry::small_test()).timing(TimingModel::mlc_2015()).build();
        let mut written = Vec::new();
        for p in 0..6u32 {
            let addr = page(0, 1, p);
            let data: Vec<u8> =
                (0..d.geometry().page_size).map(|i| (i as u8) ^ (p as u8)).collect();
            let meta = PageMetadata::new(2, p as u64).with_payload_checksum(&data);
            d.program_page(addr, &data, meta, SimTime::ZERO).unwrap();
            written.push((addr, data));
        }
        // Wear + bad-block state.
        let worn = BlockAddr::new(DieId(1), 0, 5);
        d.erase_block(worn, SimTime::ZERO).unwrap();
        d.erase_block(worn, SimTime::ZERO).unwrap();
        d.retire_block(BlockAddr::new(DieId(3), 0, 2)).unwrap();
        d.mark_invalid(written[0].0).unwrap();

        let snap = d.snapshot();
        let restored = NandDevice::from_snapshot(&snap, TimingModel::mlc_2015()).unwrap();
        for (addr, data) in &written[1..] {
            let (read, meta, _) = restored.read_page(*addr, SimTime::ZERO).unwrap();
            assert_eq!(&read, data);
            assert!(meta.unwrap().payload_matches(&read));
        }
        assert_eq!(restored.page_state(written[0].0).unwrap(), PageState::Invalid);
        assert_eq!(restored.block_info(worn).unwrap().erase_count, 2);
        assert_eq!(
            restored.block_info(BlockAddr::new(DieId(3), 0, 2)).unwrap().state,
            BlockState::Bad
        );
        assert_eq!(restored.current_epoch(), d.current_epoch());
        assert_eq!(restored.wear_summary(), d.wear_summary());
        // Sequential-programming state survives: the next program of block
        // (0,1) must continue at page 6.
        let next = page(0, 1, 6);
        restored.program_page(next, &[], PageMetadata::new(2, 6), SimTime::ZERO).unwrap();
    }

    #[test]
    fn operations_after_power_cut_fail() {
        let d =
            DeviceBuilder::new(FlashGeometry::small_test()).timing(TimingModel::mlc_2015()).build();
        let p = page(0, 0, 0);
        d.program_page(p, &payload(1, &d), PageMetadata::new(1, 0), SimTime::ZERO).unwrap();
        let cut = d.quiesce_time();
        d.arm_power_cut(cut);
        assert_eq!(d.power_cut_at(), Some(cut));
        let err = d.read_page(p, cut).unwrap_err();
        assert!(err.is_power_loss());
        assert!(d
            .program_page(page(0, 0, 1), &payload(2, &d), PageMetadata::new(1, 1), cut)
            .is_err());
        assert!(d.erase_block(p.block(), cut).is_err());
        // Reads that complete strictly before the cut still succeed.
        d.clear_power_cut();
        d.read_page(p, cut).unwrap();
    }

    #[test]
    fn torn_program_leaves_partial_payload() {
        let d =
            DeviceBuilder::new(FlashGeometry::small_test()).timing(TimingModel::mlc_2015()).build();
        let p = page(0, 0, 0);
        let data = payload(0xAB, &d);
        let meta = PageMetadata::new(1, 0).with_payload_checksum(&data);
        // Find when an unimpeded program would complete, then cut in the
        // second half of the operation (metadata survives, payload torn).
        let probe =
            DeviceBuilder::new(FlashGeometry::small_test()).timing(TimingModel::mlc_2015()).build();
        let out = probe.program_page(p, &data, meta, SimTime::ZERO).unwrap();
        let span = out.completed_at.as_nanos() - out.started_at.as_nanos();
        let cut = SimTime(out.started_at.as_nanos() + span * 3 / 4);
        d.arm_power_cut(cut);
        let err = d.program_page(p, &data, meta, SimTime::ZERO).unwrap_err();
        assert!(err.is_power_loss());
        // The page is consumed (sequential rule) but torn.
        assert_eq!(d.page_state(p).unwrap(), PageState::Valid);
        d.clear_power_cut();
        let (read, rmeta, _) = d.read_page(p, d.quiesce_time()).unwrap();
        let rmeta = rmeta.expect("late tear keeps metadata");
        assert_ne!(read, data, "payload must be partial");
        assert!(!rmeta.payload_matches(&read), "checksum must expose the torn page");
        // An early tear (first half) loses the metadata entirely.
        let d2 =
            DeviceBuilder::new(FlashGeometry::small_test()).timing(TimingModel::mlc_2015()).build();
        let cut_early = SimTime(out.started_at.as_nanos() + span / 4);
        d2.arm_power_cut(cut_early);
        assert!(d2.program_page(p, &data, meta, SimTime::ZERO).is_err());
        d2.clear_power_cut();
        let (_, rmeta, _) = d2.read_page(p, d2.quiesce_time()).unwrap();
        assert!(rmeta.is_none(), "early tear loses the OOB metadata");
    }

    #[test]
    fn interrupted_erase_destroys_metadata_without_resetting_block() {
        let d =
            DeviceBuilder::new(FlashGeometry::small_test()).timing(TimingModel::mlc_2015()).build();
        let b = BlockAddr::new(DieId(0), 0, 0);
        for i in 0..d.geometry().pages_per_block {
            d.program_page(
                b.page(i),
                &payload(i as u8, &d),
                PageMetadata::new(1, i as u64),
                SimTime::ZERO,
            )
            .unwrap();
        }
        let idle = d.quiesce_time();
        // Cut shortly after the erase starts.
        d.arm_power_cut(idle + crate::time::Duration::from_us(1));
        assert!(d.erase_block(b, idle).unwrap_err().is_power_loss());
        d.clear_power_cut();
        let info = d.block_info(b).unwrap();
        assert_eq!(info.state, BlockState::Full, "interrupted erase does not free the block");
        assert_eq!(info.erase_count, 0, "incomplete erase is not charged to wear");
        let (_, meta, _) = d.read_page(b.page(0), d.quiesce_time()).unwrap();
        assert!(meta.is_none(), "metadata is destroyed");
        // A full erase after "reboot" makes the block usable again.
        d.erase_block(b, d.quiesce_time()).unwrap();
        assert_eq!(d.block_info(b).unwrap().state, BlockState::Free);
    }

    #[test]
    fn store_data_false_returns_empty_payload() {
        let d = DeviceBuilder::new(FlashGeometry::small_test()).store_data(false).build();
        let p = page(0, 0, 0);
        d.program_page(p, &[], PageMetadata::new(1, 5), SimTime::ZERO).unwrap();
        let (data, meta, _) = d.read_page(p, SimTime::ZERO).unwrap();
        assert!(data.is_empty());
        assert_eq!(meta.unwrap().logical_page, 5);
    }

    /// Satellite requirement of the lock-order sanitizer: taking a channel
    /// shard before its die shard is a lock-order violation and must panic
    /// in debug builds before the thread can block on the mutex.
    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "lock-order violation")]
    fn channel_shard_before_die_shard_panics_in_debug() {
        let d = dev();
        let _chan = d.channel_shard(0);
        let _die = d.die_shard(DieId(0));
    }

    #[test]
    fn threads_on_disjoint_dies_do_not_interfere() {
        // Two threads hammering disjoint dies (on disjoint channels in the
        // small_test geometry) must produce exactly the same per-die timing
        // and state as a single-threaded run: with the global device mutex
        // replaced by per-die shards, there is no common lock whose
        // acquisition order could matter.
        use std::sync::Arc;

        fn run_die(d: &NandDevice, die: u32, rounds: u32) -> SimTime {
            let mut last = SimTime::ZERO;
            for b in 0..rounds {
                for p in 0..d.geometry().pages_per_block {
                    let addr = PageAddr::new(DieId(die), 0, b, p);
                    let data = vec![(b ^ p) as u8; d.geometry().page_size as usize];
                    let out = d
                        .program_page(addr, &data, PageMetadata::new(1, p as u64), SimTime::ZERO)
                        .unwrap();
                    last = last.max(out.completed_at);
                }
            }
            last
        }

        let reference =
            DeviceBuilder::new(FlashGeometry::small_test()).timing(TimingModel::mlc_2015()).build();
        let ref0 = run_die(&reference, 0, 4);
        let ref2 = run_die(&reference, 2, 4);

        let shared = Arc::new(
            DeviceBuilder::new(FlashGeometry::small_test()).timing(TimingModel::mlc_2015()).build(),
        );
        let d0 = Arc::clone(&shared);
        let t0 = std::thread::spawn(move || run_die(&d0, 0, 4));
        let d2 = Arc::clone(&shared);
        let t2 = std::thread::spawn(move || run_die(&d2, 2, 4));
        assert_eq!(t0.join().unwrap(), ref0);
        assert_eq!(t2.join().unwrap(), ref2);
        // Same per-die busy time and op counts as the single-threaded run.
        let a = reference.die_stats();
        let b = shared.die_stats();
        assert_eq!(a[0].ops, b[0].ops);
        assert_eq!(a[0].busy_time, b[0].busy_time);
        assert_eq!(a[2].ops, b[2].ops);
        assert_eq!(a[2].busy_time, b[2].busy_time);
        // And the data is intact on both dies.
        for die in [0u32, 2] {
            let (read, _, _) = shared.read_page(page(die, 1, 3), shared.quiesce_time()).unwrap();
            assert_eq!(read, vec![1u8 ^ 3; shared.geometry().page_size as usize]);
        }
    }

    mod arbiter {
        use proptest::prelude::*;

        use super::*;

        fn builder() -> DeviceBuilder {
            DeviceBuilder::new(FlashGeometry::small_test()).timing(TimingModel::mlc_2015())
        }

        fn counter(d: &NandDevice, name: &str) -> u64 {
            d.metrics().counter(name).get()
        }

        /// Program one page per die at t=0 so reads have something to hit.
        fn seed_pages(d: &NandDevice) -> SimTime {
            let mut done = SimTime::ZERO;
            for die in 0..d.geometry().total_dies() {
                let data = vec![die as u8; d.geometry().page_size as usize];
                let out = d
                    .program_page(page(die, 0, 0), &data, PageMetadata::new(1, 0), SimTime::ZERO)
                    .unwrap();
                done = done.max(out.completed_at);
            }
            done
        }

        #[test]
        fn arbiter_off_tagged_path_is_byte_identical_to_untagged() {
            // The PR 9 equivalence guarantee: with no arbiter configured,
            // every tag (any class, exempt or not) schedules exactly like
            // the untagged API.
            let tagged = builder().build();
            let plain = builder().build();
            let t0 = seed_pages(&tagged);
            assert_eq!(t0, seed_pages(&plain));
            let tags = [
                IoTag::new(ServiceClass::Latency, Some(1)),
                IoTag::default(),
                IoTag::background(Some(2)),
                IoTag::durability(ServiceClass::Throughput, None),
            ];
            let mut at = t0;
            for (i, tag) in tags.iter().cycle().take(24).enumerate() {
                let die = (i as u32) % tagged.geometry().total_dies();
                let (da, ma, oa) = tagged.read_page_tagged(page(die, 0, 0), at, *tag).unwrap();
                let (db, mb, ob) = plain.read_page(page(die, 0, 0), at).unwrap();
                assert_eq!((da, ma, oa), (db, mb, ob), "op {i} diverged");
                at += Duration(1_000);
            }
            let a = tagged.stats();
            let b = plain.stats();
            assert_eq!(a.page_reads, b.page_reads);
            assert_eq!(a.read_latency_sum, b.read_latency_sum);
            assert_eq!(a.bytes_transferred, b.bytes_transferred);
            assert_eq!(tagged.quiesce_time(), plain.quiesce_time());
            assert_eq!(counter(&tagged, "flash.arbiter.deferred"), 0);
        }

        #[test]
        fn background_burst_defers_and_foreground_backfills_the_gaps() {
            let d = builder().arbiter(ArbiterConfig::default()).build();
            let t0 = seed_pages(&d);
            // A saturating same-instant background burst on die 0's channel
            // overdraws the region budget: later reads are deferred, and
            // each deferral opens an idle gap on the channel.
            let bg = IoTag::background(Some(7));
            for _ in 0..120 {
                d.read_page_tagged(page(0, 0, 0), t0, bg).unwrap();
            }
            assert!(counter(&d, "flash.arbiter.deferred") > 0, "budget must defer the burst");
            assert!(counter(&d, "flash.arbiter.deferral_ns") > 0);
            assert_eq!(
                counter(&d, "flash.arbiter.class.background.ops"),
                120,
                "every burst read admitted as background"
            );
            // A latency read from the die sharing the channel lands in one
            // of the opened gaps instead of queueing behind the burst.
            let before = d.quiesce_time();
            // Die 1 shares channel 0 with the bursting die 0.
            let lat = IoTag::new(ServiceClass::Latency, Some(1));
            let (_, _, out) = d.read_page_tagged(page(1, 0, 0), t0, lat).unwrap();
            assert_eq!(counter(&d, "flash.arbiter.backfills"), 1);
            assert!(
                out.completed_at < before,
                "backfilled read finishes inside the burst window, not after it"
            );
        }

        #[test]
        fn exempt_durability_traffic_is_never_deferred() {
            let d = builder().arbiter(ArbiterConfig::default()).build();
            let t0 = seed_pages(&d);
            // Drain the budget with a background burst first.
            let bg = IoTag::background(Some(3));
            for _ in 0..120 {
                d.read_page_tagged(page(0, 0, 0), t0, bg).unwrap();
            }
            let deferred = counter(&d, "flash.arbiter.deferred");
            assert!(deferred > 0);
            // Durability traffic from the *same* region sails past the
            // drained bucket (no new deferrals), counted as exempt.
            let meta = IoTag::durability(ServiceClass::Throughput, Some(3));
            for _ in 0..8 {
                d.read_page_tagged(page(0, 0, 0), t0, meta).unwrap();
            }
            assert_eq!(counter(&d, "flash.arbiter.exempt"), 8);
            assert_eq!(counter(&d, "flash.arbiter.deferred"), deferred, "exempt ops never metered");
        }

        #[test]
        fn saturating_pressure_trips_the_aging_clip_but_completes_everything() {
            // A tiny budget with a tight aging bound: deferral requests far
            // exceed max_defer_ns, so the clip must engage, and every op
            // still completes within the bound of its issue + backlog.
            let cfg = ArbiterConfig {
                background_fraction: 0.05,
                window_ns: 100_000,
                max_defer_ns: 500_000,
            };
            let d = builder().arbiter(cfg).build();
            let t0 = seed_pages(&d);
            let bg = IoTag::background(Some(1));
            let mut max_start_delay = Duration::ZERO;
            for _ in 0..64 {
                let (_, _, out) = d.read_page_tagged(page(0, 0, 0), t0, bg).unwrap();
                max_start_delay = max_start_delay.max(out.started_at.since(t0));
            }
            assert!(counter(&d, "flash.arbiter.aging_capped") > 0, "clip must engage");
            // Start delay is bounded by admission aging plus the channel
            // backlog the ops themselves create — far below the unclipped
            // deferral the drained bucket would have demanded.
            let per_op =
                d.timing().read_array_time() + d.timing().transfer_time(d.geometry().page_size);
            let backlog = Duration(per_op.as_nanos() * 64);
            assert!(
                max_start_delay.as_nanos() <= cfg.max_defer_ns + backlog.as_nanos(),
                "start delay {max_start_delay:?} exceeds aging bound + backlog"
            );
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(16))]

            /// Fairness: on any mixed-class read sequence, the arbiter
            /// delays no op's start by more than `max_defer_ns` beyond
            /// where the arbiter-off device would have started it — the
            /// anti-starvation aging window is a hard bound, and exempt
            /// (`__noftl_meta`-style) traffic is never inverted behind
            /// the background budget.
            #[test]
            fn no_op_starts_more_than_the_aging_window_late(
                classes in prop::collection::vec(0u8..4, 1..48),
                gaps in prop::collection::vec(0u64..40_000, 1..48),
            ) {
                let cfg = ArbiterConfig::default();
                let arb = builder().arbiter(cfg).build();
                let off = builder().build();
                let t0 = seed_pages(&arb);
                seed_pages(&off);
                let mut at = t0;
                for (i, class) in classes.iter().enumerate() {
                    let tag = match class {
                        0 => IoTag::new(ServiceClass::Latency, Some(1)),
                        1 => IoTag::default(),
                        2 => IoTag::background(Some(2)),
                        _ => IoTag::durability(ServiceClass::Throughput, Some(1)),
                    };
                    let die = (i as u32) % arb.geometry().total_dies();
                    let (_, _, a) = arb.read_page_tagged(page(die, 0, 0), at, tag).unwrap();
                    let (_, _, b) = off.read_page_tagged(page(die, 0, 0), at, tag).unwrap();
                    prop_assert!(
                        a.started_at.as_nanos() <= b.started_at.as_nanos() + cfg.max_defer_ns,
                        "op {} (class {}) started at {:?}, off-device {:?}: past the aging window",
                        i, class, a.started_at, b.started_at
                    );
                    at += Duration(gaps[i % gaps.len()]);
                }
            }
        }
    }
}
