//! Service classes and the cross-region I/O arbiter's admission state.
//!
//! The paper's region abstraction lets the DBMS tell the flash layer what
//! an I/O *is for*; this module gives that intent a vocabulary.  Every
//! submitted command carries an [`IoTag`] naming its [`ServiceClass`] and
//! originating region, and an arbiter-enabled device runs each
//! `Background`-class channel transfer through a per-`(region, channel)`
//! [`TokenBucket`] before scheduling it:
//!
//! * the bucket holds *channel busy-nanoseconds*, refilled in simulated
//!   time at [`ArbiterConfig::background_fraction`] ns of budget per ns of
//!   sim time, capped at one window's worth of burst;
//! * a transfer that overdraws the bucket is **deferred** — issued later
//!   by exactly the refill time its deficit needs — so a compaction or GC
//!   burst spreads over the window instead of occupying the channel as
//!   one contiguous block;
//! * deferral is bounded by [`ArbiterConfig::max_defer_ns`] (anti-starvation
//!   aging): a `Background` op never waits longer than the aging window,
//!   no matter how saturated the channel budget is.
//!
//! Foreground (`Latency`/`Throughput`) and [`IoTag::exempt`] traffic is
//! never metered; on an arbiter-enabled device it additionally *backfills*
//! the idle channel gaps that deferred background transfers leave behind
//! (see `ChannelPolicy` in the `die` module).  With the arbiter disabled
//! every tag is ignored and scheduling is byte-identical to the untagged
//! path.

use serde::{Deserialize, Serialize};

use crate::time::SimTime;

/// Priority class of one submitted flash command.
///
/// The class travels with the command through the submission queue and the
/// device's issue path; the region layer above resolves it from the
/// region's spec (or the manager-wide default) and overrides it for
/// maintenance I/O (GC relocation, compaction merges, rebuild copies are
/// `Background` regardless of the region's class).
#[derive(
    Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub enum ServiceClass {
    /// Tail-latency sensitive (OLTP point I/O): never metered, first pick
    /// of backfillable channel gaps.
    Latency,
    /// Ordinary throughput-oriented traffic — the default.
    #[default]
    Throughput,
    /// Maintenance traffic (GC, compaction, rebuild): subject to the
    /// per-region channel-bandwidth budget.
    Background,
}

impl ServiceClass {
    /// Every class, in codec/slot order.
    pub const ALL: [ServiceClass; 3] =
        [ServiceClass::Latency, ServiceClass::Throughput, ServiceClass::Background];

    /// Stable lower-case name (metric fragments, DDL rendering).
    pub fn name(self) -> &'static str {
        match self {
            ServiceClass::Latency => "latency",
            ServiceClass::Throughput => "throughput",
            ServiceClass::Background => "background",
        }
    }

    /// Parse a DDL-style class name (case-insensitive).
    pub fn parse(s: &str) -> Option<ServiceClass> {
        match s.to_ascii_lowercase().as_str() {
            "latency" => Some(ServiceClass::Latency),
            "throughput" => Some(ServiceClass::Throughput),
            "background" => Some(ServiceClass::Background),
            _ => None,
        }
    }

    /// Stable codec byte (checkpoint persistence).
    pub fn code(self) -> u8 {
        match self {
            ServiceClass::Latency => 0,
            ServiceClass::Throughput => 1,
            ServiceClass::Background => 2,
        }
    }

    /// Inverse of [`ServiceClass::code`].
    pub fn from_code(code: u8) -> Option<ServiceClass> {
        match code {
            0 => Some(ServiceClass::Latency),
            1 => Some(ServiceClass::Throughput),
            2 => Some(ServiceClass::Background),
            _ => None,
        }
    }

    /// Dense slot index (obs arrays).
    pub fn slot(self) -> usize {
        self.code() as usize
    }
}

/// Per-command arbiter tag: who is doing this I/O and how it should be
/// treated.  The default tag (`Throughput`, no region, not exempt)
/// reproduces pre-arbiter behavior on every path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IoTag {
    /// Priority class.
    pub class: ServiceClass,
    /// Originating region id (`None` for raw-device traffic); the bucket
    /// key, so each region is budgeted independently per channel.
    pub region: Option<u32>,
    /// Exempt from budget throttling regardless of class — durability
    /// traffic (metadata-journal and checkpoint writes) is never deferred.
    pub exempt: bool,
}

impl IoTag {
    /// Tag for regular traffic of `class` from `region`.
    pub fn new(class: ServiceClass, region: Option<u32>) -> Self {
        IoTag { class, region, exempt: false }
    }

    /// Background (maintenance) traffic from `region`.
    pub fn background(region: Option<u32>) -> Self {
        IoTag { class: ServiceClass::Background, region, exempt: false }
    }

    /// Durability traffic: never metered, backfills like foreground.
    pub fn durability(class: ServiceClass, region: Option<u32>) -> Self {
        IoTag { class, region, exempt: true }
    }
}

/// Tuning of the device-level arbiter.
#[derive(Debug, Clone, Copy)]
pub struct ArbiterConfig {
    /// Fraction of each channel's bandwidth one region's `Background`
    /// traffic may consume, as ns of channel busy time per ns of
    /// simulated time (also the bucket refill rate).
    pub background_fraction: f64,
    /// Budget accounting window: the bucket's burst capacity is
    /// `window_ns * background_fraction` busy-ns.
    pub window_ns: u64,
    /// Anti-starvation aging bound: a metered transfer is never deferred
    /// past this many ns after its issue time.
    pub max_defer_ns: u64,
}

impl Default for ArbiterConfig {
    fn default() -> Self {
        ArbiterConfig { background_fraction: 0.35, window_ns: 1_000_000, max_defer_ns: 2_000_000 }
    }
}

impl ArbiterConfig {
    /// The bucket's burst capacity in busy-ns.
    pub fn burst_ns(&self) -> f64 {
        self.window_ns as f64 * self.background_fraction
    }
}

/// Verdict of one token-bucket admission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Admission {
    /// When the op may issue (`>= at`; equals `at` when not deferred).
    pub issue: SimTime,
    /// Whether the budget pushed the op later than its issue time.
    pub deferred: bool,
    /// Whether the deferral was clipped by the aging bound.
    pub aged: bool,
}

/// One region's channel-bandwidth budget on one channel.
///
/// Tokens are channel busy-nanoseconds.  The bucket may go into debt down
/// to one burst below zero — a deferred op spends its full cost at its
/// deferred issue time — which keeps a saturating background stream paced
/// at the configured fraction instead of letting each op individually
/// wait out the whole deficit.
#[derive(Debug, Clone, Copy)]
pub struct TokenBucket {
    tokens: f64,
    last: SimTime,
}

impl TokenBucket {
    /// A fresh bucket holding a full burst.
    pub fn new(config: &ArbiterConfig) -> Self {
        TokenBucket { tokens: config.burst_ns(), last: SimTime::ZERO }
    }

    /// Current token balance (busy-ns; negative = in debt).
    pub fn tokens(&self) -> f64 {
        self.tokens
    }

    /// Admit a transfer costing `cost_ns` of channel busy time at `at`.
    ///
    /// Refills the bucket for the simulated time elapsed since the last
    /// admission, then either issues immediately (balance covers the
    /// cost) or defers by the refill time the deficit needs, clipped at
    /// [`ArbiterConfig::max_defer_ns`].  The cost is always spent; the
    /// balance is clamped at one burst of debt.
    pub fn admit(&mut self, config: &ArbiterConfig, at: SimTime, cost_ns: u64) -> Admission {
        let rate = config.background_fraction.max(1e-9);
        let burst = config.burst_ns();
        if at > self.last {
            let elapsed = (at.as_nanos() - self.last.as_nanos()) as f64;
            self.tokens = (self.tokens + elapsed * rate).min(burst);
            self.last = at;
        }
        let cost = cost_ns as f64;
        if self.tokens >= cost {
            self.tokens -= cost;
            return Admission { issue: at, deferred: false, aged: false };
        }
        // The op becomes affordable at the bucket's pacing horizon:
        // `last` plus the refill time of the deficit.  Advancing `last`
        // to the deferred issue below is what makes a same-instant burst
        // stack — each successive overdraw paces `cost/rate` after the
        // previous one instead of re-measuring from `at`.
        let deficit = cost - self.tokens;
        let ready = self.last.as_nanos() + (deficit / rate).ceil() as u64;
        let wait = ready.saturating_sub(at.as_nanos());
        let aged = wait > config.max_defer_ns;
        let wait = wait.min(config.max_defer_ns);
        let issue = SimTime(at.as_nanos() + wait);
        if issue > self.last {
            let elapsed = (issue.as_nanos() - self.last.as_nanos()) as f64;
            self.tokens = (self.tokens + elapsed * rate).min(burst);
            self.last = issue;
        }
        self.tokens = (self.tokens - cost).max(-burst);
        Admission { issue, deferred: wait > 0, aged }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> ArbiterConfig {
        ArbiterConfig { background_fraction: 0.5, window_ns: 1_000, max_defer_ns: 10_000 }
    }

    #[test]
    fn class_codec_roundtrips_and_parses() {
        for class in ServiceClass::ALL {
            assert_eq!(ServiceClass::from_code(class.code()), Some(class));
            assert_eq!(ServiceClass::parse(class.name()), Some(class));
            assert_eq!(ServiceClass::parse(&class.name().to_ascii_uppercase()), Some(class));
        }
        assert_eq!(ServiceClass::from_code(9), None);
        assert_eq!(ServiceClass::parse("bogus"), None);
        assert_eq!(ServiceClass::default(), ServiceClass::Throughput);
        assert_eq!(IoTag::default().class, ServiceClass::Throughput);
        assert!(!IoTag::default().exempt);
        assert!(IoTag::durability(ServiceClass::Throughput, Some(3)).exempt);
    }

    #[test]
    fn bucket_admits_within_burst_then_defers() {
        let cfg = config(); // burst = 500 busy-ns
        let mut b = TokenBucket::new(&cfg);
        // Two 200-ns transfers fit the burst, issued immediately.
        assert_eq!(b.admit(&cfg, SimTime::ZERO, 200).issue, SimTime::ZERO);
        assert_eq!(b.admit(&cfg, SimTime::ZERO, 200).issue, SimTime::ZERO);
        // The third overdraws: deficit 100 at rate 0.5 → 200 ns deferral.
        let a = b.admit(&cfg, SimTime::ZERO, 200);
        assert!(a.deferred && !a.aged);
        assert_eq!(a.issue, SimTime(200));
    }

    #[test]
    fn same_instant_burst_paces_at_the_refill_rate() {
        let cfg = config(); // rate 0.5 busy-ns per ns
        let mut b = TokenBucket::new(&cfg);
        assert!(!b.admit(&cfg, SimTime::ZERO, 500).deferred); // drain the burst
                                                              // Each further same-instant op stacks cost/rate after the previous
                                                              // one — the burst spreads over the window instead of re-measuring
                                                              // its deferral from the (unchanged) submission time.
        assert_eq!(b.admit(&cfg, SimTime::ZERO, 100).issue, SimTime(200));
        assert_eq!(b.admit(&cfg, SimTime::ZERO, 100).issue, SimTime(400));
        assert_eq!(b.admit(&cfg, SimTime::ZERO, 100).issue, SimTime(600));
    }

    #[test]
    fn bucket_refills_in_simulated_time() {
        let cfg = config();
        let mut b = TokenBucket::new(&cfg);
        assert!(!b.admit(&cfg, SimTime::ZERO, 500).deferred); // drain the burst
                                                              // 1000 ns later the bucket refilled 500 busy-ns (back to burst cap).
        let a = b.admit(&cfg, SimTime(1_000), 500);
        assert!(!a.deferred, "refilled bucket admits immediately");
        // Refill never exceeds the burst: an immediate second op defers.
        assert!(b.admit(&cfg, SimTime(1_000), 500).deferred);
    }

    #[test]
    fn deferral_is_clipped_by_the_aging_bound() {
        let cfg = ArbiterConfig { background_fraction: 0.01, window_ns: 1_000, max_defer_ns: 300 };
        let mut b = TokenBucket::new(&cfg);
        // Burst is 10 busy-ns; a 500-ns transfer would need 49_000 ns of
        // refill — the aging bound clips it to 300.
        let a = b.admit(&cfg, SimTime::ZERO, 500);
        assert!(a.deferred && a.aged);
        assert_eq!(a.issue, SimTime(300));
    }

    #[test]
    fn debt_is_clamped_to_one_burst() {
        let cfg = config();
        let mut b = TokenBucket::new(&cfg);
        for _ in 0..50 {
            let a = b.admit(&cfg, SimTime::ZERO, 400);
            assert!(a.issue.as_nanos() <= cfg.max_defer_ns, "deferral bounded");
        }
        assert!(b.tokens() >= -cfg.burst_ns() - 1e-9, "debt clamped at one burst");
    }

    #[test]
    fn out_of_order_issue_times_never_refill_backwards() {
        let cfg = config();
        let mut b = TokenBucket::new(&cfg);
        b.admit(&cfg, SimTime(10_000), 500);
        let before = b.tokens();
        // An earlier-timestamped admission must not produce a negative
        // elapsed refill.
        b.admit(&cfg, SimTime(5_000), 100);
        assert!(b.tokens() <= before, "no retroactive refill");
    }
}
