//! Persistent device images.
//!
//! A [`DeviceSnapshot`] can be serialised into a compact, self-validating
//! binary image and written to a file, then loaded and rebuilt into a live
//! device with [`crate::NandDevice::from_snapshot`].  This is the
//! simulator's equivalent of persisting the NAND array across a power
//! cycle: the crash harness captures the (possibly torn) device state at
//! the cut instant, "reboots" by round-tripping it through an image, and
//! hands the reborn device to `NoFtl::mount` for recovery.
//!
//! The format is hand-rolled little-endian (the workspace's `serde` is an
//! offline marker stub with no serialisers) and ends with a CRC-32 over
//! the entire payload, so truncated or corrupted image files are rejected
//! instead of silently producing a half-restored device.

use std::io::{Read, Write};
use std::path::Path;

use crate::block::{BlockSnapshot, BlockState, PageState};
use crate::crc::crc32;
use crate::device::DeviceSnapshot;
use crate::error::FlashError;
use crate::geometry::FlashGeometry;
use crate::metadata::PageMetadata;
use crate::stats::{DeviceStats, DieStats, WearSummary};
use crate::time::Duration;
use crate::Result;

// Format version 02: adds the queue-depth high-water marks (device-wide
// and per die) introduced with the command-queue submission API.
const MAGIC: &[u8; 8] = b"NFLIMG02";

fn err(message: impl Into<String>) -> FlashError {
    FlashError::Image { message: message.into() }
}

// ---------------------------------------------------------------------
// Little-endian writer/reader helpers
// ---------------------------------------------------------------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.pos + n > self.buf.len() {
            return Err(err("image truncated"));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32> {
        // analyzer:allow(panic_freedom) take(4) returned exactly 4 bytes, so the fixed-array conversion cannot fail
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Result<u64> {
        // analyzer:allow(panic_freedom) take(8) returned exactly 8 bytes, so the fixed-array conversion cannot fail
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }
}

fn block_state_tag(s: BlockState) -> u8 {
    match s {
        BlockState::Free => 0,
        BlockState::Open => 1,
        BlockState::Full => 2,
        BlockState::Bad => 3,
    }
}

fn block_state_from(tag: u8) -> Result<BlockState> {
    Ok(match tag {
        0 => BlockState::Free,
        1 => BlockState::Open,
        2 => BlockState::Full,
        3 => BlockState::Bad,
        t => return Err(err(format!("unknown block state tag {t}"))),
    })
}

fn page_state_tag(s: PageState) -> u8 {
    match s {
        PageState::Free => 0,
        PageState::Valid => 1,
        PageState::Invalid => 2,
    }
}

fn page_state_from(tag: u8) -> Result<PageState> {
    Ok(match tag {
        0 => PageState::Free,
        1 => PageState::Valid,
        2 => PageState::Invalid,
        t => return Err(err(format!("unknown page state tag {t}"))),
    })
}

// ---------------------------------------------------------------------
// Encode / decode
// ---------------------------------------------------------------------

impl DeviceSnapshot {
    /// Serialise the snapshot into the binary image format.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(1024 + self.blocks.len() * 64);
        out.extend_from_slice(MAGIC);
        let g = &self.geometry;
        for v in [
            g.channels,
            g.chips_per_channel,
            g.dies_per_chip,
            g.planes_per_die,
            g.blocks_per_plane,
            g.pages_per_block,
            g.page_size,
            g.oob_size,
        ] {
            put_u32(&mut out, v);
        }
        put_u64(&mut out, self.epoch);
        out.push(u8::from(self.store_data));
        put_u64(&mut out, self.endurance);
        let s = &self.stats;
        for v in [
            s.page_reads,
            s.page_programs,
            s.block_erases,
            s.copybacks,
            s.metadata_reads,
            s.bytes_transferred,
            s.read_latency_sum.0,
            s.program_latency_sum.0,
            s.erase_latency_sum.0,
            s.copyback_latency_sum.0,
            s.errors,
            s.queue_depth_hwm,
        ] {
            put_u64(&mut out, v);
        }
        put_u32(&mut out, self.die_stats.len() as u32);
        for d in &self.die_stats {
            put_u64(&mut out, d.ops);
            put_u64(&mut out, d.busy_time.0);
            put_u64(&mut out, d.total_erases);
            put_u64(&mut out, d.max_erase_count);
            put_u32(&mut out, d.queue_depth_hwm);
        }
        put_u32(&mut out, self.blocks.len() as u32);
        for b in &self.blocks {
            out.push(block_state_tag(b.state));
            put_u32(&mut out, b.write_ptr);
            put_u64(&mut out, b.erase_count);
            put_u32(&mut out, b.valid_pages);
            put_u32(&mut out, b.pages.len() as u32);
            for p in &b.pages {
                out.push(page_state_tag(*p));
            }
            for m in &b.meta {
                match m {
                    Some(m) => {
                        out.push(1);
                        out.extend_from_slice(&m.encode());
                    }
                    None => out.push(0),
                }
            }
            match &b.data {
                Some(data) => {
                    out.push(1);
                    put_u64(&mut out, data.len() as u64);
                    out.extend_from_slice(data);
                }
                None => out.push(0),
            }
        }
        let crc = crc32(&out);
        put_u32(&mut out, crc);
        out
    }

    /// Decode an image produced by [`DeviceSnapshot::encode`].  The wear
    /// summary is recomputed from the decoded blocks.
    pub fn decode(buf: &[u8]) -> Result<DeviceSnapshot> {
        if buf.len() < MAGIC.len() + 4 {
            return Err(err("image too short"));
        }
        let (body, crc_bytes) = buf.split_at(buf.len() - 4);
        // analyzer:allow(panic_freedom) split_at(len - 4) yields exactly 4 trailing bytes, so the fixed-array conversion cannot fail
        let stored = u32::from_le_bytes(crc_bytes.try_into().expect("4 bytes"));
        if crc32(body) != stored {
            return Err(err("image checksum mismatch (corrupted or truncated file)"));
        }
        let mut c = Cursor { buf: body, pos: 0 };
        if c.take(MAGIC.len())? != MAGIC {
            return Err(err("bad image magic"));
        }
        let geometry = FlashGeometry {
            channels: c.u32()?,
            chips_per_channel: c.u32()?,
            dies_per_chip: c.u32()?,
            planes_per_die: c.u32()?,
            blocks_per_plane: c.u32()?,
            pages_per_block: c.u32()?,
            page_size: c.u32()?,
            oob_size: c.u32()?,
        };
        let epoch = c.u64()?;
        let store_data = c.u8()? != 0;
        let endurance = c.u64()?;
        let stats = DeviceStats {
            page_reads: c.u64()?,
            page_programs: c.u64()?,
            block_erases: c.u64()?,
            copybacks: c.u64()?,
            metadata_reads: c.u64()?,
            bytes_transferred: c.u64()?,
            read_latency_sum: Duration(c.u64()?),
            program_latency_sum: Duration(c.u64()?),
            erase_latency_sum: Duration(c.u64()?),
            copyback_latency_sum: Duration(c.u64()?),
            errors: c.u64()?,
            queue_depth_hwm: c.u64()?,
        };
        let die_count = c.u32()? as usize;
        if die_count > 1 << 20 {
            return Err(err("implausible die count"));
        }
        let mut die_stats = Vec::with_capacity(die_count);
        for _ in 0..die_count {
            die_stats.push(DieStats {
                ops: c.u64()?,
                busy_time: Duration(c.u64()?),
                total_erases: c.u64()?,
                max_erase_count: c.u64()?,
                queue_depth_hwm: c.u32()?,
            });
        }
        let block_count = c.u32()? as usize;
        if block_count as u64 != geometry.total_blocks() {
            return Err(err("block count does not match geometry"));
        }
        let mut blocks = Vec::with_capacity(block_count);
        for _ in 0..block_count {
            let state = block_state_from(c.u8()?)?;
            let write_ptr = c.u32()?;
            let erase_count = c.u64()?;
            let valid_pages = c.u32()?;
            let page_count = c.u32()? as usize;
            if page_count != geometry.pages_per_block as usize {
                return Err(err("page count does not match geometry"));
            }
            let mut pages = Vec::with_capacity(page_count);
            for _ in 0..page_count {
                pages.push(page_state_from(c.u8()?)?);
            }
            let mut meta = Vec::with_capacity(page_count);
            for _ in 0..page_count {
                meta.push(if c.u8()? != 0 {
                    Some(
                        PageMetadata::decode(c.take(PageMetadata::ENCODED_LEN)?)
                            .ok_or_else(|| err("bad page metadata"))?,
                    )
                } else {
                    None
                });
            }
            let data = if c.u8()? != 0 {
                let len = c.u64()? as usize;
                let expected = page_count * geometry.page_size as usize;
                if len != expected {
                    return Err(err("block data length does not match geometry"));
                }
                Some(c.take(len)?.to_vec())
            } else {
                None
            };
            blocks.push(BlockSnapshot {
                state,
                write_ptr,
                erase_count,
                pages,
                meta,
                data,
                valid_pages,
            });
        }
        if c.pos != body.len() {
            return Err(err("trailing bytes after image payload"));
        }
        let mut bad = 0u64;
        let wear = WearSummary::from_counts(
            blocks.iter().map(|b| {
                if b.state == BlockState::Bad {
                    bad += 1;
                }
                b.erase_count
            }),
            0,
        );
        let wear = WearSummary { bad_blocks: bad, ..wear };
        Ok(DeviceSnapshot {
            stats,
            die_stats,
            wear,
            geometry,
            epoch,
            store_data,
            endurance,
            blocks,
        })
    }

    /// Write the snapshot to a file-backed image.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<()> {
        let bytes = self.encode();
        let mut f = std::fs::File::create(path.as_ref())
            .map_err(|e| err(format!("create {}: {e}", path.as_ref().display())))?;
        f.write_all(&bytes).map_err(|e| err(format!("write image: {e}")))?;
        f.sync_all().map_err(|e| err(format!("sync image: {e}")))?;
        Ok(())
    }

    /// Load a snapshot from a file-backed image.
    pub fn load(path: impl AsRef<Path>) -> Result<DeviceSnapshot> {
        let mut bytes = Vec::new();
        std::fs::File::open(path.as_ref())
            .map_err(|e| err(format!("open {}: {e}", path.as_ref().display())))?
            .read_to_end(&mut bytes)
            .map_err(|e| err(format!("read image: {e}")))?;
        Self::decode(&bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceBuilder;
    use crate::time::SimTime;

    fn populated_snapshot() -> DeviceSnapshot {
        let d = DeviceBuilder::new(FlashGeometry::small_test()).build();
        for p in 0..5u64 {
            let addr = crate::PageAddr::new(crate::DieId(0), 0, 0, p as u32);
            let data = vec![p as u8 + 1; 4096];
            let meta = PageMetadata::new(1, p).with_payload_checksum(&data);
            d.program_page(addr, &data, meta, SimTime::ZERO).unwrap();
        }
        d.erase_block(crate::BlockAddr::new(crate::DieId(1), 0, 3), SimTime::ZERO).unwrap();
        d.retire_block(crate::BlockAddr::new(crate::DieId(2), 0, 7)).unwrap();
        d.snapshot()
    }

    #[test]
    fn encode_decode_roundtrip() {
        let snap = populated_snapshot();
        let decoded = DeviceSnapshot::decode(&snap.encode()).unwrap();
        assert_eq!(decoded.blocks, snap.blocks);
        assert_eq!(decoded.stats, snap.stats);
        assert_eq!(decoded.epoch, snap.epoch);
        assert_eq!(decoded.geometry, snap.geometry);
        assert_eq!(decoded.endurance, snap.endurance);
        assert_eq!(decoded.wear.bad_blocks, 1);
        assert_eq!(decoded.wear.total_erases, snap.wear.total_erases);
    }

    #[test]
    fn corrupted_image_is_rejected() {
        let snap = populated_snapshot();
        let mut bytes = snap.encode();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        assert!(matches!(DeviceSnapshot::decode(&bytes), Err(FlashError::Image { .. })));
        // Truncation is also caught.
        bytes.truncate(bytes.len() / 2);
        assert!(DeviceSnapshot::decode(&bytes).is_err());
        assert!(DeviceSnapshot::decode(&[]).is_err());
    }

    #[test]
    fn save_load_file_roundtrip() {
        let snap = populated_snapshot();
        let path =
            std::env::temp_dir().join(format!("noftl-image-test-{}.img", std::process::id()));
        snap.save(&path).unwrap();
        let loaded = DeviceSnapshot::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(loaded.blocks, snap.blocks);
        assert_eq!(loaded.stats, snap.stats);
    }

    #[test]
    fn missing_file_is_an_error() {
        assert!(DeviceSnapshot::load("/nonexistent/path/image.img").is_err());
    }
}
