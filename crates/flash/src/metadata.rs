//! Out-of-band (OOB) page metadata.
//!
//! Every flash page has a spare area where the flash management layer
//! stores bookkeeping information.  Under NoFTL the DBMS itself writes and
//! interprets this metadata (paper, Figure 1: "handle Page Metadata"):
//! it records which logical page of which database object lives in the
//! physical page, plus a monotonically increasing write epoch used to
//! disambiguate stale copies after a crash and to drive hot/cold
//! statistics.

use serde::{Deserialize, Serialize};

/// Identifier of a database object (table heap, index, log, catalog...)
/// as assigned by the storage manager.  `0` is reserved for "no object".
pub type ObjectId = u32;

/// Out-of-band metadata stored alongside a flash page.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PageMetadata {
    /// The database object the page belongs to.
    pub object_id: ObjectId,
    /// Logical page number within the object.
    pub logical_page: u64,
    /// Monotonically increasing write sequence number (device-wide).
    pub epoch: u64,
    /// CRC-32 of the page payload, or `0` when the writer did not compute
    /// one.  Recovery uses it to detect *torn pages*: a program interrupted
    /// by power loss leaves a partially written payload whose CRC no longer
    /// matches, so the page is discarded on remount.
    pub checksum: u32,
}

impl PageMetadata {
    /// Metadata for a page belonging to `object_id` at `logical_page`.
    /// The epoch is assigned by the device at program time when the caller
    /// passes `epoch == 0`; callers may also supply their own epoch.
    pub fn new(object_id: ObjectId, logical_page: u64) -> Self {
        PageMetadata { object_id, logical_page, epoch: 0, checksum: 0 }
    }

    /// Metadata with an explicit epoch.
    pub fn with_epoch(object_id: ObjectId, logical_page: u64, epoch: u64) -> Self {
        PageMetadata { object_id, logical_page, epoch, checksum: 0 }
    }

    /// Stamp the CRC-32 of `payload` into the metadata (no-op for an empty
    /// payload, which stands for an all-zero page in the simulator).
    pub fn with_payload_checksum(mut self, payload: &[u8]) -> Self {
        if !payload.is_empty() {
            self.checksum = crate::crc::crc32(payload);
        }
        self
    }

    /// Verify `payload` against the stored checksum.  Returns `true` when
    /// no checksum was stored (`0`) or the payload is unavailable.
    pub fn payload_matches(&self, payload: &[u8]) -> bool {
        self.checksum == 0 || payload.is_empty() || crate::crc::crc32(payload) == self.checksum
    }

    /// Serialised size in bytes; must fit in the geometry's OOB area.
    pub const ENCODED_LEN: usize = 24;

    /// Encode into a fixed-size little-endian byte representation
    /// (object_id:4 | logical_page:8 | epoch:8 | checksum:4).
    pub fn encode(&self) -> [u8; Self::ENCODED_LEN] {
        let mut out = [0u8; Self::ENCODED_LEN];
        out[0..4].copy_from_slice(&self.object_id.to_le_bytes());
        out[4..12].copy_from_slice(&self.logical_page.to_le_bytes());
        out[12..20].copy_from_slice(&self.epoch.to_le_bytes());
        out[20..24].copy_from_slice(&self.checksum.to_le_bytes());
        out
    }

    /// Decode from the representation produced by [`PageMetadata::encode`].
    /// Returns `None` if the buffer is too short.
    pub fn decode(buf: &[u8]) -> Option<Self> {
        if buf.len() < Self::ENCODED_LEN {
            return None;
        }
        let object_id = u32::from_le_bytes(buf[0..4].try_into().ok()?);
        let logical_page = u64::from_le_bytes(buf[4..12].try_into().ok()?);
        let epoch = u64::from_le_bytes(buf[12..20].try_into().ok()?);
        let checksum = u32::from_le_bytes(buf[20..24].try_into().ok()?);
        Some(PageMetadata { object_id, logical_page, epoch, checksum })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn encode_decode_roundtrip() {
        let m = PageMetadata::with_epoch(7, 123456, 999);
        let enc = m.encode();
        assert_eq!(PageMetadata::decode(&enc), Some(m));
    }

    #[test]
    fn payload_checksum_detects_torn_pages() {
        let payload = vec![0x5Au8; 4096];
        let m = PageMetadata::new(3, 7).with_payload_checksum(&payload);
        assert!(m.checksum != 0);
        assert!(m.payload_matches(&payload));
        let mut torn = payload.clone();
        torn[2048..].fill(0);
        assert!(!m.payload_matches(&torn));
        // No checksum stored → verification is vacuous.
        assert!(PageMetadata::new(3, 7).payload_matches(&torn));
        // Empty payloads never carry a checksum.
        assert_eq!(PageMetadata::new(1, 0).with_payload_checksum(&[]).checksum, 0);
    }

    #[test]
    fn decode_short_buffer_is_none() {
        assert_eq!(PageMetadata::decode(&[0u8; 10]), None);
        assert_eq!(PageMetadata::decode(&[]), None);
    }

    // Typical OOB areas are 64-224 bytes per 4 KiB page; checked at compile
    // time so the encoding can never silently outgrow the smallest OOB.
    const _ENCODED_LEN_FITS_TYPICAL_OOB: () = assert!(PageMetadata::ENCODED_LEN <= 64);

    proptest! {
        #[test]
        fn roundtrip_any(obj in any::<u32>(), page in any::<u64>(), epoch in any::<u64>()) {
            let m = PageMetadata::with_epoch(obj, page, epoch).with_payload_checksum(&page.to_le_bytes());
            prop_assert_eq!(PageMetadata::decode(&m.encode()), Some(m));
        }
    }
}
