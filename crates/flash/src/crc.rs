//! CRC-32 (IEEE 802.3) used for page payload checksums and persistent
//! device images.
//!
//! The checksum is the integrity primitive of the crash-consistency
//! subsystem: the NoFTL storage manager stamps a payload CRC into each
//! page's OOB metadata so that a program interrupted by power loss (a
//! *torn page*) is detectable on remount, and the device image format
//! uses the same CRC to reject truncated or corrupted snapshot files.
//! The implementation is the classic reflected table-driven CRC-32 with
//! the table built at compile time, so the crate needs no external
//! dependency.

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = build_table();

/// CRC-32 (IEEE) of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn sensitive_to_any_byte_change() {
        let mut page = vec![0xA5u8; 4096];
        let base = crc32(&page);
        page[4095] ^= 0x01;
        assert_ne!(crc32(&page), base);
        page[4095] ^= 0x01;
        page[0] ^= 0x80;
        assert_ne!(crc32(&page), base);
    }
}
