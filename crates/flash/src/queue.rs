//! Command-queue submission API: explicit submit/poll/wait completion
//! handling over the native flash command set.
//!
//! The blocking methods on [`NandDevice`](crate::NandDevice) couple
//! issuing a command with consuming its result.  This module separates the
//! two, NVMe-style: a [`CommandQueue`] accepts [`FlashCommand`]s via
//! [`CommandQueue::submit`], which returns a [`CmdHandle`] immediately;
//! the outcome is retrieved later with [`CommandQueue::poll`],
//! [`CommandQueue::wait`] or [`CommandQueue::drain`].  Because the device
//! is sharded per die (see the device module docs), submissions that
//! target different dies execute without contending on any common lock —
//! a batch fanned over N dies really does proceed N-wide, in wall-clock
//! time as well as in the simulated timing model.
//!
//! The simulator is discrete-time: a command's array/channel occupancy is
//! computed eagerly at submission, so `submit` is where the per-die queue
//! of the timing model grows (visible as the queue-depth fields in
//! [`DeviceStats`](crate::DeviceStats) and the trace).  Completion
//! retrieval never blocks; `wait` is named for its role in the protocol,
//! not for thread parking.
//!
//! ```
//! use flash_sim::queue::{CommandQueue, FlashCommand};
//! use flash_sim::{DeviceBuilder, FlashGeometry, PageMetadata, SimTime};
//! use std::sync::Arc;
//!
//! let device = Arc::new(DeviceBuilder::new(FlashGeometry::small_test()).build());
//! let queue = CommandQueue::new(device.clone());
//! let data = vec![0xA5; device.geometry().page_size as usize];
//! let addr = flash_sim::PageAddr::new(flash_sim::DieId(0), 0, 0, 0);
//! let h = queue.submit(
//!     FlashCommand::Program { addr, data, meta: PageMetadata::new(1, 0) },
//!     SimTime::ZERO,
//! );
//! let completion = queue.wait(h).unwrap();
//! assert!(completion.result.is_ok());
//! ```

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::addr::{BlockAddr, PageAddr};
use crate::arbiter::IoTag;
use crate::backend::FlashBackend;
use crate::device::OpOutcome;
use crate::error::FlashError;
use crate::lockorder::{self, LockClass, TrackedGuard};
use crate::metadata::PageMetadata;
use crate::obs::QueueObs;
use crate::time::SimTime;
use crate::trace::OpKind;
use crate::Result;

/// One command of the device's native interface, in submission form.
#[derive(Debug, Clone)]
pub enum FlashCommand {
    /// `READ PAGE`: payload + OOB metadata.
    Read {
        /// Page to read.
        addr: PageAddr,
    },
    /// OOB-only metadata read (cheaper than a full page read).
    MetadataRead {
        /// Page whose OOB area to read.
        addr: PageAddr,
    },
    /// `PROGRAM PAGE` with payload and OOB metadata.
    Program {
        /// Target page (must be erased and sequential within its block).
        addr: PageAddr,
        /// Page payload (may be empty when the device stores no data).
        data: Vec<u8>,
        /// OOB metadata; a zero epoch is stamped by the device.
        meta: PageMetadata,
    },
    /// `ERASE BLOCK`.
    Erase {
        /// Block to erase.
        block: BlockAddr,
    },
    /// `COPYBACK` (die-internal page move).
    Copyback {
        /// Source page.
        src: PageAddr,
        /// Destination page (same die, erased, sequential).
        dst: PageAddr,
    },
}

impl FlashCommand {
    /// The die the command executes on (copybacks are same-die by rule;
    /// for a cross-die copyback this reports the source die and the
    /// device rejects the command at execution).
    pub fn die(&self) -> crate::addr::DieId {
        match self {
            FlashCommand::Read { addr }
            | FlashCommand::MetadataRead { addr }
            | FlashCommand::Program { addr, .. } => addr.die,
            FlashCommand::Erase { block } => block.die,
            FlashCommand::Copyback { src, .. } => src.die,
        }
    }

    /// The trace kind this command maps to.
    pub fn kind(&self) -> OpKind {
        match self {
            FlashCommand::Read { .. } => OpKind::Read,
            FlashCommand::MetadataRead { .. } => OpKind::MetadataRead,
            FlashCommand::Program { .. } => OpKind::Program,
            FlashCommand::Erase { .. } => OpKind::Erase,
            FlashCommand::Copyback { .. } => OpKind::Copyback,
        }
    }
}

/// Opaque ticket identifying a submitted command.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CmdHandle(u64);

impl CmdHandle {
    /// The raw submission sequence number (monotonic per queue).
    pub fn seq(&self) -> u64 {
        self.0
    }
}

/// Successful payload of a completed command.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CmdOutput {
    /// Page payload (reads only; empty otherwise).
    pub data: Vec<u8>,
    /// OOB metadata (reads and metadata reads; `None` otherwise or when
    /// the page's OOB area was lost to a torn operation).
    pub meta: Option<PageMetadata>,
    /// Start/completion times of the operation.
    pub outcome: OpOutcome,
}

/// The completion record of one submitted command.
#[derive(Debug, Clone)]
pub struct Completion {
    /// The handle returned at submission.
    pub handle: CmdHandle,
    /// What kind of command this was.
    pub kind: OpKind,
    /// When the command was submitted.
    pub issued_at: SimTime,
    /// The device's verdict: output on success, the flash error otherwise
    /// (power loss, bad block, NAND-rule violation, ...).
    pub result: Result<CmdOutput>,
}

impl Completion {
    /// When the command completed: the operation's completion time, or the
    /// issue time for commands that failed before occupying the die.
    pub fn completed_at(&self) -> SimTime {
        match &self.result {
            Ok(out) => out.outcome.completed_at,
            Err(_) => self.issued_at,
        }
    }
}

/// Per-die submission counters of a [`CommandQueue`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct QueueStats {
    /// Commands submitted through this queue.
    pub submitted: u64,
    /// Completions already claimed via `poll`/`wait`/`drain`.
    pub claimed: u64,
    /// Submissions per die (indexed by die id).
    pub per_die_submitted: Vec<u64>,
}

struct QueueInner {
    next: u64,
    /// Commands whose `submit` has allocated a handle but not yet posted
    /// the completion (the device is executing between the two lock
    /// sections of `submit`).
    in_flight: u64,
    /// Completions not yet claimed by `poll`/`wait`/`drain`.
    completions: HashMap<u64, Completion>,
    stats: QueueStats,
}

/// A submission queue over a [`FlashBackend`] (a single
/// [`crate::NandDevice`] or a replicated mirror of them).
///
/// The queue is cheap: it owns no threads and copies no payloads beyond
/// what the command itself carries.  Several queues may share one device;
/// each keeps its own handle space and completion set, so independent
/// clients (e.g. one per region) never synchronise on a queue lock either.
/// Commands submitted by one thread to the same die execute in submission
/// order; commands to different dies are independent.  Concurrent
/// submitters racing for the *same* die are ordered by die-lock
/// acquisition, not by handle number — as with any multi-producer
/// hardware queue, callers that need a cross-thread order on one die must
/// provide it themselves.
pub struct CommandQueue {
    device: Arc<dyn FlashBackend>,
    inner: Mutex<QueueInner>,
    /// Pre-registered metric handles (atomics-only; see `crate::obs`).
    obs: QueueObs,
}

impl std::fmt::Debug for CommandQueue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.queue_shard();
        f.debug_struct("CommandQueue")
            .field("submitted", &inner.stats.submitted)
            .field("outstanding", &(inner.completions.len() + inner.in_flight as usize))
            .finish_non_exhaustive()
    }
}

impl CommandQueue {
    /// Create a queue over `device`.
    pub fn new(device: Arc<dyn FlashBackend>) -> Self {
        let dies = device.geometry().total_dies() as usize;
        let obs = QueueObs::new(Arc::clone(device.metrics()));
        CommandQueue {
            device,
            inner: Mutex::new(QueueInner {
                next: 0,
                in_flight: 0,
                completions: HashMap::new(),
                stats: QueueStats { submitted: 0, claimed: 0, per_die_submitted: vec![0; dies] },
            }),
            obs,
        }
    }

    /// The backend underneath the queue.
    pub fn device(&self) -> &Arc<dyn FlashBackend> {
        &self.device
    }

    /// Lock the queue's submission state.  This is the sole acquisition
    /// site of the queue lock; it is never held across device execution.
    fn queue_shard(&self) -> TrackedGuard<'_, QueueInner> {
        lockorder::lock_tracked(LockClass::Queue, &self.inner)
    }

    /// Submit one command issued at `at` and return its handle.
    ///
    /// Errors (including power loss tearing an in-flight command) are not
    /// reported here — they surface in the command's [`Completion`], like
    /// a real completion-queue entry's status field.  The queue lock is
    /// *not* held while the device executes, so concurrent submitters to
    /// different dies proceed in parallel.
    pub fn submit(&self, command: FlashCommand, at: SimTime) -> CmdHandle {
        self.submit_tagged(command, at, IoTag::default())
    }

    /// [`CommandQueue::submit`] carrying an arbiter [`IoTag`]: the tag's
    /// service class feeds the per-class queue-wait histograms and, on an
    /// arbiter-enabled device, drives admission (budget deferral for
    /// `Background`, gap backfill for foreground, exemption for
    /// durability traffic).
    pub fn submit_tagged(&self, command: FlashCommand, at: SimTime, tag: IoTag) -> CmdHandle {
        let die = command.die().0 as usize;
        let kind = command.kind();
        let handle = {
            let mut inner = self.queue_shard();
            let h = CmdHandle(inner.next);
            inner.next += 1;
            inner.in_flight += 1;
            inner.stats.submitted += 1;
            if let Some(slot) = inner.stats.per_die_submitted.get_mut(die) {
                *slot += 1;
            }
            h
        };
        let result = self.execute(&command, at, tag);
        let completion = Completion { handle, kind, issued_at: at, result };
        self.obs.note_completion(
            kind,
            tag.class,
            command.die(),
            at,
            completion.result.as_ref().ok().map(|out| out.outcome.completed_at),
        );
        // analyzer:allow(lock_order) two disjoint lock sections: the handle-allocation guard above is dropped before the device executes, then the completion is posted
        let mut inner = self.queue_shard();
        inner.in_flight -= 1;
        inner.completions.insert(handle.0, completion);
        handle
    }

    /// Submit a batch of commands, all issued at `at`.  Handles come back
    /// in submission order.
    pub fn submit_batch(
        &self,
        commands: impl IntoIterator<Item = FlashCommand>,
        at: SimTime,
    ) -> Vec<CmdHandle> {
        commands.into_iter().map(|c| self.submit(c, at)).collect()
    }

    fn execute(&self, command: &FlashCommand, at: SimTime, tag: IoTag) -> Result<CmdOutput> {
        match command {
            FlashCommand::Read { addr } => {
                let (data, meta, outcome) = self.device.read_page_tagged(*addr, at, tag)?;
                Ok(CmdOutput { data, meta, outcome })
            }
            FlashCommand::MetadataRead { addr } => {
                let (meta, outcome) = self.device.read_metadata_tagged(*addr, at, tag)?;
                Ok(CmdOutput { data: Vec::new(), meta, outcome })
            }
            FlashCommand::Program { addr, data, meta } => {
                let outcome = self.device.program_page_tagged(*addr, data, *meta, at, tag)?;
                Ok(CmdOutput { data: Vec::new(), meta: None, outcome })
            }
            FlashCommand::Erase { block } => {
                let outcome = self.device.erase_block(*block, at)?;
                Ok(CmdOutput { data: Vec::new(), meta: None, outcome })
            }
            FlashCommand::Copyback { src, dst } => {
                let outcome = self.device.copyback(*src, *dst, at)?;
                Ok(CmdOutput { data: Vec::new(), meta: None, outcome })
            }
        }
    }

    /// Claim the completion of `handle` if it is ready, removing it from
    /// the queue.  Returns `None` for a handle that is unknown, already
    /// claimed, or still outstanding.
    pub fn poll(&self, handle: CmdHandle) -> Option<Completion> {
        let mut inner = self.queue_shard();
        let c = inner.completions.remove(&handle.0);
        if c.is_some() {
            inner.stats.claimed += 1;
        }
        c
    }

    /// Claim the completion of `handle`, failing on a handle that was
    /// never issued by this queue or was already claimed.
    pub fn wait(&self, handle: CmdHandle) -> Result<Completion> {
        self.poll(handle).ok_or(FlashError::UnknownHandle { handle: handle.0 })
    }

    /// Claim every posted completion, ordered by completion time (ties
    /// broken by submission order) — the natural order to fold a fan-out
    /// batch back into a single "batch done" time.
    ///
    /// A command whose `submit` call is still executing on another thread
    /// is not included (its completion is posted when that `submit`
    /// returns); check [`CommandQueue::outstanding`], which counts such
    /// in-flight commands, before treating a drain as complete.
    pub fn drain(&self) -> Vec<Completion> {
        let mut inner = self.queue_shard();
        let mut all: Vec<Completion> = inner.completions.drain().map(|(_, c)| c).collect();
        inner.stats.claimed += all.len() as u64;
        all.sort_by_key(|c| (c.completed_at(), c.handle));
        all
    }

    /// Number of commands submitted but not yet claimed: posted
    /// completions plus commands whose `submit` is still executing on
    /// another thread.
    pub fn outstanding(&self) -> usize {
        let inner = self.queue_shard();
        inner.completions.len() + inner.in_flight as usize
    }

    /// Submission counters.
    pub fn stats(&self) -> QueueStats {
        self.queue_shard().stats.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::DieId;
    use crate::geometry::FlashGeometry;
    use crate::timing::TimingModel;
    use crate::DeviceBuilder;

    fn queue() -> CommandQueue {
        let device = Arc::new(
            DeviceBuilder::new(FlashGeometry::small_test()).timing(TimingModel::mlc_2015()).build(),
        );
        CommandQueue::new(device)
    }

    fn paddr(die: u32, block: u32, page: u32) -> PageAddr {
        PageAddr::new(DieId(die), 0, block, page)
    }

    fn payload(q: &CommandQueue, b: u8) -> Vec<u8> {
        vec![b; q.device().geometry().page_size as usize]
    }

    #[test]
    fn submit_wait_roundtrip() {
        let q = queue();
        let data = payload(&q, 0x42);
        let h = q.submit(
            FlashCommand::Program {
                addr: paddr(0, 0, 0),
                data: data.clone(),
                meta: PageMetadata::new(1, 7),
            },
            SimTime::ZERO,
        );
        let c = q.wait(h).unwrap();
        assert_eq!(c.kind, OpKind::Program);
        let done = c.result.unwrap().outcome.completed_at;
        assert!(done > SimTime::ZERO);
        let h2 = q.submit(FlashCommand::Read { addr: paddr(0, 0, 0) }, done);
        let c2 = q.wait(h2).unwrap();
        let out = c2.result.unwrap();
        assert_eq!(out.data, data);
        assert_eq!(out.meta.unwrap().logical_page, 7);
        // Claiming twice fails.
        assert!(matches!(q.wait(h2), Err(FlashError::UnknownHandle { .. })));
        assert_eq!(q.outstanding(), 0);
    }

    #[test]
    fn errors_surface_in_the_completion_not_the_submit() {
        let q = queue();
        let h = q.submit(FlashCommand::Read { addr: paddr(0, 0, 0) }, SimTime::ZERO);
        let c = q.wait(h).unwrap();
        assert!(matches!(c.result, Err(FlashError::UnwrittenPage { .. })));
        assert_eq!(c.completed_at(), SimTime::ZERO, "failed op charges no time");
    }

    #[test]
    fn fanout_over_dies_completes_in_parallel() {
        let q = queue();
        // One program per die, all submitted at t=0.
        let handles = q.submit_batch(
            (0..4).map(|die| FlashCommand::Program {
                addr: paddr(die, 0, 0),
                data: vec![die as u8; 4096],
                meta: PageMetadata::new(1, die as u64),
            }),
            SimTime::ZERO,
        );
        assert_eq!(q.outstanding(), 4);
        let completions: Vec<Completion> = q.drain();
        assert_eq!(completions.len(), 4);
        // small_test has 2 dies per channel: within a channel the transfers
        // serialize, across channels everything overlaps.  The batch must
        // finish well before 4 serial programs would.
        let t = q.device().timing();
        let serial = SimTime::ZERO
            + t.transfer_time(4096)
            + t.program_array_time()
            + t.transfer_time(4096)
            + t.program_array_time();
        let batch_done = completions.last().unwrap().completed_at();
        assert!(
            batch_done < serial,
            "4-die fan-out ({batch_done}) must beat 2 serial programs ({serial})"
        );
        for c in &completions {
            assert!(c.result.is_ok());
        }
        let _ = handles;
        let s = q.stats();
        assert_eq!(s.submitted, 4);
        assert_eq!(s.claimed, 4);
        assert_eq!(s.per_die_submitted, vec![1, 1, 1, 1]);
    }

    #[test]
    fn same_die_commands_execute_in_submission_order() {
        let q = queue();
        let hs = q.submit_batch(
            (0..4).map(|p| FlashCommand::Program {
                addr: paddr(0, 0, p),
                data: vec![p as u8; 4096],
                meta: PageMetadata::new(1, p as u64),
            }),
            SimTime::ZERO,
        );
        let mut last = SimTime::ZERO;
        for h in hs {
            let done = q.wait(h).unwrap().result.unwrap().outcome.completed_at;
            assert!(done > last, "per-die FIFO order");
            last = done;
        }
        // The device saw the queue build up.
        assert_eq!(q.device().stats().queue_depth_hwm, 4);
    }

    #[test]
    fn drain_orders_by_completion_time() {
        let q = queue();
        // Erase (slow) on die 0, program (fast) on die 1, read error on die 2.
        let h_erase =
            q.submit(FlashCommand::Erase { block: BlockAddr::new(DieId(0), 0, 0) }, SimTime::ZERO);
        let h_prog = q.submit(
            FlashCommand::Program {
                addr: paddr(1, 0, 0),
                data: vec![1; 4096],
                meta: PageMetadata::new(1, 0),
            },
            SimTime::ZERO,
        );
        let h_err = q.submit(FlashCommand::MetadataRead { addr: paddr(2, 99, 0) }, SimTime::ZERO);
        let drained = q.drain();
        let order: Vec<CmdHandle> = drained.iter().map(|c| c.handle).collect();
        // The failed command "completes" at its issue time (t=0), the
        // program before the erase.
        assert_eq!(order, vec![h_err, h_prog, h_erase]);
        assert!(drained[0].result.is_err());
    }

    #[test]
    fn copyback_and_metadata_read_submit_through_the_queue() {
        let q = queue();
        let h = q.submit(
            FlashCommand::Program {
                addr: paddr(1, 0, 0),
                data: payload(&q, 9),
                meta: PageMetadata::new(3, 5),
            },
            SimTime::ZERO,
        );
        let done = q.wait(h).unwrap().result.unwrap().outcome.completed_at;
        let h = q.submit(FlashCommand::Copyback { src: paddr(1, 0, 0), dst: paddr(1, 1, 0) }, done);
        let done = q.wait(h).unwrap().result.unwrap().outcome.completed_at;
        let h = q.submit(FlashCommand::MetadataRead { addr: paddr(1, 1, 0) }, done);
        let c = q.wait(h).unwrap();
        assert_eq!(c.result.unwrap().meta.unwrap().logical_page, 5);
    }
}
