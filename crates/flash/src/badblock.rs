//! Bad-block and endurance modelling.
//!
//! Real NAND ships with a small fraction of factory-bad blocks and each
//! block tolerates only a bounded number of program/erase cycles.  Flash
//! management layers must skip bad blocks and spread erasures (wear
//! leveling); the evaluation of the paper argues that region-aware
//! placement reduces erases and therefore extends device lifetime, so the
//! simulator tracks wear faithfully.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Policy describing initial bad blocks and endurance limits.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BadBlockPolicy {
    /// Fraction of blocks that are factory-bad (typically ≤ 2 %).
    pub factory_bad_fraction: f64,
    /// Program/erase cycles after which an erase fails and the block is
    /// retired.  `u64::MAX` disables endurance failures.
    pub endurance_cycles: u64,
    /// Seed for the deterministic placement of factory-bad blocks.
    pub seed: u64,
}

impl BadBlockPolicy {
    /// No bad blocks, unlimited endurance — the default for functional tests.
    pub fn none() -> Self {
        BadBlockPolicy { factory_bad_fraction: 0.0, endurance_cycles: u64::MAX, seed: 0 }
    }

    /// Realistic MLC policy: 1 % factory-bad blocks, 3 000 P/E cycles.
    pub fn mlc() -> Self {
        BadBlockPolicy { factory_bad_fraction: 0.01, endurance_cycles: 3_000, seed: 0x0bad_b10c }
    }

    /// Decide (deterministically, given the policy seed) which block
    /// indices out of `total_blocks` are factory-bad.
    pub fn factory_bad_blocks(&self, total_blocks: u64) -> Vec<u64> {
        if self.factory_bad_fraction <= 0.0 || total_blocks == 0 {
            return Vec::new();
        }
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut bad = Vec::new();
        for idx in 0..total_blocks {
            if rng.random_range(0.0..1.0) < self.factory_bad_fraction {
                bad.push(idx);
            }
        }
        bad
    }
}

impl Default for BadBlockPolicy {
    fn default() -> Self {
        Self::none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_policy_marks_nothing_bad() {
        let p = BadBlockPolicy::none();
        assert!(p.factory_bad_blocks(10_000).is_empty());
        assert_eq!(p.endurance_cycles, u64::MAX);
    }

    #[test]
    fn mlc_policy_marks_roughly_one_percent() {
        let p = BadBlockPolicy::mlc();
        let bad = p.factory_bad_blocks(100_000);
        let frac = bad.len() as f64 / 100_000.0;
        assert!(frac > 0.005 && frac < 0.02, "got fraction {frac}");
    }

    #[test]
    fn factory_bad_blocks_are_deterministic() {
        let p = BadBlockPolicy::mlc();
        assert_eq!(p.factory_bad_blocks(5_000), p.factory_bad_blocks(5_000));
    }

    #[test]
    fn different_seeds_give_different_patterns() {
        let a = BadBlockPolicy { seed: 1, ..BadBlockPolicy::mlc() };
        let b = BadBlockPolicy { seed: 2, ..BadBlockPolicy::mlc() };
        assert_ne!(a.factory_bad_blocks(10_000), b.factory_bad_blocks(10_000));
    }

    #[test]
    fn zero_blocks_edge_case() {
        assert!(BadBlockPolicy::mlc().factory_bad_blocks(0).is_empty());
    }
}
