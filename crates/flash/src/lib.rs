//! # flash-sim — a native NAND flash device simulator
//!
//! This crate implements the *substrate* required by the NoFTL architecture
//! described in "Revisiting DBMS Space Management for Native Flash"
//! (Hardock et al., EDBT 2016): a NAND flash device exposed through its
//! **native interface** instead of a legacy block-device interface.
//!
//! The simulated device provides exactly the command set listed in the
//! paper's Figure 1:
//!
//! * `READ PAGE` — [`NandDevice::read_page`]
//! * `PROGRAM PAGE` — [`NandDevice::program_page`]
//! * `ERASE BLOCK` — [`NandDevice::erase_block`]
//! * `COPYBACK` — [`NandDevice::copyback`] (die-internal page move, no
//!   channel transfer)
//! * page metadata handling — every page carries an out-of-band
//!   [`PageMetadata`] record readable via [`NandDevice::read_metadata`]
//!
//! Every command is also available through an explicit submit/poll
//! completion protocol — see the [`queue`] module — which is how batched
//! and concurrent clients exploit the device's die-level parallelism.
//!
//! ## Time model
//!
//! The simulator is *discrete-time* and fully deterministic.  There is no
//! global event loop: every operation is issued at a caller-supplied
//! [`SimTime`] and the device returns the operation's *completion time*,
//! computed from per-die and per-channel `busy_until` timestamps plus the
//! latencies of the configured [`TimingModel`].  Queueing and parallelism
//! across channels, dies and planes therefore emerge naturally: two
//! operations issued to different dies overlap, two operations issued to
//! the same die serialize.
//!
//! ## Structural model
//!
//! ```text
//! device ── channel ── chip ── die ── plane ── block ── page (+ OOB metadata)
//! ```
//!
//! NAND programming constraints are enforced: pages inside a block must be
//! programmed sequentially, a page can only be programmed when erased
//! (out-of-place updates are mandatory), and erases operate on whole blocks
//! and wear them out.
//!
//! ## What this substitutes for
//!
//! The paper evaluates on a real native-flash board with 64 dies.  We do
//! not have that hardware, so this simulator reproduces the *behavioural*
//! properties the evaluation depends on: command latencies, channel/die
//! parallelism, sequential-programming and erase-before-write constraints,
//! copyback support, per-block wear, and complete operation statistics
//! (reads, programs, erases, copybacks, transferred bytes, busy time).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod addr;
pub mod arbiter;
pub mod backend;
pub mod badblock;
pub mod block;
pub mod crc;
pub mod device;
pub mod die;
pub mod error;
pub mod fault;
pub mod geometry;
pub mod image;
pub mod lockorder;
pub mod metadata;
pub(crate) mod obs;
pub mod queue;
pub mod sched;
pub mod stats;
pub mod time;
pub mod timing;
pub mod trace;

pub use addr::{BlockAddr, DieId, PageAddr, PlaneAddr};
pub use arbiter::{ArbiterConfig, IoTag, ServiceClass};
pub use backend::FlashBackend;
pub use badblock::BadBlockPolicy;
pub use block::{BlockInfo, BlockSnapshot, BlockState, PageState};
pub use crc::crc32;
pub use device::{DeviceBuilder, DeviceSnapshot, DieLoad, NandDevice, OpOutcome};
pub use error::FlashError;
pub use fault::DeviceLossInjector;
pub use geometry::FlashGeometry;
pub use lockorder::{LockClass, TrackedGuard};
pub use metadata::PageMetadata;
pub use queue::{CmdHandle, CmdOutput, CommandQueue, Completion, FlashCommand, QueueStats};
pub use stats::{DeviceStats, DieStats, UtilizationSummary, WearSummary};
pub use time::{Duration, SimTime};
pub use timing::TimingModel;
pub use trace::{FlashOp, OpKind, TraceBuffer};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, FlashError>;

#[cfg(test)]
mod lib_tests {
    use super::*;

    #[test]
    fn public_reexports_are_usable() {
        let geo = FlashGeometry::small_test();
        let dev = DeviceBuilder::new(geo).build();
        assert!(dev.geometry().total_pages() > 0);
    }
}
