//! Erase-block and page state tracking.
//!
//! A block is the unit of erasure.  Pages inside a block must be programmed
//! strictly in order and can only be programmed once per erase cycle; the
//! block therefore behaves like an append-only log segment, which is what
//! forces out-of-place updates at the layers above.

use serde::{Deserialize, Serialize};

use crate::metadata::PageMetadata;

/// Lifecycle state of a single flash page.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PageState {
    /// Erased and programmable.
    Free,
    /// Programmed and holding live data.
    Valid,
    /// Programmed but superseded by a newer out-of-place write;
    /// space is reclaimed by erasing the block.
    Invalid,
}

/// Lifecycle state of an erase block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BlockState {
    /// Fully erased; no page programmed yet.
    Free,
    /// Some pages programmed, more space available (the "write frontier"
    /// block of a die/plane).
    Open,
    /// All pages programmed.
    Full,
    /// Factory-bad or retired due to wear; unusable.
    Bad,
}

/// Per-block bookkeeping kept by the simulated device.
#[derive(Debug, Clone)]
pub(crate) struct Block {
    pub state: BlockState,
    /// Index of the next page that may be programmed (sequential rule).
    pub write_ptr: u32,
    /// Number of completed program/erase cycles.
    pub erase_count: u64,
    /// Per-page states.
    pub pages: Vec<PageState>,
    /// Per-page OOB metadata (None until programmed).
    pub meta: Vec<Option<PageMetadata>>,
    /// Page payloads, lazily allocated on first program after an erase.
    pub data: Option<Vec<u8>>,
    /// Number of pages currently in `Valid` state.
    pub valid_pages: u32,
}

impl Block {
    pub(crate) fn new(pages_per_block: u32) -> Self {
        Block {
            state: BlockState::Free,
            write_ptr: 0,
            erase_count: 0,
            pages: vec![PageState::Free; pages_per_block as usize],
            meta: vec![None; pages_per_block as usize],
            data: None,
            valid_pages: 0,
        }
    }

    /// Reset the block to the erased state (does not touch `erase_count`;
    /// the caller increments it so failed erases can be modelled).
    pub(crate) fn reset_erased(&mut self) {
        self.state = BlockState::Free;
        self.write_ptr = 0;
        for p in &mut self.pages {
            *p = PageState::Free;
        }
        for m in &mut self.meta {
            *m = None;
        }
        self.data = None;
        self.valid_pages = 0;
    }

    /// Number of invalid (reclaimable) pages.
    pub(crate) fn invalid_pages(&self) -> u32 {
        self.pages.iter().filter(|p| **p == PageState::Invalid).count() as u32
    }

    /// Number of still-free pages.
    pub(crate) fn free_pages(&self) -> u32 {
        (self.pages.len() as u32).saturating_sub(self.write_ptr)
    }
}

/// Full image of one erase block, as captured by `NandDevice::snapshot`
/// and restored by `NandDevice::from_snapshot`.  Unlike [`BlockInfo`] it
/// carries the page payloads and OOB metadata, so a device rebuilt from a
/// snapshot serves byte-identical reads — the basis of the power-cycle
/// ("reboot") simulation in the crash-consistency tests.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockSnapshot {
    /// Lifecycle state.
    pub state: BlockState,
    /// Next programmable page index.
    pub write_ptr: u32,
    /// Completed erase cycles (wear).
    pub erase_count: u64,
    /// Per-page lifecycle states.
    pub pages: Vec<PageState>,
    /// Per-page OOB metadata.
    pub meta: Vec<Option<PageMetadata>>,
    /// Page payloads (`None` if never programmed since the last erase or
    /// the device does not store data).
    pub data: Option<Vec<u8>>,
    /// Pages currently in `Valid` state.
    pub valid_pages: u32,
}

impl Block {
    pub(crate) fn to_snapshot(&self) -> BlockSnapshot {
        BlockSnapshot {
            state: self.state,
            write_ptr: self.write_ptr,
            erase_count: self.erase_count,
            pages: self.pages.clone(),
            meta: self.meta.clone(),
            data: self.data.clone(),
            valid_pages: self.valid_pages,
        }
    }

    pub(crate) fn from_snapshot(s: &BlockSnapshot) -> Self {
        Block {
            state: s.state,
            write_ptr: s.write_ptr,
            erase_count: s.erase_count,
            pages: s.pages.clone(),
            meta: s.meta.clone(),
            data: s.data.clone(),
            valid_pages: s.valid_pages,
        }
    }
}

/// Read-only snapshot of a block's state, exposed to flash management
/// layers (the NoFTL storage manager and the FTL) for victim selection,
/// wear leveling and free-space accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlockInfo {
    /// Lifecycle state.
    pub state: BlockState,
    /// Next programmable page index.
    pub write_ptr: u32,
    /// Completed erase cycles.
    pub erase_count: u64,
    /// Pages holding live data.
    pub valid_pages: u32,
    /// Pages holding superseded data.
    pub invalid_pages: u32,
    /// Pages still erased.
    pub free_pages: u32,
}

impl BlockInfo {
    pub(crate) fn from_block(b: &Block) -> Self {
        BlockInfo {
            state: b.state,
            write_ptr: b.write_ptr,
            erase_count: b.erase_count,
            valid_pages: b.valid_pages,
            invalid_pages: b.invalid_pages(),
            free_pages: b.free_pages(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_block_is_free() {
        let b = Block::new(8);
        assert_eq!(b.state, BlockState::Free);
        assert_eq!(b.write_ptr, 0);
        assert_eq!(b.valid_pages, 0);
        assert_eq!(b.free_pages(), 8);
        assert_eq!(b.invalid_pages(), 0);
        assert!(b.data.is_none());
    }

    #[test]
    fn reset_clears_everything_but_wear() {
        let mut b = Block::new(4);
        b.state = BlockState::Full;
        b.write_ptr = 4;
        b.erase_count = 3;
        b.pages = vec![PageState::Valid, PageState::Invalid, PageState::Valid, PageState::Valid];
        b.valid_pages = 3;
        b.data = Some(vec![1u8; 4 * 16]);
        b.reset_erased();
        assert_eq!(b.state, BlockState::Free);
        assert_eq!(b.write_ptr, 0);
        assert_eq!(b.valid_pages, 0);
        assert_eq!(b.erase_count, 3, "erase_count is managed by the caller");
        assert!(b.pages.iter().all(|p| *p == PageState::Free));
        assert!(b.data.is_none());
    }

    #[test]
    fn block_info_snapshot_counts() {
        let mut b = Block::new(4);
        b.pages = vec![PageState::Valid, PageState::Invalid, PageState::Invalid, PageState::Free];
        b.write_ptr = 3;
        b.valid_pages = 1;
        b.state = BlockState::Open;
        let info = BlockInfo::from_block(&b);
        assert_eq!(info.valid_pages, 1);
        assert_eq!(info.invalid_pages, 2);
        assert_eq!(info.free_pages, 1);
        assert_eq!(info.state, BlockState::Open);
    }
}
