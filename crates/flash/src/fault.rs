//! Fault injection above the single-device level.
//!
//! The power-cut injector (`NandDevice::arm_power_cut`) models the loss of
//! *power* — every device in the box dies at the same instant and comes
//! back after a reboot.  [`DeviceLossInjector`] models the loss of a
//! *device*: one child of a replicated set disappears at a scheduled
//! simulated instant (hot-unplug, firmware death, a pulled cable) while
//! its siblings keep serving.  The mirror layer consults the injector at
//! submit time and fails the lost child's share of the fan-out with
//! [`crate::FlashError::DeviceLost`], driving its health machine to
//! `Faulted` without perturbing the device simulation itself.
//!
//! The injector is deterministic (a fixed schedule, no wall clock) and
//! lock-free: slots are atomics, so consulting it adds no lock the
//! sanitizer or analyzer would need to order.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::time::SimTime;

/// Sentinel for "no loss scheduled".
const NONE: u64 = u64::MAX;

/// A deterministic device-loss schedule over the children of a mirror.
///
/// ```
/// use flash_sim::fault::DeviceLossInjector;
/// use flash_sim::SimTime;
///
/// let inj = DeviceLossInjector::new(2);
/// inj.arm(1, SimTime(500));
/// assert!(!inj.is_lost(1, SimTime(499)));
/// assert!(inj.is_lost(1, SimTime(500)));
/// assert!(!inj.is_lost(0, SimTime(500)));
/// inj.clear(1); // the device was reattached or replaced
/// assert!(!inj.is_lost(1, SimTime(501)));
/// ```
#[derive(Debug)]
pub struct DeviceLossInjector {
    /// Per-child loss instants in nanoseconds (`NONE` = healthy forever).
    slots: Vec<AtomicU64>,
}

impl DeviceLossInjector {
    /// An injector for a set of `children` devices, none scheduled to fail.
    pub fn new(children: usize) -> Self {
        DeviceLossInjector { slots: (0..children).map(|_| AtomicU64::new(NONE)).collect() }
    }

    /// Number of child slots.
    pub fn children(&self) -> usize {
        self.slots.len()
    }

    /// Schedule child `child` to disappear at `at` (operations issued at
    /// or after that instant fail).  Re-arming overwrites any previous
    /// schedule; out-of-range children are ignored.
    pub fn arm(&self, child: usize, at: SimTime) {
        if let Some(slot) = self.slots.get(child) {
            slot.store(at.as_nanos(), Ordering::Release);
        }
    }

    /// Cancel the schedule of `child` (the device was reattached or a
    /// replacement took its slot).
    pub fn clear(&self, child: usize) {
        if let Some(slot) = self.slots.get(child) {
            slot.store(NONE, Ordering::Release);
        }
    }

    /// The scheduled loss instant of `child`, if any.
    pub fn loss_at(&self, child: usize) -> Option<SimTime> {
        let v = self.slots.get(child)?.load(Ordering::Acquire);
        (v != NONE).then_some(SimTime(v))
    }

    /// Is `child` lost for an operation issued at `at`?
    pub fn is_lost(&self, child: usize, at: SimTime) -> bool {
        self.loss_at(child).is_some_and(|loss| at >= loss)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unarmed_children_never_fail() {
        let inj = DeviceLossInjector::new(3);
        assert_eq!(inj.children(), 3);
        for c in 0..3 {
            assert!(!inj.is_lost(c, SimTime(u64::MAX - 1)));
            assert_eq!(inj.loss_at(c), None);
        }
    }

    #[test]
    fn losses_are_per_child_and_edge_inclusive() {
        let inj = DeviceLossInjector::new(2);
        inj.arm(0, SimTime(100));
        assert!(!inj.is_lost(0, SimTime(99)));
        assert!(inj.is_lost(0, SimTime(100)));
        assert!(!inj.is_lost(1, SimTime(100)));
        assert_eq!(inj.loss_at(0), Some(SimTime(100)));
    }

    #[test]
    fn clear_and_rearm() {
        let inj = DeviceLossInjector::new(1);
        inj.arm(0, SimTime::ZERO);
        assert!(inj.is_lost(0, SimTime::ZERO));
        inj.clear(0);
        assert!(!inj.is_lost(0, SimTime::ZERO));
        inj.arm(0, SimTime(7));
        assert!(inj.is_lost(0, SimTime(9)));
    }

    #[test]
    fn out_of_range_children_are_ignored() {
        let inj = DeviceLossInjector::new(1);
        inj.arm(5, SimTime::ZERO);
        inj.clear(5);
        assert_eq!(inj.loss_at(5), None);
        assert!(!inj.is_lost(5, SimTime::ZERO));
    }
}
