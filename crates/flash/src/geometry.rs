//! Physical NAND flash geometry.
//!
//! The geometry describes how the raw flash of the device is organised:
//!
//! ```text
//! device ── channels ── chips ── dies ── planes ── blocks ── pages
//! ```
//!
//! The paper's evaluation device exposes 64 dies spread over several
//! channels; [`FlashGeometry::edbt_paper`] reproduces that layout with a
//! capacity scaled to simulation-friendly sizes.

use serde::{Deserialize, Serialize};

use crate::addr::{BlockAddr, DieId, PageAddr};

/// Static description of the flash device layout.
///
/// All counts are per parent unit (e.g. `dies_per_chip` is the number of
/// dies on each chip).  The geometry is immutable once the device is built.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlashGeometry {
    /// Number of independent data channels connecting the controller to the
    /// flash packages.  Transfers on different channels proceed in parallel.
    pub channels: u32,
    /// Number of flash chips (packages) attached to each channel.
    pub chips_per_channel: u32,
    /// Number of dies inside each chip.  Dies operate independently.
    pub dies_per_chip: u32,
    /// Number of planes per die.  Planes share the die's command logic but
    /// hold independent block arrays.
    pub planes_per_die: u32,
    /// Number of erase blocks per plane.
    pub blocks_per_plane: u32,
    /// Number of pages per erase block.
    pub pages_per_block: u32,
    /// User-visible page size in bytes (the host I/O unit; 4 KiB in the paper).
    pub page_size: u32,
    /// Out-of-band (spare) area per page in bytes, used for page metadata.
    pub oob_size: u32,
}

impl FlashGeometry {
    /// Geometry mirroring the paper's evaluation device: 64 dies over
    /// 4 channels, 4 KiB pages.  Block/plane counts are chosen so that the
    /// device is large enough for a small TPC-C database while remaining
    /// fast to simulate.
    pub fn edbt_paper() -> Self {
        FlashGeometry {
            channels: 4,
            chips_per_channel: 4,
            dies_per_chip: 4,
            planes_per_die: 2,
            blocks_per_plane: 512,
            pages_per_block: 64,
            page_size: 4096,
            oob_size: 128,
        }
    }

    /// A tiny geometry for unit tests: 2 channels × 1 chip × 2 dies ×
    /// 1 plane × 16 blocks × 8 pages.
    pub fn small_test() -> Self {
        FlashGeometry {
            channels: 2,
            chips_per_channel: 1,
            dies_per_chip: 2,
            planes_per_die: 1,
            blocks_per_plane: 16,
            pages_per_block: 8,
            page_size: 4096,
            oob_size: 64,
        }
    }

    /// A mid-size geometry used by examples: 8 dies, 2 planes each.
    pub fn example() -> Self {
        FlashGeometry {
            channels: 2,
            chips_per_channel: 2,
            dies_per_chip: 2,
            planes_per_die: 2,
            blocks_per_plane: 128,
            pages_per_block: 32,
            page_size: 4096,
            oob_size: 64,
        }
    }

    /// Total number of dies in the device.
    #[inline]
    pub fn total_dies(&self) -> u32 {
        self.channels * self.chips_per_channel * self.dies_per_chip
    }

    /// Number of dies attached to each channel.
    #[inline]
    pub fn dies_per_channel(&self) -> u32 {
        self.chips_per_channel * self.dies_per_chip
    }

    /// Total number of planes in the device.
    #[inline]
    pub fn total_planes(&self) -> u32 {
        self.total_dies() * self.planes_per_die
    }

    /// Number of blocks in one die.
    #[inline]
    pub fn blocks_per_die(&self) -> u32 {
        self.planes_per_die * self.blocks_per_plane
    }

    /// Number of pages in one die.
    #[inline]
    pub fn pages_per_die(&self) -> u64 {
        self.blocks_per_die() as u64 * self.pages_per_block as u64
    }

    /// Total number of erase blocks in the device.
    #[inline]
    pub fn total_blocks(&self) -> u64 {
        self.total_dies() as u64 * self.blocks_per_die() as u64
    }

    /// Total number of pages in the device.
    #[inline]
    pub fn total_pages(&self) -> u64 {
        self.total_blocks() * self.pages_per_block as u64
    }

    /// Raw capacity of the device in bytes (excluding OOB areas).
    #[inline]
    pub fn capacity_bytes(&self) -> u64 {
        self.total_pages() * self.page_size as u64
    }

    /// Capacity of a single die in bytes.
    #[inline]
    pub fn die_capacity_bytes(&self) -> u64 {
        self.pages_per_die() * self.page_size as u64
    }

    /// Capacity of a single erase block in bytes.
    #[inline]
    pub fn block_capacity_bytes(&self) -> u64 {
        self.pages_per_block as u64 * self.page_size as u64
    }

    /// The channel a given die is attached to.
    ///
    /// Dies are numbered channel-major: die `d` lives on channel
    /// `d / dies_per_channel()`.  This keeps dies of the same chip on the
    /// same channel, as on real hardware.
    #[inline]
    pub fn channel_of_die(&self, die: DieId) -> u32 {
        die.0 / self.dies_per_channel()
    }

    /// The chip (global index) a given die belongs to.
    #[inline]
    pub fn chip_of_die(&self, die: DieId) -> u32 {
        die.0 / self.dies_per_chip
    }

    /// Iterate over all die ids of the device.
    pub fn dies(&self) -> impl Iterator<Item = DieId> {
        (0..self.total_dies()).map(DieId)
    }

    /// Validate that a block address lies inside the device.
    pub fn contains_block(&self, b: BlockAddr) -> bool {
        b.die.0 < self.total_dies()
            && b.plane < self.planes_per_die
            && b.block < self.blocks_per_plane
    }

    /// Validate that a page address lies inside the device.
    pub fn contains_page(&self, p: PageAddr) -> bool {
        self.contains_block(p.block()) && p.page < self.pages_per_block
    }

    /// Perform a basic sanity check of the geometry (all counts non-zero,
    /// page size a power of two).  Returns a human-readable error string on
    /// failure; used by the device builder.
    pub fn validate(&self) -> std::result::Result<(), String> {
        if self.channels == 0
            || self.chips_per_channel == 0
            || self.dies_per_chip == 0
            || self.planes_per_die == 0
            || self.blocks_per_plane == 0
            || self.pages_per_block == 0
        {
            return Err("all geometry counts must be non-zero".to_string());
        }
        if self.page_size == 0 || !self.page_size.is_power_of_two() {
            return Err(format!("page_size must be a power of two, got {}", self.page_size));
        }
        if self.page_size < 512 {
            return Err(format!("page_size must be at least 512 bytes, got {}", self.page_size));
        }
        Ok(())
    }
}

impl Default for FlashGeometry {
    fn default() -> Self {
        Self::edbt_paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_geometry_has_64_dies() {
        let g = FlashGeometry::edbt_paper();
        assert_eq!(g.total_dies(), 64);
        assert_eq!(g.dies_per_channel(), 16);
        assert!(g.validate().is_ok());
        // 64 dies * 2 planes * 512 blocks * 64 pages * 4 KiB = 16 GiB
        assert_eq!(g.capacity_bytes(), 16 * 1024 * 1024 * 1024);
    }

    #[test]
    fn small_test_geometry_counts() {
        let g = FlashGeometry::small_test();
        assert_eq!(g.total_dies(), 4);
        assert_eq!(g.blocks_per_die(), 16);
        assert_eq!(g.pages_per_die(), 128);
        assert_eq!(g.total_pages(), 512);
        assert_eq!(g.block_capacity_bytes(), 8 * 4096);
    }

    #[test]
    fn channel_assignment_is_channel_major() {
        let g = FlashGeometry::small_test();
        // 4 dies, 2 channels, 2 dies per channel.
        assert_eq!(g.channel_of_die(DieId(0)), 0);
        assert_eq!(g.channel_of_die(DieId(1)), 0);
        assert_eq!(g.channel_of_die(DieId(2)), 1);
        assert_eq!(g.channel_of_die(DieId(3)), 1);
    }

    #[test]
    fn bounds_checks() {
        let g = FlashGeometry::small_test();
        let ok = PageAddr::new(DieId(3), 0, 15, 7);
        let bad_die = PageAddr::new(DieId(4), 0, 0, 0);
        let bad_block = PageAddr::new(DieId(0), 0, 16, 0);
        let bad_page = PageAddr::new(DieId(0), 0, 0, 8);
        assert!(g.contains_page(ok));
        assert!(!g.contains_page(bad_die));
        assert!(!g.contains_page(bad_block));
        assert!(!g.contains_page(bad_page));
    }

    #[test]
    fn validation_rejects_bad_geometries() {
        let mut g = FlashGeometry::small_test();
        g.page_size = 1000;
        assert!(g.validate().is_err());
        g.page_size = 4096;
        g.channels = 0;
        assert!(g.validate().is_err());
        g = FlashGeometry::small_test();
        g.page_size = 256;
        assert!(g.validate().is_err());
    }

    #[test]
    fn dies_iterator_covers_all_dies() {
        let g = FlashGeometry::example();
        let dies: Vec<_> = g.dies().collect();
        assert_eq!(dies.len() as u32, g.total_dies());
        assert_eq!(dies[0], DieId(0));
        assert_eq!(dies.last().copied(), Some(DieId(g.total_dies() - 1)));
    }
}
