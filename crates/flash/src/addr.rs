//! Physical addressing types.
//!
//! Under NoFTL the DBMS addresses flash *physically*: a page is identified
//! by its (die, plane, block, page) coordinates.  These types are small
//! `Copy` newtypes so they can be passed around freely and stored in
//! mapping tables.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Global die index (0-based across the whole device).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct DieId(pub u32);

impl fmt::Display for DieId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "die{}", self.0)
    }
}

/// A plane within a specific die.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PlaneAddr {
    /// Owning die.
    pub die: DieId,
    /// Plane index within the die.
    pub plane: u32,
}

impl PlaneAddr {
    /// Create a plane address.
    pub fn new(die: DieId, plane: u32) -> Self {
        PlaneAddr { die, plane }
    }
}

impl fmt::Display for PlaneAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/p{}", self.die, self.plane)
    }
}

/// Physical address of an erase block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct BlockAddr {
    /// Owning die.
    pub die: DieId,
    /// Plane index within the die.
    pub plane: u32,
    /// Block index within the plane.
    pub block: u32,
}

impl BlockAddr {
    /// Create a block address.
    pub fn new(die: DieId, plane: u32, block: u32) -> Self {
        BlockAddr { die, plane, block }
    }

    /// The plane this block belongs to.
    pub fn plane_addr(&self) -> PlaneAddr {
        PlaneAddr::new(self.die, self.plane)
    }

    /// The address of a page inside this block.
    pub fn page(&self, page: u32) -> PageAddr {
        PageAddr { die: self.die, plane: self.plane, block: self.block, page }
    }
}

impl fmt::Display for BlockAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/p{}/b{}", self.die, self.plane, self.block)
    }
}

/// Physical address of a flash page (the unit of read/program).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PageAddr {
    /// Owning die.
    pub die: DieId,
    /// Plane index within the die.
    pub plane: u32,
    /// Block index within the plane.
    pub block: u32,
    /// Page index within the block.
    pub page: u32,
}

impl PageAddr {
    /// Create a page address from its components.
    pub fn new(die: DieId, plane: u32, block: u32, page: u32) -> Self {
        PageAddr { die, plane, block, page }
    }

    /// The block this page belongs to.
    pub fn block(&self) -> BlockAddr {
        BlockAddr { die: self.die, plane: self.plane, block: self.block }
    }

    /// The plane this page belongs to.
    pub fn plane_addr(&self) -> PlaneAddr {
        PlaneAddr::new(self.die, self.plane)
    }

    /// Pack the address into a single `u64` (useful for compact mapping
    /// tables).  Layout: die(16) | plane(8) | block(24) | page(16).
    pub fn pack(&self) -> u64 {
        debug_assert!(self.die.0 < (1 << 16));
        debug_assert!(self.plane < (1 << 8));
        debug_assert!(self.block < (1 << 24));
        debug_assert!(self.page < (1 << 16));
        ((self.die.0 as u64) << 48)
            | ((self.plane as u64) << 40)
            | ((self.block as u64) << 16)
            | (self.page as u64)
    }

    /// Inverse of [`PageAddr::pack`].
    pub fn unpack(v: u64) -> Self {
        PageAddr {
            die: DieId(((v >> 48) & 0xFFFF) as u32),
            plane: ((v >> 40) & 0xFF) as u32,
            block: ((v >> 16) & 0xFF_FFFF) as u32,
            page: (v & 0xFFFF) as u32,
        }
    }
}

impl fmt::Display for PageAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/p{}/b{}/pg{}", self.die, self.plane, self.block, self.page)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn display_formats() {
        let p = PageAddr::new(DieId(3), 1, 42, 7);
        assert_eq!(p.to_string(), "die3/p1/b42/pg7");
        assert_eq!(p.block().to_string(), "die3/p1/b42");
        assert_eq!(p.plane_addr().to_string(), "die3/p1");
    }

    #[test]
    fn block_page_roundtrip() {
        let b = BlockAddr::new(DieId(2), 0, 10);
        let p = b.page(5);
        assert_eq!(p.block(), b);
        assert_eq!(p.page, 5);
    }

    #[test]
    fn pack_unpack_roundtrip_basic() {
        let p = PageAddr::new(DieId(63), 1, 511, 63);
        assert_eq!(PageAddr::unpack(p.pack()), p);
    }

    proptest! {
        #[test]
        fn pack_unpack_roundtrip(die in 0u32..u16::MAX as u32,
                                 plane in 0u32..256,
                                 block in 0u32..(1 << 24),
                                 page in 0u32..u16::MAX as u32) {
            let p = PageAddr::new(DieId(die), plane, block, page);
            prop_assert_eq!(PageAddr::unpack(p.pack()), p);
        }

        #[test]
        fn pack_is_injective(a_die in 0u32..64, a_block in 0u32..512, a_page in 0u32..64,
                             b_die in 0u32..64, b_block in 0u32..512, b_page in 0u32..64) {
            let a = PageAddr::new(DieId(a_die), 0, a_block, a_page);
            let b = PageAddr::new(DieId(b_die), 0, b_block, b_page);
            prop_assert_eq!(a == b, a.pack() == b.pack());
        }
    }
}
