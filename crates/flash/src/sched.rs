//! Composition of die and channel occupancy into end-to-end operation
//! latencies.
//!
//! The scheduler implements the resource model used by the device:
//!
//! * **Read**: the die performs an array read (tR), then the channel
//!   transfers the page to the controller.  The die is released after the
//!   array read; the channel is busy only during the transfer.
//! * **Program**: the channel first transfers the page to the die's page
//!   register, then the die programs the array (tPROG).  The channel is
//!   released after the transfer.
//! * **Erase**: die-only.
//! * **Copyback**: die-only (internal read + program, no channel traffic) —
//!   this is exactly why GC under NoFTL prefers copybacks.
//! * **Metadata read**: array read + a tiny OOB transfer.

use crate::die::{Channel, ChannelPolicy, Die};
use crate::time::{Duration, SimTime};
use crate::timing::TimingModel;

/// Outcome of scheduling one operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Scheduled {
    /// When the operation actually started on the die.
    pub start: SimTime,
    /// When the result is available to the host (end-to-end completion).
    pub complete: SimTime,
    /// Die queue depth at issue time (1 = the die was idle).
    pub depth: u32,
    /// Whether the channel transfer landed in a backfilled idle gap
    /// (arbiter-enabled devices only; always false under
    /// [`ChannelPolicy::Direct`]).
    pub backfilled: bool,
}

impl Scheduled {
    /// End-to-end latency relative to the issue time.
    pub fn latency(&self, issued_at: SimTime) -> Duration {
        self.complete - issued_at
    }
}

/// Schedule a page read: array read on the die, then transfer on the channel.
pub(crate) fn schedule_read(
    die: &mut Die,
    channel: &mut Channel,
    timing: &TimingModel,
    at: SimTime,
    bytes: u32,
    policy: ChannelPolicy,
) -> Scheduled {
    let (start, array_done, depth) = die.reserve(at, timing.read_array_time());
    let xfer = timing.transfer_time(bytes);
    let (_, complete, backfilled) = channel.reserve_with(policy, array_done, xfer, bytes as u64);
    Scheduled { start, complete, depth, backfilled }
}

/// Schedule a page program: transfer on the channel, then array program on
/// the die.
pub(crate) fn schedule_program(
    die: &mut Die,
    channel: &mut Channel,
    timing: &TimingModel,
    at: SimTime,
    bytes: u32,
    policy: ChannelPolicy,
) -> Scheduled {
    let xfer = timing.transfer_time(bytes);
    let (start, xfer_done, backfilled) = channel.reserve_with(policy, at, xfer, bytes as u64);
    let (_, complete, depth) = die.reserve(xfer_done, timing.program_array_time());
    Scheduled { start, complete, depth, backfilled }
}

/// Schedule a block erase (die-only).
pub(crate) fn schedule_erase(die: &mut Die, timing: &TimingModel, at: SimTime) -> Scheduled {
    let (start, complete, depth) = die.reserve(at, timing.erase_time());
    Scheduled { start, complete, depth, backfilled: false }
}

/// Schedule a copyback (die-only internal move).
pub(crate) fn schedule_copyback(die: &mut Die, timing: &TimingModel, at: SimTime) -> Scheduled {
    let (start, complete, depth) = die.reserve(at, timing.copyback_time());
    Scheduled { start, complete, depth, backfilled: false }
}

/// Schedule an OOB metadata read: array read plus a small transfer.
pub(crate) fn schedule_metadata_read(
    die: &mut Die,
    channel: &mut Channel,
    timing: &TimingModel,
    at: SimTime,
    oob_bytes: u32,
    policy: ChannelPolicy,
) -> Scheduled {
    let (start, array_done, depth) = die.reserve(at, timing.read_array_time());
    let (_, complete, backfilled) =
        channel.reserve_with(policy, array_done, timing.oob_transfer_time(), oob_bytes as u64);
    Scheduled { start, complete, depth, backfilled }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn die() -> Die {
        Die::new(1, 4, 8)
    }

    #[test]
    fn read_latency_is_array_plus_transfer() {
        let mut d = die();
        let mut ch = Channel::default();
        let t = TimingModel::mlc_2015();
        let s = schedule_read(&mut d, &mut ch, &t, SimTime::ZERO, 4096, ChannelPolicy::Direct);
        let expected = t.read_array_time().as_us_f64() + t.transfer_time(4096).as_us_f64();
        assert!((s.latency(SimTime::ZERO).as_us_f64() - expected).abs() < 1e-6);
    }

    #[test]
    fn program_latency_is_transfer_plus_array() {
        let mut d = die();
        let mut ch = Channel::default();
        let t = TimingModel::mlc_2015();
        let s = schedule_program(&mut d, &mut ch, &t, SimTime::ZERO, 4096, ChannelPolicy::Direct);
        let expected = t.program_array_time().as_us_f64() + t.transfer_time(4096).as_us_f64();
        assert!((s.latency(SimTime::ZERO).as_us_f64() - expected).abs() < 1e-6);
    }

    #[test]
    fn copyback_avoids_the_channel() {
        let mut d = die();
        let ch = Channel::default();
        let t = TimingModel::mlc_2015();
        let s = schedule_copyback(&mut d, &t, SimTime::ZERO);
        assert_eq!(ch.bytes_transferred, 0);
        assert!(
            s.latency(SimTime::ZERO) < {
                // read + transfer out + transfer in + program (external move)
                t.read_array_time()
                    + t.transfer_time(4096)
                    + t.transfer_time(4096)
                    + t.program_array_time()
            }
        );
    }

    #[test]
    fn reads_to_different_dies_overlap() {
        let mut d1 = die();
        let mut d2 = die();
        let mut ch1 = Channel::default();
        let mut ch2 = Channel::default();
        let t = TimingModel::mlc_2015();
        let a = schedule_read(&mut d1, &mut ch1, &t, SimTime::ZERO, 4096, ChannelPolicy::Direct);
        let b = schedule_read(&mut d2, &mut ch2, &t, SimTime::ZERO, 4096, ChannelPolicy::Direct);
        // Same completion time: full parallelism across dies and channels.
        assert_eq!(a.complete, b.complete);
    }

    #[test]
    fn reads_to_same_die_serialize() {
        let mut d = die();
        let mut ch = Channel::default();
        let t = TimingModel::mlc_2015();
        let a = schedule_read(&mut d, &mut ch, &t, SimTime::ZERO, 4096, ChannelPolicy::Direct);
        let b = schedule_read(&mut d, &mut ch, &t, SimTime::ZERO, 4096, ChannelPolicy::Direct);
        assert!(b.complete > a.complete);
        // The array phases serialize, transfers pipeline after them.
        assert!(b.start >= a.start + t.read_array_time());
    }

    #[test]
    fn dies_sharing_a_channel_contend_on_transfers() {
        let mut d1 = die();
        let mut d2 = die();
        let mut shared = Channel::default();
        let t = TimingModel::mlc_2015();
        let a = schedule_read(&mut d1, &mut shared, &t, SimTime::ZERO, 4096, ChannelPolicy::Direct);
        let b = schedule_read(&mut d2, &mut shared, &t, SimTime::ZERO, 4096, ChannelPolicy::Direct);
        // Array reads overlap (different dies) but the second transfer must
        // queue behind the first on the shared channel.
        assert_eq!(b.complete, a.complete + t.transfer_time(4096));
    }

    #[test]
    fn erase_is_die_only() {
        let mut d = die();
        let t = TimingModel::mlc_2015();
        let s = schedule_erase(&mut d, &t, SimTime::from_us(7));
        assert_eq!(s.start, SimTime::from_us(7));
        assert_eq!(s.complete, SimTime::from_us(7) + t.erase_time());
    }

    #[test]
    fn metadata_read_is_cheaper_than_full_read() {
        let mut d1 = die();
        let mut d2 = die();
        let mut ch1 = Channel::default();
        let mut ch2 = Channel::default();
        let t = TimingModel::mlc_2015();
        let full = schedule_read(&mut d1, &mut ch1, &t, SimTime::ZERO, 4096, ChannelPolicy::Direct);
        let meta =
            schedule_metadata_read(&mut d2, &mut ch2, &t, SimTime::ZERO, 64, ChannelPolicy::Direct);
        assert!(meta.complete < full.complete);
    }
}
