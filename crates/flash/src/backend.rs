//! The flash backend abstraction the storage manager runs on.
//!
//! `NoFtl` and the [`crate::queue::CommandQueue`] were written against a
//! single [`NandDevice`]; the replication layer (`noftl-mirror`) fronts
//! *several* devices behind the same call surface.  [`FlashBackend`]
//! captures that surface as a trait: the full timed native-flash command
//! set (read/program/erase/copyback with caller-supplied issue times and
//! device-returned completion times), the page/block state probes the
//! region manager's GC and mount scan need, and the load/metrics probes
//! placement policies and the observability layer read.
//!
//! Two hooks exist purely for replicated backends and default to no-ops
//! on a plain device:
//!
//! * [`FlashBackend::replication_blob`] — opaque state the checkpoint
//!   path persists alongside the region directory (the mirror's health +
//!   dirty-segment map);
//! * [`FlashBackend::restore_replication`] — handed back at mount so a
//!   rebooted mirror knows which children are stale.  A missing or torn
//!   blob must degrade to "rebuild everything", never silent staleness.

use std::sync::Arc;

use noftl_obs::MetricsRegistry;

use crate::addr::{BlockAddr, DieId, PageAddr};
use crate::arbiter::IoTag;
use crate::block::{BlockInfo, PageState};
use crate::device::{DieLoad, NandDevice, OpOutcome};
use crate::geometry::FlashGeometry;
use crate::metadata::PageMetadata;
use crate::stats::{DeviceStats, DieStats, WearSummary};
use crate::time::SimTime;
use crate::timing::TimingModel;
use crate::Result;

/// The native-flash command surface the storage manager programs against.
///
/// Implemented by [`NandDevice`] (one simulated chip array) and by
/// `noftl_mirror::MirrorDevice` (a replicated set of them).  All timed
/// operations take the caller's simulated clock and return the operation's
/// completion; state probes are untimed.
pub trait FlashBackend: Send + Sync {
    /// Device geometry (identical across mirror children by construction).
    fn geometry(&self) -> &FlashGeometry;

    /// Timing model in use.
    fn timing(&self) -> &TimingModel;

    /// The metrics registry shared by the whole stack above this backend.
    fn metrics(&self) -> &Arc<MetricsRegistry>;

    /// Read a page: payload (empty if the device stores none), OOB
    /// metadata, and the operation outcome with its completion time.
    fn read_page(
        &self,
        addr: PageAddr,
        at: SimTime,
    ) -> Result<(Vec<u8>, Option<PageMetadata>, OpOutcome)>;

    /// [`Self::read_page`] carrying an arbiter [`IoTag`].  Backends
    /// without an arbiter (the default) ignore the tag.
    fn read_page_tagged(
        &self,
        addr: PageAddr,
        at: SimTime,
        tag: IoTag,
    ) -> Result<(Vec<u8>, Option<PageMetadata>, OpOutcome)> {
        let _ = tag;
        self.read_page(addr, at)
    }

    /// Read only the OOB metadata of a page (the mount scan's workhorse).
    fn read_metadata(
        &self,
        addr: PageAddr,
        at: SimTime,
    ) -> Result<(Option<PageMetadata>, OpOutcome)>;

    /// [`Self::read_metadata`] carrying an arbiter [`IoTag`] (ignored by
    /// default).
    fn read_metadata_tagged(
        &self,
        addr: PageAddr,
        at: SimTime,
        tag: IoTag,
    ) -> Result<(Option<PageMetadata>, OpOutcome)> {
        let _ = tag;
        self.read_metadata(addr, at)
    }

    /// Program a page (strictly sequential within its block).
    fn program_page(
        &self,
        addr: PageAddr,
        data: &[u8],
        meta: PageMetadata,
        at: SimTime,
    ) -> Result<OpOutcome>;

    /// [`Self::program_page`] carrying an arbiter [`IoTag`] (ignored by
    /// default).
    fn program_page_tagged(
        &self,
        addr: PageAddr,
        data: &[u8],
        meta: PageMetadata,
        at: SimTime,
        tag: IoTag,
    ) -> Result<OpOutcome> {
        let _ = tag;
        self.program_page(addr, data, meta, at)
    }

    /// Erase a block.
    fn erase_block(&self, addr: BlockAddr, at: SimTime) -> Result<OpOutcome>;

    /// On-die copyback of a valid page.
    fn copyback(&self, src: PageAddr, dst: PageAddr, at: SimTime) -> Result<OpOutcome>;

    /// Mark a page invalid (untimed state transition).
    fn mark_invalid(&self, addr: PageAddr) -> Result<()>;

    /// Permanently retire a block.
    fn retire_block(&self, addr: BlockAddr) -> Result<()>;

    /// Snapshot of one block's state.
    fn block_info(&self, addr: BlockAddr) -> Result<BlockInfo>;

    /// State of a single page.
    fn page_state(&self, addr: PageAddr) -> Result<PageState>;

    /// Aggregate statistics (summed over mirror children).
    fn stats(&self) -> DeviceStats;

    /// Per-die statistics.
    fn die_stats(&self) -> Vec<DieStats>;

    /// Wear summary over the backend's blocks.
    fn wear_summary(&self) -> WearSummary;

    /// Latest completion time over the whole backend.
    fn quiesce_time(&self) -> SimTime;

    /// When a die becomes idle given the operations issued so far.
    fn die_busy_until(&self, die: DieId) -> SimTime;

    /// Instantaneous load snapshot of one die as of `at`.
    fn die_load(&self, die: DieId, at: SimTime) -> DieLoad;

    /// Load snapshots of every die as of `at`, indexed by die id.
    fn die_loads(&self, at: SimTime) -> Vec<DieLoad>;

    /// Current device-wide write epoch (checkpoint watermark).
    fn current_epoch(&self) -> u64;

    /// Whether page payloads are stored (and can be read back).
    fn stores_data(&self) -> bool;

    /// Has this die ever been programmed or erased?  `NoFtl::mount` skips
    /// the full OOB scan of untouched dies.
    fn die_touched(&self, die: DieId) -> bool;

    /// Downcast hook for callers that need the concrete backend — e.g.
    /// crash harnesses snapshotting a [`NandDevice`] or arming its
    /// power-cut injector through an `Arc<dyn FlashBackend>` handle.
    fn as_any(&self) -> &dyn std::any::Any;

    /// Opaque replication state for the checkpoint path to persist, or
    /// `None` for unreplicated backends.
    fn replication_blob(&self) -> Option<Vec<u8>> {
        None
    }

    /// Restore replication state persisted by [`Self::replication_blob`].
    /// `blob` is `None` when the mounted checkpoint predates replication
    /// or no checkpoint exists; implementations must treat that (and any
    /// undecodable blob) as "every non-source child may be stale".
    /// Returns the completion time of any scanning the restore performed.
    fn restore_replication(&self, blob: Option<&[u8]>, at: SimTime) -> Result<SimTime> {
        let _ = blob;
        Ok(at)
    }
}

impl FlashBackend for NandDevice {
    fn geometry(&self) -> &FlashGeometry {
        NandDevice::geometry(self)
    }

    fn timing(&self) -> &TimingModel {
        NandDevice::timing(self)
    }

    fn metrics(&self) -> &Arc<MetricsRegistry> {
        NandDevice::metrics(self)
    }

    fn read_page(
        &self,
        addr: PageAddr,
        at: SimTime,
    ) -> Result<(Vec<u8>, Option<PageMetadata>, OpOutcome)> {
        NandDevice::read_page(self, addr, at)
    }

    fn read_page_tagged(
        &self,
        addr: PageAddr,
        at: SimTime,
        tag: IoTag,
    ) -> Result<(Vec<u8>, Option<PageMetadata>, OpOutcome)> {
        NandDevice::read_page_tagged(self, addr, at, tag)
    }

    fn read_metadata(
        &self,
        addr: PageAddr,
        at: SimTime,
    ) -> Result<(Option<PageMetadata>, OpOutcome)> {
        NandDevice::read_metadata(self, addr, at)
    }

    fn read_metadata_tagged(
        &self,
        addr: PageAddr,
        at: SimTime,
        tag: IoTag,
    ) -> Result<(Option<PageMetadata>, OpOutcome)> {
        NandDevice::read_metadata_tagged(self, addr, at, tag)
    }

    fn program_page(
        &self,
        addr: PageAddr,
        data: &[u8],
        meta: PageMetadata,
        at: SimTime,
    ) -> Result<OpOutcome> {
        NandDevice::program_page(self, addr, data, meta, at)
    }

    fn program_page_tagged(
        &self,
        addr: PageAddr,
        data: &[u8],
        meta: PageMetadata,
        at: SimTime,
        tag: IoTag,
    ) -> Result<OpOutcome> {
        NandDevice::program_page_tagged(self, addr, data, meta, at, tag)
    }

    fn erase_block(&self, addr: BlockAddr, at: SimTime) -> Result<OpOutcome> {
        NandDevice::erase_block(self, addr, at)
    }

    fn copyback(&self, src: PageAddr, dst: PageAddr, at: SimTime) -> Result<OpOutcome> {
        NandDevice::copyback(self, src, dst, at)
    }

    fn mark_invalid(&self, addr: PageAddr) -> Result<()> {
        NandDevice::mark_invalid(self, addr)
    }

    fn retire_block(&self, addr: BlockAddr) -> Result<()> {
        NandDevice::retire_block(self, addr)
    }

    fn block_info(&self, addr: BlockAddr) -> Result<BlockInfo> {
        NandDevice::block_info(self, addr)
    }

    fn page_state(&self, addr: PageAddr) -> Result<PageState> {
        NandDevice::page_state(self, addr)
    }

    fn stats(&self) -> DeviceStats {
        NandDevice::stats(self)
    }

    fn die_stats(&self) -> Vec<DieStats> {
        NandDevice::die_stats(self)
    }

    fn wear_summary(&self) -> WearSummary {
        NandDevice::wear_summary(self)
    }

    fn quiesce_time(&self) -> SimTime {
        NandDevice::quiesce_time(self)
    }

    fn die_busy_until(&self, die: DieId) -> SimTime {
        NandDevice::die_busy_until(self, die)
    }

    fn die_load(&self, die: DieId, at: SimTime) -> DieLoad {
        NandDevice::die_load(self, die, at)
    }

    fn die_loads(&self, at: SimTime) -> Vec<DieLoad> {
        NandDevice::die_loads(self, at)
    }

    fn current_epoch(&self) -> u64 {
        NandDevice::current_epoch(self)
    }

    fn stores_data(&self) -> bool {
        NandDevice::stores_data(self)
    }

    fn die_touched(&self, die: DieId) -> bool {
        NandDevice::die_touched(self, die)
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceBuilder;

    #[test]
    fn nand_device_is_a_backend() {
        let device: Arc<dyn FlashBackend> =
            Arc::new(DeviceBuilder::new(FlashGeometry::small_test()).build());
        assert_eq!(device.geometry().page_size, 4096);
        assert!(device.stores_data());
        assert_eq!(device.quiesce_time(), SimTime::ZERO);
        // Plain devices have no replication state and accept any blob.
        assert!(device.replication_blob().is_none());
        assert_eq!(
            device.restore_replication(Some(b"junk"), SimTime::ZERO).unwrap(),
            SimTime::ZERO
        );
        assert!(!device.die_touched(DieId(0)));
        let addr = PageAddr::new(DieId(0), 0, 0, 0);
        let data = vec![7u8; 4096];
        device.program_page(addr, &data, PageMetadata::new(1, 0), SimTime::ZERO).unwrap();
        assert!(device.die_touched(DieId(0)));
        assert_eq!(device.read_page(addr, device.quiesce_time()).unwrap().0, data);
    }
}
