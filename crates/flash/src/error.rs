//! Error types for native flash operations.

use crate::addr::{BlockAddr, PageAddr};
use crate::time::SimTime;
use std::fmt;

/// Errors returned by the native flash interface.
///
/// Most of these correspond to violations of NAND programming rules that a
/// correct flash management layer (an FTL or the NoFTL storage manager)
/// must never trigger; they are therefore also the primary safety net of
/// the test suite.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FlashError {
    /// The address does not exist in the device geometry.
    OutOfBounds {
        /// Human-readable description of the offending address.
        addr: String,
    },
    /// Attempt to program a page that is not in the erased state
    /// (in-place updates are impossible on NAND flash).
    PageNotErased {
        /// The page that was targeted.
        addr: PageAddr,
    },
    /// Pages within a block must be programmed strictly sequentially.
    NonSequentialProgram {
        /// The page that was targeted.
        addr: PageAddr,
        /// The page index that must be programmed next.
        expected_next: u32,
    },
    /// Attempt to read a page that has never been programmed since the
    /// last erase of its block.
    UnwrittenPage {
        /// The page that was targeted.
        addr: PageAddr,
    },
    /// The block has been marked bad (factory-bad or worn out) and cannot
    /// be used.
    BadBlock {
        /// The bad block.
        addr: BlockAddr,
    },
    /// The block exceeded its program/erase endurance and the erase failed.
    WornOut {
        /// The worn-out block.
        addr: BlockAddr,
        /// Erase count at the time of failure.
        erase_count: u64,
    },
    /// Copyback source and destination must be on the same die (and, when
    /// `strict_copyback_plane` is enabled, on the same plane).
    CopybackCrossDie {
        /// Source page.
        src: PageAddr,
        /// Destination page.
        dst: PageAddr,
    },
    /// The data buffer length does not match the device page size.
    BadPageSize {
        /// Expected page size in bytes.
        expected: u32,
        /// Length of the supplied buffer.
        got: usize,
    },
    /// A simulated transient read failure (bit errors beyond ECC).
    ReadFailure {
        /// The page that failed.
        addr: PageAddr,
    },
    /// A simulated program failure; the block should be retired.
    ProgramFailure {
        /// The page that failed.
        addr: PageAddr,
    },
    /// A simulated power cut: the device lost power at `at` and rejects
    /// every operation issued at or after that instant (operations still in
    /// flight at `at` are torn — see `NandDevice::arm_power_cut`).
    PowerLoss {
        /// The simulated instant at which power was lost.
        at: SimTime,
    },
    /// A whole simulated device disappeared (hot-unplug injected through
    /// `fault::DeviceLossInjector`): every operation issued to it at or
    /// after `at` is rejected until the device is reattached or replaced.
    DeviceLost {
        /// Index of the lost device within its mirror (0 standalone).
        child: usize,
        /// The simulated instant at which the device disappeared.
        at: SimTime,
    },
    /// A replicated operation found no healthy child to serve it.
    NoHealthyChild {
        /// The simulated instant of the failed operation.
        at: SimTime,
    },
    /// A mirror could not be assembled or driven (too few children,
    /// mismatched geometries, an illegal health transition, ...).
    MirrorConfig {
        /// Human-readable description.
        message: String,
    },
    /// A persistent device image could not be written, read or decoded.
    Image {
        /// Human-readable description.
        message: String,
    },
    /// A command-queue completion was requested for a handle this queue
    /// never issued, or whose completion was already claimed.
    UnknownHandle {
        /// The raw handle sequence number.
        handle: u64,
    },
}

impl fmt::Display for FlashError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlashError::OutOfBounds { addr } => write!(f, "address out of bounds: {addr}"),
            FlashError::PageNotErased { addr } => {
                write!(f, "program to non-erased page {addr} (in-place update attempted)")
            }
            FlashError::NonSequentialProgram { addr, expected_next } => write!(
                f,
                "non-sequential program to {addr}: next programmable page index is {expected_next}"
            ),
            FlashError::UnwrittenPage { addr } => write!(f, "read of unwritten page {addr}"),
            FlashError::BadBlock { addr } => write!(f, "operation on bad block {addr}"),
            FlashError::WornOut { addr, erase_count } => {
                write!(f, "block {addr} worn out after {erase_count} erase cycles")
            }
            FlashError::CopybackCrossDie { src, dst } => {
                write!(f, "copyback must stay within one die: {src} -> {dst}")
            }
            FlashError::BadPageSize { expected, got } => {
                write!(f, "bad page buffer size: expected {expected} bytes, got {got}")
            }
            FlashError::ReadFailure { addr } => write!(f, "uncorrectable read error at {addr}"),
            FlashError::ProgramFailure { addr } => write!(f, "program failure at {addr}"),
            FlashError::PowerLoss { at } => {
                write!(f, "power lost at t={} ns; device requires reboot", at.as_nanos())
            }
            FlashError::DeviceLost { child, at } => {
                write!(f, "device (mirror child {child}) lost at t={} ns", at.as_nanos())
            }
            FlashError::NoHealthyChild { at } => {
                write!(f, "no healthy mirror child available at t={} ns", at.as_nanos())
            }
            FlashError::MirrorConfig { message } => write!(f, "mirror error: {message}"),
            FlashError::Image { message } => write!(f, "device image error: {message}"),
            FlashError::UnknownHandle { handle } => {
                write!(f, "unknown or already-claimed command handle #{handle}")
            }
        }
    }
}

impl std::error::Error for FlashError {}

impl FlashError {
    /// Convenience constructor for out-of-bounds errors.
    pub fn oob(addr: impl fmt::Display) -> Self {
        FlashError::OutOfBounds { addr: addr.to_string() }
    }

    /// True if the error reports a simulated power loss (the device must be
    /// rebooted via a snapshot before it accepts further operations).
    pub fn is_power_loss(&self) -> bool {
        matches!(self, FlashError::PowerLoss { .. })
    }

    /// True if the error reports the loss of a whole device (the mirror
    /// layer faults the child and degrades instead of failing the I/O).
    pub fn is_device_loss(&self) -> bool {
        matches!(self, FlashError::DeviceLost { .. })
    }

    /// True if the error indicates a permanently unusable block.
    pub fn is_permanent(&self) -> bool {
        matches!(
            self,
            FlashError::BadBlock { .. }
                | FlashError::WornOut { .. }
                | FlashError::ProgramFailure { .. }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::DieId;

    #[test]
    fn display_messages_mention_addresses() {
        let p = PageAddr::new(DieId(1), 0, 2, 3);
        let msg = FlashError::PageNotErased { addr: p }.to_string();
        assert!(msg.contains("die1/p0/b2/pg3"));
        let msg = FlashError::NonSequentialProgram { addr: p, expected_next: 1 }.to_string();
        assert!(msg.contains("next programmable page index is 1"));
    }

    #[test]
    fn permanence_classification() {
        let b = BlockAddr::new(DieId(0), 0, 0);
        assert!(FlashError::BadBlock { addr: b }.is_permanent());
        assert!(FlashError::WornOut { addr: b, erase_count: 10 }.is_permanent());
        assert!(!FlashError::UnwrittenPage { addr: b.page(0) }.is_permanent());
        assert!(!FlashError::oob("x").is_permanent());
    }
}
