//! Runtime lock-order sanitizer for the workspace's shard locks.
//!
//! The repository's documented lock hierarchy is a single total order:
//!
//! ```text
//! manager → pending-io → mirror → mirror-range → queue → arbiter → die(id) → channel(id) → shared
//! ```
//!
//! with ascending ids inside the `die`/`channel` classes.  Every shard-lock
//! acquisition in `crates/flash` and `crates/core` goes through one choke
//! point per lock class ([`lock_tracked`] behind `die_shard`,
//! `channel_shard`, `shared_shard`, `queue_shard`, `lock_inner`,
//! `lock_pending_io`), so in debug builds each acquisition is recorded on a
//! thread-local held-lock stack and checked against the order *before* the
//! thread blocks on the mutex: a would-be deadlock panics with a message
//! naming both locks instead of hanging the test suite.
//!
//! In release builds [`LockToken`] is a zero-sized type with no `Drop`
//! impl and [`acquire`] compiles down to nothing — the sanitizer adds zero
//! overhead to the benchmarked hot path.
//!
//! The static companion of this module is the `noftl-analyzer` crate,
//! whose lock-order rule checks the same total order on the acquisition
//! sites at lint time; this module validates the model dynamically on
//! every tier-1 and crash-harness run.
//!
//! ```
//! use flash_sim::lockorder::{acquire, LockClass};
//!
//! // Ascending acquisitions are fine; tokens release on drop.
//! let die = acquire(LockClass::Die(0));
//! let chan = acquire(LockClass::Channel(0));
//! let shared = acquire(LockClass::Shared);
//! drop((shared, chan, die));
//! ```

use std::fmt;
use std::ops::{Deref, DerefMut};

use parking_lot::{Mutex, MutexGuard};

/// The lock classes of the workspace, in their documented acquisition
/// order.  The derived `Ord` **is** the lock order: a lock may only be
/// acquired while every currently-held lock compares strictly smaller.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LockClass {
    /// `noftl-core`'s manager state (`NoFtl::inner`).
    Manager,
    /// `noftl-core`'s pending-I/O completion map.
    PendingIo,
    /// `noftl-mirror`'s replica state (health machine + segment maps).
    /// Sits above `Queue` because the mirror fans out to its children's
    /// command queues while holding it.
    Mirror,
    /// `noftl-mirror`'s write-vs-rebuild range locks.
    MirrorRange,
    /// The command queue's submission state (`CommandQueue::inner`).
    Queue,
    /// The device's I/O-arbiter admission state (token buckets).  Sits
    /// between `Queue` and the die shards: admission is decided before
    /// any die or channel lock is taken.
    Arbiter,
    /// A per-die device shard, ordered by die id.
    Die(u32),
    /// A per-channel device shard, ordered by channel id.
    Channel(u32),
    /// The device's thin shared section (aggregate stats + trace).
    Shared,
}

impl fmt::Display for LockClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LockClass::Manager => write!(f, "manager"),
            LockClass::PendingIo => write!(f, "pending-io"),
            LockClass::Mirror => write!(f, "mirror"),
            LockClass::MirrorRange => write!(f, "mirror-range"),
            LockClass::Queue => write!(f, "queue"),
            LockClass::Arbiter => write!(f, "arbiter"),
            LockClass::Die(id) => write!(f, "die({id})"),
            LockClass::Channel(id) => write!(f, "channel({id})"),
            LockClass::Shared => write!(f, "shared"),
        }
    }
}

#[cfg(debug_assertions)]
thread_local! {
    /// The lock classes held by this thread, in acquisition order.
    static HELD: std::cell::RefCell<Vec<LockClass>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// Proof of a recorded lock acquisition.
///
/// In debug builds the token carries its [`LockClass`] and pops it from
/// the thread-local held stack on drop; in release builds it is a
/// zero-sized type with no `Drop` impl.
#[must_use = "dropping the token immediately unrecords the acquisition"]
pub struct LockToken {
    #[cfg(debug_assertions)]
    class: LockClass,
}

/// Record the acquisition of `class` on this thread's held-lock stack,
/// panicking if it violates the documented order.
///
/// The check runs *before* the caller blocks on the mutex (see
/// [`lock_tracked`]), so an out-of-order acquisition that could deadlock
/// panics deterministically instead of hanging.
///
/// # Panics
/// In debug builds, panics when `class` is already held by this thread
/// (recursive acquisition) or does not compare strictly greater than
/// every held lock (out-of-order acquisition).  Release builds never
/// panic — the function is a no-op.
#[inline]
pub fn acquire(class: LockClass) -> LockToken {
    #[cfg(debug_assertions)]
    {
        HELD.with(|held| {
            let held = held.borrow();
            for &h in held.iter() {
                if h == class {
                    // analyzer:allow(panic_freedom) the sanitizer's entire purpose is to panic on a violation; debug builds only
                    panic!(
                        "lock-order violation: recursive acquisition of {class} \
                         (already held by this thread)"
                    );
                }
                if class < h {
                    // analyzer:allow(panic_freedom) the sanitizer's entire purpose is to panic on a violation; debug builds only
                    panic!(
                        "lock-order violation: acquiring {class} while holding {h}; \
                         the documented order is \
                         manager -> pending-io -> mirror -> mirror-range -> queue \
                         -> arbiter -> die -> channel -> shared, \
                         ascending ids within a class"
                    );
                }
            }
        });
        HELD.with(|held| held.borrow_mut().push(class));
        LockToken { class }
    }
    #[cfg(not(debug_assertions))]
    {
        let _ = class;
        LockToken {}
    }
}

#[cfg(debug_assertions)]
impl Drop for LockToken {
    fn drop(&mut self) {
        HELD.with(|held| {
            let mut held = held.borrow_mut();
            // Guards are not always released in LIFO order (e.g. a caller
            // may drop a die guard before a later-acquired shared guard),
            // so remove by search rather than popping the top.
            if let Some(pos) = held.iter().rposition(|&c| c == self.class) {
                held.remove(pos);
            }
        });
    }
}

/// Number of locks the current thread holds (always 0 in release builds,
/// where nothing is recorded).  Exposed for tests.
pub fn held_depth() -> usize {
    #[cfg(debug_assertions)]
    {
        HELD.with(|held| held.borrow().len())
    }
    #[cfg(not(debug_assertions))]
    {
        0
    }
}

/// A [`MutexGuard`] bundled with its [`LockToken`]: dropping the guard
/// releases the mutex first, then unrecords the acquisition.
pub struct TrackedGuard<'a, T: ?Sized> {
    guard: MutexGuard<'a, T>,
    _token: LockToken,
}

impl<T: ?Sized> Deref for TrackedGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: ?Sized> DerefMut for TrackedGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for TrackedGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.guard.fmt(f)
    }
}

/// Acquire `mutex` as lock class `class`: the order check and the held
/// stack recording happen **before** blocking on the mutex, so a
/// would-be deadlock panics (debug builds) instead of hanging.
#[inline]
pub fn lock_tracked<'a, T: ?Sized>(class: LockClass, mutex: &'a Mutex<T>) -> TrackedGuard<'a, T> {
    let token = acquire(class);
    TrackedGuard { guard: mutex.lock(), _token: token }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_classes_order_matches_documentation() {
        assert!(LockClass::Manager < LockClass::PendingIo);
        assert!(LockClass::PendingIo < LockClass::Mirror);
        assert!(LockClass::Mirror < LockClass::MirrorRange);
        assert!(LockClass::MirrorRange < LockClass::Queue);
        assert!(LockClass::Queue < LockClass::Arbiter);
        assert!(LockClass::Arbiter < LockClass::Die(0));
        assert!(LockClass::Die(7) < LockClass::Channel(0));
        assert!(LockClass::Channel(3) < LockClass::Shared);
        assert!(LockClass::Die(1) < LockClass::Die(2));
        assert!(LockClass::Channel(0) < LockClass::Channel(1));
    }

    #[cfg(debug_assertions)]
    mod debug_build {
        use super::*;

        #[test]
        fn ascending_acquisitions_are_recorded_and_released() {
            assert_eq!(held_depth(), 0);
            let a = acquire(LockClass::Die(0));
            let b = acquire(LockClass::Channel(0));
            let c = acquire(LockClass::Shared);
            assert_eq!(held_depth(), 3);
            // Non-LIFO release must unrecord correctly too.
            drop(b);
            assert_eq!(held_depth(), 2);
            drop((a, c));
            assert_eq!(held_depth(), 0);
        }

        #[test]
        #[should_panic(expected = "lock-order violation")]
        fn channel_before_die_panics() {
            let _chan = acquire(LockClass::Channel(0));
            let _die = acquire(LockClass::Die(0));
        }

        #[test]
        #[should_panic(expected = "recursive acquisition")]
        fn recursive_acquisition_panics() {
            let _a = acquire(LockClass::Shared);
            let _b = acquire(LockClass::Shared);
        }

        #[test]
        #[should_panic(expected = "lock-order violation")]
        fn descending_die_ids_panic() {
            let _hi = acquire(LockClass::Die(3));
            let _lo = acquire(LockClass::Die(1));
        }

        #[test]
        fn manager_may_nest_device_shards() {
            let _m = acquire(LockClass::Manager);
            let _p = acquire(LockClass::PendingIo);
            let _q = acquire(LockClass::Queue);
            let _d = acquire(LockClass::Die(0));
            assert_eq!(held_depth(), 4);
        }

        #[test]
        fn mirror_nests_between_pending_io_and_child_queues() {
            // The replication layer's acquisition path: manager state, the
            // mirror's own health/segment state, a rebuild range lock, then
            // a child device's command queue.
            let _m = acquire(LockClass::Manager);
            let _mi = acquire(LockClass::Mirror);
            let _r = acquire(LockClass::MirrorRange);
            let _q = acquire(LockClass::Queue);
            assert_eq!(held_depth(), 4);
        }

        #[test]
        #[should_panic(expected = "lock-order violation")]
        fn queue_before_mirror_panics() {
            let _q = acquire(LockClass::Queue);
            let _m = acquire(LockClass::Mirror);
        }

        #[test]
        fn tracked_guard_releases_mutex_before_unrecording() {
            let m = Mutex::new(5u32);
            {
                let mut g = lock_tracked(LockClass::Shared, &m);
                *g += 1;
                assert_eq!(held_depth(), 1);
            }
            assert_eq!(held_depth(), 0);
            assert_eq!(*m.lock(), 6);
        }
    }

    #[cfg(not(debug_assertions))]
    mod release_build {
        use super::*;

        #[test]
        fn sanitizer_is_a_zero_cost_no_op() {
            // Zero-sized token, nothing recorded, and out-of-order
            // acquisition does not panic: the release hot path pays
            // nothing for the sanitizer.
            assert_eq!(std::mem::size_of::<LockToken>(), 0);
            let _chan = acquire(LockClass::Channel(0));
            let _die = acquire(LockClass::Die(0));
            assert_eq!(held_depth(), 0);
        }
    }
}
