//! Die and plane state.
//!
//! A die is the unit of command parallelism: it executes one array
//! operation (read, program, erase, copyback) at a time, tracked by a
//! `busy_until` timestamp.  Planes within a die share this command logic
//! but hold independent block arrays.

use std::collections::VecDeque;

use crate::block::Block;
use crate::time::{Duration, SimTime};

/// One plane: an independent array of erase blocks.
#[derive(Debug)]
pub(crate) struct Plane {
    pub blocks: Vec<Block>,
}

impl Plane {
    pub(crate) fn new(blocks_per_plane: u32, pages_per_block: u32) -> Self {
        Plane { blocks: (0..blocks_per_plane).map(|_| Block::new(pages_per_block)).collect() }
    }
}

/// One die: a set of planes plus the timing/occupancy state used by the
/// scheduler.
#[derive(Debug)]
pub(crate) struct Die {
    pub planes: Vec<Plane>,
    /// The die is executing an array operation until this instant.
    pub busy_until: SimTime,
    /// Total time the die has spent executing array operations.
    pub busy_time: Duration,
    /// Total array operations executed (reads + programs + erases + copybacks).
    pub ops: u64,
    /// Completion times of operations still in flight (in simulated time)
    /// relative to the most recent issue; completion times are monotone
    /// because a die executes one array operation at a time.
    pub inflight: VecDeque<SimTime>,
    /// Deepest the die's command queue has ever been (including the
    /// operation being issued).
    pub queue_depth_hwm: u32,
}

impl Die {
    pub(crate) fn new(planes_per_die: u32, blocks_per_plane: u32, pages_per_block: u32) -> Self {
        Die {
            planes: (0..planes_per_die)
                .map(|_| Plane::new(blocks_per_plane, pages_per_block))
                .collect(),
            busy_until: SimTime::ZERO,
            busy_time: Duration::ZERO,
            ops: 0,
            inflight: VecDeque::new(),
            queue_depth_hwm: 0,
        }
    }

    /// Number of operations still executing (or queued) on this die as of
    /// `at`: the in-flight completion times later than `at`.  A pure
    /// observation — nothing is pruned, so load snapshots never perturb
    /// the timing state.
    pub(crate) fn pending_at(&self, at: SimTime) -> u32 {
        self.inflight.iter().filter(|done| **done > at).count() as u32
    }

    /// Reserve the die for an array operation of length `dur` starting no
    /// earlier than `at`.  Returns `(start, end, depth)` of the operation,
    /// where `depth` is the die's queue depth at issue time (1 = the die
    /// was idle, N = this operation queued behind N-1 others).
    pub(crate) fn reserve(&mut self, at: SimTime, dur: Duration) -> (SimTime, SimTime, u32) {
        let start = at.max(self.busy_until);
        let end = start + dur;
        self.busy_until = end;
        self.busy_time += dur;
        self.ops += 1;
        while self.inflight.front().is_some_and(|done| *done <= at) {
            self.inflight.pop_front();
        }
        self.inflight.push_back(end);
        let depth = self.inflight.len() as u32;
        self.queue_depth_hwm = self.queue_depth_hwm.max(depth);
        (start, end, depth)
    }
}

/// How a transfer claims channel time (decided by the device's arbiter).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ChannelPolicy {
    /// Plain append at `busy_until` — the arbiter-off path, byte-identical
    /// to pre-arbiter scheduling (no gaps recorded or consumed).
    Direct,
    /// Foreground/exempt traffic on an arbiter-enabled device: claim a
    /// recorded idle gap if one fits, otherwise append.
    Backfill,
    /// Budget-deferred background traffic: append, recording the idle gap
    /// the deferral opens so foreground transfers can backfill it.
    Append,
}

/// Upper bound on remembered idle gaps per channel (oldest pruned first).
const MAX_GAPS: usize = 32;

/// Channel occupancy state: the bus shared by all dies of a channel for
/// data transfers between controller and page registers.
#[derive(Debug, Default)]
pub(crate) struct Channel {
    pub busy_until: SimTime,
    pub busy_time: Duration,
    pub bytes_transferred: u64,
    /// Idle windows `(start, end)` deliberately opened by deferred
    /// background transfers, in recording order.  Only populated on
    /// arbiter-enabled devices; always empty under [`ChannelPolicy::Direct`].
    gaps: Vec<(SimTime, SimTime)>,
}

impl Channel {
    /// Reserve the channel for a transfer of length `dur` starting no
    /// earlier than `at`.  Returns `(start, end)`.
    pub(crate) fn reserve(&mut self, at: SimTime, dur: Duration, bytes: u64) -> (SimTime, SimTime) {
        let start = at.max(self.busy_until);
        let end = start + dur;
        self.busy_until = end;
        self.busy_time += dur;
        self.bytes_transferred += bytes;
        (start, end)
    }

    /// Reserve under an arbiter policy.  Returns `(start, end, backfilled)`;
    /// `backfilled` is true when the transfer landed inside a recorded gap
    /// instead of extending `busy_until`.
    pub(crate) fn reserve_with(
        &mut self,
        policy: ChannelPolicy,
        at: SimTime,
        dur: Duration,
        bytes: u64,
    ) -> (SimTime, SimTime, bool) {
        match policy {
            ChannelPolicy::Direct => {
                let (start, end) = self.reserve(at, dur, bytes);
                (start, end, false)
            }
            ChannelPolicy::Backfill => {
                // Gaps ending by `at` simply never match first-fit below.
                // They are NOT pruned here: with eager execution a tenant
                // running far ahead in simulated time issues its transfers
                // before (in call order) a neighbor's sim-earlier ones, and
                // pruning by this op's `at` would destroy exactly the gaps
                // the neighbor's foreground traffic needs.  FIFO eviction
                // at recording time bounds the list instead.
                if let Some(i) = self.gaps.iter().position(|(gs, ge)| (*gs).max(at) + dur <= *ge) {
                    let (gs, ge) = self.gaps.remove(i);
                    let start = gs.max(at);
                    let end = start + dur;
                    // Keep the unused halves of the gap available.
                    if end < ge {
                        self.gaps.insert(i, (end, ge));
                    }
                    if start > gs {
                        self.gaps.insert(i, (gs, start));
                    }
                    self.busy_time += dur;
                    self.bytes_transferred += bytes;
                    (start, end, true)
                } else {
                    // Appending past an idle window opens a gap exactly
                    // like a deferred background append does — record it
                    // so sim-earlier foreground transfers (issued later in
                    // call order by a lagging tenant) can still use it.
                    if at > self.busy_until {
                        if self.gaps.len() == MAX_GAPS {
                            self.gaps.remove(0);
                        }
                        self.gaps.push((self.busy_until, at));
                    }
                    let (start, end) = self.reserve(at, dur, bytes);
                    (start, end, false)
                }
            }
            ChannelPolicy::Append => {
                if at > self.busy_until {
                    if self.gaps.len() == MAX_GAPS {
                        self.gaps.remove(0);
                    }
                    self.gaps.push((self.busy_until, at));
                }
                let (start, end) = self.reserve(at, dur, bytes);
                (start, end, false)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn die_reserve_serializes_operations() {
        let mut die = Die::new(1, 4, 8);
        let (s1, e1, d1) = die.reserve(SimTime::from_us(0), Duration::from_us(100));
        assert_eq!(s1, SimTime::ZERO);
        assert_eq!(e1, SimTime::from_us(100));
        assert_eq!(d1, 1, "idle die: depth 1");
        // A second op issued at t=10 must wait until the first finishes.
        let (s2, e2, d2) = die.reserve(SimTime::from_us(10), Duration::from_us(50));
        assert_eq!(s2, SimTime::from_us(100));
        assert_eq!(e2, SimTime::from_us(150));
        assert_eq!(d2, 2, "second op queues behind the first");
        assert_eq!(die.ops, 2);
        assert_eq!(die.busy_time.as_us_f64(), 150.0);
        assert_eq!(die.queue_depth_hwm, 2);
    }

    #[test]
    fn die_idle_gap_is_not_counted_busy() {
        let mut die = Die::new(1, 4, 8);
        die.reserve(SimTime::from_us(0), Duration::from_us(10));
        // Issued long after the die went idle.
        let (s, _, depth) = die.reserve(SimTime::from_us(500), Duration::from_us(10));
        assert_eq!(s, SimTime::from_us(500));
        assert_eq!(depth, 1, "completed ops have left the queue");
        assert_eq!(die.busy_time.as_us_f64(), 20.0);
        assert_eq!(die.queue_depth_hwm, 1);
    }

    #[test]
    fn channel_reserve_tracks_bytes() {
        let mut ch = Channel::default();
        ch.reserve(SimTime::ZERO, Duration::from_us(10), 4096);
        ch.reserve(SimTime::ZERO, Duration::from_us(10), 4096);
        assert_eq!(ch.bytes_transferred, 8192);
        assert_eq!(ch.busy_until, SimTime::from_us(20));
    }

    #[test]
    fn append_records_gaps_and_backfill_consumes_them() {
        let mut ch = Channel::default();
        // A deferred background transfer issued at t=100 on an idle
        // channel opens the gap [0, 100).
        let (s, e, bf) = ch.reserve_with(ChannelPolicy::Append, SimTime(100), Duration(50), 4096);
        assert_eq!((s, e, bf), (SimTime(100), SimTime(150), false));
        // A foreground transfer that fits the gap lands inside it without
        // touching busy_until.
        let (s, e, bf) = ch.reserve_with(ChannelPolicy::Backfill, SimTime(10), Duration(40), 4096);
        assert_eq!((s, e, bf), (SimTime(10), SimTime(50), true));
        assert_eq!(ch.busy_until, SimTime(150));
        // The gap's unused halves remain: [0,10) and [50,100).
        let (s, _, bf) = ch.reserve_with(ChannelPolicy::Backfill, SimTime(0), Duration(45), 64);
        assert_eq!((s, bf), (SimTime(50), true));
        // Nothing left that fits 60 ns — falls through to an append.
        let (s, _, bf) = ch.reserve_with(ChannelPolicy::Backfill, SimTime(0), Duration(60), 64);
        assert_eq!((s, bf), (SimTime(150), false));
    }

    #[test]
    fn direct_policy_matches_plain_reserve_and_records_no_gaps() {
        let mut plain = Channel::default();
        let mut direct = Channel::default();
        for (at, dur) in [(0u64, 10u64), (50, 10), (55, 20), (200, 5)] {
            let (s1, e1) = plain.reserve(SimTime(at), Duration(dur), 4096);
            let (s2, e2, bf) =
                direct.reserve_with(ChannelPolicy::Direct, SimTime(at), Duration(dur), 4096);
            assert_eq!((s1, e1, false), (s2, e2, bf));
        }
        assert_eq!(plain.busy_until, direct.busy_until);
        assert_eq!(plain.busy_time, direct.busy_time);
        assert!(direct.gaps.is_empty(), "Direct never records gaps");
    }

    #[test]
    fn gap_list_is_bounded() {
        let mut ch = Channel::default();
        for i in 0..100u64 {
            // Each append issues past busy_until, opening a fresh gap.
            ch.reserve_with(ChannelPolicy::Append, SimTime(i * 1_000 + 500), Duration(1), 64);
        }
        assert!(ch.gaps.len() <= 32, "gap list stays bounded, got {}", ch.gaps.len());
    }

    #[test]
    fn plane_holds_blocks() {
        let p = Plane::new(16, 8);
        assert_eq!(p.blocks.len(), 16);
        assert_eq!(p.blocks[0].pages.len(), 8);
    }
}
