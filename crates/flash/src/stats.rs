//! Device operation statistics.
//!
//! The paper's Figure 3 reports host READ/WRITE I/O counts, GC COPYBACKs
//! and GC ERASEs plus latency figures; everything needed to regenerate
//! that table comes from these counters.

use serde::{Deserialize, Serialize};

use crate::addr::DieId;
use crate::time::Duration;

/// Aggregate operation counters and timing accumulators for the device.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DeviceStats {
    /// Number of page reads.
    pub page_reads: u64,
    /// Number of page programs.
    pub page_programs: u64,
    /// Number of block erases.
    pub block_erases: u64,
    /// Number of copyback operations (die-internal page moves).
    pub copybacks: u64,
    /// Number of OOB-only metadata reads.
    pub metadata_reads: u64,
    /// Bytes moved over the channels (both directions).
    pub bytes_transferred: u64,
    /// Sum of end-to-end read latencies (issue → completion).
    pub read_latency_sum: Duration,
    /// Sum of end-to-end program latencies (issue → completion).
    pub program_latency_sum: Duration,
    /// Sum of end-to-end erase latencies.
    pub erase_latency_sum: Duration,
    /// Sum of end-to-end copyback latencies.
    pub copyback_latency_sum: Duration,
    /// Number of failed operations (bad block, worn out, ...).
    pub errors: u64,
    /// Deepest any die's command queue has ever been (1 = no operation
    /// ever queued behind another on the same die).
    pub queue_depth_hwm: u64,
}

impl DeviceStats {
    /// Mean end-to-end page read latency in microseconds.
    pub fn avg_read_latency_us(&self) -> f64 {
        if self.page_reads == 0 {
            0.0
        } else {
            self.read_latency_sum.as_us_f64() / self.page_reads as f64
        }
    }

    /// Mean end-to-end page program latency in microseconds.
    pub fn avg_program_latency_us(&self) -> f64 {
        if self.page_programs == 0 {
            0.0
        } else {
            self.program_latency_sum.as_us_f64() / self.page_programs as f64
        }
    }

    /// Mean end-to-end erase latency in microseconds.
    pub fn avg_erase_latency_us(&self) -> f64 {
        if self.block_erases == 0 {
            0.0
        } else {
            self.erase_latency_sum.as_us_f64() / self.block_erases as f64
        }
    }

    /// Total array operations.
    pub fn total_ops(&self) -> u64 {
        self.page_reads
            + self.page_programs
            + self.block_erases
            + self.copybacks
            + self.metadata_reads
    }

    /// Difference between two snapshots (`self - earlier`), used to report
    /// per-experiment deltas.
    pub fn delta_since(&self, earlier: &DeviceStats) -> DeviceStats {
        DeviceStats {
            page_reads: self.page_reads - earlier.page_reads,
            page_programs: self.page_programs - earlier.page_programs,
            block_erases: self.block_erases - earlier.block_erases,
            copybacks: self.copybacks - earlier.copybacks,
            metadata_reads: self.metadata_reads - earlier.metadata_reads,
            bytes_transferred: self.bytes_transferred - earlier.bytes_transferred,
            read_latency_sum: Duration(self.read_latency_sum.0 - earlier.read_latency_sum.0),
            program_latency_sum: Duration(
                self.program_latency_sum.0 - earlier.program_latency_sum.0,
            ),
            erase_latency_sum: Duration(self.erase_latency_sum.0 - earlier.erase_latency_sum.0),
            copyback_latency_sum: Duration(
                self.copyback_latency_sum.0 - earlier.copyback_latency_sum.0,
            ),
            errors: self.errors - earlier.errors,
            // A high-water mark has no meaningful difference; the delta
            // carries the later snapshot's value.
            queue_depth_hwm: self.queue_depth_hwm,
        }
    }
}

/// Per-die utilisation statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct DieStats {
    /// Total array operations executed by this die.
    pub ops: u64,
    /// Total busy time of this die.
    pub busy_time: Duration,
    /// Sum of erase counts over the die's blocks.
    pub total_erases: u64,
    /// Maximum erase count of any block on the die.
    pub max_erase_count: u64,
    /// Deepest this die's command queue has ever been (1 = no operation
    /// ever queued behind another).
    pub queue_depth_hwm: u32,
}

impl DieStats {
    /// Fraction of the `elapsed` window this die spent executing array
    /// operations (0.0 = idle the whole time, 1.0 = saturated).
    pub fn utilization(&self, elapsed: Duration) -> f64 {
        if elapsed.0 == 0 {
            0.0
        } else {
            (self.busy_time.0 as f64 / elapsed.0 as f64).min(1.0)
        }
    }
}

/// Device-wide parallelism summary derived from the per-die statistics,
/// reported by the queue-depth bench: how evenly work spread over the
/// dies and how deep the per-die command queues ran.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct UtilizationSummary {
    /// The observation window (device creation to quiesce time).
    pub elapsed: Duration,
    /// Per-die busy fraction over the window, indexed by die id.
    pub per_die: Vec<f64>,
    /// Mean busy fraction over all dies.
    pub mean: f64,
    /// Busiest die's fraction.
    pub max: f64,
    /// Idlest die's fraction.
    pub min: f64,
    /// Deepest per-die queue depth observed anywhere on the device.
    pub queue_depth_hwm: u32,
}

impl UtilizationSummary {
    /// Build the summary from per-die statistics over `elapsed`.
    pub fn from_die_stats(dies: &[DieStats], elapsed: Duration) -> Self {
        let per_die: Vec<f64> = dies.iter().map(|d| d.utilization(elapsed)).collect();
        let mean = if per_die.is_empty() {
            0.0
        } else {
            per_die.iter().sum::<f64>() / per_die.len() as f64
        };
        UtilizationSummary {
            elapsed,
            mean,
            max: per_die.iter().copied().fold(0.0, f64::max),
            min: if per_die.is_empty() {
                0.0
            } else {
                per_die.iter().copied().fold(f64::INFINITY, f64::min)
            },
            queue_depth_hwm: dies.iter().map(|d| d.queue_depth_hwm).max().unwrap_or(0),
            per_die,
        }
    }

    /// The same summary narrowed to a subset of dies — e.g. the dies one
    /// region owns on a device shared with other regions.  Without this,
    /// a region-scoped bench that summarizes the *whole* device reports
    /// `min = 0.0` from dies the region never touched.  `per_die`,
    /// `mean`, `max` and `min` are recomputed over the subset (die ids
    /// out of range are ignored); `elapsed` and `queue_depth_hwm` keep
    /// the device-wide values.
    pub fn restricted_to(&self, dies: &[DieId]) -> UtilizationSummary {
        let mut ids: Vec<usize> =
            dies.iter().map(|d| d.0 as usize).filter(|&i| i < self.per_die.len()).collect();
        ids.sort_unstable();
        ids.dedup();
        let per_die: Vec<f64> = ids.iter().map(|&i| self.per_die[i]).collect();
        let mean = if per_die.is_empty() {
            0.0
        } else {
            per_die.iter().sum::<f64>() / per_die.len() as f64
        };
        UtilizationSummary {
            elapsed: self.elapsed,
            mean,
            max: per_die.iter().copied().fold(0.0, f64::max),
            min: if per_die.is_empty() {
                0.0
            } else {
                per_die.iter().copied().fold(f64::INFINITY, f64::min)
            },
            queue_depth_hwm: self.queue_depth_hwm,
            per_die,
        }
    }
}

/// Summary of wear distribution over the device, used to evaluate the
/// longevity claims of the paper (fewer erases, more even wear).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct WearSummary {
    /// Total erases performed over the device lifetime.
    pub total_erases: u64,
    /// Minimum per-block erase count.
    pub min_erase_count: u64,
    /// Maximum per-block erase count.
    pub max_erase_count: u64,
    /// Mean per-block erase count.
    pub mean_erase_count: f64,
    /// Standard deviation of per-block erase counts.
    pub stddev_erase_count: f64,
    /// Number of blocks currently marked bad.
    pub bad_blocks: u64,
}

impl WearSummary {
    /// Compute a wear summary from raw per-block erase counts.
    pub fn from_counts(counts: impl Iterator<Item = u64>, bad_blocks: u64) -> Self {
        let counts: Vec<u64> = counts.collect();
        if counts.is_empty() {
            return WearSummary { bad_blocks, ..Default::default() };
        }
        let total: u64 = counts.iter().sum();
        let n = counts.len() as f64;
        let mean = total as f64 / n;
        let var = counts.iter().map(|&c| (c as f64 - mean).powi(2)).sum::<f64>() / n;
        WearSummary {
            total_erases: total,
            min_erase_count: counts.iter().copied().min().unwrap_or(0),
            max_erase_count: counts.iter().copied().max().unwrap_or(0),
            mean_erase_count: mean,
            stddev_erase_count: var.sqrt(),
            bad_blocks,
        }
    }

    /// Wear imbalance: max/mean erase count (1.0 = perfectly even).
    pub fn imbalance(&self) -> f64 {
        if self.mean_erase_count <= f64::EPSILON {
            1.0
        } else {
            self.max_erase_count as f64 / self.mean_erase_count
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn averages_handle_zero_counts() {
        let s = DeviceStats::default();
        assert_eq!(s.avg_read_latency_us(), 0.0);
        assert_eq!(s.avg_program_latency_us(), 0.0);
        assert_eq!(s.avg_erase_latency_us(), 0.0);
        assert_eq!(s.total_ops(), 0);
    }

    #[test]
    fn averages_divide_correctly() {
        let s = DeviceStats {
            page_reads: 4,
            read_latency_sum: Duration::from_us(400),
            ..Default::default()
        };
        assert!((s.avg_read_latency_us() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn delta_subtracts_fields() {
        let early = DeviceStats { page_reads: 10, copybacks: 1, ..Default::default() };
        let late = DeviceStats { page_reads: 25, copybacks: 4, ..Default::default() };
        let d = late.delta_since(&early);
        assert_eq!(d.page_reads, 15);
        assert_eq!(d.copybacks, 3);
    }

    #[test]
    fn wear_summary_statistics() {
        let w = WearSummary::from_counts([1u64, 2, 3, 4].into_iter(), 2);
        assert_eq!(w.total_erases, 10);
        assert_eq!(w.min_erase_count, 1);
        assert_eq!(w.max_erase_count, 4);
        assert!((w.mean_erase_count - 2.5).abs() < 1e-9);
        assert!(w.stddev_erase_count > 1.0 && w.stddev_erase_count < 1.2);
        assert_eq!(w.bad_blocks, 2);
        assert!((w.imbalance() - 1.6).abs() < 1e-9);
    }

    #[test]
    fn wear_summary_empty_input() {
        let w = WearSummary::from_counts(std::iter::empty(), 0);
        assert_eq!(w.total_erases, 0);
        assert_eq!(w.imbalance(), 1.0);
    }

    #[test]
    fn die_utilization_is_busy_fraction() {
        let d = DieStats { busy_time: Duration::from_us(25), ..Default::default() };
        assert!((d.utilization(Duration::from_us(100)) - 0.25).abs() < 1e-9);
        assert_eq!(d.utilization(Duration::ZERO), 0.0);
        // Saturation clamps at 1.0.
        assert_eq!(d.utilization(Duration::from_us(10)), 1.0);
    }

    #[test]
    fn utilization_summary_aggregates_dies() {
        let dies = [
            DieStats {
                busy_time: Duration::from_us(100),
                queue_depth_hwm: 3,
                ..Default::default()
            },
            DieStats { busy_time: Duration::from_us(50), queue_depth_hwm: 1, ..Default::default() },
        ];
        let s = UtilizationSummary::from_die_stats(&dies, Duration::from_us(100));
        assert_eq!(s.per_die.len(), 2);
        assert!((s.max - 1.0).abs() < 1e-9);
        assert!((s.min - 0.5).abs() < 1e-9);
        assert!((s.mean - 0.75).abs() < 1e-9);
        assert_eq!(s.queue_depth_hwm, 3);
        // Empty input degenerates cleanly.
        let empty = UtilizationSummary::from_die_stats(&[], Duration::from_us(1));
        assert_eq!(empty.mean, 0.0);
        assert_eq!(empty.min, 0.0);
        assert_eq!(empty.queue_depth_hwm, 0);
    }

    #[test]
    fn restriction_drops_idle_foreign_dies() {
        // Dies 0-1 belong to "our" region and were busy; dies 2-3 belong
        // to someone else and idled — they must not drag min to zero.
        let dies = [
            DieStats { busy_time: Duration::from_us(80), queue_depth_hwm: 2, ..Default::default() },
            DieStats { busy_time: Duration::from_us(60), queue_depth_hwm: 1, ..Default::default() },
            DieStats::default(),
            DieStats::default(),
        ];
        let whole = UtilizationSummary::from_die_stats(&dies, Duration::from_us(100));
        assert_eq!(whole.min, 0.0, "whole-device min counts the idle dies");
        let ours = whole.restricted_to(&[DieId(0), DieId(1)]);
        assert_eq!(ours.per_die.len(), 2);
        assert!((ours.min - 0.6).abs() < 1e-9);
        assert!((ours.max - 0.8).abs() < 1e-9);
        assert!((ours.mean - 0.7).abs() < 1e-9);
        assert_eq!(ours.elapsed, whole.elapsed);
        assert_eq!(ours.queue_depth_hwm, whole.queue_depth_hwm);
        // Out-of-range and duplicate ids are tolerated.
        let odd = whole.restricted_to(&[DieId(1), DieId(1), DieId(99)]);
        assert_eq!(odd.per_die.len(), 1);
        assert!((odd.min - 0.6).abs() < 1e-9);
        // Empty restriction degenerates cleanly.
        let none = whole.restricted_to(&[]);
        assert_eq!(none.mean, 0.0);
        assert_eq!(none.min, 0.0);
    }

    #[test]
    fn delta_carries_latest_queue_depth_hwm() {
        let early = DeviceStats { queue_depth_hwm: 4, ..Default::default() };
        let late = DeviceStats { queue_depth_hwm: 7, ..Default::default() };
        assert_eq!(late.delta_since(&early).queue_depth_hwm, 7);
    }
}
