//! Registry handles pre-bound by the device and command queue.
//!
//! All handles are registered once at construction (the cold path) so
//! the per-operation cost is pure atomics — `noftl-obs` never touches
//! the tracked lock order, and a disabled registry reduces every call
//! below to one relaxed load.
//!
//! Metric names (see the README's Observability section):
//!
//! * `flash.op.<kind>.latency_ns` — issue→complete latency per native
//!   command, the revived `Scheduled::latency`;
//! * `flash.die<i>.{reads,programs,erases,copybacks}` — per-die op
//!   counters; `flash.die<i>.busy_ns` — the die's cumulative busy time;
//! * `flash.device.quiesce_ns` — latest completion seen so far;
//! * `flash.queue.depth_hwm` — deepest any die queue has been;
//! * `flash.queue.<kind>.wait_ns` — submit→complete through the
//!   command queue, per kind; `flash.queue.{submitted,failed}`;
//! * `flash.queue.class.<class>.wait_ns` — the same waits split by
//!   [`ServiceClass`] (`latency`/`throughput`/`background`);
//! * `flash.arbiter.*` — arbiter decisions on arbiter-enabled devices:
//!   `class.<class>.ops` admissions per class, `deferred`/`deferral_ns`
//!   budget deferrals, `aging_capped` deferrals clipped by the
//!   anti-starvation bound, `backfills` foreground transfers landed in
//!   background-opened gaps, `exempt` durability ops waved through.

use std::sync::Arc;

use noftl_obs::{Counter, Gauge, Histogram, MetricsRegistry, Unit};

use crate::addr::DieId;
use crate::arbiter::ServiceClass;
use crate::sched::Scheduled;
use crate::time::SimTime;
use crate::trace::OpKind;

/// Every op kind, in slot order.
const OPS: [OpKind; 5] =
    [OpKind::Read, OpKind::Program, OpKind::Erase, OpKind::Copyback, OpKind::MetadataRead];

/// Stable metric-name fragment per op kind.
pub(crate) fn op_name(kind: OpKind) -> &'static str {
    match kind {
        OpKind::Read => "read",
        OpKind::Program => "program",
        OpKind::Erase => "erase",
        OpKind::Copyback => "copyback",
        OpKind::MetadataRead => "metadata_read",
    }
}

fn op_slot(kind: OpKind) -> usize {
    match kind {
        OpKind::Read => 0,
        OpKind::Program => 1,
        OpKind::Erase => 2,
        OpKind::Copyback => 3,
        OpKind::MetadataRead => 4,
    }
}

#[derive(Debug)]
struct DieObs {
    reads: Counter,
    programs: Counter,
    erases: Counter,
    copybacks: Counter,
    busy_ns: Gauge,
}

/// Handles the device records into on every native command.
#[derive(Debug)]
pub(crate) struct DeviceObs {
    registry: Arc<MetricsRegistry>,
    latency: Vec<Histogram>,
    dies: Vec<DieObs>,
    depth_hwm: Gauge,
    quiesce_ns: Gauge,
}

impl DeviceObs {
    pub(crate) fn new(registry: Arc<MetricsRegistry>, die_count: u32) -> Self {
        let latency = OPS
            .iter()
            .map(|k| {
                registry.histogram(&format!("flash.op.{}.latency_ns", op_name(*k)), Unit::SimNanos)
            })
            .collect();
        let dies = (0..die_count)
            .map(|i| DieObs {
                reads: registry.counter(&format!("flash.die{i}.reads")),
                programs: registry.counter(&format!("flash.die{i}.programs")),
                erases: registry.counter(&format!("flash.die{i}.erases")),
                copybacks: registry.counter(&format!("flash.die{i}.copybacks")),
                busy_ns: registry.gauge(&format!("flash.die{i}.busy_ns")),
            })
            .collect();
        let depth_hwm = registry.gauge("flash.queue.depth_hwm");
        let quiesce_ns = registry.gauge("flash.device.quiesce_ns");
        DeviceObs { registry, latency, dies, depth_hwm, quiesce_ns }
    }

    pub(crate) fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }

    /// Record one completed native command.  `busy_ns` is the executing
    /// die's cumulative busy time, read under the die shard the caller
    /// already holds.
    pub(crate) fn note_op(
        &self,
        kind: OpKind,
        die: DieId,
        sched: &Scheduled,
        at: SimTime,
        busy_ns: u64,
    ) {
        if let Some(h) = self.latency.get(op_slot(kind)) {
            h.record(sched.latency(at).as_nanos());
        }
        if let Some(d) = self.dies.get(die.0 as usize) {
            match kind {
                OpKind::Read | OpKind::MetadataRead => d.reads.inc(),
                OpKind::Program => d.programs.inc(),
                OpKind::Erase => d.erases.inc(),
                OpKind::Copyback => d.copybacks.inc(),
            }
            // Busy time is monotone, so max == last-writer without racing.
            d.busy_ns.set_max(busy_ns);
        }
        self.depth_hwm.set_max(u64::from(sched.depth));
        self.quiesce_ns.set_max(sched.complete.as_nanos());
    }
}

/// Handles the command queue records into at submit→complete.
#[derive(Debug)]
pub(crate) struct QueueObs {
    registry: Arc<MetricsRegistry>,
    waits: Vec<Histogram>,
    class_waits: Vec<Histogram>,
    submitted: Counter,
    failed: Counter,
}

impl QueueObs {
    pub(crate) fn new(registry: Arc<MetricsRegistry>) -> Self {
        let waits = OPS
            .iter()
            .map(|k| {
                registry.histogram(&format!("flash.queue.{}.wait_ns", op_name(*k)), Unit::SimNanos)
            })
            .collect();
        let class_waits = ServiceClass::ALL
            .iter()
            .map(|c| {
                registry
                    .histogram(&format!("flash.queue.class.{}.wait_ns", c.name()), Unit::SimNanos)
            })
            .collect();
        let submitted = registry.counter("flash.queue.submitted");
        let failed = registry.counter("flash.queue.failed");
        QueueObs { registry, waits, class_waits, submitted, failed }
    }

    /// Record one completion: the submit→complete wait histogram for the
    /// kind and the service class, plus a tracer span on the die's track
    /// (instant on failure).
    pub(crate) fn note_completion(
        &self,
        kind: OpKind,
        class: ServiceClass,
        die: DieId,
        issued_at: SimTime,
        completed_at: Option<SimTime>,
    ) {
        self.submitted.inc();
        let track = u64::from(die.0);
        match completed_at {
            Some(done) => {
                if let Some(h) = self.waits.get(op_slot(kind)) {
                    h.record(done.since(issued_at).as_nanos());
                }
                if let Some(h) = self.class_waits.get(class.slot()) {
                    h.record(done.since(issued_at).as_nanos());
                }
                self.registry.tracer().span(
                    "flash.queue",
                    op_name(kind),
                    track,
                    issued_at.as_nanos(),
                    done.as_nanos(),
                    &[],
                );
            }
            None => {
                self.failed.inc();
                self.registry.tracer().instant(
                    "flash.queue",
                    "error",
                    track,
                    issued_at.as_nanos(),
                    &[],
                );
            }
        }
    }
}

/// Handles an arbiter-enabled device records admission decisions into.
#[derive(Debug)]
pub(crate) struct ArbiterObs {
    /// Admissions per service class (slot order).
    pub class_ops: Vec<Counter>,
    /// Transfers deferred by a channel-bandwidth budget.
    pub deferred: Counter,
    /// Total simulated ns of budget deferral.
    pub deferral_ns: Counter,
    /// Deferrals clipped by the anti-starvation aging bound.
    pub aging_capped: Counter,
    /// Foreground transfers that landed in a background-opened gap.
    pub backfills: Counter,
    /// Exempt (durability) ops waved past the budget.
    pub exempt: Counter,
}

impl ArbiterObs {
    pub(crate) fn new(registry: &MetricsRegistry) -> Self {
        ArbiterObs {
            class_ops: ServiceClass::ALL
                .iter()
                .map(|c| registry.counter(&format!("flash.arbiter.class.{}.ops", c.name())))
                .collect(),
            deferred: registry.counter("flash.arbiter.deferred"),
            deferral_ns: registry.counter("flash.arbiter.deferral_ns"),
            aging_capped: registry.counter("flash.arbiter.aging_capped"),
            backfills: registry.counter("flash.arbiter.backfills"),
            exempt: registry.counter("flash.arbiter.exempt"),
        }
    }

    /// Record one admission of `class`.
    pub(crate) fn note_class(&self, class: ServiceClass) {
        if let Some(c) = self.class_ops.get(class.slot()) {
            c.inc();
        }
    }
}
