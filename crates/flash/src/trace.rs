//! Operation tracing.
//!
//! An optional bounded trace of the most recent flash commands, useful for
//! debugging flash-management layers and for the examples that visualise
//! what the device is doing.

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

use crate::addr::PageAddr;
use crate::time::{Duration, SimTime};

/// Kind of a traced flash command.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OpKind {
    /// Page read (array read + channel transfer out).
    Read,
    /// Page program (channel transfer in + array program).
    Program,
    /// Block erase.
    Erase,
    /// Die-internal copyback.
    Copyback,
    /// OOB metadata read.
    MetadataRead,
}

/// A single traced flash command.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlashOp {
    /// Command kind.
    pub kind: OpKind,
    /// Target address (for erases, the first page of the block; for
    /// copybacks, the destination page).
    pub addr: PageAddr,
    /// When the command was issued by the host.
    pub issued_at: SimTime,
    /// When the command completed.
    pub completed_at: SimTime,
    /// End-to-end latency (issue to completion, including queueing).
    pub latency: Duration,
    /// Queue depth of the target die at issue time (1 = die was idle);
    /// together with `latency` this supports per-depth latency histograms.
    pub queue_depth: u32,
}

/// A bounded ring buffer of recent flash commands.
#[derive(Debug)]
pub struct TraceBuffer {
    cap: usize,
    ops: VecDeque<FlashOp>,
    total_recorded: u64,
}

impl TraceBuffer {
    /// Create a trace buffer retaining at most `cap` recent operations.
    /// A capacity of zero disables tracing.
    pub fn new(cap: usize) -> Self {
        TraceBuffer { cap, ops: VecDeque::with_capacity(cap.min(4096)), total_recorded: 0 }
    }

    /// Record an operation (no-op if the buffer capacity is zero).
    pub fn record(&mut self, op: FlashOp) {
        if self.cap == 0 {
            return;
        }
        if self.ops.len() == self.cap {
            self.ops.pop_front();
        }
        self.ops.push_back(op);
        self.total_recorded += 1;
    }

    /// Whether tracing is enabled.
    pub fn enabled(&self) -> bool {
        self.cap > 0
    }

    /// Operations currently retained, oldest first.
    pub fn ops(&self) -> impl Iterator<Item = &FlashOp> {
        self.ops.iter()
    }

    /// Number of operations recorded over the lifetime of the buffer
    /// (including ones that have since been evicted).
    pub fn total_recorded(&self) -> u64 {
        self.total_recorded
    }

    /// Drop all retained operations (does not reset `total_recorded`).
    pub fn clear(&mut self) {
        self.ops.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::DieId;

    fn op(kind: OpKind, t: u64) -> FlashOp {
        FlashOp {
            kind,
            addr: PageAddr::new(DieId(0), 0, 0, 0),
            issued_at: SimTime::from_us(t),
            completed_at: SimTime::from_us(t + 1),
            latency: Duration::from_us(1),
            queue_depth: 1,
        }
    }

    #[test]
    fn zero_capacity_disables_tracing() {
        let mut t = TraceBuffer::new(0);
        assert!(!t.enabled());
        t.record(op(OpKind::Read, 0));
        assert_eq!(t.ops().count(), 0);
        assert_eq!(t.total_recorded(), 0);
    }

    #[test]
    fn ring_buffer_evicts_oldest() {
        let mut t = TraceBuffer::new(2);
        t.record(op(OpKind::Read, 1));
        t.record(op(OpKind::Program, 2));
        t.record(op(OpKind::Erase, 3));
        let kinds: Vec<_> = t.ops().map(|o| o.kind).collect();
        assert_eq!(kinds, vec![OpKind::Program, OpKind::Erase]);
        assert_eq!(t.total_recorded(), 3);
    }

    #[test]
    fn clear_keeps_total() {
        let mut t = TraceBuffer::new(4);
        t.record(op(OpKind::Copyback, 1));
        t.clear();
        assert_eq!(t.ops().count(), 0);
        assert_eq!(t.total_recorded(), 1);
    }
}
