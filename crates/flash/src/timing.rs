//! NAND operation latency model.
//!
//! Latencies follow published datasheet values for enterprise MLC NAND of
//! the paper's era (c. 2015), the same class of memory used by the NoFTL
//! prototype.  All values are configurable; the defaults only need to
//! preserve the *ratios* the evaluation depends on (program ≫ read,
//! erase ≫ program, copyback cheaper than read+transfer+program).

use serde::{Deserialize, Serialize};

use crate::time::Duration;

/// Latency parameters of the simulated NAND device.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimingModel {
    /// Array read time (tR): cell array -> page register, in microseconds.
    pub read_page_us: f64,
    /// Page program time (tPROG): page register -> cell array, in microseconds.
    pub program_page_us: f64,
    /// Block erase time (tBERS), in microseconds.
    pub erase_block_us: f64,
    /// Additional controller/command overhead per operation, in microseconds.
    pub cmd_overhead_us: f64,
    /// Channel transfer time per KiB of data, in microseconds
    /// (e.g. 2.5 us/KiB ≈ 400 MB/s per channel).
    pub xfer_us_per_kib: f64,
    /// Transfer time for an OOB metadata read, in microseconds.
    pub oob_xfer_us: f64,
}

impl TimingModel {
    /// Default enterprise-MLC-class timings (c. 2015).
    pub fn mlc_2015() -> Self {
        TimingModel {
            read_page_us: 70.0,
            program_page_us: 700.0,
            erase_block_us: 3_000.0,
            cmd_overhead_us: 5.0,
            xfer_us_per_kib: 2.5,
            oob_xfer_us: 1.0,
        }
    }

    /// Faster SLC-class timings, useful for ablations.
    pub fn slc() -> Self {
        TimingModel {
            read_page_us: 25.0,
            program_page_us: 200.0,
            erase_block_us: 1_500.0,
            cmd_overhead_us: 5.0,
            xfer_us_per_kib: 2.5,
            oob_xfer_us: 1.0,
        }
    }

    /// Zero-latency model for functional tests that do not care about time.
    pub fn instant() -> Self {
        TimingModel {
            read_page_us: 0.0,
            program_page_us: 0.0,
            erase_block_us: 0.0,
            cmd_overhead_us: 0.0,
            xfer_us_per_kib: 0.0,
            oob_xfer_us: 0.0,
        }
    }

    /// Duration the die is busy for an array read of one page.
    pub fn read_array_time(&self) -> Duration {
        Duration::from_us_f64(self.read_page_us + self.cmd_overhead_us)
    }

    /// Duration the die is busy programming one page.
    pub fn program_array_time(&self) -> Duration {
        Duration::from_us_f64(self.program_page_us + self.cmd_overhead_us)
    }

    /// Duration the die is busy erasing one block.
    pub fn erase_time(&self) -> Duration {
        Duration::from_us_f64(self.erase_block_us + self.cmd_overhead_us)
    }

    /// Duration the die is busy for a copyback (internal read + program,
    /// no channel transfer).
    pub fn copyback_time(&self) -> Duration {
        Duration::from_us_f64(self.read_page_us + self.program_page_us + self.cmd_overhead_us)
    }

    /// Channel occupation time to move `bytes` of data.
    pub fn transfer_time(&self, bytes: u32) -> Duration {
        Duration::from_us_f64(self.xfer_us_per_kib * bytes as f64 / 1024.0)
    }

    /// Channel occupation time for an OOB metadata transfer.
    pub fn oob_transfer_time(&self) -> Duration {
        Duration::from_us_f64(self.oob_xfer_us)
    }
}

impl Default for TimingModel {
    fn default() -> Self {
        Self::mlc_2015()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_ratios_are_sane() {
        let t = TimingModel::default();
        // program is substantially slower than read, erase slower still.
        assert!(t.program_array_time() > t.read_array_time());
        assert!(t.erase_time() > t.program_array_time());
        // copyback avoids the channel entirely but still pays array times.
        assert!(t.copyback_time() > t.program_array_time());
    }

    #[test]
    fn transfer_scales_with_size() {
        let t = TimingModel::default();
        let one_kib = t.transfer_time(1024);
        let four_kib = t.transfer_time(4096);
        assert_eq!(four_kib.as_nanos(), one_kib.as_nanos() * 4);
        assert!(t.oob_transfer_time() < one_kib);
    }

    #[test]
    fn instant_model_is_zero() {
        let t = TimingModel::instant();
        assert_eq!(t.read_array_time(), Duration::ZERO);
        assert_eq!(t.program_array_time(), Duration::ZERO);
        assert_eq!(t.erase_time(), Duration::ZERO);
        assert_eq!(t.transfer_time(4096), Duration::ZERO);
    }
}
