//! Simulated time.
//!
//! All latencies in the simulator are charged against a monotonically
//! increasing simulated clock with nanosecond resolution.  Using an integer
//! representation keeps runs exactly reproducible across platforms.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, in nanoseconds since the start of the run.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(pub u64);

/// A span of simulated time, in nanoseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Duration(pub u64);

impl SimTime {
    /// The beginning of simulated time.
    pub const ZERO: SimTime = SimTime(0);

    /// Construct from whole microseconds.
    #[inline]
    pub fn from_us(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Construct from whole milliseconds.
    #[inline]
    pub fn from_ms(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    #[inline]
    pub fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Nanoseconds since the start of the run.
    #[inline]
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds since the start of the run (truncating).
    #[inline]
    pub fn as_us(self) -> u64 {
        self.0 / 1_000
    }

    /// Seconds since the start of the run, as a float.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The later of two instants.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// The earlier of two instants.
    #[inline]
    pub fn min(self, other: SimTime) -> SimTime {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }

    /// Time elapsed since `earlier`, saturating at zero.
    #[inline]
    pub fn since(self, earlier: SimTime) -> Duration {
        Duration(self.0.saturating_sub(earlier.0))
    }
}

impl Duration {
    /// A zero-length duration.
    pub const ZERO: Duration = Duration(0);

    /// Construct from nanoseconds.
    #[inline]
    pub fn from_nanos(ns: u64) -> Self {
        Duration(ns)
    }

    /// Construct from whole microseconds.
    #[inline]
    pub fn from_us(us: u64) -> Self {
        Duration(us * 1_000)
    }

    /// Construct from fractional microseconds (rounded to nanoseconds).
    #[inline]
    pub fn from_us_f64(us: f64) -> Self {
        Duration((us * 1_000.0).round().max(0.0) as u64)
    }

    /// Construct from whole milliseconds.
    #[inline]
    pub fn from_ms(ms: u64) -> Self {
        Duration(ms * 1_000_000)
    }

    /// Nanoseconds in this duration.
    #[inline]
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds in this duration, as a float.
    #[inline]
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Milliseconds in this duration, as a float.
    #[inline]
    pub fn as_ms_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Seconds in this duration, as a float.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating addition of two durations.
    #[inline]
    pub fn saturating_add(self, other: Duration) -> Duration {
        Duration(self.0.saturating_add(other.0))
    }
}

impl Add<Duration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: Duration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<Duration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = Duration;
    #[inline]
    fn sub(self, rhs: SimTime) -> Duration {
        Duration(self.0.saturating_sub(rhs.0))
    }
}

impl Add<Duration> for Duration {
    type Output = Duration;
    #[inline]
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0 + rhs.0)
    }
}

impl AddAssign<Duration> for Duration {
    #[inline]
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.0 as f64 / 1e6)
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < 1_000 {
            write!(f, "{}ns", self.0)
        } else if self.0 < 1_000_000 {
            write!(f, "{:.2}us", self.0 as f64 / 1e3)
        } else if self.0 < 1_000_000_000 {
            write!(f, "{:.2}ms", self.0 as f64 / 1e6)
        } else {
            write!(f, "{:.3}s", self.0 as f64 / 1e9)
        }
    }
}

/// A shared monotonically advancing clock used by components that need a
/// notion of "current simulated time" outside of a single request path
/// (e.g. background flushers and wear-leveling daemons).
#[derive(Debug, Default)]
pub struct SimClock {
    now: parking_lot::Mutex<SimTime>,
}

impl SimClock {
    /// Create a clock starting at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        *self.now.lock()
    }

    /// Advance the clock to `t` if `t` is later than the current time.
    /// Returns the (possibly unchanged) current time.
    pub fn advance_to(&self, t: SimTime) -> SimTime {
        let mut now = self.now.lock();
        if t > *now {
            *now = t;
        }
        *now
    }

    /// Advance the clock by `d` and return the new time.
    pub fn advance_by(&self, d: Duration) -> SimTime {
        let mut now = self.now.lock();
        *now += d;
        *now
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_conversion() {
        assert_eq!(SimTime::from_us(5).as_nanos(), 5_000);
        assert_eq!(SimTime::from_ms(2).as_us(), 2_000);
        assert_eq!(SimTime::from_secs(1).as_nanos(), 1_000_000_000);
        assert!((SimTime::from_secs(2).as_secs_f64() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn duration_arithmetic() {
        let t = SimTime::from_us(10);
        let t2 = t + Duration::from_us(15);
        assert_eq!(t2.as_us(), 25);
        assert_eq!((t2 - t).as_us_f64(), 15.0);
        // Saturating subtraction never goes negative.
        assert_eq!((t - t2).as_nanos(), 0);
    }

    #[test]
    fn duration_from_fractional_us() {
        assert_eq!(Duration::from_us_f64(1.5).as_nanos(), 1_500);
        assert_eq!(Duration::from_us_f64(-3.0).as_nanos(), 0);
        assert_eq!(Duration::from_us_f64(0.0004).as_nanos(), 0);
    }

    #[test]
    fn max_min_since() {
        let a = SimTime::from_us(3);
        let b = SimTime::from_us(7);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert_eq!(b.since(a).as_nanos(), 4_000);
        assert_eq!(a.since(b).as_nanos(), 0);
    }

    #[test]
    fn clock_is_monotonic() {
        let clock = SimClock::new();
        assert_eq!(clock.now(), SimTime::ZERO);
        clock.advance_to(SimTime::from_us(10));
        assert_eq!(clock.now().as_us(), 10);
        // Moving backwards is a no-op.
        clock.advance_to(SimTime::from_us(5));
        assert_eq!(clock.now().as_us(), 10);
        clock.advance_by(Duration::from_us(5));
        assert_eq!(clock.now().as_us(), 15);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", Duration::from_nanos(500)), "500ns");
        assert_eq!(format!("{}", Duration::from_us(2)), "2.00us");
        assert_eq!(format!("{}", Duration::from_ms(3)), "3.00ms");
        assert_eq!(format!("{}", Duration(2_500_000_000)), "2.500s");
    }
}
