//! Seeded violation: channel shard acquired before die shard, the
//! reverse of the documented Manager < PendingIo < Queue < Die <
//! Channel < Shared order.  `self_check()` asserts the `lock_order`
//! rule catches this.

impl Device {
    fn mixed_up(&self, die: DieId, ch: u32) -> u64 {
        let chan = self.channel_shard(ch);
        let d = self.die_shard(die); // out of order: Channel(4) held, Die(3) requested
        chan.busy_until.max(d.busy_until)
    }
}
