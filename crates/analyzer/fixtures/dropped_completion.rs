//! Seeded violations for the `queue_discipline` rule: a Completion
//! result dropped on the floor, and a blocking device call reachable
//! from a poll path.  `self_check()` asserts both shapes are caught.

impl CommandQueue {
    fn fire_and_forget(&self, handle: IoHandle) {
        self.wait(handle); // Completion (and its error arm) silently discarded
    }

    fn poll_and_patch(&self, addr: PageAddr, buf: &mut [u8]) {
        // Blocking NAND read on the poll path, outside execute/submit.
        self.device.read_page(addr, buf);
    }
}
