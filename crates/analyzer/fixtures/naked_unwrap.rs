//! Seeded violation: a naked `.unwrap()` in production manager code.
//! `self_check()` asserts the `panic_freedom` rule catches this.

impl Manager {
    fn region_or_die(&self, name: &str) -> RegionId {
        self.region_id(name).unwrap()
    }
}
