//! The clean fixture: idiomatic device code that follows every rule,
//! including one *justified* escape hatch.  `self_check()` asserts it
//! produces zero findings and exactly one suppression.

impl Device {
    fn timings(&self, die: DieId, ch: u32) -> Result<(u64, u64), FlashError> {
        let d = self.die_shard(die);
        let chan = self.channel_shard(ch);
        let shared = self.shared_shard();
        let _ = shared.stats.reads;
        Ok((d.busy_until, chan.busy_until))
    }

    fn first_die_load(&self) -> u64 {
        // analyzer:allow(panic_freedom) geometry guarantees at least one die per device
        self.die_loads().first().copied().expect("non-empty")
    }

    fn drain_completions(&self, queue: &CommandQueue) -> usize {
        let done = queue.drain();
        done.iter().filter(|c| c.result.is_ok()).count()
    }
}
