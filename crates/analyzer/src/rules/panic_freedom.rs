//! Panic-freedom rule.
//!
//! Production code in `crates/flash/src`, `crates/core/src` and
//! `crates/obs/src` must not contain `unwrap`/`expect` calls or
//! `panic!`-family macros: on the device hot path a panic poisons shard
//! mutexes and takes the whole simulated SSD down, and the
//! observability layer is instrumented into those same paths.  Direct slice indexing is additionally denied in
//! the files on the per-command hot path, where a slip past a bounds
//! check is most likely and most costly.
//!
//! Genuinely infallible cases (a length checked on the previous line, a
//! constructor validating its config) are annotated
//! `// analyzer:allow(panic_freedom) <why it cannot fire>`.

use super::{is_method_call, FileView, RawFinding};
use crate::lexer::TokKind;

/// Rule name for `analyzer:allow`.
pub const RULE: &str = "panic_freedom";

/// Method calls that panic on the error/none arm.
const PANICKY_METHODS: &[&str] = &["unwrap", "expect"];

/// Macros that unconditionally panic.
const PANICKY_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Files (by path suffix) where direct slice indexing is also denied.
const HOT_PATH_FILES: &[&str] =
    &["src/queue.rs", "src/sched.rs", "src/flusher.rs", "src/atomic.rs"];

/// Crate roots (by path substring) the rule applies to.
const SCOPES: &[&str] =
    &["crates/flash/src", "crates/core/src", "crates/obs/src", "crates/mirror/src"];

/// Does the rule apply to this file at all?
pub fn in_scope(path: &str) -> bool {
    let p = path.replace('\\', "/");
    SCOPES.iter().any(|s| p.contains(s))
}

/// Run the rule over one file.
pub fn check(view: &FileView<'_>) -> Vec<RawFinding> {
    if !in_scope(view.path) {
        return Vec::new();
    }
    let mut out = Vec::new();
    let toks = view.tokens;
    let hot = HOT_PATH_FILES.iter().any(|f| view.path.replace('\\', "/").ends_with(f));

    for (i, t) in toks.iter().enumerate() {
        if !view.is_production(i) || t.kind != TokKind::Ident {
            // Indexing is keyed on punctuation; handled below.
            if hot
                && view.is_production(i)
                && t.is_punct('[')
                && i >= 1
                && is_indexable(&toks[i - 1])
            {
                out.push(RawFinding {
                    rule: RULE,
                    line: t.line,
                    message:
                        "direct slice indexing on a hot-path file can panic; use `get`/`get_mut` \
                              or justify with analyzer:allow"
                            .to_string(),
                });
            }
            continue;
        }
        if PANICKY_METHODS.contains(&t.text.as_str()) && is_method_call(toks, i, &t.text) {
            out.push(RawFinding {
                rule: RULE,
                line: t.line,
                message: format!(
                    "`.{}()` in production code panics on the failure arm; return an error instead",
                    t.text
                ),
            });
        } else if PANICKY_MACROS.contains(&t.text.as_str())
            && toks.get(i + 1).is_some_and(|n| n.is_punct('!'))
        {
            out.push(RawFinding {
                rule: RULE,
                line: t.line,
                message: format!(
                    "`{}!` in production code takes the device down; return an error instead",
                    t.text
                ),
            });
        }
    }
    out
}

/// Can the token directly before a `[` be an indexed expression?  Idents,
/// `)` and `]` can; type positions (`: [u8; 4]`), attribute `#[`, and
/// array literals (`= [`) cannot.
fn is_indexable(prev: &crate::lexer::Tok) -> bool {
    match prev.kind {
        TokKind::Ident => !matches!(
            prev.text.as_str(),
            // Keywords that may directly precede an array literal or type.
            "mut" | "in" | "return" | "as" | "else" | "match" | "if" | "impl" | "dyn" | "const"
        ),
        TokKind::Punct => prev.is_punct(')') || prev.is_punct(']'),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn run(path: &str, src: &str) -> Vec<RawFinding> {
        let lexed = lex(src);
        let view = FileView::new(path, &lexed.tokens);
        check(&view)
    }

    #[test]
    fn unwrap_in_scope_is_flagged() {
        let f = run("crates/core/src/manager.rs", "fn f() { x.unwrap(); }");
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("unwrap"));
    }

    #[test]
    fn unwrap_or_variants_are_fine() {
        let src = "fn f() { x.unwrap_or(0); y.unwrap_or_else(|| 0); z.unwrap_or_default(); }";
        assert!(run("crates/core/src/manager.rs", src).is_empty());
    }

    #[test]
    fn panic_macros_are_flagged() {
        let f = run("crates/flash/src/device.rs", "fn f() { unreachable!(\"no\") }");
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn out_of_scope_files_are_ignored() {
        assert!(run("crates/dbms/src/lib.rs", "fn f() { x.unwrap(); }").is_empty());
    }

    #[test]
    fn test_code_is_ignored() {
        let src = "#[cfg(test)]\nmod tests { fn t() { x.unwrap(); panic!(\"t\") } }";
        assert!(run("crates/core/src/manager.rs", src).is_empty());
    }

    #[test]
    fn indexing_flagged_only_on_hot_path() {
        let src = "fn f(v: &[u8], i: usize) -> u8 { v[i] }";
        assert_eq!(run("crates/flash/src/queue.rs", src).len(), 1);
        assert!(run("crates/flash/src/device.rs", src).is_empty());
    }

    #[test]
    fn array_types_and_attrs_are_not_indexing() {
        let src = "#[derive(Debug)]\nstruct S { a: [u8; 4] }\nfn f() -> [u8; 2] { [0, 1] }";
        assert!(run("crates/flash/src/queue.rs", src).is_empty());
    }
}
