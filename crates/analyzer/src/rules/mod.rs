//! Rule infrastructure: a token-stream view of one file with test code
//! masked out, plus function-item extraction shared by all rules.

pub mod lock_order;
pub mod panic_freedom;
pub mod queue_discipline;

use crate::lexer::{Tok, TokKind};

/// A raw (pre-suppression) diagnostic from one rule.
#[derive(Debug, Clone)]
pub struct RawFinding {
    /// Rule name, matching the `analyzer:allow(<rule>)` grammar.
    pub rule: &'static str,
    /// 1-based line.
    pub line: u32,
    /// Description.
    pub message: String,
}

/// One `fn` item: its name and the token range of its body.
#[derive(Debug)]
pub struct FnItem {
    /// Function name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Token index range of the body, *excluding* the outer braces.
    pub body: std::ops::Range<usize>,
}

/// A file prepared for rule evaluation.
pub struct FileView<'a> {
    /// Workspace-relative path.
    pub path: &'a str,
    /// Token stream.
    pub tokens: &'a [Tok],
    /// `in_test[i]` is true when token `i` belongs to a `#[test]`,
    /// `#[bench]` or `#[cfg(test)]` item — rules skip those regions.
    pub in_test: Vec<bool>,
}

impl<'a> FileView<'a> {
    /// Build the view, computing the test mask.
    pub fn new(path: &'a str, tokens: &'a [Tok]) -> Self {
        let in_test = test_mask(tokens);
        Self { path, tokens, in_test }
    }

    /// Is the token at `i` production (non-test) code?
    pub fn is_production(&self, i: usize) -> bool {
        !self.in_test.get(i).copied().unwrap_or(false)
    }

    /// Extract every `fn` item (test items included; callers consult the
    /// mask via the item's starting token).
    pub fn fn_items(&self) -> Vec<FnItem> {
        let toks = self.tokens;
        let mut out = Vec::new();
        let mut i = 0usize;
        while i < toks.len() {
            if toks[i].is_ident("fn") && toks.get(i + 1).is_some_and(|t| t.kind == TokKind::Ident) {
                let name = toks[i + 1].text.clone();
                let line = toks[i].line;
                // Find the body `{`, or a `;` first for bodiless trait
                // methods.  Signatures contain no braces, so the first
                // `{` after the name opens the body.
                let mut j = i + 2;
                let mut open = None;
                while j < toks.len() {
                    if toks[j].is_punct('{') {
                        open = Some(j);
                        break;
                    }
                    if toks[j].is_punct(';') {
                        break;
                    }
                    j += 1;
                }
                if let Some(open) = open {
                    let close = matching_brace(toks, open);
                    out.push(FnItem { name, line, body: open + 1..close });
                    // Nested fns are rare; re-scanning the body keeps
                    // them visible as their own items.
                    i = open + 1;
                    continue;
                }
            }
            i += 1;
        }
        out
    }
}

/// Index of the `}` matching the `{` at `open` (or the last token if the
/// file is truncated).
fn matching_brace(toks: &[Tok], open: usize) -> usize {
    let mut depth = 0i32;
    for (j, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return j;
            }
        }
    }
    toks.len().saturating_sub(1)
}

/// Compute which tokens belong to test/bench items: any item annotated
/// `#[test]`, `#[bench]`, `#[cfg(test)]`, `#[cfg(any(test, ...))]` and so
/// on.  `#[cfg(not(test))]` is production code and stays unmasked.
fn test_mask(toks: &[Tok]) -> Vec<bool> {
    let mut mask = vec![false; toks.len()];
    let mut i = 0usize;
    while i < toks.len() {
        if !(toks[i].is_punct('#') && toks.get(i + 1).is_some_and(|t| t.is_punct('['))) {
            i += 1;
            continue;
        }
        let attr_start = i;
        let attr_end = matching_bracket(toks, i + 1);
        if !attr_is_test(&toks[attr_start..=attr_end]) {
            i = attr_end + 1;
            continue;
        }
        // Skip any further attributes stacked on the same item.
        let mut k = attr_end + 1;
        while k < toks.len()
            && toks[k].is_punct('#')
            && toks.get(k + 1).is_some_and(|t| t.is_punct('['))
        {
            k = matching_bracket(toks, k + 1) + 1;
        }
        // The item extends to the `}` closing its first top-level brace,
        // or to a top-level `;` for brace-less items (`use`, consts).
        let mut depth = 0i32;
        let mut end = toks.len().saturating_sub(1);
        let mut saw_brace = false;
        for (idx, t) in toks.iter().enumerate().skip(k) {
            if t.kind == TokKind::Punct {
                match t.text.as_bytes().first() {
                    Some(b'{') | Some(b'(') | Some(b'[') => {
                        if t.is_punct('{') && depth == 0 {
                            saw_brace = true;
                        }
                        depth += 1;
                    }
                    Some(b'}') | Some(b')') | Some(b']') => {
                        depth -= 1;
                        if t.is_punct('}') && depth == 0 && saw_brace {
                            end = idx;
                            break;
                        }
                    }
                    Some(b';') if depth == 0 => {
                        end = idx;
                        break;
                    }
                    _ => {}
                }
            }
        }
        for m in mask.iter_mut().take(end + 1).skip(attr_start) {
            *m = true;
        }
        i = end + 1;
    }
    mask
}

/// Index of the `]` matching the `[` at `open`.
fn matching_bracket(toks: &[Tok], open: usize) -> usize {
    let mut depth = 0i32;
    for (j, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(']') {
            depth -= 1;
            if depth == 0 {
                return j;
            }
        }
    }
    toks.len().saturating_sub(1)
}

/// Does this attribute mark a test/bench item?  True for `test`/`bench`
/// identifiers not directly wrapped in `not(...)`.
fn attr_is_test(attr: &[Tok]) -> bool {
    for (m, t) in attr.iter().enumerate() {
        if t.is_ident("test") || t.is_ident("bench") {
            let negated = m >= 2 && attr[m - 1].is_punct('(') && attr[m - 2].is_ident("not");
            if !negated {
                return true;
            }
        }
    }
    false
}

/// Is the call `name(` at token index `i` (an ident directly followed by
/// an opening parenthesis)?
pub fn is_call(toks: &[Tok], i: usize, name: &str) -> bool {
    toks[i].is_ident(name) && toks.get(i + 1).is_some_and(|t| t.is_punct('('))
}

/// Is the token at `i` a method call `.name(`?
pub fn is_method_call(toks: &[Tok], i: usize, name: &str) -> bool {
    i >= 1 && toks[i - 1].is_punct('.') && is_call(toks, i, name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn cfg_test_modules_are_masked() {
        let src = "fn prod() { x.unwrap(); }\n#[cfg(test)]\nmod tests { fn t() { y.unwrap(); } }\n";
        let lexed = lex(src);
        let view = FileView::new("f.rs", &lexed.tokens);
        let unwraps: Vec<bool> = lexed
            .tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| t.is_ident("unwrap"))
            .map(|(i, _)| view.is_production(i))
            .collect();
        assert_eq!(unwraps, vec![true, false]);
    }

    #[test]
    fn cfg_not_test_is_production() {
        let src = "#[cfg(not(test))]\nfn prod() { x.unwrap(); }\n";
        let lexed = lex(src);
        let view = FileView::new("f.rs", &lexed.tokens);
        let idx = lexed.tokens.iter().position(|t| t.is_ident("unwrap")).unwrap();
        assert!(view.is_production(idx));
    }

    #[test]
    fn stacked_attributes_mask_the_whole_item() {
        let src = "#[test]\n#[should_panic(expected = \"boom\")]\nfn t() { panic!(\"boom\") }\nfn prod() {}\n";
        let lexed = lex(src);
        let view = FileView::new("f.rs", &lexed.tokens);
        let panic_idx = lexed.tokens.iter().position(|t| t.is_ident("panic")).unwrap();
        assert!(!view.is_production(panic_idx));
        let prod_idx = lexed.tokens.iter().position(|t| t.is_ident("prod")).unwrap();
        assert!(view.is_production(prod_idx));
    }

    #[test]
    fn fn_items_capture_names_and_bodies() {
        let src = "fn alpha(x: u8) -> u8 { x }\nimpl T { fn beta(&self) { if a { b() } } }\n";
        let lexed = lex(src);
        let view = FileView::new("f.rs", &lexed.tokens);
        let items = view.fn_items();
        let names: Vec<&str> = items.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["alpha", "beta"]);
        // beta's body spans the `if` but not alpha's tokens.
        let beta = &items[1];
        assert!(lexed.tokens[beta.body.clone()].iter().any(|t| t.is_ident("if")));
        assert!(!lexed.tokens[beta.body.clone()].iter().any(|t| t.is_ident("alpha")));
    }

    #[test]
    fn fn_pointer_types_are_not_items() {
        let src = "type F = fn(u8) -> u8;\nfn real() {}\n";
        let lexed = lex(src);
        let view = FileView::new("f.rs", &lexed.tokens);
        let items = view.fn_items();
        assert_eq!(items.len(), 1);
        assert_eq!(items[0].name, "real");
    }
}
