//! Queue-discipline rule.
//!
//! Two invariants around `CommandQueue`:
//!
//! 1. **No blocking device calls off the execute path.**  Completion
//!    and poll paths in `queue.rs` must never call the blocking
//!    `NandDevice` operations directly — those belong to the dedicated
//!    execute/submit functions, where the queue lock is not held.
//! 2. **Completion errors must be observed.**  A `Completion` carries the
//!    device's error arm; dropping the result of `wait`/`poll`/`drain`
//!    on the floor (`q.wait(h);` or `let _ = q.wait(h);`) silently
//!    swallows media failures.

use super::{is_method_call, FileView, RawFinding};

/// Rule name for `analyzer:allow`.
pub const RULE: &str = "queue_discipline";

/// Blocking `NandDevice` entry points.
const BLOCKING_DEVICE_CALLS: &[&str] =
    &["read_page", "program_page", "erase_block", "copyback", "read_metadata"];

/// Functions in `queue.rs` allowed to invoke the device directly.
const EXECUTE_FNS: &[&str] = &["execute", "submit", "submit_batch"];

/// Completion-bearing calls whose result must be consumed.
const COMPLETION_CALLS: &[&str] = &["wait", "poll", "drain"];

/// Crate roots the dropped-completion check applies to.
const SCOPES: &[&str] = &["crates/flash/src", "crates/core/src"];

/// Run the rule over one file.
pub fn check(view: &FileView<'_>) -> Vec<RawFinding> {
    let mut out = Vec::new();
    let toks = view.tokens;
    let path = view.path.replace('\\', "/");

    // Invariant 1: blocking device calls outside the execute path.
    if path.ends_with("crates/flash/src/queue.rs") || path.ends_with("fixtures/queue.rs") {
        for item in view.fn_items() {
            if item.body.start < toks.len() && !view.is_production(item.body.start) {
                continue;
            }
            if EXECUTE_FNS.contains(&item.name.as_str()) {
                continue;
            }
            for i in item.body.clone() {
                if BLOCKING_DEVICE_CALLS.contains(&toks[i].text.as_str())
                    && is_method_call(toks, i, &toks[i].text)
                {
                    out.push(RawFinding {
                        rule: RULE,
                        line: toks[i].line,
                        message: format!(
                            "blocking device call `.{}()` reachable from `{}`; completion/poll \
                             paths must not touch the NAND device directly",
                            toks[i].text, item.name
                        ),
                    });
                }
            }
        }
    }

    // Invariant 2: dropped Completion results.
    if !SCOPES.iter().any(|s| path.contains(s)) {
        return out;
    }
    for (i, t) in toks.iter().enumerate() {
        if !view.is_production(i) || !COMPLETION_CALLS.contains(&t.text.as_str()) {
            continue;
        }
        if !is_method_call(toks, i, &t.text) {
            continue;
        }
        // `drain` is also a std collection method; the queue's variant is
        // nullary, so an argument list (e.g. `vec.drain(..)`) exempts it.
        if t.text == "drain" && !toks.get(i + 2).is_some_and(|n| n.is_punct(')')) {
            continue;
        }
        let Some(close) = matching_paren(toks, i + 1) else { continue };
        // Chained consumption (`?`, `.is_err()`, `.into_iter()`) counts
        // as observing the result.
        let consumed_after = toks.get(close + 1).is_some_and(|n| !n.is_punct(';'));
        if consumed_after {
            continue;
        }
        // Look back to the start of the statement for a binding or
        // control-flow use of the value.
        let start = statement_start(toks, i);
        let discarded_into_underscore = toks[start..i]
            .windows(3)
            .any(|w| w[0].is_ident("let") && w[1].is_ident("_") && w[2].is_punct('='));
        let bound = !discarded_into_underscore
            && toks[start..i].iter().any(|t| {
                t.is_punct('=')
                    || t.is_ident("return")
                    || t.is_ident("match")
                    || t.is_ident("if")
                    || t.is_ident("while")
                    || t.is_ident("for")
            });
        if !bound {
            out.push(RawFinding {
                rule: RULE,
                line: t.line,
                message: format!(
                    "result of `.{}()` is dropped; a Completion carries the device error and \
                     must be checked",
                    t.text
                ),
            });
        }
    }
    out
}

/// Index of the `)` matching the `(` at `open`.
fn matching_paren(toks: &[crate::lexer::Tok], open: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (j, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct('(') {
            depth += 1;
        } else if t.is_punct(')') {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

/// Walk back from token `i` to the statement boundary (`;`, `{` or `}`).
fn statement_start(toks: &[crate::lexer::Tok], i: usize) -> usize {
    let mut j = i;
    while j > 0 {
        let t = &toks[j - 1];
        if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
            break;
        }
        j -= 1;
    }
    j
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn run(path: &str, src: &str) -> Vec<RawFinding> {
        let lexed = lex(src);
        let view = FileView::new(path, &lexed.tokens);
        check(&view)
    }

    #[test]
    fn dropped_wait_is_flagged() {
        let f = run("crates/flash/src/queue.rs", "fn f(q: &Q, h: H) { q.wait(h); }");
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("dropped"));
    }

    #[test]
    fn let_underscore_wait_is_flagged() {
        let f = run("crates/core/src/manager.rs", "fn f(q: &Q, h: H) { let _ = q.wait(h); }");
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn bound_wait_is_fine() {
        let src = "fn f(q: &Q, h: H) -> R { let c = q.wait(h); if q.poll(h).is_some() { } c }";
        assert!(run("crates/flash/src/queue.rs", src).is_empty());
    }

    #[test]
    fn propagated_wait_is_fine() {
        let src = "fn f(q: &Q, h: H) -> Result<(), E> { q.wait(h)?; Ok(()) }";
        assert!(run("crates/flash/src/queue.rs", src).is_empty());
    }

    #[test]
    fn vec_drain_with_range_is_fine() {
        let src = "fn f(v: &mut Vec<u8>) { v.drain(..); }";
        assert!(run("crates/core/src/kv/store.rs", src).is_empty());
    }

    #[test]
    fn nullary_drain_dropped_is_flagged() {
        let f = run("crates/flash/src/queue.rs", "fn f(q: &Q) { q.drain(); }");
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn blocking_device_call_outside_execute_is_flagged() {
        let src = "fn poll_inner(&self) { self.dev.read_page(a, b); }\nfn execute(&self) { self.dev.read_page(a, b); }";
        let f = run("crates/flash/src/queue.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("poll_inner"));
    }
}
