//! Lock-order rule.
//!
//! The workspace documents a total order on lock classes
//! (`flash_sim::lockorder::LockClass`):
//!
//! ```text
//! Manager < PendingIo < Queue < Arbiter < Die(id asc) < Channel(id asc) < Shared
//! ```
//!
//! All acquisitions go through named choke points, so a token-level scan
//! can model them: within one function body the sequence of choke-point
//! calls must be non-decreasing in rank, and no shard choke may appear
//! twice (re-entry on a non-reentrant mutex deadlocks; two textual
//! acquisitions are legal only when the first guard is provably dropped,
//! which the author asserts with `analyzer:allow(lock_order)`).
//!
//! The rule also forbids raw `.lock(` calls in the files that own the
//! choke points — every acquisition must flow through them, or the
//! runtime sanitizer is blind.

use super::{is_call, is_method_call, FileView, RawFinding};

/// Rule name for `analyzer:allow`.
pub const RULE: &str = "lock_order";

/// Choke-point names and their rank in the documented order.  Die-class
/// entries share a rank: ascending die ids within the class are checked
/// by the runtime sanitizer, not statically.
const RANKS: &[(&str, u8)] = &[
    ("lock_inner", 0),      // LockClass::Manager
    ("lock_pending_io", 1), // LockClass::PendingIo
    ("queue_shard", 2),     // LockClass::Queue
    ("arbiter_shard", 3),   // LockClass::Arbiter
    ("die_shard", 4),       // LockClass::Die(_)
    ("lock_all_dies", 4),   // LockClass::Die(ascending sweep)
    ("channel_shard", 5),   // LockClass::Channel(_)
    ("shared_shard", 6),    // LockClass::Shared
];

/// Files in which raw `.lock(` calls are forbidden outside the choke
/// points themselves (matched by path suffix).
const CHOKE_FILES: &[&str] = &["device.rs", "queue.rs", "manager.rs"];

fn rank_of(name: &str) -> Option<u8> {
    RANKS.iter().find(|(n, _)| *n == name).map(|(_, r)| *r)
}

/// Run the rule over one file.
pub fn check(view: &FileView<'_>) -> Vec<RawFinding> {
    let mut out = Vec::new();
    let toks = view.tokens;

    for item in view.fn_items() {
        // Skip test fns entirely; their first body token carries the mask.
        if item.body.start < toks.len() && !view.is_production(item.body.start) {
            continue;
        }
        // Choke-point definitions acquire their own lock by design.
        let defines_choke = rank_of(&item.name).is_some();

        let mut seen: Vec<(&str, u8, u32)> = Vec::new();
        for i in item.body.clone() {
            let Some(rank) = rank_of(&toks[i].text) else { continue };
            if !is_call(toks, i, &toks[i].text.clone()) {
                continue;
            }
            let name =
                RANKS.iter().find(|(n, _)| *n == toks[i].text).map(|(n, _)| *n).unwrap_or("");
            let line = toks[i].line;

            if let Some((prev_name, _, prev_line)) = seen.iter().find(|(n, _, _)| *n == name) {
                out.push(RawFinding {
                    rule: RULE,
                    line,
                    message: format!(
                        "possible re-entry: `{prev_name}` acquired again in `{}` (first acquisition at line {prev_line}); \
                         if the first guard is dropped before this point, say so with an analyzer:allow",
                        item.name
                    ),
                });
            } else if let Some((prev_name, prev_rank, prev_line)) =
                seen.iter().rev().find(|(_, r, _)| *r > rank)
            {
                out.push(RawFinding {
                    rule: RULE,
                    line,
                    message: format!(
                        "lock-order violation in `{}`: `{name}` (rank {rank}) acquired after \
                         `{prev_name}` (rank {prev_rank}, line {prev_line}); documented order is \
                         Manager < PendingIo < Queue < Arbiter < Die < Channel < Shared",
                        item.name
                    ),
                });
            }
            seen.push((name, rank, line));
        }

        // Raw `.lock(` calls bypass the sanitizer.
        if !defines_choke && CHOKE_FILES.iter().any(|f| view.path.ends_with(f)) {
            for i in item.body.clone() {
                if view.is_production(i) && is_method_call(toks, i, "lock") {
                    out.push(RawFinding {
                        rule: RULE,
                        line: toks[i].line,
                        message: format!(
                            "raw `.lock()` in `{}` bypasses the lock-order sanitizer; \
                             acquire through a lockorder choke point instead",
                            item.name
                        ),
                    });
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn run(path: &str, src: &str) -> Vec<RawFinding> {
        let lexed = lex(src);
        let view = FileView::new(path, &lexed.tokens);
        check(&view)
    }

    #[test]
    fn ascending_choke_calls_are_clean() {
        let src = "fn f(&self) { let d = self.die_shard(0); let c = self.channel_shard(1); let s = self.shared_shard(); }";
        assert!(run("crates/flash/src/device.rs", src).is_empty());
    }

    #[test]
    fn arbiter_sits_between_queue_and_die() {
        let clean = "fn f(&self) { let q = self.queue_shard(); let a = self.arbiter_shard(s); let d = self.die_shard(0); }";
        assert!(run("crates/flash/src/device.rs", clean).is_empty());
        let bad = "fn f(&self) { let d = self.die_shard(0); let a = self.arbiter_shard(s); }";
        let f = run("crates/flash/src/device.rs", bad);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("lock-order violation"));
    }

    #[test]
    fn descending_choke_calls_are_flagged() {
        let src = "fn f(&self) { let c = self.channel_shard(1); let d = self.die_shard(0); }";
        let f = run("crates/flash/src/device.rs", src);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("lock-order violation"));
    }

    #[test]
    fn re_entry_is_flagged() {
        let src = "fn f(&self) { let a = self.queue_shard(); let b = self.queue_shard(); }";
        let f = run("crates/flash/src/queue.rs", src);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("re-entry"));
    }

    #[test]
    fn raw_lock_in_choke_file_is_flagged() {
        let src = "fn f(&self) { let g = self.inner.lock(); }";
        let f = run("crates/flash/src/queue.rs", src);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("raw `.lock()`"));
    }

    #[test]
    fn raw_lock_elsewhere_is_not_this_rules_business() {
        let src = "fn f(&self) { let g = self.inner.lock(); }";
        assert!(run("crates/flash/src/lockorder.rs", src).is_empty());
    }

    #[test]
    fn test_functions_are_ignored() {
        let src = "#[test]\nfn t() { let c = x.channel_shard(1); let d = x.die_shard(0); }";
        assert!(run("crates/flash/src/device.rs", src).is_empty());
    }
}
