//! `noftl-analyzer` — repo-wide invariant linter for the NoFTL workspace.
//!
//! A hand-rolled token scanner (no external parser) over the workspace's
//! Rust sources, with three pluggable rules:
//!
//! * [`rules::lock_order`] — acquisitions of the die/channel/shared shard
//!   locks in `crates/flash` and the manager/pending-io locks in
//!   `crates/core` must follow the documented total order and go through
//!   the named choke points.
//! * [`rules::panic_freedom`] — no `unwrap`/`expect`/`panic!`-family code
//!   in production paths of `crates/flash` and `crates/core`; direct
//!   indexing is additionally denied on the per-command hot path.
//! * [`rules::queue_discipline`] — no blocking `NandDevice` calls
//!   reachable from `CommandQueue` completion/poll paths, and no
//!   `Completion` results dropped unchecked.
//!
//! Findings can be suppressed case-by-case with
//! `// analyzer:allow(<rule>) <justification>`; the justification is
//! mandatory and directives that are malformed, name an unknown rule, or
//! no longer match a finding are themselves reported.
//!
//! The companion *runtime* half of this design lives in
//! `flash_sim::lockorder`: a debug-only thread-local held-lock stack that
//! panics on out-of-order or recursive acquisition.  The static rule
//! checks what the tests never execute; the sanitizer checks what the
//! lexer cannot see.

pub mod allow;
pub mod lexer;
pub mod report;
pub mod rules;

use std::fs;
use std::path::{Path, PathBuf};

use allow::Suppressions;
use report::{Analysis, Finding};
use rules::FileView;

/// Analyze one source file presented as a string.  `path` is used for
/// rule scoping (several rules key on the file's workspace-relative
/// path) and for reporting; it does not need to exist on disk.
pub fn analyze_source(path: &str, src: &str) -> Analysis {
    let lexed = lexer::lex(src);
    let view = FileView::new(path, &lexed.tokens);

    let mut raw = Vec::new();
    raw.extend(rules::lock_order::check(&view));
    raw.extend(rules::panic_freedom::check(&view));
    raw.extend(rules::queue_discipline::check(&view));

    let mut suppressions = Suppressions::new(allow::parse(&lexed.comments));
    let mut analysis = Analysis { files_scanned: 1, ..Analysis::default() };
    for f in raw {
        if suppressions.suppresses(f.rule, f.line) {
            analysis.suppressed += 1;
        } else {
            analysis.findings.push(Finding {
                file: path.to_string(),
                line: f.line,
                rule: f.rule,
                message: f.message,
            });
        }
    }
    for (line, message) in suppressions.problems() {
        analysis.findings.push(Finding {
            file: path.to_string(),
            line,
            rule: "allow_directive",
            message,
        });
    }
    analysis.sort();
    analysis
}

/// Analyze every `.rs` file under the given roots (files are accepted
/// too).  Paths are reported relative to `strip_prefix` when possible.
pub fn analyze_paths(roots: &[PathBuf], strip_prefix: Option<&Path>) -> std::io::Result<Analysis> {
    let mut files = Vec::new();
    for root in roots {
        collect_rs_files(root, &mut files)?;
    }
    files.sort();
    files.dedup();

    let mut total = Analysis::default();
    for file in &files {
        let src = fs::read_to_string(file)?;
        let display = strip_prefix
            .and_then(|p| file.strip_prefix(p).ok())
            .unwrap_or(file)
            .to_string_lossy()
            .replace('\\', "/");
        let one = analyze_source(&display, &src);
        total.findings.extend(one.findings);
        total.files_scanned += one.files_scanned;
        total.suppressed += one.suppressed;
    }
    total.sort();
    Ok(total)
}

/// Recursively collect `.rs` files, skipping build output.
fn collect_rs_files(path: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    if path.is_file() {
        if path.extension().is_some_and(|e| e == "rs") {
            out.push(path.to_path_buf());
        }
        return Ok(());
    }
    if path.file_name().is_some_and(|n| n == "target") {
        return Ok(());
    }
    for entry in fs::read_dir(path)? {
        collect_rs_files(&entry?.path(), out)?;
    }
    Ok(())
}

/// Default analysis roots, relative to the workspace root: the crates
/// whose invariants the rules model.
pub const DEFAULT_ROOTS: &[&str] =
    &["crates/flash/src", "crates/core/src", "crates/obs/src", "crates/mirror/src"];

/// Seeded-violation fixtures: each embeds a known bug class with the
/// virtual path that puts it in the corresponding rule's scope.
const FIXTURES: &[(&str, &str, &str)] = &[
    (
        "crates/flash/src/device.rs",
        include_str!("../fixtures/reversed_lock_order.rs"),
        rules::lock_order::RULE,
    ),
    (
        "crates/core/src/manager.rs",
        include_str!("../fixtures/naked_unwrap.rs"),
        rules::panic_freedom::RULE,
    ),
    (
        "crates/flash/src/queue.rs",
        include_str!("../fixtures/dropped_completion.rs"),
        rules::queue_discipline::RULE,
    ),
];

/// The clean fixture: idiomatic code, including one justified allow, that
/// must produce zero findings.
const CLEAN_FIXTURE: (&str, &str) =
    ("crates/flash/src/device.rs", include_str!("../fixtures/clean.rs"));

/// Self-check: prove each seeded-violation fixture is caught by its rule
/// and that the clean fixture passes.  CI runs this before trusting a
/// clean workspace report — a linter that cannot find a planted bug is
/// not reporting "no bugs", it is reporting nothing.
pub fn self_check() -> Result<(), String> {
    let mut errors = Vec::new();
    for (path, src, expected_rule) in FIXTURES {
        let analysis = analyze_source(path, src);
        if !analysis.findings.iter().any(|f| f.rule == *expected_rule) {
            errors.push(format!(
                "fixture `{path}` did not trigger rule `{expected_rule}` (findings: {:?})",
                analysis.findings.iter().map(|f| f.rule).collect::<Vec<_>>()
            ));
        }
    }
    let (clean_path, clean_src) = CLEAN_FIXTURE;
    let analysis = analyze_source(clean_path, clean_src);
    if !analysis.findings.is_empty() {
        errors.push(format!(
            "clean fixture produced findings: {}",
            analysis.findings.iter().map(|f| f.to_string()).collect::<Vec<_>>().join("; ")
        ));
    }
    if analysis.suppressed != 1 {
        errors.push(format!(
            "clean fixture should exercise exactly one justified allow (suppressed = {})",
            analysis.suppressed
        ));
    }
    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors.join("\n"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn self_check_passes() {
        if let Err(e) = self_check() {
            panic!("self-check failed:\n{e}");
        }
    }

    #[test]
    fn suppressed_findings_are_counted_not_reported() {
        let src = "fn f() {\n    // analyzer:allow(panic_freedom) config validated at construction time\n    x.unwrap();\n}\n";
        let a = analyze_source("crates/core/src/manager.rs", src);
        assert!(a.findings.is_empty(), "{:?}", a.findings);
        assert_eq!(a.suppressed, 1);
    }

    #[test]
    fn stale_allow_is_reported() {
        let src = "// analyzer:allow(panic_freedom) nothing below actually panics\nfn f() { }\n";
        let a = analyze_source("crates/core/src/manager.rs", src);
        assert_eq!(a.findings.len(), 1);
        assert_eq!(a.findings[0].rule, "allow_directive");
        assert!(a.findings[0].message.contains("stale"));
    }

    #[test]
    fn unjustified_allow_is_reported_and_does_not_suppress() {
        let src = "fn f() {\n    x.unwrap(); // analyzer:allow(panic_freedom) ok\n}\n";
        let a = analyze_source("crates/core/src/manager.rs", src);
        let rules: Vec<&str> = a.findings.iter().map(|f| f.rule).collect();
        assert!(rules.contains(&"panic_freedom"), "{rules:?}");
        assert!(rules.contains(&"allow_directive"), "{rules:?}");
    }
}
