//! A hand-rolled token scanner for Rust source.
//!
//! The analyzer has no crates.io access, so there is no `syn`; a
//! token-level scan is the right altitude for the rules it checks anyway:
//! every rule keys on identifier/punctuation sequences (`.unwrap(`,
//! `die_shard(`, `#[test]`), none needs a full syntax tree.  The lexer
//! handles the parts that a naive text search gets wrong — comments
//! (line, nested block, doc), string/char/lifetime literals, raw strings —
//! so `"panic!"` inside a string literal or a doc example is never
//! mistaken for code.

/// The coarse kind of one token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident,
    /// Numeric literal (integer part only; `1.5` lexes as `1`, `.`, `5`).
    Num,
    /// String or byte-string literal (cooked or raw).
    Str,
    /// Character literal.
    Char,
    /// Lifetime (`'a`).
    Lifetime,
    /// A single punctuation character.
    Punct,
}

/// One token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Token kind.
    pub kind: TokKind,
    /// Exact source text (a single character for punctuation).
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
}

impl Tok {
    /// Whether this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// Whether this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == 1 && self.text.starts_with(c)
    }
}

/// Lexer output: the token stream plus every `//` comment (the carrier of
/// `analyzer:allow` directives) with its line number.
#[derive(Debug, Default)]
pub struct Lexed {
    /// All non-comment tokens in source order.
    pub tokens: Vec<Tok>,
    /// `(line, text)` of every line comment, `//` included.
    pub comments: Vec<(u32, String)>,
}

/// Lex `src` into tokens and line comments.  The scanner never fails: a
/// malformed literal at end-of-input simply terminates the stream.
pub fn lex(src: &str) -> Lexed {
    let bytes = src.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1u32;

    // Track newlines while advancing from `from` to `to`.
    let count_lines = |bytes: &[u8], from: usize, to: usize| -> u32 {
        bytes[from..to.min(bytes.len())].iter().filter(|&&b| b == b'\n').count() as u32
    };

    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b if b.is_ascii_whitespace() => i += 1,
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                let end = bytes[i..]
                    .iter()
                    .position(|&b| b == b'\n')
                    .map(|p| i + p)
                    .unwrap_or(bytes.len());
                out.comments.push((line, src[i..end].to_string()));
                i = end;
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                // Nested block comment.
                let mut depth = 1u32;
                let mut j = i + 2;
                while j < bytes.len() && depth > 0 {
                    if bytes[j] == b'/' && bytes.get(j + 1) == Some(&b'*') {
                        depth += 1;
                        j += 2;
                    } else if bytes[j] == b'*' && bytes.get(j + 1) == Some(&b'/') {
                        depth -= 1;
                        j += 2;
                    } else {
                        j += 1;
                    }
                }
                line += count_lines(bytes, i, j);
                i = j;
            }
            b'"' => {
                let j = scan_string(bytes, i + 1);
                out.tokens.push(Tok { kind: TokKind::Str, text: src[i..j].to_string(), line });
                line += count_lines(bytes, i, j);
                i = j;
            }
            b'\'' => {
                // Lifetime vs char literal: `'ident` not followed by a
                // closing quote is a lifetime.
                let is_lifetime = matches!(bytes.get(i + 1), Some(c) if c.is_ascii_alphabetic() || *c == b'_')
                    && bytes.get(i + 2) != Some(&b'\'');
                if is_lifetime {
                    let mut j = i + 1;
                    while j < bytes.len() && (bytes[j].is_ascii_alphanumeric() || bytes[j] == b'_')
                    {
                        j += 1;
                    }
                    out.tokens.push(Tok {
                        kind: TokKind::Lifetime,
                        text: src[i..j].to_string(),
                        line,
                    });
                    i = j;
                } else {
                    let mut j = i + 1;
                    while j < bytes.len() {
                        match bytes[j] {
                            b'\\' => j += 2,
                            b'\'' => {
                                j += 1;
                                break;
                            }
                            _ => j += 1,
                        }
                    }
                    out.tokens.push(Tok { kind: TokKind::Char, text: src[i..j].to_string(), line });
                    i = j;
                }
            }
            b'r' | b'b' if starts_raw_or_byte_string(bytes, i) => {
                let j = scan_raw_or_byte_string(bytes, i);
                out.tokens.push(Tok { kind: TokKind::Str, text: src[i..j].to_string(), line });
                line += count_lines(bytes, i, j);
                i = j;
            }
            b if b.is_ascii_alphabetic() || b == b'_' => {
                let mut j = i + 1;
                while j < bytes.len() && (bytes[j].is_ascii_alphanumeric() || bytes[j] == b'_') {
                    j += 1;
                }
                out.tokens.push(Tok { kind: TokKind::Ident, text: src[i..j].to_string(), line });
                i = j;
            }
            b if b.is_ascii_digit() => {
                // Digits, `_` separators and alphanumeric suffixes/radix
                // prefixes; dots are left out so `0..n` lexes cleanly.
                let mut j = i + 1;
                while j < bytes.len() && (bytes[j].is_ascii_alphanumeric() || bytes[j] == b'_') {
                    j += 1;
                }
                out.tokens.push(Tok { kind: TokKind::Num, text: src[i..j].to_string(), line });
                i = j;
            }
            _ => {
                out.tokens.push(Tok {
                    kind: TokKind::Punct,
                    text: src[i..i + 1].to_string(),
                    line,
                });
                i += 1;
            }
        }
    }
    out
}

/// Scan a cooked string body starting *after* the opening quote; returns
/// the index one past the closing quote.
fn scan_string(bytes: &[u8], mut j: usize) -> usize {
    while j < bytes.len() {
        match bytes[j] {
            b'\\' => j += 2,
            b'"' => return j + 1,
            _ => j += 1,
        }
    }
    j
}

/// Does `r"`, `r#"`, `b"`, `br#"`, ... start at `i`?
fn starts_raw_or_byte_string(bytes: &[u8], i: usize) -> bool {
    let mut j = i;
    // Optional second prefix letter (`br`, `rb` is not legal Rust but
    // accepting it is harmless for a linter).
    if matches!(bytes.get(j), Some(b'r') | Some(b'b')) {
        j += 1;
    }
    if matches!(bytes.get(j), Some(b'r') | Some(b'b')) && bytes.get(j) != bytes.get(i) {
        j += 1;
    }
    while bytes.get(j) == Some(&b'#') {
        j += 1;
    }
    bytes.get(j) == Some(&b'"')
}

/// Scan a raw/byte string starting at its prefix; returns the index one
/// past the closing delimiter.
fn scan_raw_or_byte_string(bytes: &[u8], i: usize) -> usize {
    let mut j = i;
    while matches!(bytes.get(j), Some(b'r') | Some(b'b')) {
        j += 1;
    }
    let mut hashes = 0usize;
    while bytes.get(j) == Some(&b'#') {
        hashes += 1;
        j += 1;
    }
    if bytes.get(j) != Some(&b'"') {
        return i + 1; // Not actually a string; treat the letter as consumed.
    }
    j += 1;
    if hashes == 0 {
        // A raw string without hashes still ignores escapes.
        while j < bytes.len() {
            if bytes[j] == b'"' {
                return j + 1;
            }
            j += 1;
        }
        return j;
    }
    while j < bytes.len() {
        if bytes[j] == b'"'
            && bytes[j + 1..].iter().take(hashes).filter(|&&b| b == b'#').count() == hashes
        {
            return j + 1 + hashes;
        }
        j += 1;
    }
    j
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src).tokens.into_iter().filter(|t| t.kind == TokKind::Ident).map(|t| t.text).collect()
    }

    #[test]
    fn strings_and_comments_are_not_code() {
        let src = r##"
// panic! in a comment
/* unwrap() in /* a nested */ block comment */
let s = "panic!(\"inside a string\")";
let r = r#"unwrap() inside a raw string"#;
let c = 'x';
"##;
        let ids = idents(src);
        assert!(!ids.contains(&"panic".to_string()));
        assert!(!ids.contains(&"unwrap".to_string()));
        assert!(ids.contains(&"let".to_string()));
    }

    #[test]
    fn line_comments_are_captured_with_line_numbers() {
        let src = "let a = 1;\n// analyzer:allow(panic_freedom) reason\nlet b = 2;\n";
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 1);
        assert_eq!(lexed.comments[0].0, 2);
        assert!(lexed.comments[0].1.contains("analyzer:allow"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let lexed = lex("fn f<'a>(x: &'a str) -> char { 'b' }");
        let lifetimes: Vec<_> =
            lexed.tokens.iter().filter(|t| t.kind == TokKind::Lifetime).collect();
        assert_eq!(lifetimes.len(), 2);
        let chars: Vec<_> = lexed.tokens.iter().filter(|t| t.kind == TokKind::Char).collect();
        assert_eq!(chars.len(), 1);
        assert_eq!(chars[0].text, "'b'");
    }

    #[test]
    fn token_lines_are_one_based_and_accurate() {
        let lexed = lex("a\n\nb . c\n\"multi\nline\"\nd");
        let find = |name: &str| lexed.tokens.iter().find(|t| t.text == name).unwrap().line;
        assert_eq!(find("a"), 1);
        assert_eq!(find("b"), 3);
        assert_eq!(find("c"), 3);
        assert_eq!(find("d"), 6, "multi-line string advances the line counter");
    }

    #[test]
    fn ranges_do_not_swallow_numbers() {
        let lexed = lex("for i in 0..10 {}");
        let nums: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Num)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(nums, vec!["0", "10"]);
    }
}
