//! Finding and report types shared by all rules.

use std::fmt;

/// One diagnostic emitted by a rule.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Workspace-relative path of the offending file.
    pub file: String,
    /// 1-based line number.
    pub line: u32,
    /// Rule that produced the finding (`lock_order`, `panic_freedom`,
    /// `queue_discipline`, or `allow_directive` for escape-hatch misuse).
    pub rule: &'static str,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.file, self.line, self.rule, self.message)
    }
}

/// Aggregate result of analyzing a set of files.
#[derive(Debug, Default)]
pub struct Analysis {
    /// All findings, in file/line order.
    pub findings: Vec<Finding>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Number of findings suppressed by valid `analyzer:allow` directives.
    pub suppressed: usize,
}

impl Analysis {
    /// Sort findings by file then line for stable output.
    pub fn sort(&mut self) {
        self.findings.sort_by(|a, b| (a.file.as_str(), a.line).cmp(&(b.file.as_str(), b.line)));
    }
}
