//! `analyzer:allow` escape-hatch directives.
//!
//! A finding can be suppressed with a line comment of the form
//!
//! ```text
//! // analyzer:allow(<rule>) <justification>
//! ```
//!
//! placed either on the same line as the flagged code or on its own line
//! directly above it.  The justification is mandatory and verified: it
//! must be real prose (at least three words), so `// analyzer:allow(x) ok`
//! does not silence the linter.  Directives naming an unknown rule are
//! themselves reported, as are directives that never matched a finding
//! (a stale allow is a lie about the code below it).

use std::collections::BTreeSet;

/// One parsed `analyzer:allow` directive.
#[derive(Debug, Clone)]
pub struct AllowDirective {
    /// 1-based line of the comment carrying the directive.
    pub line: u32,
    /// Rule name inside the parentheses.
    pub rule: String,
    /// Justification text following the closing parenthesis.
    pub justification: String,
    /// Problems with the directive itself (missing/short justification,
    /// unknown rule).  Non-empty means the directive is invalid and does
    /// not suppress anything.
    pub errors: Vec<String>,
}

/// The set of rule names a directive may reference.
pub const KNOWN_RULES: &[&str] = &["lock_order", "panic_freedom", "queue_discipline"];

const MARKER: &str = "analyzer:allow";

/// Minimum number of whitespace-separated words for a justification to
/// count as one.
const MIN_JUSTIFICATION_WORDS: usize = 3;

/// Extract every `analyzer:allow` directive from the line comments
/// produced by the lexer.
pub fn parse(comments: &[(u32, String)]) -> Vec<AllowDirective> {
    let mut out = Vec::new();
    for (line, text) in comments {
        let Some(pos) = text.find(MARKER) else { continue };
        let rest = &text[pos + MARKER.len()..];
        let mut errors = Vec::new();

        let (rule, justification) = match rest.strip_prefix('(').and_then(|r| r.split_once(')')) {
            Some((rule, just)) => (rule.trim().to_string(), just.trim().to_string()),
            None => {
                errors.push(
                    "malformed directive: expected `analyzer:allow(<rule>) <justification>`"
                        .to_string(),
                );
                (String::new(), String::new())
            }
        };

        if !rule.is_empty() && !KNOWN_RULES.contains(&rule.as_str()) {
            errors.push(format!("unknown rule `{rule}` (known rules: {})", KNOWN_RULES.join(", ")));
        }
        if errors.is_empty() && justification.split_whitespace().count() < MIN_JUSTIFICATION_WORDS {
            errors.push(format!(
                "justification must explain the exception in at least {MIN_JUSTIFICATION_WORDS} words"
            ));
        }

        out.push(AllowDirective { line: *line, rule, justification, errors });
    }
    out
}

/// Matches findings against directives for one file.
#[derive(Debug)]
pub struct Suppressions {
    directives: Vec<AllowDirective>,
    used: BTreeSet<usize>,
}

impl Suppressions {
    /// Build the suppression table from parsed directives.
    pub fn new(directives: Vec<AllowDirective>) -> Self {
        Self { directives, used: BTreeSet::new() }
    }

    /// If a valid directive for `rule` covers `line`, consume it and
    /// return `true`.  A directive covers its own line (trailing comment)
    /// and the lines in between when it sits on its own line directly
    /// above the code (allowing for the code to start a few lines later,
    /// e.g. below a multi-line comment block it concludes).
    pub fn suppresses(&mut self, rule: &str, line: u32) -> bool {
        for (idx, d) in self.directives.iter().enumerate() {
            if !d.errors.is_empty() || d.rule != rule {
                continue;
            }
            // Same line, or directive within the three lines above the
            // finding (own-line comment immediately preceding the code).
            if line >= d.line && line - d.line <= 3 {
                self.used.insert(idx);
                return true;
            }
        }
        false
    }

    /// Directives that are malformed, plus valid ones that never matched
    /// a finding — both are reported so the escape hatch stays honest.
    pub fn problems(&self) -> Vec<(u32, String)> {
        let mut out = Vec::new();
        for (idx, d) in self.directives.iter().enumerate() {
            for e in &d.errors {
                out.push((d.line, format!("invalid analyzer:allow directive: {e}")));
            }
            if d.errors.is_empty() && !self.used.contains(&idx) {
                out.push((
                    d.line,
                    format!(
                        "stale analyzer:allow({}) directive: no matching finding on or below this line",
                        d.rule
                    ),
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn directive(text: &str) -> AllowDirective {
        let parsed = parse(&[(7, text.to_string())]);
        assert_eq!(parsed.len(), 1);
        parsed.into_iter().next().unwrap()
    }

    #[test]
    fn well_formed_directive_parses() {
        let d = directive("// analyzer:allow(panic_freedom) slice length checked two lines above");
        assert!(d.errors.is_empty(), "{:?}", d.errors);
        assert_eq!(d.rule, "panic_freedom");
        assert!(d.justification.starts_with("slice length"));
    }

    #[test]
    fn unknown_rule_is_an_error() {
        let d = directive("// analyzer:allow(made_up_rule) some plausible words here");
        assert!(d.errors.iter().any(|e| e.contains("unknown rule")));
    }

    #[test]
    fn short_justification_is_an_error() {
        let d = directive("// analyzer:allow(lock_order) ok");
        assert!(d.errors.iter().any(|e| e.contains("justification")));
    }

    #[test]
    fn suppression_covers_same_and_following_lines() {
        let d =
            directive("// analyzer:allow(lock_order) two disjoint lock sections explained here");
        let mut s = Suppressions::new(vec![d]);
        assert!(s.suppresses("lock_order", 7), "same line");
        assert!(s.problems().is_empty());
    }

    #[test]
    fn directive_does_not_cover_far_away_lines() {
        let d =
            directive("// analyzer:allow(lock_order) two disjoint lock sections explained here");
        let mut s = Suppressions::new(vec![d]);
        assert!(!s.suppresses("lock_order", 30));
        assert!(!s.suppresses("lock_order", 6), "directive never covers lines above it");
        // Unused valid directive is reported as stale.
        assert_eq!(s.problems().len(), 1);
        assert!(s.problems()[0].1.contains("stale"));
    }

    #[test]
    fn wrong_rule_does_not_suppress() {
        let d = directive("// analyzer:allow(panic_freedom) length checked right above this");
        let mut s = Suppressions::new(vec![d]);
        assert!(!s.suppresses("lock_order", 7));
    }
}
