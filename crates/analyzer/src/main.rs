//! CLI for the workspace invariant linter.
//!
//! ```text
//! noftl-analyzer [--deny-warnings] [--self-check] [PATH ...]
//! ```
//!
//! With no paths, scans the default roots (`crates/flash/src`,
//! `crates/core/src`) relative to the current directory.  Exit codes:
//! `0` clean (or findings without `--deny-warnings`), `1` findings under
//! `--deny-warnings`, `2` self-check failure or I/O error.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut deny = false;
    let mut self_check = false;
    let mut paths: Vec<PathBuf> = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--deny-warnings" => deny = true,
            "--self-check" => self_check = true,
            "--help" | "-h" => {
                println!("usage: noftl-analyzer [--deny-warnings] [--self-check] [PATH ...]");
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                eprintln!("noftl-analyzer: unknown flag `{other}`");
                return ExitCode::from(2);
            }
            other => paths.push(PathBuf::from(other)),
        }
    }

    if self_check {
        return match noftl_analyzer::self_check() {
            Ok(()) => {
                println!("self-check: all seeded-violation fixtures detected, clean fixture clean");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("self-check FAILED:\n{e}");
                ExitCode::from(2)
            }
        };
    }

    let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    if paths.is_empty() {
        paths = noftl_analyzer::DEFAULT_ROOTS.iter().map(PathBuf::from).collect();
        if let Some(missing) = paths.iter().find(|p| !p.exists()) {
            eprintln!(
                "noftl-analyzer: default root `{}` not found; run from the workspace root or pass paths",
                missing.display()
            );
            return ExitCode::from(2);
        }
    }

    match noftl_analyzer::analyze_paths(&paths, Some(Path::new(&cwd))) {
        Ok(analysis) => {
            for f in &analysis.findings {
                println!("{f}");
            }
            println!(
                "noftl-analyzer: {} file(s) scanned, {} finding(s), {} suppressed by analyzer:allow",
                analysis.files_scanned,
                analysis.findings.len(),
                analysis.suppressed
            );
            if !analysis.findings.is_empty() && deny {
                ExitCode::from(1)
            } else {
                ExitCode::SUCCESS
            }
        }
        Err(e) => {
            eprintln!("noftl-analyzer: {e}");
            ExitCode::from(2)
        }
    }
}
