//! The seeded-violation fixtures must be caught.  This is the same check
//! CI runs via `noftl-analyzer --self-check`; duplicating it as a cargo
//! test keeps plain `cargo test` honest about analyzer health.

#[test]
fn seeded_violations_are_detected_and_clean_fixture_passes() {
    if let Err(e) = noftl_analyzer::self_check() {
        panic!("analyzer self-check failed:\n{e}");
    }
}
