//! The real workspace sources must analyze clean.  This runs the same
//! scan as `noftl-analyzer --deny-warnings` in CI: any new unwrap,
//! out-of-order lock acquisition or dropped completion in the scoped
//! crates fails `cargo test` locally before CI ever sees it.

use std::path::PathBuf;

#[test]
fn flash_and_core_sources_have_no_findings() {
    let workspace = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let roots: Vec<PathBuf> =
        noftl_analyzer::DEFAULT_ROOTS.iter().map(|r| workspace.join(r)).collect();
    for root in &roots {
        assert!(root.is_dir(), "analysis root missing: {}", root.display());
    }
    let analysis = noftl_analyzer::analyze_paths(&roots, Some(&workspace))
        .expect("workspace sources are readable");
    assert!(analysis.files_scanned > 10, "suspiciously few files scanned");
    assert!(
        analysis.findings.is_empty(),
        "workspace has analyzer findings:\n{}",
        analysis.findings.iter().map(|f| f.to_string()).collect::<Vec<_>>().join("\n")
    );
}
