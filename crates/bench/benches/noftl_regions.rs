//! Micro-benchmarks of the NoFTL storage manager: the write path with and
//! without hot/cold separation into regions (the mechanism behind the
//! paper's Figure 3), and the placement advisor.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;

use flash_sim::{DeviceBuilder, FlashGeometry, SimTime, TimingModel};
use noftl_core::{NoFtl, NoFtlConfig, ObjectProfile, PlacementAdvisor, RegionSpec};

fn make_noftl() -> Arc<NoFtl> {
    let device = Arc::new(
        DeviceBuilder::new(FlashGeometry::example())
            .timing(TimingModel::instant())
            .store_data(false)
            .build(),
    );
    Arc::new(NoFtl::new(device, NoFtlConfig::default()))
}

fn bench_noftl(c: &mut Criterion) {
    let mut group = c.benchmark_group("noftl_regions");
    group.sample_size(20);
    let page = vec![0u8; 4096];

    group.bench_function("write_single_region_mixed", |b| {
        let noftl = make_noftl();
        let rg = noftl.create_region(RegionSpec::named("rgAll").with_die_count(8)).unwrap();
        let hot = noftl.create_object("hot", rg).unwrap();
        let cold = noftl.create_object("cold", rg).unwrap();
        let mut i: u64 = 0;
        b.iter(|| {
            i += 1;
            // Interleave hot overwrites with an ever-growing cold object.
            black_box(noftl.write(hot, i % 32, &page, SimTime::ZERO).unwrap());
            if i.is_multiple_of(4) {
                black_box(noftl.write(cold, i / 4 % 2_000, &page, SimTime::ZERO).unwrap());
            }
        });
    });

    group.bench_function("write_separate_regions", |b| {
        let noftl = make_noftl();
        let rg_hot = noftl.create_region(RegionSpec::named("rgHot").with_die_count(4)).unwrap();
        let rg_cold = noftl.create_region(RegionSpec::named("rgCold").with_die_count(4)).unwrap();
        let hot = noftl.create_object("hot", rg_hot).unwrap();
        let cold = noftl.create_object("cold", rg_cold).unwrap();
        let mut i: u64 = 0;
        b.iter(|| {
            i += 1;
            black_box(noftl.write(hot, i % 32, &page, SimTime::ZERO).unwrap());
            if i.is_multiple_of(4) {
                black_box(noftl.write(cold, i / 4 % 2_000, &page, SimTime::ZERO).unwrap());
            }
        });
    });

    group.bench_function("placement_advisor_64_dies", |b| {
        let groups: Vec<(String, Vec<ObjectProfile>)> = (0..6)
            .map(|g| {
                (
                    format!("rg{g}"),
                    (0..4)
                        .map(|o| ObjectProfile {
                            name: format!("obj{g}_{o}"),
                            pages: 1_000 * (g as u64 + 1),
                            reads: 10_000 * (o as u64 + 1),
                            writes: 5_000 * (g as u64 + 1),
                        })
                        .collect(),
                )
            })
            .collect();
        let advisor = PlacementAdvisor::default();
        b.iter(|| black_box(advisor.assign_dies(&groups, 64)));
    });

    group.finish();
}

criterion_group!(benches, bench_noftl);
criterion_main!(benches);
