//! Micro-benchmarks of the B+-tree index over the buffer pool.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;

use dbms_engine::btree::BTree;
use dbms_engine::value::composite_key;
use dbms_engine::{BufferPool, NoFtlBackend, RecordId, StorageBackend};
use flash_sim::{DeviceBuilder, FlashGeometry, SimTime, TimingModel};
use noftl_core::{NoFtl, NoFtlConfig, PlacementConfig};

fn setup(pool_pages: usize) -> (BufferPool, BTree) {
    let device = Arc::new(
        DeviceBuilder::new(FlashGeometry::example()).timing(TimingModel::instant()).build(),
    );
    let noftl = Arc::new(NoFtl::new(device, NoFtlConfig::default()));
    let backend = Arc::new(
        NoFtlBackend::new(noftl, &PlacementConfig::traditional(8, ["idx".to_string()])).unwrap(),
    );
    let obj = backend.create_object("idx").unwrap();
    (BufferPool::new(backend, pool_pages), BTree::new(obj))
}

fn bench_btree(c: &mut Criterion) {
    let mut group = c.benchmark_group("btree");
    group.sample_size(20);

    group.bench_function("insert_sequential", |b| {
        let (pool, tree) = setup(4096);
        let mut i: i64 = 0;
        b.iter(|| {
            i += 1;
            black_box(
                tree.insert(
                    &pool,
                    &composite_key(&[1, 1, i]),
                    RecordId::new(i as u64, 0),
                    SimTime::ZERO,
                )
                .unwrap(),
            );
        });
    });

    group.bench_function("search_cached", |b| {
        let (pool, tree) = setup(4096);
        for i in 0..20_000i64 {
            tree.insert(
                &pool,
                &composite_key(&[1, 1, i]),
                RecordId::new(i as u64, 0),
                SimTime::ZERO,
            )
            .unwrap();
        }
        let mut i: i64 = 0;
        b.iter(|| {
            i = (i + 7919) % 20_000;
            black_box(tree.search(&pool, &composite_key(&[1, 1, i]), SimTime::ZERO).unwrap());
        });
    });

    group.bench_function("prefix_scan_order_lines", |b| {
        let (pool, tree) = setup(4096);
        for o in 0..2_000i64 {
            for line in 1..=10i64 {
                tree.insert(
                    &pool,
                    &composite_key(&[1, 1, o, line]),
                    RecordId::new(o as u64, line as u16),
                    SimTime::ZERO,
                )
                .unwrap();
            }
        }
        let mut o: i64 = 0;
        b.iter(|| {
            o = (o + 997) % 2_000;
            black_box(tree.prefix_scan(&pool, &composite_key(&[1, 1, o]), SimTime::ZERO).unwrap());
        });
    });

    group.finish();
}

criterion_group!(benches, bench_btree);
criterion_main!(benches);
