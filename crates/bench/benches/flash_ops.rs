//! Micro-benchmarks of the native flash command path (simulator overhead
//! per READ PAGE / PROGRAM PAGE / ERASE BLOCK / COPYBACK).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use flash_sim::{
    BlockAddr, DeviceBuilder, DieId, FlashGeometry, PageMetadata, SimTime, TimingModel,
};

fn bench_flash_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("flash_ops");
    group.sample_size(20);

    group.bench_function("program_page", |b| {
        let dev =
            DeviceBuilder::new(FlashGeometry::example()).timing(TimingModel::instant()).build();
        let geo = *dev.geometry();
        let data = vec![0xA5u8; geo.page_size as usize];
        let mut next: u64 = 0;
        b.iter(|| {
            let total = geo.total_pages();
            let page_no = next % total;
            next += 1;
            // Walk pages in physical order so programming stays sequential.
            let pages_per_die = geo.pages_per_die();
            let die = (page_no / pages_per_die) as u32;
            let within = page_no % pages_per_die;
            let block = (within / geo.pages_per_block as u64) as u32;
            let page = (within % geo.pages_per_block as u64) as u32;
            let plane = block / geo.blocks_per_plane;
            let addr =
                flash_sim::PageAddr::new(DieId(die), plane, block % geo.blocks_per_plane, page);
            // Re-erase the block when wrapping around.
            if page == 0 && next > total {
                let _ = dev.erase_block(addr.block(), SimTime::ZERO);
            }
            let _ = black_box(dev.program_page(
                addr,
                &data,
                PageMetadata::new(1, page_no),
                SimTime::ZERO,
            ));
        });
    });

    group.bench_function("read_page", |b| {
        let dev =
            DeviceBuilder::new(FlashGeometry::example()).timing(TimingModel::instant()).build();
        let data = vec![0x5Au8; dev.geometry().page_size as usize];
        let addr = flash_sim::PageAddr::new(DieId(0), 0, 0, 0);
        dev.program_page(addr, &data, PageMetadata::new(1, 0), SimTime::ZERO).unwrap();
        b.iter(|| black_box(dev.read_page(addr, SimTime::ZERO).unwrap()));
    });

    group.bench_function("copyback_and_erase", |b| {
        let dev =
            DeviceBuilder::new(FlashGeometry::example()).timing(TimingModel::instant()).build();
        let geo = *dev.geometry();
        let data = vec![1u8; geo.page_size as usize];
        let src_block = BlockAddr::new(DieId(0), 0, 0);
        let dst_block = BlockAddr::new(DieId(0), 0, 1);
        b.iter(|| {
            let _ = dev.erase_block(src_block, SimTime::ZERO);
            let _ = dev.erase_block(dst_block, SimTime::ZERO);
            dev.program_page(src_block.page(0), &data, PageMetadata::new(1, 0), SimTime::ZERO)
                .unwrap();
            black_box(dev.copyback(src_block.page(0), dst_block.page(0), SimTime::ZERO).unwrap());
        });
    });

    group.finish();
}

criterion_group!(benches, bench_flash_ops);
criterion_main!(benches);
