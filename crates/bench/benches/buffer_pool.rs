//! Micro-benchmarks of the buffer pool (hit path, miss path, eviction).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;

use dbms_engine::{BufferPool, NoFtlBackend, StorageBackend};
use flash_sim::{DeviceBuilder, FlashGeometry, SimTime, TimingModel};
use noftl_core::{NoFtl, NoFtlConfig, PlacementConfig};

fn backend() -> Arc<NoFtlBackend> {
    let device = Arc::new(
        DeviceBuilder::new(FlashGeometry::example())
            .timing(TimingModel::instant())
            .store_data(true)
            .build(),
    );
    let noftl = Arc::new(NoFtl::new(device, NoFtlConfig::default()));
    Arc::new(NoFtlBackend::new(noftl, &PlacementConfig::traditional(8, ["t".to_string()])).unwrap())
}

fn bench_buffer(c: &mut Criterion) {
    let mut group = c.benchmark_group("buffer_pool");
    group.sample_size(20);
    let page = vec![0u8; 4096];

    group.bench_function("hit_read", |b| {
        let backend = backend();
        let obj = backend.create_object("t").unwrap();
        let pool = BufferPool::new(backend, 256);
        pool.write_page(obj, 0, &page, SimTime::ZERO).unwrap();
        b.iter(|| black_box(pool.read_page(obj, 0, SimTime::ZERO).unwrap()));
    });

    group.bench_function("miss_read_with_eviction", |b| {
        let backend = backend();
        let obj = backend.create_object("t").unwrap();
        let pool = BufferPool::new(backend, 32);
        for p in 0..512u64 {
            pool.write_page(obj, p, &page, SimTime::ZERO).unwrap();
        }
        pool.flush_all(SimTime::ZERO).unwrap();
        let mut p: u64 = 0;
        b.iter(|| {
            p = (p + 97) % 512;
            black_box(pool.read_page(obj, p, SimTime::ZERO).unwrap());
        });
    });

    group.bench_function("dirty_write_and_evict", |b| {
        let backend = backend();
        let obj = backend.create_object("t").unwrap();
        let pool = BufferPool::new(backend, 32);
        let mut p: u64 = 0;
        b.iter(|| {
            p = (p + 1) % 2_048;
            black_box(pool.write_page(obj, p, &page, SimTime::ZERO).unwrap());
        });
    });

    group.finish();
}

criterion_group!(benches, bench_buffer);
criterion_main!(benches);
