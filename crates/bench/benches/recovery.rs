//! Recovery-time benchmark: how long `NoFtl::mount` + `Database::recover`
//! take as a function of the WAL tail length.
//!
//! Each benchmark prepares a crashed-at-snapshot device whose WAL holds
//! the after-images of `txns` committed transactions since the last
//! checkpoint, then measures the full reboot path: rebuild the device
//! from the snapshot, remount the storage manager (OOB scan + checkpoint
//! replay) and redo the WAL tail.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;

use dbms_engine::{Database, DatabaseConfig, NoFtlBackend, Schema, Value};
use flash_sim::{DeviceBuilder, DeviceSnapshot, FlashGeometry, NandDevice, SimTime, TimingModel};
use noftl_core::{NoFtl, NoFtlConfig, PlacementConfig};

fn config() -> DatabaseConfig {
    DatabaseConfig {
        buffer_pages: 512,
        redo_logging: true,
        wal_segment_pages: 1_000_000, // keep the tail; we want it long
        ..DatabaseConfig::default()
    }
}

/// Run `txns` committed single-insert transactions past a checkpoint and
/// return the torn-off device snapshot plus the WAL length in pages.
fn crashed_snapshot(txns: i64) -> (DeviceSnapshot, u64) {
    let device = Arc::new(
        DeviceBuilder::new(FlashGeometry::example()).timing(TimingModel::mlc_2015()).build(),
    );
    let noftl = Arc::new(NoFtl::new(device.clone(), NoFtlConfig::default()));
    let placement = PlacementConfig::traditional(8, ["t".to_string()]);
    let backend = Arc::new(NoFtlBackend::new(Arc::clone(&noftl), &placement).unwrap());
    let db = Database::open(backend, config()).unwrap();
    db.create_table(
        "t",
        Schema::new(vec![("k", dbms_engine::ColumnType::Int), ("v", dbms_engine::ColumnType::Int)]),
        SimTime::ZERO,
    )
    .unwrap();
    let mut t = db.checkpoint(SimTime::ZERO).unwrap();
    for i in 0..txns {
        let mut txn = db.begin(t);
        db.insert(&mut txn, "t", &vec![Value::Int(i), Value::Int(i * 7)], &[]).unwrap();
        db.commit(&mut txn).unwrap();
        t = txn.now;
    }
    let wal_pages = db.wal_stats().pages;
    (device.snapshot(), wal_pages)
}

fn recover_from(snapshot: &DeviceSnapshot) -> u64 {
    let device = Arc::new(NandDevice::from_snapshot(snapshot, TimingModel::mlc_2015()).unwrap());
    let (noftl, mount) = NoFtl::mount(device, NoFtlConfig::default(), SimTime::ZERO).unwrap();
    let placement = PlacementConfig::traditional(8, ["t".to_string()]);
    let backend = Arc::new(NoFtlBackend::attach(Arc::new(noftl), &placement).unwrap());
    let (_db, report) = Database::recover(backend, config(), mount.completed_at).unwrap();
    report.redo_pages_applied
}

fn bench_recovery(c: &mut Criterion) {
    let mut group = c.benchmark_group("recovery");
    group.sample_size(10);
    for txns in [25i64, 100, 400] {
        let (snapshot, wal_pages) = crashed_snapshot(txns);
        group.bench_function(&format!("mount+redo/{txns}txns/{wal_pages}walpages"), |b| {
            b.iter(|| black_box(recover_from(&snapshot)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_recovery);
criterion_main!(benches);
