//! NoFTL-KV operation benchmarks.
//!
//! Two layers, matching the other benches in this crate:
//!
//! 1. **Simulated time** (printed once before the criterion samples) —
//!    put/get/scan throughput in device time and the headline queued vs
//!    sequential flush comparison: a memtable flush fanned over the
//!    region's dies through `NoFtl::write_batch` must beat the same
//!    pages submitted one blocking write at a time.
//! 2. **Wall-clock overhead** (criterion) — what the KV layer itself
//!    costs per operation: memtable puts, point lookups served from the
//!    memtable and from sorted runs, range scans, and a full flush.
//!
//! Run with `cargo bench -p noftl-bench --bench kv_ops`.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use flash_sim::SimTime;
use noftl_bench::smoke;

fn headline() {
    let section = smoke::kv_ops_section(true);
    println!("kv_ops headline (simulated device time):");
    for m in &section.metrics {
        println!("  {:<28} {:>14.3} {}", m.name, m.value, m.unit);
    }
    let get = |name: &str| section.metrics.iter().find(|m| m.name == name).unwrap().value;
    assert!(
        get("flush_speedup") > 1.0,
        "queued flush must beat sequential flush (got {:.2}x)",
        get("flush_speedup")
    );
}

fn key(i: u64) -> Vec<u8> {
    format!("user{:08}", i * 2_654_435_761 % 100_000_000).into_bytes()
}

fn val(i: u64) -> Vec<u8> {
    format!("value-{i:08}-{}", "x".repeat(48)).into_bytes()
}

fn bench_kv_ops(c: &mut Criterion) {
    headline();

    let mut group = c.benchmark_group("kv_ops");
    group.sample_size(10);

    group.bench_function("put_memtable", |b| {
        // Large memtable: puts never flush, measuring the pure in-memory
        // insert path.
        let (_d, _n, store) = smoke::kv_stack(true);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(store.put(&key(i % 10_000), &val(i), SimTime::ZERO).unwrap());
        });
    });

    group.bench_function("get_memtable_hit", |b| {
        let (_d, _n, store) = smoke::kv_stack(true);
        let mut t = SimTime::ZERO;
        for i in 0..500u64 {
            t = store.put(&key(i), &val(i), t).unwrap();
        }
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(store.get(&key(i % 500), t).unwrap());
        });
    });

    group.bench_function("get_from_runs", |b| {
        let (_d, _n, store) = smoke::kv_stack(true);
        let mut t = SimTime::ZERO;
        for i in 0..2_000u64 {
            t = store.put(&key(i), &val(i), t).unwrap();
        }
        t = store.flush(t).unwrap();
        assert_eq!(store.memtable_len(), 0, "every get must hit the runs");
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(store.get(&key(i % 2_000), t).unwrap());
        });
    });

    group.bench_function("scan_1k", |b| {
        let (_d, _n, store) = smoke::kv_stack(true);
        let mut t = SimTime::ZERO;
        for i in 0..1_000u64 {
            t = store.put(&key(i), &val(i), t).unwrap();
        }
        t = store.flush(t).unwrap();
        b.iter(|| {
            let (rows, _) = store.scan(None, None, t).unwrap();
            assert_eq!(rows.len(), 1_000);
            black_box(rows);
        });
    });

    group.bench_function("flush_600_entries", |b| {
        b.iter(|| {
            let (_d, _n, store) = smoke::kv_stack(true);
            let mut t = SimTime::ZERO;
            for i in 0..600u64 {
                t = store.put(&key(i), &val(i), t).unwrap();
            }
            black_box(store.flush(t).unwrap());
        });
    });

    group.finish();
}

criterion_group!(benches, bench_kv_ops);
criterion_main!(benches);
