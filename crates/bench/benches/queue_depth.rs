//! Throughput vs queue depth through the command-queue submission API.
//!
//! Two questions, matching the redesign's acceptance criteria:
//!
//! 1. **Simulated time** — how long (device time) does a fixed batch of
//!    programs take when the host keeps 1, 4, 8 or `dies` commands in
//!    flight?  Depth 1 reproduces the strictly sequential legacy pattern
//!    (issue, wait, issue); deeper windows let the per-die queues overlap
//!    the dies, and a queued `NoFtl::write_batch` over a 4-die region
//!    must complete in less simulated time than sequential submission of
//!    the same pages.
//! 2. **Wall-clock overhead** — what does the submit/poll protocol cost
//!    per command compared to the blocking calls (criterion numbers)?
//!
//! Run with `cargo bench -p noftl-bench --bench queue_depth`.  The
//! simulated-time comparison, the utilization report (summary *and*
//! per-die busy fractions) and the **skewed-workload scenario** — an
//! erase storm on half the dies while the completion-driven flusher
//! writes back a batch, comparing `RoundRobin` against `QueueAware`
//! placement on flush completion time and minimum per-die utilization —
//! are printed before the criterion samples.  The headline measurements
//! themselves live in `noftl_bench::smoke`, shared with the CI
//! `perf_smoke` binary.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;

use flash_sim::queue::{CommandQueue, FlashCommand};
use flash_sim::{
    DeviceBuilder, DieId, FlashGeometry, NandDevice, PageAddr, PageMetadata, SimTime, TimingModel,
    UtilizationSummary,
};
use noftl_bench::smoke;
use noftl_obs::MetricsSnapshot;

fn device() -> Arc<NandDevice> {
    Arc::new(DeviceBuilder::new(FlashGeometry::example()).timing(TimingModel::mlc_2015()).build())
}

/// Render the per-die busy fractions, so skew between dies is visible
/// (not just the mean/min/max aggregate).  The fractions come out of the
/// stack's metrics registry (`flash.die<i>.busy_ns` over the quiesce
/// gauge) rather than a bespoke bench-side counter pass; the aggregate
/// line still uses the device's [`UtilizationSummary`].
fn per_die_report(label: &str, util: &UtilizationSummary, snap: &MetricsSnapshot) {
    println!(
        "  {label} utilization: mean {:.2} min {:.2} max {:.2}, depth hwm {}",
        util.mean, util.min, util.max, util.queue_depth_hwm,
    );
    print!("    per die:");
    for (die, busy) in smoke::per_die_busy_fractions(snap).iter().enumerate() {
        print!(" d{die}={busy:.2}");
    }
    println!();
}

fn simulated_reports() {
    let dies = FlashGeometry::example().total_dies() as usize;
    let total = 64u32;
    println!("simulated completion time of {total} striped programs vs queue depth:");
    let mut depth1 = SimTime::ZERO;
    for depth in [1usize, 4, 8, dies] {
        let (done, util) = smoke::run_at_depth(total, depth);
        if depth == 1 {
            depth1 = done;
        }
        println!(
            "  depth {depth:>2}: {:>10.1} us  (util mean {:.2}, die queue hwm {})",
            done.as_secs_f64() * 1e6,
            util.mean,
            util.queue_depth_hwm,
        );
        assert!(done <= depth1, "deeper queues must never be slower than depth 1");
    }

    let pages = 64u64;
    let cmp = smoke::write_batch_comparison(pages);
    println!("write_batch over a 4-die region, {pages} pages:");
    println!("  queued:     {:>10.1} us simulated", cmp.queued.as_secs_f64() * 1e6);
    per_die_report("queued", &cmp.queued_util, &cmp.queued_metrics);
    println!("  sequential: {:>10.1} us simulated", cmp.sequential.as_secs_f64() * 1e6);
    per_die_report("sequential", &cmp.sequential_util, &cmp.sequential_metrics);
    println!("  speedup: {:.2}x", cmp.speedup());
    assert!(
        cmp.queued < cmp.sequential,
        "queued write_batch must beat sequential submission ({:?} vs {:?})",
        cmp.queued,
        cmp.sequential
    );

    // Skewed workload: an erase storm occupies half the dies while the
    // completion-driven flusher writes back a batch — the scenario the
    // queue-aware placement policy exists for.
    let skew = smoke::skewed_flush_comparison(pages, 3);
    println!("skewed-load flush, {pages} pages, erase storm on half the dies:");
    println!("  round-robin: {:>10.1} us simulated", skew.round_robin.as_secs_f64() * 1e6);
    per_die_report("round-robin", &skew.rr_util, &skew.rr_metrics);
    println!("  queue-aware: {:>10.1} us simulated", skew.queue_aware.as_secs_f64() * 1e6);
    per_die_report("queue-aware", &skew.qa_util, &skew.qa_metrics);
    println!("  speedup: {:.2}x", skew.speedup());
    // The flusher window HWM is read from the registry too — the same
    // number `FlusherStats::inflight_hwm` used to be printed from.
    for (label, snap) in [("round-robin", &skew.rr_metrics), ("queue-aware", &skew.qa_metrics)] {
        if let Some(hwm) = snap.gauge("core.flusher.inflight_hwm") {
            println!("  {label} flusher in-flight hwm: {hwm}");
        }
    }
    assert!(
        skew.queue_aware < skew.round_robin,
        "queue-aware flush must beat round-robin under skew ({:?} vs {:?})",
        skew.queue_aware,
        skew.round_robin
    );
    assert!(
        skew.qa_util.min > skew.rr_util.min,
        "queue-aware must raise minimum die utilisation ({:.3} vs {:.3})",
        skew.qa_util.min,
        skew.rr_util.min
    );
}

fn bench_queue_depth(c: &mut Criterion) {
    // Simulated-time report (printed once, independent of criterion).
    simulated_reports();

    // Wall-clock cost of the submission protocol itself.
    let mut group = c.benchmark_group("queue_depth");
    group.sample_size(20);

    group.bench_function("submit_wait_program", |b| {
        let dev = device();
        let geo = *dev.geometry();
        let queue = CommandQueue::new(dev.clone());
        let data = vec![0x11u8; geo.page_size as usize];
        let mut i = 0u32;
        let span = geo.total_dies() * geo.pages_per_block;
        b.iter(|| {
            let addr = smoke::striped_addr(&geo, i % span);
            if i >= span && addr.page == 0 {
                let _ = dev.erase_block(addr.block(), SimTime::ZERO);
            }
            i += 1;
            let h = queue.submit(
                FlashCommand::Program {
                    addr,
                    data: data.clone(),
                    meta: PageMetadata::new(1, u64::from(i)),
                },
                SimTime::ZERO,
            );
            black_box(queue.wait(h).unwrap());
        });
    });

    group.bench_function("fanout_batch_per_die", |b| {
        let dev = device();
        let geo = *dev.geometry();
        let queue = CommandQueue::new(dev.clone());
        let data = vec![0x22u8; geo.page_size as usize];
        let mut round = 0u32;
        b.iter(|| {
            if round >= geo.pages_per_block {
                for die in 0..geo.total_dies() {
                    let _ =
                        dev.erase_block(flash_sim::BlockAddr::new(DieId(die), 0, 0), SimTime::ZERO);
                }
                round = 0;
            }
            let page = round;
            round += 1;
            let cmds = (0..geo.total_dies()).map(|die| FlashCommand::Program {
                addr: PageAddr::new(DieId(die), 0, 0, page),
                data: data.clone(),
                meta: PageMetadata::new(1, u64::from(die)),
            });
            let handles = queue.submit_batch(cmds, SimTime::ZERO);
            for h in handles {
                black_box(queue.wait(h).unwrap());
            }
        });
    });

    group.finish();
}

criterion_group!(benches, bench_queue_depth);
criterion_main!(benches);
