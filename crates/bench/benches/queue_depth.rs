//! Throughput vs queue depth through the command-queue submission API.
//!
//! Two questions, matching the redesign's acceptance criteria:
//!
//! 1. **Simulated time** — how long (device time) does a fixed batch of
//!    programs take when the host keeps 1, 4, 8 or `dies` commands in
//!    flight?  Depth 1 reproduces the strictly sequential legacy pattern
//!    (issue, wait, issue); deeper windows let the per-die queues overlap
//!    the dies, and a queued `NoFtl::write_batch` over a 4-die region
//!    must complete in less simulated time than sequential submission of
//!    the same pages.
//! 2. **Wall-clock overhead** — what does the submit/poll protocol cost
//!    per command compared to the blocking calls (criterion numbers)?
//!
//! Run with `cargo bench -p noftl-bench --bench queue_depth`.  The
//! simulated-time comparison and the per-die utilization report (mean /
//! min / max busy fraction, queue-depth high-water mark) are printed
//! before the criterion samples.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;

use flash_sim::queue::{CommandQueue, FlashCommand};
use flash_sim::{
    DeviceBuilder, DieId, FlashGeometry, NandDevice, PageAddr, PageMetadata, SimTime, TimingModel,
};
use noftl_core::{NoFtl, NoFtlConfig, RegionSpec};

fn device() -> Arc<NandDevice> {
    Arc::new(DeviceBuilder::new(FlashGeometry::example()).timing(TimingModel::mlc_2015()).build())
}

/// Physical address of the `i`-th page when striping a batch round-robin
/// over the dies (block 0 of each die).
fn striped_addr(geo: &FlashGeometry, i: u32) -> PageAddr {
    let die = i % geo.total_dies();
    let page = i / geo.total_dies();
    PageAddr::new(DieId(die), 0, 0, page)
}

/// Program `total` striped pages keeping at most `depth` commands in
/// flight; returns the simulated completion time of the batch.
fn run_at_depth(total: u32, depth: usize) -> (SimTime, flash_sim::UtilizationSummary) {
    let dev = device();
    let geo = *dev.geometry();
    let queue = CommandQueue::new(Arc::clone(&dev));
    let data = vec![0xD7u8; geo.page_size as usize];
    let mut window = Vec::with_capacity(depth);
    let mut clock = SimTime::ZERO;
    let mut done = SimTime::ZERO;
    for i in 0..total {
        if window.len() == depth {
            // The oldest in-flight command gates the next submission —
            // exactly how a depth-limited host driver behaves.
            let h = window.remove(0);
            let c = queue.wait(h).unwrap();
            let completed = c.result.unwrap().outcome.completed_at;
            clock = clock.max(completed);
            done = done.max(completed);
        }
        let h = queue.submit(
            FlashCommand::Program {
                addr: striped_addr(&geo, i),
                data: data.clone(),
                meta: PageMetadata::new(1, i as u64),
            },
            clock,
        );
        window.push(h);
    }
    for h in window {
        let c = queue.wait(h).unwrap();
        done = done.max(c.result.unwrap().outcome.completed_at);
    }
    (done, dev.utilization())
}

/// The headline comparison: queued `write_batch` over a 4-die region vs
/// sequential submission of the same pages.
fn report_write_batch(pages: u64) {
    let make = || {
        let dev = device();
        let noftl = NoFtl::new(Arc::clone(&dev), NoFtlConfig::default());
        let rid = noftl.create_region(RegionSpec::named("rg").with_die_count(4)).unwrap();
        let obj = noftl.create_object("t", rid).unwrap();
        (dev, noftl, obj)
    };
    let payload = |p: u64| vec![p as u8; 4096];

    let (dev, noftl, obj) = make();
    let batch: Vec<(u32, u64, Vec<u8>)> = (0..pages).map(|p| (obj, p, payload(p))).collect();
    let queued_done = noftl.write_batch(&batch, SimTime::ZERO).unwrap();
    let queued_util = dev.utilization();

    let (dev, noftl, obj) = make();
    let mut serial_done = SimTime::ZERO;
    for p in 0..pages {
        serial_done = noftl.write(obj, p, &payload(p), serial_done).unwrap();
    }
    let serial_util = dev.utilization();

    println!("write_batch over a 4-die region, {pages} pages:");
    println!(
        "  queued:     {:>10.1} us simulated  (util mean {:.2} min {:.2} max {:.2}, depth hwm {})",
        queued_done.as_secs_f64() * 1e6,
        queued_util.mean,
        queued_util.min,
        queued_util.max,
        queued_util.queue_depth_hwm,
    );
    println!(
        "  sequential: {:>10.1} us simulated  (util mean {:.2} min {:.2} max {:.2}, depth hwm {})",
        serial_done.as_secs_f64() * 1e6,
        serial_util.mean,
        serial_util.min,
        serial_util.max,
        serial_util.queue_depth_hwm,
    );
    println!(
        "  speedup: {:.2}x",
        serial_done.as_secs_f64() / queued_done.as_secs_f64().max(f64::MIN_POSITIVE)
    );
    assert!(
        queued_done < serial_done,
        "queued write_batch must beat sequential submission ({queued_done} vs {serial_done})"
    );
}

fn bench_queue_depth(c: &mut Criterion) {
    // Simulated-time report (printed once, independent of criterion).
    let dies = FlashGeometry::example().total_dies() as usize;
    let total = 64u32;
    println!("simulated completion time of {total} striped programs vs queue depth:");
    let mut depth1 = SimTime::ZERO;
    for depth in [1usize, 4, 8, dies] {
        let (done, util) = run_at_depth(total, depth);
        if depth == 1 {
            depth1 = done;
        }
        println!(
            "  depth {depth:>2}: {:>10.1} us  (util mean {:.2}, die queue hwm {})",
            done.as_secs_f64() * 1e6,
            util.mean,
            util.queue_depth_hwm,
        );
        assert!(done <= depth1, "deeper queues must never be slower than depth 1");
    }
    report_write_batch(64);

    // Wall-clock cost of the submission protocol itself.
    let mut group = c.benchmark_group("queue_depth");
    group.sample_size(20);

    group.bench_function("submit_wait_program", |b| {
        let dev = device();
        let geo = *dev.geometry();
        let queue = CommandQueue::new(Arc::clone(&dev));
        let data = vec![0x11u8; geo.page_size as usize];
        let mut i = 0u32;
        let span = geo.total_dies() * geo.pages_per_block;
        b.iter(|| {
            let addr = striped_addr(&geo, i % span);
            if i >= span && addr.page == 0 {
                let _ = dev.erase_block(addr.block(), SimTime::ZERO);
            }
            i += 1;
            let h = queue.submit(
                FlashCommand::Program {
                    addr,
                    data: data.clone(),
                    meta: PageMetadata::new(1, i as u64),
                },
                SimTime::ZERO,
            );
            black_box(queue.wait(h).unwrap());
        });
    });

    group.bench_function("fanout_batch_per_die", |b| {
        let dev = device();
        let geo = *dev.geometry();
        let queue = CommandQueue::new(Arc::clone(&dev));
        let data = vec![0x22u8; geo.page_size as usize];
        let mut round = 0u32;
        b.iter(|| {
            if round >= geo.pages_per_block {
                for die in 0..geo.total_dies() {
                    let _ =
                        dev.erase_block(flash_sim::BlockAddr::new(DieId(die), 0, 0), SimTime::ZERO);
                }
                round = 0;
            }
            let page = round;
            round += 1;
            let cmds = (0..geo.total_dies()).map(|die| FlashCommand::Program {
                addr: PageAddr::new(DieId(die), 0, 0, page),
                data: data.clone(),
                meta: PageMetadata::new(1, die as u64),
            });
            let handles = queue.submit_batch(cmds, SimTime::ZERO);
            for h in handles {
                black_box(queue.wait(h).unwrap());
            }
        });
    });

    group.finish();
}

criterion_group!(benches, bench_queue_depth);
criterion_main!(benches);
