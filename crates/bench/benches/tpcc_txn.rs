//! Micro-benchmarks of individual TPC-C transactions on a loaded
//! (tiny-scale) database — measures simulator + engine cost per
//! transaction, complementing the end-to-end figure binaries.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;

use dbms_engine::{Database, DatabaseConfig, NoFtlBackend};
use flash_sim::{DeviceBuilder, FlashGeometry, SimTime, TimingModel};
use noftl_core::{NoFtl, NoFtlConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use tpcc_workload::{loader::Loader, placement, transactions, ScaleConfig};

fn setup() -> (Database, ScaleConfig, SimTime) {
    let device = Arc::new(
        DeviceBuilder::new(FlashGeometry::example()).timing(TimingModel::instant()).build(),
    );
    let noftl = Arc::new(NoFtl::new(device, NoFtlConfig::default()));
    let backend = Arc::new(NoFtlBackend::new(noftl, &placement::traditional(8)).unwrap());
    let db = Database::open(backend, DatabaseConfig { buffer_pages: 2_048, ..Default::default() })
        .unwrap();
    let scale = ScaleConfig::tiny();
    let (_, loaded) = Loader::new(scale, 1).load(&db, SimTime::ZERO).unwrap();
    (db, scale, loaded)
}

fn bench_tpcc(c: &mut Criterion) {
    let mut group = c.benchmark_group("tpcc_txn");
    group.sample_size(20);

    group.bench_function("new_order", |b| {
        let (db, scale, t0) = setup();
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| {
            let mut txn = db.begin(t0);
            black_box(transactions::new_order(&db, &scale, &mut rng, &mut txn, 1).unwrap());
        });
    });

    group.bench_function("payment", |b| {
        let (db, scale, t0) = setup();
        let mut rng = StdRng::seed_from_u64(2);
        b.iter(|| {
            let mut txn = db.begin(t0);
            black_box(transactions::payment(&db, &scale, &mut rng, &mut txn, 1).unwrap());
        });
    });

    group.bench_function("stock_level", |b| {
        let (db, scale, t0) = setup();
        let mut rng = StdRng::seed_from_u64(3);
        b.iter(|| {
            let mut txn = db.begin(t0);
            black_box(transactions::stock_level(&db, &scale, &mut rng, &mut txn, 1).unwrap());
        });
    });

    group.finish();
}

criterion_group!(benches, bench_tpcc);
criterion_main!(benches);
