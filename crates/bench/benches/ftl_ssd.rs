//! Micro-benchmarks of the FTL-based SSD emulation: sequential vs. random
//! overwrite throughput (simulator cost) and the DFTL mapping-cache
//! overhead.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;

use flash_sim::{DeviceBuilder, FlashGeometry, SimTime, TimingModel};
use ftl_sim::{BlockDevice, FtlConfig, FtlSsd, MappingKind};

fn make_ssd(mapping: MappingKind) -> FtlSsd {
    let device = Arc::new(
        DeviceBuilder::new(FlashGeometry::example())
            .timing(TimingModel::instant())
            .store_data(false)
            .build(),
    );
    FtlSsd::new(device, FtlConfig { overprovisioning: 0.25, mapping, ..FtlConfig::consumer() })
}

fn bench_ftl(c: &mut Criterion) {
    let mut group = c.benchmark_group("ftl_ssd");
    group.sample_size(20);
    let page = vec![0u8; 4096];

    group.bench_function("sequential_overwrite", |b| {
        let ssd = make_ssd(MappingKind::PageLevel);
        let span = ssd.capacity_sectors() / 2;
        let mut lba = 0u64;
        b.iter(|| {
            lba = (lba + 1) % span;
            black_box(ssd.write(lba, &page, SimTime::ZERO).unwrap());
        });
    });

    group.bench_function("random_overwrite_small_set", |b| {
        let ssd = make_ssd(MappingKind::PageLevel);
        let mut x: u64 = 0x12345;
        b.iter(|| {
            // Hammer a small hot set to exercise GC.
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let lba = x % 64;
            black_box(ssd.write(lba, &page, SimTime::ZERO).unwrap());
        });
    });

    group.bench_function("dftl_mapping_cache", |b| {
        let ssd = make_ssd(MappingKind::Dftl { cached_entries: 32 });
        let span = ssd.capacity_sectors() / 2;
        let mut x: u64 = 99;
        b.iter(|| {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(7);
            let lba = x % span;
            black_box(ssd.write(lba, &page, SimTime::ZERO).unwrap());
        });
    });

    group.finish();
}

criterion_group!(benches, bench_ftl);
criterion_main!(benches);
