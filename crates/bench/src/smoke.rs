//! Headline perf-smoke measurements shared by the criterion benches and
//! the `perf_smoke` CI binary.
//!
//! Everything here reports *simulated device time* (deterministic — two
//! runs of the same binary produce identical numbers) except where a
//! metric is explicitly suffixed `_wall_ms`.  The CI `bench-smoke` job
//! runs `perf_smoke --quick --scenarios all`, which serialises these
//! sections (plus the workload-lab `scenarios` section from
//! [`crate::scenarios`]) into the current `BENCH_PR*.json` point of the
//! repo's perf trajectory.

use std::io::Write as _;
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

use dbms_engine::{Database, DatabaseConfig, NoFtlBackend, Schema, Value};
use flash_sim::queue::{CommandQueue, FlashCommand};
use flash_sim::{
    BlockAddr, DeviceBuilder, DeviceSnapshot, DieId, FlashGeometry, NandDevice, PageAddr,
    PageMetadata, SimTime, TimingModel, UtilizationSummary,
};
use noftl_core::flusher::Flusher;
use noftl_core::kv::{KvConfig, KvStore};
use noftl_core::{NoFtl, NoFtlConfig, PlacementConfig, PlacementPolicyKind, RegionSpec};
use noftl_obs::MetricsSnapshot;

/// One headline number.
#[derive(Debug, Clone)]
pub struct Metric {
    /// Stable identifier (JSON key).
    pub name: String,
    /// The measurement.
    pub value: f64,
    /// Unit label (`us`, `kops_sim`, `pages`, `x`, `wall_ms`, ...).
    pub unit: &'static str,
}

impl Metric {
    /// Build a metric (the name may be composed at runtime, e.g. the
    /// per-scenario `ycsb_<workload>_<backend>_<stat>` family).
    pub fn new(name: impl Into<String>, value: f64, unit: &'static str) -> Self {
        Metric { name: name.into(), value, unit }
    }
}

/// A named group of metrics (one per smoke-tested bench).
#[derive(Debug, Clone)]
pub struct Section {
    /// Section name (JSON key).
    pub name: &'static str,
    /// The section's metrics.
    pub metrics: Vec<Metric>,
}

fn device() -> Arc<NandDevice> {
    Arc::new(DeviceBuilder::new(FlashGeometry::example()).timing(TimingModel::mlc_2015()).build())
}

/// Physical address of the `i`-th page when striping a batch round-robin
/// over the dies (block 0 of each die).
pub fn striped_addr(geo: &FlashGeometry, i: u32) -> PageAddr {
    let die = i % geo.total_dies();
    let page = i / geo.total_dies();
    PageAddr::new(DieId(die), 0, 0, page)
}

/// Program `total` striped pages keeping at most `depth` commands in
/// flight; returns the simulated completion time of the batch and the
/// device utilisation summary.
pub fn run_at_depth(total: u32, depth: usize) -> (SimTime, UtilizationSummary) {
    let dev = device();
    let geo = *dev.geometry();
    let queue = CommandQueue::new(dev.clone());
    let data = vec![0xD7u8; geo.page_size as usize];
    let mut window = Vec::with_capacity(depth);
    let mut clock = SimTime::ZERO;
    let mut done = SimTime::ZERO;
    for i in 0..total {
        if window.len() == depth {
            // The oldest in-flight command gates the next submission —
            // exactly how a depth-limited host driver behaves.
            let h = window.remove(0);
            let c = queue.wait(h).unwrap();
            let completed = c.result.unwrap().outcome.completed_at;
            clock = clock.max(completed);
            done = done.max(completed);
        }
        let h = queue.submit(
            FlashCommand::Program {
                addr: striped_addr(&geo, i),
                data: data.clone(),
                meta: PageMetadata::new(1, u64::from(i)),
            },
            clock,
        );
        window.push(h);
    }
    for h in window {
        let c = queue.wait(h).unwrap();
        done = done.max(c.result.unwrap().outcome.completed_at);
    }
    (done, dev.utilization())
}

/// Queued `write_batch` vs sequential submission of the same pages over a
/// 4-die region.
#[derive(Debug)]
pub struct BatchComparison {
    /// Simulated completion of the queued batch.
    pub queued: SimTime,
    /// Simulated completion of the sequential writes.
    pub sequential: SimTime,
    /// Device utilisation after the queued batch.
    pub queued_util: UtilizationSummary,
    /// Device utilisation after the sequential writes.
    pub sequential_util: UtilizationSummary,
    /// Metrics snapshot of the queued run's stack.
    pub queued_metrics: MetricsSnapshot,
    /// Metrics snapshot of the sequential run's stack.
    pub sequential_metrics: MetricsSnapshot,
}

impl BatchComparison {
    /// Sequential-over-queued simulated-time ratio.
    pub fn speedup(&self) -> f64 {
        self.sequential.as_secs_f64() / self.queued.as_secs_f64().max(f64::MIN_POSITIVE)
    }
}

/// Measure [`BatchComparison`] for a batch of `pages` pages.
///
/// The utilisation summaries are restricted to the dies the 4-die bench
/// region actually owns: the example device has 8 dies, and summarising
/// all of them used to report `util_min = 0.0` from the 4 dies the
/// region never touched (the `write_batch_util_min` flatline in
/// `BENCH_PR8.json`).
pub fn write_batch_comparison(pages: u64) -> BatchComparison {
    let make = || {
        let dev = device();
        let noftl = NoFtl::new(dev.clone(), NoFtlConfig::default());
        let rid = noftl.create_region(RegionSpec::named("rg").with_die_count(4)).unwrap();
        let obj = noftl.create_object("t", rid).unwrap();
        (dev, noftl, rid, obj)
    };
    let payload = |p: u64| vec![p as u8; 4096];

    let (dev, noftl, rid, obj) = make();
    let batch: Vec<(u32, u64, Vec<u8>)> = (0..pages).map(|p| (obj, p, payload(p))).collect();
    let queued = noftl.write_batch(&batch, SimTime::ZERO).unwrap();
    let queued_util = dev.utilization().restricted_to(&noftl.region_dies(rid).unwrap());
    let queued_metrics = noftl.metrics_snapshot();

    let (dev, noftl, rid, obj) = make();
    let mut sequential = SimTime::ZERO;
    for p in 0..pages {
        sequential = noftl.write(obj, p, &payload(p), sequential).unwrap();
    }
    let sequential_util = dev.utilization().restricted_to(&noftl.region_dies(rid).unwrap());
    let sequential_metrics = noftl.metrics_snapshot();
    BatchComparison {
        queued,
        sequential,
        queued_util,
        sequential_util,
        queued_metrics,
        sequential_metrics,
    }
}

/// Skewed-load flush comparison: the measuring stick of the queue-aware
/// placement redesign.
///
/// Half of an 8-die region's dies are busy with a background erase storm
/// (a stand-in for GC / wear-leveling traffic) when the flusher writes a
/// batch of dirty pages back through the completion-driven pipeline.
/// Under `RoundRobin` a fixed 1/N of the batch queues behind the storm
/// and gates the flush; `QueueAware` reads the per-die load snapshots and
/// feeds the idle dies until the load evens out, finishing earlier *and*
/// leaving no die idling at the tail — visible as a higher minimum per-die
/// busy fraction.
#[derive(Debug)]
pub struct SkewedFlushComparison {
    /// Simulated flush completion under round-robin placement.
    pub round_robin: SimTime,
    /// Simulated flush completion under queue-aware placement.
    pub queue_aware: SimTime,
    /// Device utilisation after the round-robin flush.
    pub rr_util: UtilizationSummary,
    /// Device utilisation after the queue-aware flush.
    pub qa_util: UtilizationSummary,
    /// Metrics snapshot of the round-robin run's stack.
    pub rr_metrics: MetricsSnapshot,
    /// Metrics snapshot of the queue-aware run's stack.
    pub qa_metrics: MetricsSnapshot,
}

impl SkewedFlushComparison {
    /// Round-robin-over-queue-aware simulated-time ratio.
    pub fn speedup(&self) -> f64 {
        self.round_robin.as_secs_f64() / self.queue_aware.as_secs_f64().max(f64::MIN_POSITIVE)
    }
}

/// Measure [`SkewedFlushComparison`] for a flush of `pages` pages with
/// `storm_erases` background erases on each of the first half of the
/// region's dies.
pub fn skewed_flush_comparison(pages: u64, storm_erases: u32) -> SkewedFlushComparison {
    let run = |placement: PlacementPolicyKind| {
        let dev = device();
        let config = NoFtlConfig { placement, ..NoFtlConfig::default() };
        let noftl = NoFtl::new(dev.clone(), config);
        let dies_total = dev.geometry().total_dies();
        let rid =
            noftl.create_region(RegionSpec::named("rgSkew").with_die_count(dies_total)).unwrap();
        let obj = noftl.create_object("t", rid).unwrap();
        let dies = noftl.region_dies(rid).unwrap();
        // Background erase storm on the first half of the dies, issued at
        // t=0 straight to the device (the region sees the blocks erased
        // either way; only the dies' busy windows matter).
        for die in &dies[..dies.len() / 2] {
            for b in 0..storm_erases {
                dev.erase_block(BlockAddr::new(*die, 0, b), SimTime::ZERO).unwrap();
            }
        }
        // Flush `pages` dirty pages through the completion-driven
        // pipeline while the storm is in flight.
        let flusher = Flusher::new(pages as usize + 1);
        for p in 0..pages {
            flusher.submit(&noftl, obj, p, vec![p as u8; 4096], SimTime::ZERO).unwrap();
        }
        let done = flusher.flush_all(&noftl, SimTime::ZERO).unwrap();
        let snap = noftl.metrics_snapshot();
        (done, dev.utilization(), snap)
    };
    let (round_robin, rr_util, rr_metrics) = run(PlacementPolicyKind::RoundRobin);
    let (queue_aware, qa_util, qa_metrics) = run(PlacementPolicyKind::QueueAware);
    SkewedFlushComparison { round_robin, queue_aware, rr_util, qa_util, rr_metrics, qa_metrics }
}

/// Per-die busy fractions reconstructed from a stack's metrics snapshot:
/// `flash.die<i>.busy_ns` over `flash.device.quiesce_ns`.  This is the
/// registry-backed replacement for the bespoke per-die counters the
/// `queue_depth` bench used to print from [`UtilizationSummary::per_die`].
pub fn per_die_busy_fractions(snap: &MetricsSnapshot) -> Vec<f64> {
    let quiesce = snap.gauge("flash.device.quiesce_ns").unwrap_or(0).max(1) as f64;
    let mut fractions = Vec::new();
    for die in 0.. {
        let Some(busy) = snap.gauge(&format!("flash.die{die}.busy_ns")) else { break };
        fractions.push(busy as f64 / quiesce);
    }
    fractions
}

/// Queue-depth section: simulated batch completion vs queue depth, the
/// queued/sequential `write_batch` headline (with its per-die utilisation
/// spread), and the skewed-load flush comparison of the placement
/// policies.
pub fn queue_depth_section() -> Section {
    let dies = FlashGeometry::example().total_dies() as usize;
    let mut metrics = Vec::new();
    for (name, depth) in
        [("depth_1_us", 1usize), ("depth_4_us", 4), ("depth_8_us", 8), ("depth_dies_us", dies)]
    {
        let (done, _) = run_at_depth(64, depth);
        metrics.push(Metric::new(name, done.as_secs_f64() * 1e6, "us_sim"));
    }
    let cmp = write_batch_comparison(64);
    metrics.push(Metric::new("write_batch_queued_us", cmp.queued.as_secs_f64() * 1e6, "us_sim"));
    metrics.push(Metric::new(
        "write_batch_sequential_us",
        cmp.sequential.as_secs_f64() * 1e6,
        "us_sim",
    ));
    metrics.push(Metric::new("write_batch_speedup", cmp.speedup(), "x"));
    metrics.push(Metric::new("write_batch_util_mean", cmp.queued_util.mean, "fraction"));
    metrics.push(Metric::new("write_batch_util_min", cmp.queued_util.min, "fraction"));
    metrics.push(Metric::new("write_batch_util_max", cmp.queued_util.max, "fraction"));
    let skew = skewed_flush_comparison(64, 3);
    metrics.push(Metric::new(
        "skewed_flush_round_robin_us",
        skew.round_robin.as_secs_f64() * 1e6,
        "us_sim",
    ));
    metrics.push(Metric::new(
        "skewed_flush_queue_aware_us",
        skew.queue_aware.as_secs_f64() * 1e6,
        "us_sim",
    ));
    metrics.push(Metric::new("skewed_flush_speedup", skew.speedup(), "x"));
    metrics.push(Metric::new("skewed_util_min_round_robin", skew.rr_util.min, "fraction"));
    metrics.push(Metric::new("skewed_util_min_queue_aware", skew.qa_util.min, "fraction"));
    metrics.push(Metric::new("skewed_util_mean_round_robin", skew.rr_util.mean, "fraction"));
    metrics.push(Metric::new("skewed_util_mean_queue_aware", skew.qa_util.mean, "fraction"));
    Section { name: "queue_depth", metrics }
}

/// The KV workload used by both the section below and the `kv_ops`
/// criterion bench: a store over a 6-die region of the example device.
pub fn kv_stack(queued_flush: bool) -> (Arc<NandDevice>, Arc<NoFtl>, KvStore) {
    let dev = device();
    let noftl = Arc::new(NoFtl::new(dev.clone(), NoFtlConfig::default()));
    let rid = noftl.create_region(RegionSpec::named("rgKv").with_die_count(6)).unwrap();
    let config = KvConfig { queued_flush, ..KvConfig::default() };
    let (store, _) = KvStore::create(Arc::clone(&noftl), rid, "bench", config, SimTime::ZERO)
        .expect("store creates");
    (dev, noftl, store)
}

fn kv_key(i: u64) -> Vec<u8> {
    format!("user{:08}", i * 2_654_435_761 % 100_000_000).into_bytes()
}

fn kv_val(i: u64) -> Vec<u8> {
    format!("value-{i:08}-{}", "x".repeat(48)).into_bytes()
}

/// KV section: simulated put/get/scan throughput and the queued-vs-
/// sequential flush comparison.
pub fn kv_ops_section(quick: bool) -> Section {
    let puts: u64 = if quick { 4_000 } else { 16_000 };
    let gets: u64 = if quick { 500 } else { 2_000 };

    let (_dev, _noftl, store) = kv_stack(true);
    let mut t = SimTime::ZERO;
    for i in 0..puts {
        t = store.put(&kv_key(i), &kv_val(i), t).unwrap();
    }
    let load_done = store.flush(t).unwrap();
    let put_kops = puts as f64 / load_done.as_secs_f64().max(f64::MIN_POSITIVE) / 1e3;

    let mut now = load_done;
    for i in 0..gets {
        let probe = i * (puts / gets).max(1);
        let (hit, t2) = store.get(&kv_key(probe), now).unwrap();
        now = t2;
        assert!(hit.is_some(), "loaded key must be found");
    }
    let get_kops = gets as f64 / (now - load_done).as_secs_f64().max(f64::MIN_POSITIVE) / 1e3;

    let scan_start = now;
    let (rows, scan_done) = store.scan(None, None, scan_start).unwrap();
    let scan_krows =
        rows.len() as f64 / (scan_done - scan_start).as_secs_f64().max(f64::MIN_POSITIVE) / 1e3;
    let stats = store.stats();

    // Queued vs sequential flush of one identical memtable.
    let flush_time = |queued: bool| {
        let (_d, _n, s) = kv_stack(queued);
        let mut t = SimTime::ZERO;
        for i in 0..600u64 {
            t = s.put(&kv_key(i), &kv_val(i), t).unwrap();
        }
        let start = t;
        (s.flush(t).unwrap() - start).as_secs_f64() * 1e6
    };
    let queued_us = flush_time(true);
    let sequential_us = flush_time(false);

    Section {
        name: "kv_ops",
        metrics: vec![
            Metric::new("put_throughput_kops", put_kops, "kops_sim"),
            Metric::new("get_throughput_kops", get_kops, "kops_sim"),
            Metric::new("scan_throughput_krows", scan_krows, "krows_sim"),
            Metric::new("flushes", stats.flushes as f64, "count"),
            Metric::new("compactions", stats.compactions as f64, "count"),
            Metric::new("flush_queued_us", queued_us, "us_sim"),
            Metric::new("flush_sequential_us", sequential_us, "us_sim"),
            Metric::new("flush_speedup", sequential_us / queued_us.max(f64::MIN_POSITIVE), "x"),
        ],
    }
}

/// Recovery section: mount + WAL redo after a workload, as in the
/// `recovery` criterion bench but sized for a smoke run.
pub fn recovery_section(quick: bool) -> Section {
    let txns: i64 = if quick { 60 } else { 240 };
    let config = DatabaseConfig {
        buffer_pages: 512,
        redo_logging: true,
        wal_segment_pages: 1_000_000, // keep the tail; we want it long
        ..DatabaseConfig::default()
    };
    let device = device();
    let noftl = Arc::new(NoFtl::new(device.clone(), NoFtlConfig::default()));
    let placement = PlacementConfig::traditional(8, ["t".to_string()]);
    let backend = Arc::new(NoFtlBackend::new(Arc::clone(&noftl), &placement).unwrap());
    let db = Database::open(backend, config).unwrap();
    db.create_table(
        "t",
        Schema::new(vec![("k", dbms_engine::ColumnType::Int), ("v", dbms_engine::ColumnType::Int)]),
        SimTime::ZERO,
    )
    .unwrap();
    let mut t = db.checkpoint(SimTime::ZERO).unwrap();
    for i in 0..txns {
        let mut txn = db.begin(t);
        db.insert(&mut txn, "t", &vec![Value::Int(i), Value::Int(i * 7)], &[]).unwrap();
        db.commit(&mut txn).unwrap();
        t = txn.now;
    }
    let wal_pages = db.wal_stats().pages;
    let snapshot: DeviceSnapshot = device.snapshot();

    let wall = Instant::now();
    let device2 = Arc::new(NandDevice::from_snapshot(&snapshot, TimingModel::mlc_2015()).unwrap());
    let (noftl2, mount) = NoFtl::mount(device2, NoFtlConfig::default(), SimTime::ZERO).unwrap();
    let backend2 = Arc::new(NoFtlBackend::attach(Arc::new(noftl2), &placement).unwrap());
    let (_db2, report) = Database::recover(backend2, config, mount.completed_at).unwrap();
    let wall_ms = wall.elapsed().as_secs_f64() * 1e3;

    Section {
        name: "recovery",
        metrics: vec![
            Metric::new("wal_pages", wal_pages as f64, "pages"),
            Metric::new("redo_pages_applied", report.redo_pages_applied as f64, "pages"),
            Metric::new("pages_scanned", mount.pages_scanned as f64, "pages"),
            Metric::new("mount_simulated_us", mount.completed_at.as_secs_f64() * 1e6, "us_sim"),
            Metric::new("reboot_recover_wall_ms", wall_ms, "wall_ms"),
        ],
    }
}

/// Mirror section: degraded-read latency and rebuild throughput over a
/// 2-way `MirrorDevice`.  A NoFTL stack writes a working set through the
/// mirror, reads it healthy, loses a child and reads it degraded (all
/// traffic squeezed onto the surviving child), then reattaches the child
/// and measures the online rebuild of exactly the stale segments.  All
/// values are simulated device time.
pub fn mirror_section(quick: bool) -> Section {
    use noftl_mirror::MirrorDevice;

    let pages: u64 = if quick { 96 } else { 384 };
    let mirror = Arc::new(
        MirrorDevice::new_fresh(2, FlashGeometry::example(), TimingModel::mlc_2015()).unwrap(),
    );
    let (noftl, _rid) = NoFtl::with_single_region(mirror.clone(), NoFtlConfig::default());
    let obj = noftl.create_object_in("t", "rgAll").unwrap();
    let mut t = SimTime::ZERO;
    for p in 0..pages {
        t = noftl.write(obj, p, &vec![p as u8; 4096], t).unwrap();
    }
    t = noftl.checkpoint(t).unwrap();

    // Healthy read sweep: both children online, reads spread across them.
    let healthy_start = t;
    for p in 0..pages {
        t = t.max(noftl.read(obj, p, t).unwrap().1);
    }
    let healthy_us = (t.as_nanos() - healthy_start.as_nanos()) as f64 / 1e3;

    // Lose child 1 and overwrite a quarter of the set (accrues dirt),
    // then sweep again: every read lands on the surviving child.
    mirror.injector().arm(1, t);
    t = SimTime(t.as_nanos() + 1);
    for p in 0..pages / 4 {
        t = noftl.write(obj, p, &vec![0xD0u8.wrapping_add(p as u8); 4096], t).unwrap();
    }
    let degraded_start = t;
    for p in 0..pages {
        t = t.max(noftl.read(obj, p, t).unwrap().1);
    }
    let degraded_us = (t.as_nanos() - degraded_start.as_nanos()) as f64 / 1e3;

    // Reattach and rebuild online: copies only the stale segments.
    mirror.injector().clear(1);
    let dirty = mirror.dirty_segments(1);
    mirror.start_rebuild(1, t).unwrap();
    let report = mirror.rebuild(1, 8, t).unwrap();
    assert!(report.child_online, "bench rebuild must drain");
    let rebuild_ns = report.completed_at.as_nanos().saturating_sub(t.as_nanos()).max(1);
    // Pages copied per simulated second, in thousands.
    let rebuild_kpps = report.pages_copied as f64 / (rebuild_ns as f64 / 1e9) / 1e3;

    Section {
        name: "mirror",
        metrics: vec![
            Metric::new("healthy_read_sweep_us", healthy_us, "us_sim"),
            Metric::new("degraded_read_sweep_us", degraded_us, "us_sim"),
            Metric::new("degraded_read_penalty", degraded_us / healthy_us.max(1.0), "x"),
            Metric::new("dirty_segments", dirty as f64, "segments"),
            Metric::new("rebuild_pages_copied", report.pages_copied as f64, "pages"),
            Metric::new("rebuild_simulated_us", rebuild_ns as f64 / 1e3, "us_sim"),
            Metric::new("rebuild_throughput_kpps", rebuild_kpps, "kops_sim"),
        ],
    }
}

/// The latency quantiles the smoke run reports per histogram.
const LATENCY_SPECS: [(&str, &str, f64); 12] = [
    ("queued_read_p50_us", "flash.queue.read.wait_ns", 0.5),
    ("queued_read_p99_us", "flash.queue.read.wait_ns", 0.99),
    ("queued_read_p999_us", "flash.queue.read.wait_ns", 0.999),
    ("queued_write_p50_us", "flash.queue.program.wait_ns", 0.5),
    ("queued_write_p99_us", "flash.queue.program.wait_ns", 0.99),
    ("queued_write_p999_us", "flash.queue.program.wait_ns", 0.999),
    ("flush_window_p50_us", "core.flush.window_ns", 0.5),
    ("flush_window_p99_us", "core.flush.window_ns", 0.99),
    ("flush_window_p999_us", "core.flush.window_ns", 0.999),
    ("kv_put_p50_us", "kv.put.latency_ns", 0.5),
    ("kv_put_p99_us", "kv.put.latency_ns", 0.99),
    ("kv_put_p999_us", "kv.put.latency_ns", 0.999),
];

/// Latency section: percentile latencies read back out of the shared
/// metrics registry after a mixed workload — queued reads, queued writes
/// (programs), windowed flushes and KV puts.  All values are simulated
/// time, so the percentiles are deterministic across runs and machines.
pub fn latency_section(quick: bool) -> Section {
    let pages: u64 = if quick { 192 } else { 768 };
    let puts: u64 = if quick { 2_000 } else { 8_000 };
    let dev = device();
    let noftl = Arc::new(NoFtl::new(dev.clone(), NoFtlConfig::default()));
    let rid = noftl.create_region(RegionSpec::named("rgLat").with_die_count(4)).unwrap();
    let obj = noftl.create_object("t", rid).unwrap();

    // Windowed writes fill `flash.queue.program.wait_ns` and
    // `core.flush.window_ns`.
    let batch: Vec<(u32, u64, Vec<u8>)> =
        (0..pages).map(|p| (obj, p, vec![p as u8; 4096])).collect();
    let mut now = SimTime::ZERO;
    for chunk in batch.chunks(64) {
        now = now.max(noftl.write_windowed(chunk, now, 16).unwrap());
    }
    // A read sweep through the asynchronous path fills
    // `flash.queue.read.wait_ns`.  The percentiles are sampled *here*,
    // before the KV phase: its compaction merges also ride the queued
    // read path now (deliberately overlapped, so individually longer
    // waits buy shorter scans) and would skew the sweep's distribution.
    for p in 0..pages {
        let handle = noftl.submit_read(obj, p, now).unwrap();
        let (_, done) = noftl.wait_io(handle).unwrap();
        now = now.max(done);
    }
    let read_snap = noftl.metrics_snapshot();
    // KV puts (into a second region of the same stack) fill
    // `kv.put.latency_ns` — mostly memtable-resident, with flush spikes
    // in the tail.
    let kv_rid = noftl.create_region(RegionSpec::named("rgKvLat").with_die_count(4)).unwrap();
    let (store, mut t) =
        KvStore::create(Arc::clone(&noftl), kv_rid, "lat", KvConfig::default(), now).unwrap();
    for i in 0..puts {
        t = store.put(&kv_key(i), &kv_val(i), t).unwrap();
    }
    store.flush(t).unwrap();

    let snap = noftl.metrics_snapshot();
    let metrics = LATENCY_SPECS
        .iter()
        .map(|&(name, hist, q)| {
            let source = if hist == "flash.queue.read.wait_ns" { &read_snap } else { &snap };
            let value = source.histogram(hist).map_or(0, |h| h.percentile(q));
            Metric::new(name, value as f64 / 1e3, "us_sim")
        })
        .collect();
    Section { name: "latency", metrics }
}

/// The PR number stamped into the perf-trajectory JSON.
pub const PERF_POINT_PR: u32 = 10;

/// Serialise sections into a `BENCH_*.json` perf-trajectory point.
pub fn write_json(path: &Path, mode: &str, sections: &[Section]) -> std::io::Result<()> {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"pr\": {PERF_POINT_PR},\n"));
    out.push_str("  \"tool\": \"perf_smoke\",\n");
    out.push_str(&format!("  \"mode\": \"{mode}\",\n"));
    out.push_str("  \"sections\": {\n");
    for (si, section) in sections.iter().enumerate() {
        out.push_str(&format!("    \"{}\": {{\n", section.name));
        for (mi, m) in section.metrics.iter().enumerate() {
            let comma = if mi + 1 == section.metrics.len() { "" } else { "," };
            out.push_str(&format!(
                "      \"{}\": {{\"value\": {:.3}, \"unit\": \"{}\"}}{comma}\n",
                m.name, m.value, m.unit
            ));
        }
        let comma = if si + 1 == sections.len() { "" } else { "," };
        out.push_str(&format!("    }}{comma}\n"));
    }
    out.push_str("  }\n}\n");
    let mut file = std::fs::File::create(path)?;
    file.write_all(out.as_bytes())
}

/// One metric parsed back out of a committed `BENCH_*.json` point.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedMetric {
    /// Section the metric belongs to.
    pub section: String,
    /// Metric name.
    pub name: String,
    /// Measured value.
    pub value: f64,
    /// Unit label.
    pub unit: String,
}

/// Parse the metrics out of a `BENCH_*.json` file produced by
/// [`write_json`].  Line-oriented on the emitter's fixed shape (the
/// workspace's `serde` is an offline marker stub with no deserialisers);
/// unknown lines are skipped, so the parser tolerates points written by
/// future emitters that add fields.
pub fn parse_bench_json(text: &str) -> Vec<ParsedMetric> {
    let mut out = Vec::new();
    let mut section = String::new();
    for line in text.lines() {
        let t = line.trim();
        let Some(rest) = t.strip_prefix('"') else { continue };
        let Some((name, rest)) = rest.split_once('"') else { continue };
        let rest = rest.trim_start().trim_start_matches(':').trim_start();
        if rest == "{" {
            section = name.to_string();
            continue;
        }
        let Some(body) = rest.strip_prefix("{\"value\":") else { continue };
        let Some((value, tail)) = body.split_once(',') else { continue };
        let Ok(value) = value.trim().parse::<f64>() else { continue };
        let Some(unit) = tail.split('"').nth(3) else { continue };
        out.push(ParsedMetric {
            section: section.clone(),
            name: name.to_string(),
            value,
            unit: unit.to_string(),
        });
    }
    out
}

/// Verdict of comparing a fresh perf point against a committed baseline.
#[derive(Debug, Default)]
pub struct BenchComparison {
    /// Hard failures: shared simulated-time metrics that regressed beyond
    /// the tolerance.
    pub failures: Vec<String>,
    /// Warn-only observations: new metrics without a baseline, retired
    /// baseline metrics, improvements, non-gating drift.
    pub notes: Vec<String>,
}

/// Gating direction of a metric unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum GateDirection {
    /// Simulated time: a value above the baseline is a regression.
    LowerIsBetter,
    /// Simulated throughput: a value below the baseline is a regression.
    HigherIsBetter,
    /// Wall-clock, counts, unitless values: never gate.
    Skip,
}

/// Gating direction of a metric, from its unit and — for the
/// direction-ambiguous units — its name.
///
/// * `us_sim` simulated latencies: lower is better.
/// * `kops_sim` / `krows_sim` simulated throughput: higher is better.
/// * `x` ratios are speedups (higher is better) unless the name marks
///   them a penalty (e.g. `degraded_read_penalty`, `mt_oltp_p99_penalty`):
///   then lower is better.  These used to be silently skipped.
/// * `fraction` gates only the utilisation *floors* (names containing
///   `min`, e.g. `write_batch_util_min`): higher is better.  Means and
///   maxima stay warn-only — a mean can legitimately drop when a change
///   shortens the denominator window.
/// * Everything else (wall-clock, counts, pages, segments) never gates.
fn gate_direction(name: &str, unit: &str) -> GateDirection {
    match unit {
        "us_sim" => GateDirection::LowerIsBetter,
        "kops_sim" | "krows_sim" => GateDirection::HigherIsBetter,
        "x" if name.contains("penalty") => GateDirection::LowerIsBetter,
        "x" => GateDirection::HigherIsBetter,
        "fraction" if name.contains("min") => GateDirection::HigherIsBetter,
        _ => GateDirection::Skip,
    }
}

/// Compare fresh `sections` against a committed baseline point
/// (`old_text`, as written by [`write_json`] — any PR's).
///
/// Every **shared simulated metric** gates, direction-aware (see
/// `gate_direction`): `us_sim` (lower is better, including the
/// latency-section histogram percentiles) fails when more than
/// `tolerance` (e.g. `0.2` = 20 %) above the baseline;
/// `kops_sim`/`krows_sim`, `x` speedups and `fraction` utilisation
/// floors (higher is better) fail when more than `tolerance` below it;
/// `x` penalties gate like latencies.  Metrics present on only one side
/// are warn-only — a new PR may add metrics freely — and whatever is
/// skipped as non-gating is listed by name in a single note, so a
/// silently-ungated metric is visible in the job log.
pub fn compare_perf_points(
    old_text: &str,
    sections: &[Section],
    tolerance: f64,
) -> BenchComparison {
    let old = parse_bench_json(old_text);
    let mut cmp = BenchComparison::default();
    let mut skipped: Vec<String> = Vec::new();
    for section in sections {
        for m in &section.metrics {
            let baseline = old.iter().find(|o| o.section == section.name && o.name == m.name);
            let Some(baseline) = baseline else {
                cmp.notes.push(format!(
                    "{}/{}: new metric, no baseline (warn-only)",
                    section.name, m.name
                ));
                continue;
            };
            // Gate only when both sides agree on the unit; a metric whose
            // unit changed is effectively a different measurement.
            let direction = if m.unit == baseline.unit {
                gate_direction(&m.name, m.unit)
            } else {
                GateDirection::Skip
            };
            if direction == GateDirection::Skip {
                skipped.push(format!("{}/{}", section.name, m.name));
                continue;
            }
            let (regressed, improved) = match direction {
                GateDirection::LowerIsBetter => (
                    m.value > baseline.value * (1.0 + tolerance),
                    m.value < baseline.value * (1.0 - tolerance),
                ),
                GateDirection::HigherIsBetter => (
                    m.value < baseline.value * (1.0 - tolerance),
                    m.value > baseline.value * (1.0 + tolerance),
                ),
                GateDirection::Skip => (false, false),
            };
            if regressed {
                cmp.failures.push(format!(
                    "{}/{}: {:.1} {} vs baseline {:.1} (> {:.0}% regression)",
                    section.name,
                    m.name,
                    m.value,
                    m.unit,
                    baseline.value,
                    tolerance * 100.0
                ));
            } else if improved {
                cmp.notes.push(format!(
                    "{}/{}: improved to {:.1} {} from {:.1}",
                    section.name, m.name, m.value, m.unit, baseline.value
                ));
            }
        }
    }
    for o in &old {
        let retired = !sections
            .iter()
            .any(|s| s.name == o.section && s.metrics.iter().any(|m| m.name == o.name));
        if retired && !o.section.is_empty() {
            cmp.notes
                .push(format!("{}/{}: baseline metric retired (warn-only)", o.section, o.name));
        }
    }
    if !skipped.is_empty() {
        cmp.notes.push(format!(
            "skipped {} non-gating metric(s) (wall-clock/count/unitless): {}",
            skipped.len(),
            skipped.join(", ")
        ));
    }
    cmp
}

/// Render sections as an aligned text table (the binary's stdout).
pub fn render_table(sections: &[Section]) -> String {
    let mut out = String::new();
    for section in sections {
        out.push_str(&format!("[{}]\n", section.name));
        for m in &section.metrics {
            out.push_str(&format!("  {:<28} {:>14.3} {}\n", m.name, m.value, m.unit));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_depth_section_is_sane() {
        let section = queue_depth_section();
        let get =
            |name: &str| section.metrics.iter().find(|m| m.name == name).map(|m| m.value).unwrap();
        assert!(get("depth_1_us") >= get("depth_dies_us"), "deeper queues never slower");
        assert!(get("write_batch_speedup") > 1.0, "queued batch must beat sequential");
    }

    #[test]
    fn kv_ops_section_quick_is_sane() {
        let section = kv_ops_section(true);
        let get =
            |name: &str| section.metrics.iter().find(|m| m.name == name).map(|m| m.value).unwrap();
        assert!(get("put_throughput_kops") > 0.0);
        assert!(get("flushes") >= 1.0);
        assert!(get("flush_speedup") > 1.0, "queued flush must beat sequential");
    }

    #[test]
    fn recovery_section_quick_is_sane() {
        let section = recovery_section(true);
        let get =
            |name: &str| section.metrics.iter().find(|m| m.name == name).map(|m| m.value).unwrap();
        assert!(get("wal_pages") > 0.0);
        assert!(get("redo_pages_applied") > 0.0);
    }

    #[test]
    fn json_serialisation_shape() {
        let sections = vec![Section {
            name: "demo",
            metrics: vec![Metric::new("a", 1.5, "us_sim"), Metric::new("b", 2.0, "x")],
        }];
        let path = std::env::temp_dir().join(format!("bench-smoke-{}.json", std::process::id()));
        write_json(&path, "quick", &sections).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert!(text.contains("\"demo\""));
        assert!(text.contains("\"a\": {\"value\": 1.500, \"unit\": \"us_sim\"}"));
        assert!(text.contains(&format!("\"pr\": {PERF_POINT_PR}")));
        let table = render_table(&sections);
        assert!(table.contains("[demo]"));
    }

    #[test]
    fn bench_json_roundtrips_through_the_parser() {
        let sections = vec![Section {
            name: "queue_depth",
            metrics: vec![
                Metric::new("depth_1_us", 45760.0, "us_sim"),
                Metric::new("write_batch_speedup", 4.05, "x"),
            ],
        }];
        let path = std::env::temp_dir().join(format!("bench-parse-{}.json", std::process::id()));
        write_json(&path, "quick", &sections).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        let parsed = parse_bench_json(&text);
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].section, "queue_depth");
        assert_eq!(parsed[0].name, "depth_1_us");
        assert_eq!(parsed[0].value, 45760.0);
        assert_eq!(parsed[0].unit, "us_sim");
        assert_eq!(parsed[1].unit, "x");
    }

    #[test]
    fn perf_comparison_gates_only_shared_simulated_time_metrics() {
        let baseline = vec![Section {
            name: "queue_depth",
            metrics: vec![
                Metric::new("depth_1_us", 1000.0, "us_sim"),
                Metric::new("old_only_us", 5.0, "us_sim"),
                Metric::new("wall", 3.0, "wall_ms"),
            ],
        }];
        let path = std::env::temp_dir().join(format!("bench-cmp-{}.json", std::process::id()));
        write_json(&path, "quick", &baseline).unwrap();
        let old_text = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();

        // 30 % regression on a shared us_sim metric fails at 20 % tolerance;
        // new metrics and wall-clock drift are warn-only.
        let fresh = vec![Section {
            name: "queue_depth",
            metrics: vec![
                Metric::new("depth_1_us", 1300.0, "us_sim"),
                Metric::new("brand_new_us", 9.0, "us_sim"),
                Metric::new("wall", 300.0, "wall_ms"),
            ],
        }];
        let cmp = compare_perf_points(&old_text, &fresh, 0.2);
        assert_eq!(cmp.failures.len(), 1, "failures: {:?}", cmp.failures);
        assert!(cmp.failures[0].contains("depth_1_us"));
        assert!(cmp.notes.iter().any(|n| n.contains("brand_new_us") && n.contains("warn-only")));
        assert!(cmp.notes.iter().any(|n| n.contains("old_only_us") && n.contains("retired")));

        // Within tolerance: clean.
        let fresh_ok = vec![Section {
            name: "queue_depth",
            metrics: vec![Metric::new("depth_1_us", 1100.0, "us_sim")],
        }];
        assert!(compare_perf_points(&old_text, &fresh_ok, 0.2).failures.is_empty());
    }

    #[test]
    fn mirror_section_quick_is_sane() {
        let section = mirror_section(true);
        let get =
            |name: &str| section.metrics.iter().find(|m| m.name == name).map(|m| m.value).unwrap();
        assert!(get("healthy_read_sweep_us") > 0.0);
        assert!(
            get("degraded_read_sweep_us") >= get("healthy_read_sweep_us"),
            "losing a child cannot make reads faster"
        );
        assert!(get("dirty_segments") >= 1.0, "degraded writes must dirty segments");
        assert!(get("rebuild_pages_copied") > 0.0);
        assert!(get("rebuild_throughput_kpps") > 0.0);
    }

    #[test]
    fn latency_section_quick_is_sane() {
        let section = latency_section(true);
        assert_eq!(section.metrics.len(), LATENCY_SPECS.len());
        let get =
            |name: &str| section.metrics.iter().find(|m| m.name == name).map(|m| m.value).unwrap();
        // Reads, writes and windows all saw real device latency.
        assert!(get("queued_read_p50_us") > 0.0);
        assert!(get("queued_write_p50_us") > 0.0);
        assert!(get("flush_window_p50_us") > 0.0);
        // Percentiles are monotone within each histogram.
        for prefix in ["queued_read", "queued_write", "flush_window", "kv_put"] {
            let p50 = get(&format!("{prefix}_p50_us"));
            let p99 = get(&format!("{prefix}_p99_us"));
            let p999 = get(&format!("{prefix}_p999_us"));
            assert!(p50 <= p99 && p99 <= p999, "{prefix}: {p50} {p99} {p999}");
        }
        // The KV tail catches flush spikes even though the median put is
        // memtable-resident.
        assert!(get("kv_put_p999_us") >= get("kv_put_p50_us"));
    }

    #[test]
    fn perf_comparison_gates_throughput_decreases() {
        let baseline = vec![Section {
            name: "kv_ops",
            metrics: vec![
                Metric::new("put_throughput_kops", 100.0, "kops_sim"),
                Metric::new("flushes", 4.0, "count"),
            ],
        }];
        let path = std::env::temp_dir().join(format!("bench-dir-{}.json", std::process::id()));
        write_json(&path, "quick", &baseline).unwrap();
        let old_text = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();

        // A 30 % throughput drop fails at 20 % tolerance; the count metric
        // is skipped and summarised in one note.
        let fresh = vec![Section {
            name: "kv_ops",
            metrics: vec![
                Metric::new("put_throughput_kops", 70.0, "kops_sim"),
                Metric::new("flushes", 400.0, "count"),
            ],
        }];
        let cmp = compare_perf_points(&old_text, &fresh, 0.2);
        assert_eq!(cmp.failures.len(), 1, "failures: {:?}", cmp.failures);
        assert!(cmp.failures[0].contains("put_throughput_kops"));
        assert!(
            cmp.notes.iter().any(|n| n.contains("skipped 1 non-gating") && n.contains("flushes")),
            "notes: {:?}",
            cmp.notes
        );

        // A throughput *increase* is an improvement, not a failure.
        let faster = vec![Section {
            name: "kv_ops",
            metrics: vec![Metric::new("put_throughput_kops", 140.0, "kops_sim")],
        }];
        let cmp = compare_perf_points(&old_text, &faster, 0.2);
        assert!(cmp.failures.is_empty());
        assert!(cmp.notes.iter().any(|n| n.contains("improved")));
    }

    #[test]
    fn write_batch_util_covers_only_region_dies() {
        // Regression: the bench region owns 4 of the example device's 8
        // dies.  Summarising the whole device left `util_min` pinned at
        // 0.0 by the 4 dies the region never touched.
        let cmp = write_batch_comparison(64);
        assert_eq!(cmp.queued_util.per_die.len(), 4, "summary must cover the region's dies only");
        assert!(
            cmp.queued_util.min > 0.0,
            "every die of the region works during a striped batch (min = {:.3})",
            cmp.queued_util.min
        );
        assert!(cmp.queued_util.mean >= cmp.queued_util.min);
        assert_eq!(cmp.sequential_util.per_die.len(), 4);
        assert!(cmp.sequential_util.min > 0.0);
    }

    #[test]
    fn perf_comparison_gates_ratios_and_utilisation_floors() {
        let baseline = vec![Section {
            name: "queue_depth",
            metrics: vec![
                Metric::new("write_batch_speedup", 4.0, "x"),
                Metric::new("degraded_read_penalty", 2.0, "x"),
                Metric::new("write_batch_util_min", 0.8, "fraction"),
                Metric::new("write_batch_util_mean", 0.9, "fraction"),
            ],
        }];
        let path = std::env::temp_dir().join(format!("bench-ratio-{}.json", std::process::id()));
        write_json(&path, "quick", &baseline).unwrap();
        let old_text = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();

        // Speedup collapse, penalty growth and a utilisation-floor drop
        // all fail; the mean is skipped but listed by name.
        let fresh = vec![Section {
            name: "queue_depth",
            metrics: vec![
                Metric::new("write_batch_speedup", 2.0, "x"),
                Metric::new("degraded_read_penalty", 3.0, "x"),
                Metric::new("write_batch_util_min", 0.4, "fraction"),
                Metric::new("write_batch_util_mean", 0.3, "fraction"),
            ],
        }];
        let cmp = compare_perf_points(&old_text, &fresh, 0.2);
        assert_eq!(cmp.failures.len(), 3, "failures: {:?}", cmp.failures);
        assert!(cmp.failures.iter().any(|f| f.contains("write_batch_speedup")));
        assert!(cmp.failures.iter().any(|f| f.contains("degraded_read_penalty")));
        assert!(cmp.failures.iter().any(|f| f.contains("write_batch_util_min")));
        assert!(
            cmp.notes
                .iter()
                .any(|n| n.contains("non-gating") && n.contains("write_batch_util_mean")),
            "the skipped mean must be listed by name: {:?}",
            cmp.notes
        );

        // The good directions pass: faster speedup, smaller penalty,
        // higher floor.
        let better = vec![Section {
            name: "queue_depth",
            metrics: vec![
                Metric::new("write_batch_speedup", 6.0, "x"),
                Metric::new("degraded_read_penalty", 1.2, "x"),
                Metric::new("write_batch_util_min", 0.95, "fraction"),
            ],
        }];
        let cmp = compare_perf_points(&old_text, &better, 0.2);
        assert!(cmp.failures.is_empty(), "failures: {:?}", cmp.failures);
        assert!(cmp.notes.iter().any(|n| n.contains("improved")));
    }

    #[test]
    fn skewed_flush_prefers_queue_aware() {
        let skew = skewed_flush_comparison(64, 3);
        assert!(
            skew.queue_aware < skew.round_robin,
            "queue-aware flush ({:?}) must beat round-robin ({:?}) under skew",
            skew.queue_aware,
            skew.round_robin
        );
        assert!(
            skew.qa_util.min > skew.rr_util.min,
            "queue-aware must raise the minimum per-die utilisation ({:.3} vs {:.3})",
            skew.qa_util.min,
            skew.rr_util.min
        );
    }
}
