//! Experiment harness shared by the figure/ablation binaries and the
//! integration tests.
//!
//! [`Experiment`] wires the full stack together — flash device → NoFTL
//! storage manager (with a given placement) → storage engine → TPC-C — and
//! runs one configuration end to end, returning a [`RunReport`] whose
//! device counters cover only the measured run (not the initial load).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod scenarios;
pub mod smoke;

use std::sync::Arc;

use dbms_engine::{Database, DatabaseConfig, NoFtlBackend};
use flash_sim::{DeviceBuilder, FlashGeometry, NandDevice, SimTime, TimingModel};
use noftl_core::{NoFtl, NoFtlConfig, ObjectProfile, PlacementConfig};
use tpcc_workload::{Driver, DriverConfig, Loader, RunReport, ScaleConfig};

/// One end-to-end TPC-C experiment configuration.
#[derive(Debug, Clone)]
pub struct Experiment {
    /// Label used in reports (e.g. "Traditional data placement").
    pub label: String,
    /// Flash geometry of the simulated device.
    pub geometry: FlashGeometry,
    /// NAND timing model.
    pub timing: TimingModel,
    /// NoFTL configuration (GC watermarks, wear leveling, headroom).
    pub noftl: NoFtlConfig,
    /// Data placement (regions and die assignment).
    pub placement: PlacementConfig,
    /// TPC-C scale.
    pub scale: ScaleConfig,
    /// Buffer pool size in 4 KiB pages.
    pub buffer_pages: usize,
    /// Driver configuration (clients, transaction count, mix, seed).
    pub driver: DriverConfig,
}

impl Experiment {
    /// The geometry used by the Figure 3 experiment: 64 dies over
    /// 4 channels (as in the paper) with per-die capacity scaled down so
    /// that a simulation-sized TPC-C database exercises garbage collection
    /// the way the full-size database did on the authors' 64-die board.
    pub fn figure3_geometry() -> FlashGeometry {
        FlashGeometry {
            channels: 4,
            chips_per_channel: 4,
            dies_per_chip: 4,
            planes_per_die: 1,
            blocks_per_plane: 20,
            pages_per_block: 32,
            page_size: 4096,
            oob_size: 64,
        }
    }

    /// Default experiment skeleton used by the figure binaries; the
    /// placement and label are filled in by the caller.
    pub fn figure3_base(placement: PlacementConfig, label: &str) -> Self {
        Experiment {
            label: label.to_string(),
            geometry: Self::figure3_geometry(),
            timing: TimingModel::mlc_2015(),
            noftl: NoFtlConfig::paper_defaults(),
            placement,
            scale: ScaleConfig::small(2),
            buffer_pages: 1_500,
            driver: DriverConfig {
                clients: 20,
                total_transactions: 12_000,
                seed: 20160315,
                ..DriverConfig::default()
            },
        }
    }

    /// A much smaller experiment for integration tests (8 dies, tiny scale).
    pub fn smoke(placement: PlacementConfig, label: &str) -> Self {
        Experiment {
            label: label.to_string(),
            geometry: FlashGeometry {
                channels: 2,
                chips_per_channel: 2,
                dies_per_chip: 2,
                planes_per_die: 1,
                blocks_per_plane: 24,
                pages_per_block: 16,
                page_size: 4096,
                oob_size: 64,
            },
            timing: TimingModel::mlc_2015(),
            noftl: NoFtlConfig::paper_defaults(),
            placement,
            scale: ScaleConfig::tiny(),
            buffer_pages: 64,
            driver: DriverConfig {
                clients: 4,
                total_transactions: 400,
                seed: 7,
                ..DriverConfig::default()
            },
        }
    }

    /// Run the experiment.  Returns the run report (device counters are
    /// deltas over the measured phase only) plus the device and storage
    /// manager handles for further inspection.
    pub fn run(&self) -> ExperimentResult {
        let device = Arc::new(DeviceBuilder::new(self.geometry).timing(self.timing).build());
        let noftl = Arc::new(NoFtl::new(device.clone(), self.noftl));
        let backend = Arc::new(
            NoFtlBackend::new(Arc::clone(&noftl), &self.placement)
                .expect("placement must contain at least one region"),
        );
        let db = Database::open(
            backend,
            DatabaseConfig { buffer_pages: self.buffer_pages, ..Default::default() },
        )
        .expect("database opens");
        let loader = Loader::new(self.scale, self.driver.seed ^ 0xC0FFEE);
        let (load_stats, loaded_at) = loader.load(&db, SimTime::ZERO).expect("load succeeds");
        let before = device.stats();
        let driver = Driver::new(self.driver);
        let mut report = driver.run(&db, &self.scale, loaded_at).expect("run succeeds");
        report.label = self.label.clone();
        let after = device.stats();
        report.attach_device(&after.delta_since(&before), &device.wear_summary());
        let profiles = noftl.all_object_stats().iter().map(ObjectProfile::from_stats).collect();
        ExperimentResult {
            report,
            device,
            noftl,
            object_profiles: profiles,
            loaded_rows: load_stats.total_rows(),
        }
    }
}

/// Everything produced by one experiment run.
pub struct ExperimentResult {
    /// The workload report (with device deltas attached).
    pub report: RunReport,
    /// The simulated flash device (for wear summaries etc.).
    pub device: Arc<NandDevice>,
    /// The NoFTL storage manager (for per-region statistics).
    pub noftl: Arc<NoFtl>,
    /// Per-object I/O profiles measured over the whole run (load + run),
    /// used by the placement advisor / Figure 2 binary.
    pub object_profiles: Vec<ObjectProfile>,
    /// Rows loaded into the database before the measured phase.
    pub loaded_rows: u64,
}

impl ExperimentResult {
    /// Render per-region statistics as a small table.
    pub fn region_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<16} {:>5} {:>12} {:>12} {:>10} {:>10} {:>8}\n",
            "Region", "Dies", "HostReads", "HostWrites", "Copybacks", "Erases", "WA"
        ));
        for rid in self.noftl.region_ids() {
            let info = self.noftl.region_info(rid).expect("region exists");
            let stats = self.noftl.region_stats(rid).expect("region exists");
            out.push_str(&format!(
                "{:<16} {:>5} {:>12} {:>12} {:>10} {:>10} {:>8.3}\n",
                info.name,
                info.dies.len(),
                stats.host_reads,
                stats.host_writes,
                stats.gc_copybacks,
                stats.gc_erases,
                stats.write_amplification(),
            ));
        }
        out
    }
}

/// Read an environment variable as a number, falling back to `default`.
/// Lets the figure binaries be scaled up or down without recompiling
/// (e.g. `FIG3_TXNS=40000 cargo run --release -p noftl-bench --bin figure3`).
pub fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpcc_workload::placement;

    #[test]
    fn smoke_experiment_runs_end_to_end() {
        let exp = Experiment::smoke(placement::traditional(8), "smoke");
        let result = exp.run();
        assert!(result.report.committed > 200);
        assert!(result.report.tps > 0.0);
        assert!(result.loaded_rows > 300);
        assert!(!result.object_profiles.is_empty());
        assert!(result.region_table().contains("rgAll"));
    }

    #[test]
    fn env_u64_parses_and_defaults() {
        assert_eq!(env_u64("THIS_VAR_DOES_NOT_EXIST_12345", 7), 7);
        std::env::set_var("NOFTL_BENCH_TEST_VAR", "42");
        assert_eq!(env_u64("NOFTL_BENCH_TEST_VAR", 7), 42);
        std::env::set_var("NOFTL_BENCH_TEST_VAR", "not a number");
        assert_eq!(env_u64("NOFTL_BENCH_TEST_VAR", 7), 7);
    }
}
