//! Ablation: GC victim-selection policy and GC headroom under the two
//! placements.
//!
//! The paper attributes the benefit of regions to cheaper garbage
//! collection; this ablation checks how much of that benefit survives a
//! different victim-selection policy (greedy vs. cost-benefit) and a
//! different amount of per-region GC headroom.
//!
//! ```text
//! cargo run --release -p noftl-bench --bin ablation_gc
//! ```
//! Environment knobs: `ABL_TXNS` (default 5000).

use noftl_bench::{env_u64, Experiment};
use noftl_core::GcPolicy;
use tpcc_workload::placement;

fn main() {
    let dies = Experiment::figure3_geometry().total_dies();
    let txns = env_u64("ABL_TXNS", 5_000);
    println!("== Ablation: GC policy / headroom vs. placement ==\n");
    println!(
        "{:<14} {:<14} {:>9} {:>10} {:>12} {:>12} {:>8}",
        "Placement", "GC policy", "Headroom", "TPS", "Copybacks", "Erases", "WA"
    );
    for (placement_label, placement) in
        [("traditional", placement::traditional(dies)), ("figure2", placement::figure2(dies))]
    {
        for (policy_label, policy) in
            [("greedy", GcPolicy::Greedy), ("cost-benefit", GcPolicy::CostBenefit)]
        {
            for headroom in [0.05f64, 0.10, 0.20] {
                let mut exp = Experiment::figure3_base(placement.clone(), placement_label);
                exp.driver.total_transactions = txns;
                exp.noftl.gc_policy = policy;
                exp.noftl.gc_headroom = headroom;
                let result = exp.run();
                let r = &result.report;
                println!(
                    "{:<14} {:<14} {:>8.0}% {:>10.1} {:>12} {:>12} {:>8.3}",
                    placement_label,
                    policy_label,
                    headroom * 100.0,
                    r.tps,
                    r.gc_copybacks,
                    r.gc_erases,
                    r.write_amplification()
                );
            }
        }
    }
}
