//! CI perf-smoke harness: run the headline measurements of the
//! `queue_depth` (incl. the skewed-load placement comparison), `kv_ops`,
//! `recovery` and `mirror` benches in quick mode — plus the `latency` section's
//! histogram percentiles read back out of the shared metrics registry and,
//! with `--scenarios`, the workload lab's YCSB/replay/multi-tenant
//! scenario matrix — write them to a `BENCH_PR10.json` perf-trajectory
//! point and optionally gate against a committed baseline point.
//!
//! ```text
//! cargo run --release -p noftl-bench --bin perf_smoke -- \
//!     --scenarios all --out BENCH_PR10.json --compare BENCH_PR9.json
//! ```
//!
//! Flags: `--out <path>` (default `BENCH_PR10.json`), `--full` for the
//! larger workloads, `--scenarios <kv|btree|mixed|all>` to append the
//! `scenarios` section, `--only-scenarios` to emit *only* that section
//! (the CI scenario matrix runs one group per job), and
//! `--compare <baseline.json>` to fail (exit 1) when any simulated
//! metric shared with the baseline regressed by more than 20 % —
//! direction-aware: simulated time and latency percentiles gate on
//! increases; simulated throughput, `x` speedups and utilisation floors
//! on decreases; `x` penalties on increases (metrics new in this PR are
//! warn-only, and skipped non-gating metrics are listed by name).  All
//! numbers except the `_wall_ms` ones are simulated device time and
//! therefore deterministic across runs and machines — exactly what a CI
//! artifact needs to be comparable.

use std::path::PathBuf;

use noftl_bench::scenarios::{self, ScenarioGroup};
use noftl_bench::smoke;

/// Gate: fail on simulated-time regressions beyond this fraction.
const TOLERANCE: f64 = 0.20;

fn main() {
    let mut out = PathBuf::from("BENCH_PR10.json");
    let mut baseline: Option<PathBuf> = None;
    let mut quick = true;
    let mut scenario_group: Option<ScenarioGroup> = None;
    let mut only_scenarios = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => {
                out = PathBuf::from(args.next().expect("--out needs a path"));
            }
            "--compare" => {
                baseline = Some(PathBuf::from(args.next().expect("--compare needs a path")));
            }
            "--full" => quick = false,
            "--quick" => quick = true,
            "--scenarios" => {
                let which = args.next().expect("--scenarios needs kv|btree|mixed|all");
                scenario_group = Some(ScenarioGroup::parse(&which).unwrap_or_else(|| {
                    eprintln!("unknown scenario group '{which}' (expected kv|btree|mixed|all)");
                    std::process::exit(2);
                }));
            }
            "--only-scenarios" => only_scenarios = true,
            other => {
                eprintln!(
                    "unknown flag '{other}' \
                     (expected --out <path>, --compare <path>, --quick, --full, \
                     --scenarios <kv|btree|mixed|all>, --only-scenarios)"
                );
                std::process::exit(2);
            }
        }
    }
    if only_scenarios && scenario_group.is_none() {
        // `--only-scenarios` without an explicit group means the whole matrix.
        scenario_group = Some(ScenarioGroup::All);
    }
    let mode = if quick { "quick" } else { "full" };
    println!("perf smoke ({mode} mode):");
    let mut sections = Vec::new();
    if !only_scenarios {
        sections.extend([
            smoke::queue_depth_section(),
            smoke::kv_ops_section(quick),
            smoke::recovery_section(quick),
            smoke::mirror_section(quick),
            smoke::latency_section(quick),
        ]);
    }
    if let Some(group) = scenario_group {
        sections.push(scenarios::scenarios_section(quick, group));
    }
    print!("{}", smoke::render_table(&sections));
    smoke::write_json(&out, mode, &sections).expect("write bench JSON");
    println!("wrote {}", out.display());

    if let Some(baseline) = baseline {
        let old_text = std::fs::read_to_string(&baseline)
            .unwrap_or_else(|e| panic!("read baseline {}: {e}", baseline.display()));
        let cmp = smoke::compare_perf_points(&old_text, &sections, TOLERANCE);
        println!("comparison against {}:", baseline.display());
        for note in &cmp.notes {
            println!("  note: {note}");
        }
        if cmp.failures.is_empty() {
            println!(
                "  OK — no shared simulated metric regressed by more than {:.0}%",
                TOLERANCE * 100.0
            );
        } else {
            for failure in &cmp.failures {
                eprintln!("  REGRESSION: {failure}");
            }
            std::process::exit(1);
        }
    }
}
