//! CI perf-smoke harness: run the headline measurements of the
//! `queue_depth`, `kv_ops` and `recovery` benches in quick mode and
//! write them to a `BENCH_PR4.json` perf-trajectory point.
//!
//! ```text
//! cargo run --release -p noftl-bench --bin perf_smoke -- --out BENCH_PR4.json
//! ```
//!
//! Flags: `--out <path>` (default `BENCH_PR4.json`), `--full` for the
//! larger workloads.  All numbers except the `_wall_ms` ones are
//! simulated device time and therefore deterministic across runs and
//! machines — exactly what a CI artifact needs to be comparable.

use std::path::PathBuf;

use noftl_bench::smoke;

fn main() {
    let mut out = PathBuf::from("BENCH_PR4.json");
    let mut quick = true;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => {
                out = PathBuf::from(args.next().expect("--out needs a path"));
            }
            "--full" => quick = false,
            "--quick" => quick = true,
            other => {
                eprintln!("unknown flag '{other}' (expected --out <path>, --quick, --full)");
                std::process::exit(2);
            }
        }
    }
    let mode = if quick { "quick" } else { "full" };
    println!("perf smoke ({mode} mode):");
    let sections = vec![
        smoke::queue_depth_section(),
        smoke::kv_ops_section(quick),
        smoke::recovery_section(quick),
    ];
    print!("{}", smoke::render_table(&sections));
    smoke::write_json(&out, mode, &sections).expect("write bench JSON");
    println!("wrote {}", out.display());
}
