//! Regenerates **Figure 2** of the paper: the multi-region data placement
//! configuration for TPC-C (6 regions over 64 dies).
//!
//! Two tables are printed:
//!
//! 1. the placement used by the Figure 3 experiment (the paper's published
//!    die counts 2/11/10/29/6/6);
//! 2. the placement the *advisor* derives from object statistics measured
//!    during a traditional-placement run, showing that the die shares are
//!    reproducible from the DBMS's own knowledge of object sizes and I/O
//!    rates (the mechanism §2 of the paper describes).
//!
//! ```text
//! cargo run --release -p noftl-bench --bin figure2
//! ```
//! Environment knobs: `FIG2_TXNS` (default 4000), `FIG2_DIES` (default 64).

use noftl_bench::{env_u64, Experiment};
use tpcc_workload::placement;

fn main() {
    let dies = env_u64("FIG2_DIES", 64) as u32;
    let txns = env_u64("FIG2_TXNS", 4_000);

    println!("== Figure 2: multi-region data placement configuration for TPC-C ==\n");
    let paper = placement::figure2(dies);
    println!("{}", paper.to_table());

    println!("-- Placement derived by the advisor from measured object statistics --\n");
    // Measure object I/O profiles under traditional placement.
    let mut exp = Experiment::figure3_base(placement::traditional(dies), "profiling run");
    exp.driver.total_transactions = txns;
    let result = exp.run();
    // Group the measured objects exactly as the paper's Figure 2 groups them,
    // then let the advisor apportion the dies from the measured profiles.
    let groups: Vec<(String, Vec<String>)> =
        paper.regions.iter().map(|r| (r.region_name.clone(), r.objects.clone())).collect();
    let advised = placement::advised(&result.object_profiles, &groups, dies);
    println!("{}", advised.to_table());

    println!("-- Measured object profiles (pages / reads / writes) --\n");
    let mut profiles = result.object_profiles.clone();
    profiles.sort_by_key(|p| std::cmp::Reverse(p.reads + p.writes));
    println!("{:<16} {:>10} {:>12} {:>12}", "Object", "Pages", "Reads", "Writes");
    for p in profiles {
        println!("{:<16} {:>10} {:>12} {:>12}", p.name, p.pages, p.reads, p.writes);
    }
}
