//! Regenerates **Figure 3** of the paper: TPC-C under traditional data
//! placement vs. the six-region placement of Figure 2.
//!
//! The paper reports, for the multi-region configuration: ≈ +20 % TPS,
//! ≈ +20 % host I/Os, ≈ −20 % GC COPYBACKs, ≈ −4.3 % GC ERASEs and lower
//! 4 KB / transaction latencies.  Absolute numbers differ (the substrate
//! here is a calibrated simulator, not the authors' 64-die board); the
//! comparison table and the relative deltas are the reproduction target.
//!
//! ```text
//! cargo run --release -p noftl-bench --bin figure3
//! ```
//! Environment knobs: `FIG3_TXNS` (default 12000), `FIG3_CLIENTS` (20),
//! `FIG3_WAREHOUSES` (2), `FIG3_BUFFER_PAGES` (1500), `FIG3_SEED`.

use noftl_bench::{env_u64, Experiment};
use tpcc_workload::{placement, ComparisonReport, ScaleConfig};

fn configure(mut exp: Experiment) -> Experiment {
    exp.driver.total_transactions = env_u64("FIG3_TXNS", 12_000);
    exp.driver.clients = env_u64("FIG3_CLIENTS", 20) as usize;
    exp.driver.seed = env_u64("FIG3_SEED", 20_160_315);
    exp.buffer_pages = env_u64("FIG3_BUFFER_PAGES", 1_500) as usize;
    exp.scale = ScaleConfig::small(env_u64("FIG3_WAREHOUSES", 2) as i64);
    exp
}

fn main() {
    let dies = Experiment::figure3_geometry().total_dies();
    println!("== Figure 3: traditional vs. multi-region data placement (TPC-C, {dies} dies) ==\n");

    println!("running traditional placement ...");
    let traditional = configure(Experiment::figure3_base(
        placement::traditional(dies),
        "Traditional data placement",
    ))
    .run();
    println!("{}", traditional.region_table());

    println!("running multi-region placement (Figure 2) ...");
    let regions = configure(Experiment::figure3_base(
        placement::figure2(dies),
        "Data placement using Regions",
    ))
    .run();
    println!("{}", regions.region_table());

    let cmp = ComparisonReport {
        traditional: traditional.report.clone(),
        regions: regions.report.clone(),
    };
    println!("{}", cmp.to_table());

    println!("paper reference (Figure 3): TPS +21%, COPYBACKs -19.2%, ERASEs -4.4%");
    println!(
        "this run:                   TPS {:+.1}%, COPYBACKs {:+.1}%, ERASEs {:+.1}%",
        cmp.tps_improvement_pct(),
        -cmp.copyback_reduction_pct(),
        -cmp.erase_reduction_pct()
    );
    println!(
        "\nwear (max erase count): traditional {} vs regions {}",
        traditional.device.wear_summary().max_erase_count,
        regions.device.wear_summary().max_erase_count
    );
}
