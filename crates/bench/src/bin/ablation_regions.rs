//! Ablation: sensitivity of the Figure 3 result to the *number of regions*.
//!
//! The paper argues that intelligent placement trades I/O parallelism
//! against GC overhead.  This binary sweeps the region count (1 = the
//! traditional baseline, 2 = hot/cold split, 6 = the paper's Figure 2) and
//! prints TPS, copybacks and erases for each, exposing where the benefit
//! comes from.
//!
//! ```text
//! cargo run --release -p noftl-bench --bin ablation_regions
//! ```
//! Environment knobs: `ABL_TXNS` (default 6000).

use noftl_bench::{env_u64, Experiment};
use noftl_core::{PlacementConfig, RegionAssignment};
use tpcc_workload::placement;

/// A two-region hot/cold split: update-heavy objects vs. everything else.
fn two_region(total_dies: u32) -> PlacementConfig {
    let hot = vec![
        "STOCK",
        "ORDERLINE",
        "NEW_ORDER",
        "ORDER",
        "DISTRICT",
        "WAREHOUSE",
        "OL_IDX",
        "NO_IDX",
        "O_IDX",
        "O_CUST_IDX",
        "DBMS-log",
    ];
    let cold = vec![
        "CUSTOMER",
        "C_IDX",
        "C_NAME_IDX",
        "ITEM",
        "I_IDX",
        "S_IDX",
        "W_IDX",
        "D_IDX",
        "HISTORY",
        "DBMS-metadata",
    ];
    let hot_dies = (total_dies * 3 / 4).max(1);
    PlacementConfig {
        regions: vec![
            RegionAssignment {
                region_name: "rgHot".into(),
                objects: hot.iter().map(|s| s.to_string()).collect(),
                dies: hot_dies,
                service_class: None,
            },
            RegionAssignment {
                region_name: "rgCold".into(),
                objects: cold.iter().map(|s| s.to_string()).collect(),
                dies: total_dies - hot_dies,
                service_class: None,
            },
        ],
    }
}

fn main() {
    let dies = Experiment::figure3_geometry().total_dies();
    let txns = env_u64("ABL_TXNS", 6_000);
    let configs: Vec<(&str, PlacementConfig)> = vec![
        ("1 region (traditional)", placement::traditional(dies)),
        ("2 regions (hot/cold)", two_region(dies)),
        ("6 regions (Figure 2)", placement::figure2(dies)),
    ];
    println!("== Ablation: region count vs. throughput and GC cost ==\n");
    println!(
        "{:<26} {:>10} {:>12} {:>12} {:>12} {:>8}",
        "Placement", "TPS", "HostWrites", "Copybacks", "Erases", "WA"
    );
    for (label, placement) in configs {
        let mut exp = Experiment::figure3_base(placement, label);
        exp.driver.total_transactions = txns;
        let result = exp.run();
        let r = &result.report;
        println!(
            "{:<26} {:>10.1} {:>12} {:>12} {:>12} {:>8.3}",
            label,
            r.tps,
            r.host_writes,
            r.gc_copybacks,
            r.gc_erases,
            r.write_amplification()
        );
    }
}
