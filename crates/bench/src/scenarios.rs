//! The workload-lab scenario matrix behind `perf_smoke --scenarios`.
//!
//! Three groups, selectable so CI can run them as a matrix:
//!
//! * `kv` — YCSB core workloads A–F against NoFTL-KV.
//! * `btree` — the *same six key streams* against the dbms B+-tree.
//! * `mixed` — the rate-controlled open-loop trace replay and the
//!   OLTP-beside-compaction multi-tenant scenario.
//!
//! Every metric is simulated device time, so the per-scenario throughput
//! and p50/p99/p999 tails land in `BENCH_PR*.json` as deterministic,
//! direction-aware-gated values: `*_kops` gate on decreases, `*_us`
//! percentiles on increases, the `mt_oltp_p99_penalty` ratio on
//! increases (it is a penalty).

use std::sync::Arc;

use flash_sim::{DeviceBuilder, FlashGeometry, SimTime, TimingModel};
use noftl_core::kv::KvConfig;
use noftl_core::{NoFtl, NoFtlConfig, PlacementConfig, RegionSpec};
use noftl_obs::MetricsRegistry;
use noftl_workload::trace::from_spec;
use noftl_workload::{
    load_phase, oltp_beside_compaction, replay, run_ycsb, BtreeBackend, KvBackend,
    MultiTenantConfig, RunReport, WorkloadBackend, YcsbSpec,
};

use crate::smoke::{Metric, Section};

/// Which slice of the scenario matrix to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScenarioGroup {
    /// YCSB A–F over NoFTL-KV.
    Kv,
    /// YCSB A–F over the dbms B+-tree.
    Btree,
    /// Trace replay + multi-tenant mix.
    Mixed,
    /// Everything.
    All,
}

impl ScenarioGroup {
    /// Parse a `--scenarios` argument.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "kv" => Some(ScenarioGroup::Kv),
            "btree" => Some(ScenarioGroup::Btree),
            "mixed" => Some(ScenarioGroup::Mixed),
            "all" => Some(ScenarioGroup::All),
            _ => None,
        }
    }

    fn covers(self, other: ScenarioGroup) -> bool {
        self == ScenarioGroup::All || self == other
    }
}

/// Shared sizing of every scenario in the section.
struct Sizing {
    records: u64,
    ops: u64,
    seed: u64,
}

fn sizing(quick: bool) -> Sizing {
    if quick {
        Sizing { records: 300, ops: 500, seed: 0x9c5b }
    } else {
        Sizing { records: 1_200, ops: 2_000, seed: 0x9c5b }
    }
}

fn kv_backend() -> (KvBackend, SimTime) {
    let dev = Arc::new(
        DeviceBuilder::new(FlashGeometry::example()).timing(TimingModel::mlc_2015()).build(),
    );
    let noftl = Arc::new(NoFtl::new(dev, NoFtlConfig::default()));
    let rid = noftl
        .create_region(RegionSpec::named("rgYcsb").with_die_count(4))
        .expect("example device has 8 dies");
    KvBackend::create(noftl, rid, "ycsb", KvConfig::default(), SimTime::ZERO)
        .expect("fresh store creates")
}

fn btree_backend(value_len: usize) -> (BtreeBackend, SimTime) {
    let dev = Arc::new(
        DeviceBuilder::new(FlashGeometry::example()).timing(TimingModel::mlc_2015()).build(),
    );
    let noftl = Arc::new(NoFtl::new(dev, NoFtlConfig::default()));
    let placement = PlacementConfig::traditional(4, ["usertable".to_string()]);
    BtreeBackend::create(
        noftl,
        &placement,
        dbms_engine::DatabaseConfig::default(),
        value_len,
        SimTime::ZERO,
    )
    .expect("fresh database opens")
}

/// Load + run one YCSB workload on a fresh backend, returning the report.
fn ycsb_run(spec: &YcsbSpec, backend: &dyn WorkloadBackend, at: SimTime) -> RunReport {
    let loaded = load_phase(spec, backend, at).expect("load phase");
    let registry = MetricsRegistry::new();
    run_ycsb(spec, backend, &registry, loaded).expect("run phase")
}

fn push_ycsb_metrics(metrics: &mut Vec<Metric>, which: char, report: &RunReport) {
    let w = which.to_ascii_lowercase();
    let tag = report.backend;
    metrics.push(Metric::new(format!("ycsb_{w}_{tag}_kops"), report.throughput_kops, "kops_sim"));
    metrics.push(Metric::new(format!("ycsb_{w}_{tag}_p50_us"), report.p50_us, "us_sim"));
    metrics.push(Metric::new(format!("ycsb_{w}_{tag}_p99_us"), report.p99_us, "us_sim"));
    metrics.push(Metric::new(format!("ycsb_{w}_{tag}_p999_us"), report.p999_us, "us_sim"));
}

/// Build the `scenarios` section for `group`.
///
/// The six YCSB workloads run on identical key streams on whichever
/// backends the group selects; the `mixed` group adds the open-loop
/// replay (workload B's stream at a fixed offered rate on NoFTL-KV) and
/// the OLTP-beside-compaction multi-tenant scenario.
pub fn scenarios_section(quick: bool, group: ScenarioGroup) -> Section {
    let size = sizing(quick);
    let mut metrics = Vec::new();

    for which in ['A', 'B', 'C', 'D', 'E', 'F'] {
        if !group.covers(ScenarioGroup::Kv) && !group.covers(ScenarioGroup::Btree) {
            break;
        }
        let spec = YcsbSpec::core(which, size.records, size.ops, size.seed)
            .expect("A-F are core workloads");
        if group.covers(ScenarioGroup::Kv) {
            let (backend, t) = kv_backend();
            let report = ycsb_run(&spec, &backend, t);
            push_ycsb_metrics(&mut metrics, which, &report);
        }
        if group.covers(ScenarioGroup::Btree) {
            let (backend, t) = btree_backend(spec.value_len);
            let report = ycsb_run(&spec, &backend, t);
            push_ycsb_metrics(&mut metrics, which, &report);
        }
    }

    if group.covers(ScenarioGroup::Mixed) {
        // Open-loop replay: workload B's stream issued at a fixed offered
        // rate.  Latency counts from the *scheduled* issue instant, so a
        // backend that falls behind shows up in the tail, not as a
        // slower clock (no coordinated omission).
        let spec = YcsbSpec::core('B', size.records, size.ops, size.seed).expect("B is core");
        let offered_kops = 5.0;
        let trace = from_spec(&spec, offered_kops);
        let (backend, t) = kv_backend();
        let loaded = load_phase(&spec, &backend, t).expect("load phase");
        let registry = MetricsRegistry::new();
        let rep = replay(&trace, &backend, &registry, "bench", 100, loaded).expect("replay");
        metrics.push(Metric::new("replay_offered_kops", rep.offered_kops, "kops_sim"));
        metrics.push(Metric::new("replay_achieved_kops", rep.achieved_kops, "kops_sim"));
        metrics.push(Metric::new("replay_p50_us", rep.p50_us, "us_sim"));
        metrics.push(Metric::new("replay_p99_us", rep.p99_us, "us_sim"));
        metrics.push(Metric::new("replay_p999_us", rep.p999_us, "us_sim"));
        metrics.push(Metric::new("replay_misses", rep.misses as f64, "count"));

        // Multi-tenant: latency-sensitive OLTP beside a compaction-heavy
        // KV neighbor on the same device's channels, with the cross-region
        // I/O arbiter on — the deployment configuration this scenario
        // gates.  The arbiter-off run of the same schedules is kept as a
        // diagnostic (`mt_oltp_p99_penalty_noarb`), so the raw
        // interference the arbiter absorbs stays visible in every report.
        let config = if quick { MultiTenantConfig::quick() } else { MultiTenantConfig::full() };
        let noarb = oltp_beside_compaction(&config).expect("multi-tenant scenario (arbiter off)");
        metrics.push(Metric::new("mt_oltp_p99_penalty_noarb", noarb.p99_penalty, "x"));
        let config = config.with_arbiter();
        let mt = oltp_beside_compaction(&config).expect("multi-tenant scenario");
        metrics.push(Metric::new("mt_oltp_kops", mt.oltp_shared.achieved_kops, "kops_sim"));
        metrics.push(Metric::new("mt_oltp_p50_us", mt.oltp_shared.p50_us, "us_sim"));
        metrics.push(Metric::new("mt_oltp_p99_us", mt.oltp_shared.p99_us, "us_sim"));
        metrics.push(Metric::new("mt_oltp_p999_us", mt.oltp_shared.p999_us, "us_sim"));
        metrics.push(Metric::new("mt_oltp_alone_p99_us", mt.oltp_alone.p99_us, "us_sim"));
        metrics.push(Metric::new("mt_oltp_p99_penalty", mt.p99_penalty, "x"));
        metrics.push(Metric::new("mt_compact_kops", mt.compact_shared.achieved_kops, "kops_sim"));
        metrics.push(Metric::new("mt_compact_p99_us", mt.compact_shared.p99_us, "us_sim"));
        metrics.push(Metric::new("mt_compact_flushes", mt.compact_flushes as f64, "count"));
        metrics.push(Metric::new("mt_compact_compactions", mt.compact_compactions as f64, "count"));
    }

    Section { name: "scenarios", metrics }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_parsing() {
        assert_eq!(ScenarioGroup::parse("kv"), Some(ScenarioGroup::Kv));
        assert_eq!(ScenarioGroup::parse("btree"), Some(ScenarioGroup::Btree));
        assert_eq!(ScenarioGroup::parse("mixed"), Some(ScenarioGroup::Mixed));
        assert_eq!(ScenarioGroup::parse("all"), Some(ScenarioGroup::All));
        assert_eq!(ScenarioGroup::parse("everything"), None);
    }

    #[test]
    fn kv_group_covers_all_six_workloads() {
        let section = scenarios_section(true, ScenarioGroup::Kv);
        assert_eq!(section.name, "scenarios");
        for which in ['a', 'b', 'c', 'd', 'e', 'f'] {
            for stat in ["kops", "p50_us", "p99_us", "p999_us"] {
                let name = format!("ycsb_{which}_kv_{stat}");
                assert!(section.metrics.iter().any(|m| m.name == name), "missing {name}");
            }
        }
        assert!(
            !section.metrics.iter().any(|m| m.name.contains("btree")),
            "kv group must not run the btree backend"
        );
        assert!(section.metrics.iter().all(|m| m.value >= 0.0));
    }

    #[test]
    fn mixed_group_reports_replay_and_multi_tenant() {
        let section = scenarios_section(true, ScenarioGroup::Mixed);
        let get =
            |name: &str| section.metrics.iter().find(|m| m.name == name).map(|m| m.value).unwrap();
        assert!(get("replay_achieved_kops") > 0.0);
        assert_eq!(get("replay_misses"), 0.0, "workload B only reads loaded keys");
        assert!(get("replay_p99_us") >= get("replay_p50_us"));
        assert!(
            get("mt_oltp_p99_penalty") <= 2.0,
            "the arbiter must cap the noisy-neighbor tail penalty"
        );
        assert!(
            get("mt_oltp_p99_penalty_noarb") >= 1.0,
            "sharing without the arbiter cannot improve the tail"
        );
        assert!(get("mt_compact_flushes") >= 1.0, "the noisy neighbor must flush");
        assert!(
            !section.metrics.iter().any(|m| m.name.starts_with("ycsb_")),
            "mixed group must not run the YCSB matrix"
        );
    }

    #[test]
    fn scenario_metrics_are_deterministic() {
        let a = scenarios_section(true, ScenarioGroup::Kv);
        let b = scenarios_section(true, ScenarioGroup::Kv);
        for (ma, mb) in a.metrics.iter().zip(&b.metrics) {
            assert_eq!(ma.name, mb.name);
            assert_eq!(ma.value.to_bits(), mb.value.to_bits(), "{} drifted", ma.name);
        }
    }
}
