//! The legacy block-device interface.
//!
//! This is the abstraction the paper argues *against*: a flat array of
//! logical sectors with in-place update semantics, hiding everything the
//! DBMS could exploit about the flash underneath.  The DBMS-side storage
//! backend for the "cooked" (non-NoFTL) configuration talks to this trait
//! only.

use flash_sim::SimTime;

use crate::Result;

/// A block device with fixed-size sectors addressed by logical block
/// address (LBA).  All operations are expressed in simulated time.
pub trait BlockDevice: Send + Sync {
    /// Sector size in bytes (the host I/O unit; 4 KiB throughout this repo).
    fn sector_size(&self) -> u32;

    /// Number of exported sectors.
    fn capacity_sectors(&self) -> u64;

    /// Read one sector.  Returns the data and the completion time.
    fn read(&self, lba: u64, at: SimTime) -> Result<(Vec<u8>, SimTime)>;

    /// Write one sector (in-place from the host's point of view).
    /// Returns the completion time.
    fn write(&self, lba: u64, data: &[u8], at: SimTime) -> Result<SimTime>;

    /// Inform the device that a sector's contents are no longer needed
    /// (TRIM/UNMAP).  Free of charge in simulated time.
    fn trim(&self, lba: u64) -> Result<()>;

    /// Exported capacity in bytes.
    fn capacity_bytes(&self) -> u64 {
        self.capacity_sectors() * self.sector_size() as u64
    }
}

/// A trivial in-memory block device with constant latency, useful for
/// testing DBMS components in isolation from flash behaviour.
#[derive(Debug)]
pub struct MemBlockDevice {
    sector_size: u32,
    latency: flash_sim::Duration,
    sectors: parking_lot::Mutex<Vec<Option<Vec<u8>>>>,
}

impl MemBlockDevice {
    /// Create a device with `capacity_sectors` sectors of `sector_size`
    /// bytes and a fixed per-operation latency.
    pub fn new(sector_size: u32, capacity_sectors: u64, latency: flash_sim::Duration) -> Self {
        MemBlockDevice {
            sector_size,
            latency,
            sectors: parking_lot::Mutex::new(vec![None; capacity_sectors as usize]),
        }
    }
}

impl BlockDevice for MemBlockDevice {
    fn sector_size(&self) -> u32 {
        self.sector_size
    }

    fn capacity_sectors(&self) -> u64 {
        self.sectors.lock().len() as u64
    }

    fn read(&self, lba: u64, at: SimTime) -> Result<(Vec<u8>, SimTime)> {
        let sectors = self.sectors.lock();
        let slot = sectors
            .get(lba as usize)
            .ok_or(crate::FtlError::LbaOutOfRange { lba, capacity: sectors.len() as u64 })?;
        let data = match slot {
            Some(d) => d.clone(),
            None => vec![0u8; self.sector_size as usize],
        };
        Ok((data, at + self.latency))
    }

    fn write(&self, lba: u64, data: &[u8], at: SimTime) -> Result<SimTime> {
        if data.len() != self.sector_size as usize {
            return Err(crate::FtlError::BadSectorSize {
                expected: self.sector_size,
                got: data.len(),
            });
        }
        let mut sectors = self.sectors.lock();
        let cap = sectors.len() as u64;
        let slot = sectors
            .get_mut(lba as usize)
            .ok_or(crate::FtlError::LbaOutOfRange { lba, capacity: cap })?;
        *slot = Some(data.to_vec());
        Ok(at + self.latency)
    }

    fn trim(&self, lba: u64) -> Result<()> {
        let mut sectors = self.sectors.lock();
        let cap = sectors.len() as u64;
        let slot = sectors
            .get_mut(lba as usize)
            .ok_or(crate::FtlError::LbaOutOfRange { lba, capacity: cap })?;
        *slot = None;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flash_sim::Duration;

    #[test]
    fn mem_device_roundtrip() {
        let d = MemBlockDevice::new(4096, 16, Duration::from_us(10));
        let data = vec![0x11u8; 4096];
        let done = d.write(5, &data, SimTime::ZERO).unwrap();
        assert_eq!(done.as_us(), 10);
        let (read, done2) = d.read(5, done).unwrap();
        assert_eq!(read, data);
        assert_eq!(done2.as_us(), 20);
        assert_eq!(d.capacity_bytes(), 16 * 4096);
    }

    #[test]
    fn unwritten_sectors_read_as_zero() {
        let d = MemBlockDevice::new(512, 4, Duration::ZERO);
        let (read, _) = d.read(0, SimTime::ZERO).unwrap();
        assert_eq!(read, vec![0u8; 512]);
    }

    #[test]
    fn trim_clears_a_sector() {
        let d = MemBlockDevice::new(512, 4, Duration::ZERO);
        d.write(1, &vec![9u8; 512], SimTime::ZERO).unwrap();
        d.trim(1).unwrap();
        let (read, _) = d.read(1, SimTime::ZERO).unwrap();
        assert_eq!(read, vec![0u8; 512]);
    }

    #[test]
    fn out_of_range_and_bad_size_errors() {
        let d = MemBlockDevice::new(512, 4, Duration::ZERO);
        assert!(d.read(99, SimTime::ZERO).is_err());
        assert!(d.write(0, &[1, 2], SimTime::ZERO).is_err());
        assert!(d.trim(99).is_err());
    }
}
