//! FTL configuration.

use serde::{Deserialize, Serialize};

/// Garbage-collection victim selection policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum GcPolicy {
    /// Pick the full block with the fewest valid pages (minimum copy cost).
    Greedy,
    /// Cost-benefit: weigh reclaimable space against copy cost and block
    /// "age" (time since last invalidation), favouring cold blocks.
    CostBenefit,
}

/// Wear-leveling policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WearLevelingPolicy {
    /// No wear leveling: free blocks are taken in arbitrary order.
    None,
    /// Dynamic wear leveling: always allocate the free block with the
    /// lowest erase count.
    Dynamic,
    /// Dynamic allocation plus static wear leveling: when the wear spread
    /// (max − min erase count) exceeds `threshold`, migrate the contents
    /// of the least-worn block so it can be recycled.
    Static {
        /// Maximum tolerated difference between the most and least worn block.
        threshold: u64,
    },
}

/// Logical-to-physical mapping scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MappingKind {
    /// Full page-level mapping table held in device RAM.
    PageLevel,
    /// DFTL-style demand paging of the mapping table: only `cached_entries`
    /// translations are cached; misses cost an extra flash page read and
    /// dirty evictions cost an extra program.
    Dftl {
        /// Number of cached L2P entries.
        cached_entries: usize,
    },
}

/// Configuration of the emulated SSD.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FtlConfig {
    /// Fraction of raw capacity reserved as over-provisioning (not exported).
    pub overprovisioning: f64,
    /// GC is triggered when a die's free-block count drops to this value.
    pub gc_low_watermark: u32,
    /// GC keeps reclaiming until the die has this many free blocks again.
    pub gc_high_watermark: u32,
    /// Victim selection policy.
    pub gc_policy: GcPolicy,
    /// Wear-leveling policy.
    pub wear_leveling: WearLevelingPolicy,
    /// Address mapping scheme.
    pub mapping: MappingKind,
}

impl FtlConfig {
    /// Configuration resembling a consumer SSD of the paper's era:
    /// 7 % over-provisioning, greedy GC, dynamic wear leveling, full
    /// page-level mapping.
    pub fn consumer() -> Self {
        FtlConfig {
            overprovisioning: 0.07,
            gc_low_watermark: 2,
            gc_high_watermark: 4,
            gc_policy: GcPolicy::Greedy,
            wear_leveling: WearLevelingPolicy::Dynamic,
            mapping: MappingKind::PageLevel,
        }
    }

    /// Enterprise-style configuration with 20 % over-provisioning.
    pub fn enterprise() -> Self {
        FtlConfig { overprovisioning: 0.20, ..Self::consumer() }
    }

    /// Validate the configuration, returning a description of the problem
    /// if it is not usable.
    pub fn validate(&self) -> std::result::Result<(), String> {
        if !(0.0..0.9).contains(&self.overprovisioning) {
            return Err(format!(
                "overprovisioning must be in [0, 0.9), got {}",
                self.overprovisioning
            ));
        }
        if self.gc_high_watermark < self.gc_low_watermark {
            return Err("gc_high_watermark must be >= gc_low_watermark".into());
        }
        if self.gc_low_watermark == 0 {
            return Err("gc_low_watermark must be at least 1".into());
        }
        if let MappingKind::Dftl { cached_entries } = self.mapping {
            if cached_entries == 0 {
                return Err("DFTL cache must hold at least one entry".into());
            }
        }
        Ok(())
    }
}

impl Default for FtlConfig {
    fn default() -> Self {
        Self::consumer()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_valid() {
        assert!(FtlConfig::consumer().validate().is_ok());
        assert!(FtlConfig::enterprise().validate().is_ok());
        assert!(FtlConfig::default().validate().is_ok());
    }

    #[test]
    fn validation_catches_bad_values() {
        let c = FtlConfig { overprovisioning: 0.95, ..FtlConfig::default() };
        assert!(c.validate().is_err());
        let c = FtlConfig { gc_high_watermark: 0, gc_low_watermark: 1, ..FtlConfig::default() };
        assert!(c.validate().is_err());
        let c = FtlConfig { gc_low_watermark: 0, ..FtlConfig::default() };
        assert!(c.validate().is_err());
        let c =
            FtlConfig { mapping: MappingKind::Dftl { cached_entries: 0 }, ..FtlConfig::default() };
        assert!(c.validate().is_err());
    }

    #[test]
    fn enterprise_has_more_overprovisioning() {
        assert!(FtlConfig::enterprise().overprovisioning > FtlConfig::consumer().overprovisioning);
    }
}
