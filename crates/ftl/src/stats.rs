//! FTL-level (host-visible) statistics.

use serde::{Deserialize, Serialize};

use flash_sim::Duration;

/// Counters maintained by the FTL, complementing the device-level
/// [`flash_sim::DeviceStats`].
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FtlStats {
    /// Host sector reads served.
    pub host_reads: u64,
    /// Host sector writes served.
    pub host_writes: u64,
    /// TRIM commands served.
    pub trims: u64,
    /// GC invocations.
    pub gc_runs: u64,
    /// Valid pages relocated by GC (via copyback).
    pub gc_page_moves: u64,
    /// Blocks erased by GC.
    pub gc_erases: u64,
    /// Static wear-leveling migrations performed.
    pub wl_migrations: u64,
    /// Extra flash reads caused by mapping-table misses (DFTL only).
    pub mapping_reads: u64,
    /// Extra flash writes caused by dirty mapping evictions (DFTL only).
    pub mapping_writes: u64,
    /// Sum of end-to-end host read latencies.
    pub host_read_latency_sum: Duration,
    /// Sum of end-to-end host write latencies.
    pub host_write_latency_sum: Duration,
}

impl FtlStats {
    /// Write amplification factor: physical page programs per host write.
    /// `physical_programs` comes from the device statistics (programs +
    /// copybacks).
    pub fn write_amplification(&self, physical_programs: u64) -> f64 {
        if self.host_writes == 0 {
            0.0
        } else {
            physical_programs as f64 / self.host_writes as f64
        }
    }

    /// Mean end-to-end host read latency in microseconds.
    pub fn avg_host_read_latency_us(&self) -> f64 {
        if self.host_reads == 0 {
            0.0
        } else {
            self.host_read_latency_sum.as_us_f64() / self.host_reads as f64
        }
    }

    /// Mean end-to-end host write latency in microseconds.
    pub fn avg_host_write_latency_us(&self) -> f64 {
        if self.host_writes == 0 {
            0.0
        } else {
            self.host_write_latency_sum.as_us_f64() / self.host_writes as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_amplification_guards_division_by_zero() {
        let s = FtlStats::default();
        assert_eq!(s.write_amplification(100), 0.0);
    }

    #[test]
    fn write_amplification_ratio() {
        let s = FtlStats { host_writes: 100, ..Default::default() };
        assert!((s.write_amplification(150) - 1.5).abs() < 1e-9);
    }

    #[test]
    fn latency_averages() {
        let s = FtlStats {
            host_reads: 2,
            host_writes: 4,
            host_read_latency_sum: Duration::from_us(200),
            host_write_latency_sum: Duration::from_us(100),
            ..Default::default()
        };
        assert!((s.avg_host_read_latency_us() - 100.0).abs() < 1e-9);
        assert!((s.avg_host_write_latency_us() - 25.0).abs() < 1e-9);
        assert_eq!(FtlStats::default().avg_host_read_latency_us(), 0.0);
        assert_eq!(FtlStats::default().avg_host_write_latency_us(), 0.0);
    }
}
