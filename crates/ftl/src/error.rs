//! FTL error type.

use flash_sim::FlashError;
use std::fmt;

/// Errors surfaced by the FTL block device.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FtlError {
    /// The logical block address is outside the exported capacity.
    LbaOutOfRange {
        /// Offending LBA.
        lba: u64,
        /// Exported capacity in sectors.
        capacity: u64,
    },
    /// Read of an LBA that has never been written (and not trimmed).
    Unmapped {
        /// Offending LBA.
        lba: u64,
    },
    /// The data buffer does not match the sector size.
    BadSectorSize {
        /// Expected size in bytes.
        expected: u32,
        /// Supplied buffer length.
        got: usize,
    },
    /// The device ran out of usable free blocks (GC could not reclaim
    /// space); the drive is effectively full.
    OutOfSpace,
    /// An underlying native flash error that the FTL could not mask.
    Flash(FlashError),
}

impl fmt::Display for FtlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FtlError::LbaOutOfRange { lba, capacity } => {
                write!(f, "LBA {lba} out of range (capacity {capacity} sectors)")
            }
            FtlError::Unmapped { lba } => write!(f, "read of unmapped LBA {lba}"),
            FtlError::BadSectorSize { expected, got } => {
                write!(f, "bad sector buffer size: expected {expected}, got {got}")
            }
            FtlError::OutOfSpace => write!(f, "no free flash blocks available (device full)"),
            FtlError::Flash(e) => write!(f, "flash error: {e}"),
        }
    }
}

impl std::error::Error for FtlError {}

impl From<FlashError> for FtlError {
    fn from(e: FlashError) -> Self {
        FtlError::Flash(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flash_sim::{DieId, PageAddr};

    #[test]
    fn display_and_from() {
        let e = FtlError::LbaOutOfRange { lba: 10, capacity: 5 };
        assert!(e.to_string().contains("LBA 10"));
        let fe: FtlError =
            FlashError::UnwrittenPage { addr: PageAddr::new(DieId(0), 0, 0, 0) }.into();
        assert!(matches!(fe, FtlError::Flash(_)));
        assert!(fe.to_string().contains("flash error"));
    }
}
