//! Wear-leveling policies.
//!
//! NAND blocks endure a limited number of program/erase cycles, so flash
//! management layers must spread erasures evenly.  Two complementary
//! mechanisms are modelled:
//!
//! * **dynamic wear leveling** — when allocating a fresh block for writing,
//!   prefer the least-worn free block;
//! * **static wear leveling** — when the gap between the most- and
//!   least-worn blocks exceeds a threshold, proactively migrate cold data
//!   out of low-wear blocks so they re-enter the allocation pool.

use crate::config::WearLevelingPolicy;

/// A free block candidate for allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FreeBlockCandidate {
    /// Opaque index used by the caller to identify the block.
    pub slot: usize,
    /// Erase count of the block.
    pub erase_count: u64,
}

/// Choose which free block to allocate next under the given policy.
///
/// With [`WearLevelingPolicy::None`] the first candidate is returned
/// (arbitrary but deterministic); otherwise the least-worn block wins, with
/// the slot index as a tie-breaker.
pub fn pick_free_block(
    policy: WearLevelingPolicy,
    candidates: &[FreeBlockCandidate],
) -> Option<usize> {
    if candidates.is_empty() {
        return None;
    }
    match policy {
        WearLevelingPolicy::None => candidates.first().map(|c| c.slot),
        WearLevelingPolicy::Dynamic | WearLevelingPolicy::Static { .. } => {
            candidates.iter().min_by_key(|c| (c.erase_count, c.slot)).map(|c| c.slot)
        }
    }
}

/// Decide whether a static wear-leveling migration should run, given the
/// current minimum and maximum per-block erase counts.
pub fn needs_static_wl(policy: WearLevelingPolicy, min_erase: u64, max_erase: u64) -> bool {
    match policy {
        WearLevelingPolicy::Static { threshold } => max_erase.saturating_sub(min_erase) > threshold,
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cands() -> Vec<FreeBlockCandidate> {
        vec![
            FreeBlockCandidate { slot: 0, erase_count: 7 },
            FreeBlockCandidate { slot: 1, erase_count: 2 },
            FreeBlockCandidate { slot: 2, erase_count: 2 },
            FreeBlockCandidate { slot: 3, erase_count: 9 },
        ]
    }

    #[test]
    fn none_policy_takes_first() {
        assert_eq!(pick_free_block(WearLevelingPolicy::None, &cands()), Some(0));
    }

    #[test]
    fn dynamic_policy_takes_least_worn_with_slot_tiebreak() {
        assert_eq!(pick_free_block(WearLevelingPolicy::Dynamic, &cands()), Some(1));
        assert_eq!(
            pick_free_block(WearLevelingPolicy::Static { threshold: 10 }, &cands()),
            Some(1)
        );
    }

    #[test]
    fn empty_candidates_yield_none() {
        assert_eq!(pick_free_block(WearLevelingPolicy::Dynamic, &[]), None);
    }

    #[test]
    fn static_wl_trigger_threshold() {
        let policy = WearLevelingPolicy::Static { threshold: 5 };
        assert!(!needs_static_wl(policy, 10, 15));
        assert!(needs_static_wl(policy, 10, 16));
        assert!(!needs_static_wl(WearLevelingPolicy::Dynamic, 0, 1000));
        assert!(!needs_static_wl(WearLevelingPolicy::None, 0, 1000));
    }
}
