//! The emulated FTL-based SSD.
//!
//! [`FtlSsd`] glues the pieces together: it exports a linear array of 4 KiB
//! sectors ([`BlockDevice`]), translates LBAs to physical flash pages
//! through a page-level mapping, performs out-of-place writes with
//! round-robin striping over all dies, and runs garbage collection and
//! wear leveling *transparently to the host* — which is precisely the
//! "black box" behaviour the paper criticises: the host cannot influence
//! placement, and GC interference shows up as unpredictable latency.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use flash_sim::{
    BlockAddr, BlockState, FlashGeometry, NandDevice, PageAddr, PageMetadata, SimTime,
};

use crate::block_device::BlockDevice;
use crate::config::{FtlConfig, MappingKind, WearLevelingPolicy};
use crate::error::FtlError;
use crate::gc::{select_victim, GcCandidate};
use crate::mapping::{DftlCache, PageMap};
use crate::stats::FtlStats;
use crate::wear::{needs_static_wl, pick_free_block, FreeBlockCandidate};
use crate::Result;

/// Object id stamped into page metadata for host data written through the
/// FTL (the FTL has no notion of database objects — that is the point).
const FTL_OBJECT_ID: u32 = 1;

/// Per-die allocation state.
#[derive(Debug)]
struct DieAlloc {
    /// Erased blocks available for allocation.
    free_blocks: Vec<BlockAddr>,
    /// Current host-write frontier: (block, next page index).
    active: Option<(BlockAddr, u32)>,
    /// Current GC destination frontier: (block, next page index).
    gc_active: Option<(BlockAddr, u32)>,
    /// Blocks that have been written to and are not free (open or full).
    used_blocks: Vec<BlockAddr>,
}

struct SsdInner {
    map: PageMap,
    dftl: Option<DftlCache>,
    dies: Vec<DieAlloc>,
    next_die: usize,
    invalidate_seq: u64,
    /// Last invalidation sequence number per block (packed block key).
    block_invalidate_seq: HashMap<(u32, u32, u32), u64>,
    stats: FtlStats,
}

/// A page-mapped FTL SSD over a [`NandDevice`].
pub struct FtlSsd {
    device: Arc<NandDevice>,
    config: FtlConfig,
    exported_sectors: u64,
    inner: Mutex<SsdInner>,
}

impl std::fmt::Debug for FtlSsd {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FtlSsd")
            .field("exported_sectors", &self.exported_sectors)
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

impl FtlSsd {
    /// Create an SSD over `device` with configuration `config`.
    ///
    /// # Panics
    /// Panics if the configuration fails validation (a programming error).
    pub fn new(device: Arc<NandDevice>, config: FtlConfig) -> Self {
        config.validate().unwrap_or_else(|e| panic!("invalid FTL configuration: {e}"));
        let geo = *device.geometry();
        let total_pages = geo.total_pages();
        let exported_sectors =
            ((total_pages as f64) * (1.0 - config.overprovisioning)).floor() as u64;
        let dies = geo
            .dies()
            .map(|die| {
                let mut free_blocks = Vec::with_capacity(geo.blocks_per_die() as usize);
                for plane in 0..geo.planes_per_die {
                    for block in 0..geo.blocks_per_plane {
                        let addr = BlockAddr::new(die, plane, block);
                        // Skip factory-bad blocks.
                        if let Ok(info) = device.block_info(addr) {
                            if info.state != BlockState::Bad {
                                free_blocks.push(addr);
                            }
                        }
                    }
                }
                DieAlloc { free_blocks, active: None, gc_active: None, used_blocks: Vec::new() }
            })
            .collect();
        let dftl = match config.mapping {
            MappingKind::PageLevel => None,
            MappingKind::Dftl { cached_entries } => Some(DftlCache::new(cached_entries)),
        };
        FtlSsd {
            device,
            config,
            exported_sectors,
            inner: Mutex::new(SsdInner {
                map: PageMap::new(exported_sectors),
                dftl,
                dies,
                next_die: 0,
                invalidate_seq: 0,
                block_invalidate_seq: HashMap::new(),
                stats: FtlStats::default(),
            }),
        }
    }

    /// The underlying native flash device (for reading device statistics).
    pub fn device(&self) -> &Arc<NandDevice> {
        &self.device
    }

    /// FTL configuration.
    pub fn config(&self) -> &FtlConfig {
        &self.config
    }

    /// Host-level statistics.
    pub fn stats(&self) -> FtlStats {
        self.inner.lock().stats.clone()
    }

    /// Current write amplification (physical programs + copybacks per host write).
    pub fn write_amplification(&self) -> f64 {
        let dev = self.device.stats();
        self.inner.lock().stats.write_amplification(dev.page_programs + dev.copybacks)
    }

    /// DFTL mapping-cache hit ratio, if DFTL is configured.
    pub fn mapping_hit_ratio(&self) -> Option<f64> {
        self.inner.lock().dftl.as_ref().map(|c| c.hit_ratio())
    }

    fn geometry(&self) -> &FlashGeometry {
        self.device.geometry()
    }

    fn check_lba(&self, lba: u64) -> Result<()> {
        if lba < self.exported_sectors {
            Ok(())
        } else {
            Err(FtlError::LbaOutOfRange { lba, capacity: self.exported_sectors })
        }
    }

    /// Charge the latency of DFTL mapping-table traffic (approximated as
    /// additional array/transfer time without touching real flash pages).
    fn dftl_penalty(
        &self,
        miss: bool,
        dirty_eviction: bool,
        stats: &mut FtlStats,
    ) -> flash_sim::Duration {
        let mut extra = flash_sim::Duration::ZERO;
        let timing = self.device.timing();
        if miss {
            extra += timing.read_array_time() + timing.transfer_time(self.geometry().page_size);
            stats.mapping_reads += 1;
        }
        if dirty_eviction {
            extra += timing.program_array_time() + timing.transfer_time(self.geometry().page_size);
            stats.mapping_writes += 1;
        }
        extra
    }

    fn record_invalidation(inner: &mut SsdInner, ppa: PageAddr) {
        inner.invalidate_seq += 1;
        let seq = inner.invalidate_seq;
        inner.block_invalidate_seq.insert((ppa.die.0, ppa.plane, ppa.block), seq);
    }

    /// Ensure the die has an active block with at least one free page,
    /// running GC if the free-block pool is low.  Returns the page address
    /// to program next, or `None` if the die is completely out of space.
    fn next_host_page(
        &self,
        inner: &mut SsdInner,
        die_idx: usize,
        at: SimTime,
    ) -> Option<PageAddr> {
        // Run GC if the pool is low.
        if (inner.dies[die_idx].free_blocks.len() as u32) <= self.config.gc_low_watermark {
            self.run_gc(inner, die_idx, at);
        }
        let pages_per_block = self.geometry().pages_per_block;
        let d = &mut inner.dies[die_idx];
        loop {
            match d.active {
                Some((block, next)) if next < pages_per_block => {
                    d.active = Some((block, next + 1));
                    return Some(block.page(next));
                }
                Some((block, _)) => {
                    // Block is full; retire it to the used list.
                    d.used_blocks.push(block);
                    d.active = None;
                }
                None => {
                    let cands: Vec<FreeBlockCandidate> = d
                        .free_blocks
                        .iter()
                        .enumerate()
                        .map(|(slot, b)| FreeBlockCandidate {
                            slot,
                            erase_count: self
                                .device
                                .block_info(*b)
                                .map(|i| i.erase_count)
                                .unwrap_or(0),
                        })
                        .collect();
                    let slot = pick_free_block(self.config.wear_leveling, &cands)?;
                    let block = d.free_blocks.swap_remove(slot);
                    d.active = Some((block, 0));
                }
            }
        }
    }

    /// Get the next GC-destination page on a die, allocating a fresh block
    /// from the free pool when needed (without recursing into GC).
    fn next_gc_page(&self, inner: &mut SsdInner, die_idx: usize) -> Option<PageAddr> {
        let pages_per_block = self.geometry().pages_per_block;
        let d = &mut inner.dies[die_idx];
        loop {
            match d.gc_active {
                Some((block, next)) if next < pages_per_block => {
                    d.gc_active = Some((block, next + 1));
                    return Some(block.page(next));
                }
                Some((block, _)) => {
                    d.used_blocks.push(block);
                    d.gc_active = None;
                }
                None => {
                    if d.free_blocks.is_empty() {
                        return None;
                    }
                    let cands: Vec<FreeBlockCandidate> = d
                        .free_blocks
                        .iter()
                        .enumerate()
                        .map(|(slot, b)| FreeBlockCandidate {
                            slot,
                            erase_count: self
                                .device
                                .block_info(*b)
                                .map(|i| i.erase_count)
                                .unwrap_or(0),
                        })
                        .collect();
                    let slot = pick_free_block(self.config.wear_leveling, &cands)?;
                    let block = d.free_blocks.swap_remove(slot);
                    d.gc_active = Some((block, 0));
                }
            }
        }
    }

    /// Relocate all valid pages of `victim` (updating the mapping) and
    /// erase it.  Returns `false` if relocation could not complete (no
    /// destination space); in that case the victim is left as-is.
    fn collect_block(
        &self,
        inner: &mut SsdInner,
        die_idx: usize,
        victim: BlockAddr,
        at: SimTime,
    ) -> bool {
        let pages_per_block = self.geometry().pages_per_block;
        for page in 0..pages_per_block {
            let src = victim.page(page);
            let state = match self.device.page_state(src) {
                Ok(s) => s,
                Err(_) => return false,
            };
            if state != flash_sim::PageState::Valid {
                continue;
            }
            // Discover which LBA lives here from the OOB metadata.
            let (meta, _) = match self.device.read_metadata(src, at) {
                Ok(m) => m,
                Err(_) => return false,
            };
            let Some(meta) = meta else { continue };
            let dst = match self.next_gc_page(inner, die_idx) {
                Some(p) => p,
                None => return false,
            };
            if self.device.copyback(src, dst, at).is_err() {
                return false;
            }
            inner.stats.gc_page_moves += 1;
            // Re-point the mapping at the new location.
            let lpn = meta.logical_page;
            if inner.map.get(lpn) == Some(src) {
                inner.map.set(lpn, dst);
            }
        }
        // All valid pages moved; erase and return the block to the pool.
        match self.device.erase_block(victim, at) {
            Ok(_) => {
                inner.stats.gc_erases += 1;
                let d = &mut inner.dies[die_idx];
                d.used_blocks.retain(|b| *b != victim);
                d.free_blocks.push(victim);
                true
            }
            Err(e) if e.is_permanent() => {
                // Block retired by the device; drop it from our pools.
                inner.dies[die_idx].used_blocks.retain(|b| *b != victim);
                false
            }
            Err(_) => false,
        }
    }

    /// Run garbage collection on one die until the free pool reaches the
    /// high watermark or no more victims exist.
    fn run_gc(&self, inner: &mut SsdInner, die_idx: usize, at: SimTime) {
        inner.stats.gc_runs += 1;
        let high = self.config.gc_high_watermark as usize;
        let mut guard = 0u32;
        while inner.dies[die_idx].free_blocks.len() < high {
            guard += 1;
            if guard > self.geometry().blocks_per_die() * 2 {
                break;
            }
            let now_seq = inner.invalidate_seq;
            let candidates: Vec<GcCandidate> = inner.dies[die_idx]
                .used_blocks
                .iter()
                .enumerate()
                .filter_map(|(slot, b)| {
                    let info = self.device.block_info(*b).ok()?;
                    let seq = inner
                        .block_invalidate_seq
                        .get(&(b.die.0, b.plane, b.block))
                        .copied()
                        .unwrap_or(0);
                    GcCandidate::from_info(slot, &info, seq)
                })
                .collect();
            let Some(slot) = select_victim(self.config.gc_policy, &candidates, now_seq) else {
                break;
            };
            let victim = inner.dies[die_idx].used_blocks[slot];
            if !self.collect_block(inner, die_idx, victim, at) {
                break;
            }
        }
        self.maybe_static_wl(inner, die_idx, at);
    }

    /// Threshold-based static wear leveling within one die: migrate the
    /// least-worn used block when the wear spread grows too large.
    fn maybe_static_wl(&self, inner: &mut SsdInner, die_idx: usize, at: SimTime) {
        let WearLevelingPolicy::Static { .. } = self.config.wear_leveling else {
            return;
        };
        let infos: Vec<(BlockAddr, u64)> = inner.dies[die_idx]
            .used_blocks
            .iter()
            .chain(inner.dies[die_idx].free_blocks.iter())
            .filter_map(|b| self.device.block_info(*b).ok().map(|i| (*b, i.erase_count)))
            .collect();
        let Some(max) = infos.iter().map(|(_, c)| *c).max() else { return };
        let Some(min) = infos.iter().map(|(_, c)| *c).min() else { return };
        if !needs_static_wl(self.config.wear_leveling, min, max) {
            return;
        }
        // Victim: least-worn *used* block (holding cold data).
        let victim = inner.dies[die_idx]
            .used_blocks
            .iter()
            .filter_map(|b| self.device.block_info(*b).ok().map(|i| (*b, i.erase_count, i.state)))
            .filter(|(_, _, s)| *s == BlockState::Full)
            .min_by_key(|(_, c, _)| *c)
            .map(|(b, _, _)| b);
        if let Some(victim) = victim {
            if self.collect_block(inner, die_idx, victim, at) {
                inner.stats.wl_migrations += 1;
            }
        }
    }
}

impl BlockDevice for FtlSsd {
    fn sector_size(&self) -> u32 {
        self.geometry().page_size
    }

    fn capacity_sectors(&self) -> u64 {
        self.exported_sectors
    }

    fn read(&self, lba: u64, at: SimTime) -> Result<(Vec<u8>, SimTime)> {
        self.check_lba(lba)?;
        let mut inner = self.inner.lock();
        let inner = &mut *inner;
        let mut extra = flash_sim::Duration::ZERO;
        if let Some(dftl) = inner.dftl.as_mut() {
            let access = dftl.access_for_read(lba);
            extra = self.dftl_penalty(access.miss, access.dirty_eviction, &mut inner.stats);
        }
        let ppa = inner.map.get(lba).ok_or(FtlError::Unmapped { lba })?;
        let (data, _, out) = self.device.read_page(ppa, at + extra)?;
        inner.stats.host_reads += 1;
        inner.stats.host_read_latency_sum += out.completed_at - at;
        Ok((data, out.completed_at))
    }

    fn write(&self, lba: u64, data: &[u8], at: SimTime) -> Result<SimTime> {
        self.check_lba(lba)?;
        if data.len() != self.geometry().page_size as usize {
            return Err(FtlError::BadSectorSize {
                expected: self.geometry().page_size,
                got: data.len(),
            });
        }
        let mut inner = self.inner.lock();
        let inner = &mut *inner;
        let mut extra = flash_sim::Duration::ZERO;
        if let Some(dftl) = inner.dftl.as_mut() {
            let access = dftl.access_for_write(lba);
            extra = self.dftl_penalty(access.miss, access.dirty_eviction, &mut inner.stats);
        }
        // Round-robin die selection ("dynamic striping" for parallelism).
        let die_count = inner.dies.len();
        let mut chosen = None;
        for attempt in 0..die_count {
            let idx = (inner.next_die + attempt) % die_count;
            if let Some(ppa) = self.next_host_page(inner, idx, at) {
                chosen = Some((idx, ppa));
                break;
            }
        }
        let Some((die_idx, ppa)) = chosen else {
            return Err(FtlError::OutOfSpace);
        };
        inner.next_die = (die_idx + 1) % die_count;
        let meta = PageMetadata::new(FTL_OBJECT_ID, lba);
        let out = self.device.program_page(ppa, data, meta, at + extra)?;
        // Invalidate the previous location, if any.
        if let Some(old) = inner.map.set(lba, ppa) {
            let _ = self.device.mark_invalid(old);
            Self::record_invalidation(inner, old);
        }
        inner.stats.host_writes += 1;
        inner.stats.host_write_latency_sum += out.completed_at - at;
        Ok(out.completed_at)
    }

    fn trim(&self, lba: u64) -> Result<()> {
        self.check_lba(lba)?;
        let mut inner = self.inner.lock();
        let inner = &mut *inner;
        if let Some(old) = inner.map.clear(lba) {
            let _ = self.device.mark_invalid(old);
            Self::record_invalidation(inner, old);
        }
        inner.stats.trims += 1;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flash_sim::{DeviceBuilder, FlashGeometry, TimingModel};

    fn small_ssd(op: f64) -> FtlSsd {
        let device = Arc::new(
            DeviceBuilder::new(FlashGeometry::small_test()).timing(TimingModel::mlc_2015()).build(),
        );
        let config = FtlConfig {
            overprovisioning: op,
            gc_low_watermark: 2,
            gc_high_watermark: 3,
            ..FtlConfig::consumer()
        };
        FtlSsd::new(device, config)
    }

    fn sector(byte: u8) -> Vec<u8> {
        vec![byte; 4096]
    }

    #[test]
    fn capacity_respects_overprovisioning() {
        let ssd = small_ssd(0.25);
        let geo = FlashGeometry::small_test();
        assert_eq!(ssd.capacity_sectors(), (geo.total_pages() as f64 * 0.75) as u64);
        assert_eq!(ssd.sector_size(), 4096);
        assert_eq!(ssd.capacity_bytes(), ssd.capacity_sectors() * 4096);
    }

    #[test]
    fn write_read_roundtrip() {
        let ssd = small_ssd(0.25);
        let done = ssd.write(10, &sector(0xCD), SimTime::ZERO).unwrap();
        let (data, done2) = ssd.read(10, done).unwrap();
        assert_eq!(data, sector(0xCD));
        assert!(done2 > done);
        let s = ssd.stats();
        assert_eq!(s.host_reads, 1);
        assert_eq!(s.host_writes, 1);
        assert!(s.avg_host_read_latency_us() > 0.0);
    }

    #[test]
    fn overwrite_keeps_latest_value() {
        let ssd = small_ssd(0.25);
        let mut t = SimTime::ZERO;
        for i in 0..5u8 {
            t = ssd.write(3, &sector(i), t).unwrap();
        }
        let (data, _) = ssd.read(3, t).unwrap();
        assert_eq!(data, sector(4));
    }

    #[test]
    fn read_of_unmapped_lba_fails() {
        let ssd = small_ssd(0.25);
        assert!(matches!(ssd.read(7, SimTime::ZERO), Err(FtlError::Unmapped { lba: 7 })));
    }

    #[test]
    fn lba_out_of_range_rejected() {
        let ssd = small_ssd(0.25);
        let cap = ssd.capacity_sectors();
        assert!(matches!(
            ssd.write(cap, &sector(0), SimTime::ZERO),
            Err(FtlError::LbaOutOfRange { .. })
        ));
        assert!(ssd.read(cap + 5, SimTime::ZERO).is_err());
        assert!(ssd.trim(cap).is_err());
    }

    #[test]
    fn bad_sector_size_rejected() {
        let ssd = small_ssd(0.25);
        assert!(matches!(
            ssd.write(0, &[1, 2, 3], SimTime::ZERO),
            Err(FtlError::BadSectorSize { .. })
        ));
    }

    #[test]
    fn trim_unmaps_the_sector() {
        let ssd = small_ssd(0.25);
        ssd.write(4, &sector(1), SimTime::ZERO).unwrap();
        ssd.trim(4).unwrap();
        assert!(matches!(ssd.read(4, SimTime::ZERO), Err(FtlError::Unmapped { .. })));
        assert_eq!(ssd.stats().trims, 1);
    }

    #[test]
    fn sustained_overwrites_trigger_gc_and_stay_correct() {
        let ssd = small_ssd(0.40);
        let working_set = (ssd.capacity_sectors() / 2).max(8);
        let mut t = SimTime::ZERO;
        // Write the working set several times over to force garbage collection.
        let mut last_value = vec![0u8; working_set as usize];
        for round in 0..6u8 {
            for lba in 0..working_set {
                let v = round.wrapping_mul(31).wrapping_add(lba as u8);
                t = ssd.write(lba, &sector(v), t).unwrap();
                last_value[lba as usize] = v;
            }
        }
        let dev = ssd.device().stats();
        assert!(dev.block_erases > 0, "GC must have erased blocks");
        assert!(ssd.stats().gc_runs > 0);
        assert!(ssd.write_amplification() >= 1.0);
        // Every LBA still reads back its latest value.
        for lba in 0..working_set {
            let (data, _) = ssd.read(lba, t).unwrap();
            assert_eq!(data, sector(last_value[lba as usize]), "lba {lba}");
        }
    }

    #[test]
    fn gc_copybacks_happen_when_blocks_are_mixed() {
        let ssd = small_ssd(0.40);
        let cap = ssd.capacity_sectors();
        // Interleave a small hot working set with a stream of cold,
        // write-once pages: because the FTL fills blocks in arrival order,
        // every physical block ends up holding a mix of hot (soon invalid)
        // and cold (still valid) pages, so GC has to relocate the cold ones.
        let mut cold_next = 8u64;
        let mut t = SimTime::ZERO;
        for _ in 0..200 {
            for hot in 0..8u64 {
                t = ssd.write(hot, &sector(1), t).unwrap();
            }
            for _ in 0..4 {
                if cold_next < cap / 2 {
                    t = ssd.write(cold_next, &sector(9), t).unwrap();
                    cold_next += 1;
                }
            }
        }
        assert!(ssd.device().stats().copybacks > 0, "mixed blocks force page moves");
        assert!(ssd.stats().gc_page_moves > 0);
    }

    #[test]
    fn dftl_mapping_misses_are_charged() {
        let device = Arc::new(DeviceBuilder::new(FlashGeometry::small_test()).build());
        let config = FtlConfig {
            overprovisioning: 0.25,
            mapping: MappingKind::Dftl { cached_entries: 4 },
            ..FtlConfig::consumer()
        };
        let ssd = FtlSsd::new(device, config);
        let mut t = SimTime::ZERO;
        for lba in 0..32u64 {
            t = ssd.write(lba, &sector(lba as u8), t).unwrap();
        }
        // Far more distinct LBAs than cache entries → misses must occur.
        let s = ssd.stats();
        assert!(s.mapping_reads > 0);
        assert!(ssd.mapping_hit_ratio().unwrap() < 1.0);
        // Page-level mapping has no hit ratio.
        assert!(small_ssd(0.25).mapping_hit_ratio().is_none());
    }

    #[test]
    fn writes_stripe_across_dies() {
        let ssd = small_ssd(0.25);
        let mut t = SimTime::ZERO;
        for lba in 0..8u64 {
            t = ssd.write(lba, &sector(lba as u8), t).unwrap();
        }
        let die_stats = ssd.device().die_stats();
        let used: usize = die_stats.iter().filter(|d| d.ops > 0).count();
        assert_eq!(used, 4, "round-robin striping should touch every die");
    }

    #[test]
    fn static_wear_leveling_migrates_cold_blocks() {
        let device = Arc::new(DeviceBuilder::new(FlashGeometry::small_test()).build());
        let config = FtlConfig {
            overprovisioning: 0.40,
            gc_low_watermark: 2,
            gc_high_watermark: 3,
            wear_leveling: WearLevelingPolicy::Static { threshold: 2 },
            ..FtlConfig::consumer()
        };
        let ssd = FtlSsd::new(device, config);
        let working_set = ssd.capacity_sectors();
        let mut t = SimTime::ZERO;
        // Cold data: written once, never updated.
        for lba in 0..working_set / 2 {
            t = ssd.write(lba, &sector(0xC0), t).unwrap();
        }
        // Hot data: hammered repeatedly so hot blocks accumulate many more
        // erase cycles than the cold blocks.
        for _ in 0..400 {
            for lba in working_set / 2..working_set / 2 + 8 {
                t = ssd.write(lba, &sector(0x0F), t).unwrap();
            }
        }
        let s = ssd.stats();
        assert!(s.wl_migrations > 0, "wear spread should trigger static WL");
        // Cold data still intact.
        let (data, _) = ssd.read(0, t).unwrap();
        assert_eq!(data, sector(0xC0));
    }
}
