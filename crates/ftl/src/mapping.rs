//! Logical-to-physical address mapping.
//!
//! The FTL's central data structure: for every exported logical page it
//! records which physical flash page currently holds the data.  Two
//! variants are provided:
//!
//! * [`PageMap`] — a dense, fully resident page-level table (one entry per
//!   logical page), the scheme assumed by most high-end SSDs;
//! * [`DftlCache`] — a bounded LRU cache over the page table, modelling
//!   DFTL-style demand paging of translations on devices with little RAM.
//!   Cache misses and dirty evictions are reported to the caller so the
//!   SSD can charge the corresponding extra flash operations.

use flash_sim::PageAddr;
use std::collections::VecDeque;

/// Dense page-level mapping table: logical page number → physical page.
#[derive(Debug, Clone)]
pub struct PageMap {
    entries: Vec<Option<PageAddr>>,
}

impl PageMap {
    /// Create a table for `logical_pages` logical pages, all unmapped.
    pub fn new(logical_pages: u64) -> Self {
        PageMap { entries: vec![None; logical_pages as usize] }
    }

    /// Number of logical pages the table covers.
    pub fn len(&self) -> u64 {
        self.entries.len() as u64
    }

    /// True if the table covers zero logical pages.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Current translation for `lpn`, if any.
    pub fn get(&self, lpn: u64) -> Option<PageAddr> {
        self.entries.get(lpn as usize).copied().flatten()
    }

    /// Install a translation, returning the previous one (which the caller
    /// must invalidate on flash).
    pub fn set(&mut self, lpn: u64, ppa: PageAddr) -> Option<PageAddr> {
        let slot = &mut self.entries[lpn as usize];
        slot.replace(ppa)
    }

    /// Remove a translation (TRIM), returning the previous one.
    pub fn clear(&mut self, lpn: u64) -> Option<PageAddr> {
        self.entries.get_mut(lpn as usize).and_then(|slot| slot.take())
    }

    /// Number of currently mapped logical pages.
    pub fn mapped_count(&self) -> u64 {
        self.entries.iter().filter(|e| e.is_some()).count() as u64
    }
}

/// Outcome of a DFTL cache access, telling the SSD what extra flash work
/// the access implies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DftlAccess {
    /// The access missed the cache: one translation page must be read from
    /// flash before the host operation can proceed.
    pub miss: bool,
    /// A dirty translation had to be evicted: one translation page must be
    /// written back to flash.
    pub dirty_eviction: bool,
}

impl DftlAccess {
    const HIT: DftlAccess = DftlAccess { miss: false, dirty_eviction: false };
}

/// A bounded LRU cache of L2P translations layered over [`PageMap`].
///
/// Only the *performance* of the cache is modelled: the authoritative
/// mapping is always available in the backing [`PageMap`], but every
/// access reports whether it would have required flash traffic.
#[derive(Debug)]
pub struct DftlCache {
    capacity: usize,
    /// LRU order, most recent at the back.  Entries are (lpn, dirty).
    lru: VecDeque<(u64, bool)>,
    hits: u64,
    misses: u64,
    dirty_evictions: u64,
}

impl DftlCache {
    /// Create a cache holding at most `capacity` translations.
    pub fn new(capacity: usize) -> Self {
        DftlCache {
            capacity: capacity.max(1),
            lru: VecDeque::new(),
            hits: 0,
            misses: 0,
            dirty_evictions: 0,
        }
    }

    fn touch(&mut self, lpn: u64, mark_dirty: bool) -> DftlAccess {
        if let Some(pos) = self.lru.iter().position(|(l, _)| *l == lpn) {
            let (_, dirty) = self.lru.remove(pos).expect("position exists");
            self.lru.push_back((lpn, dirty || mark_dirty));
            self.hits += 1;
            return DftlAccess::HIT;
        }
        self.misses += 1;
        let mut dirty_eviction = false;
        if self.lru.len() == self.capacity {
            if let Some((_, dirty)) = self.lru.pop_front() {
                if dirty {
                    dirty_eviction = true;
                    self.dirty_evictions += 1;
                }
            }
        }
        self.lru.push_back((lpn, mark_dirty));
        DftlAccess { miss: true, dirty_eviction }
    }

    /// Record a read access to the translation of `lpn`.
    pub fn access_for_read(&mut self, lpn: u64) -> DftlAccess {
        self.touch(lpn, false)
    }

    /// Record a write access (the translation will change, so the cached
    /// entry becomes dirty).
    pub fn access_for_write(&mut self, lpn: u64) -> DftlAccess {
        self.touch(lpn, true)
    }

    /// (hits, misses, dirty evictions) so far.
    pub fn stats(&self) -> (u64, u64, u64) {
        (self.hits, self.misses, self.dirty_evictions)
    }

    /// Cache hit ratio in [0, 1]; 1.0 when there were no accesses.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flash_sim::DieId;
    use proptest::prelude::*;

    fn ppa(block: u32, page: u32) -> PageAddr {
        PageAddr::new(DieId(0), 0, block, page)
    }

    #[test]
    fn page_map_set_get_clear() {
        let mut m = PageMap::new(16);
        assert_eq!(m.len(), 16);
        assert!(!m.is_empty());
        assert_eq!(m.get(3), None);
        assert_eq!(m.set(3, ppa(1, 2)), None);
        assert_eq!(m.get(3), Some(ppa(1, 2)));
        assert_eq!(m.set(3, ppa(4, 5)), Some(ppa(1, 2)));
        assert_eq!(m.mapped_count(), 1);
        assert_eq!(m.clear(3), Some(ppa(4, 5)));
        assert_eq!(m.get(3), None);
        assert_eq!(m.mapped_count(), 0);
    }

    #[test]
    fn page_map_out_of_range_get_is_none() {
        let m = PageMap::new(4);
        assert_eq!(m.get(100), None);
    }

    #[test]
    fn dftl_cache_hits_and_misses() {
        let mut c = DftlCache::new(2);
        assert!(c.access_for_read(1).miss);
        assert!(c.access_for_read(2).miss);
        assert!(!c.access_for_read(1).miss, "1 is now cached");
        // Accessing 3 evicts 2 (LRU order: 2 was least recently used).
        assert!(c.access_for_read(3).miss);
        assert!(c.access_for_read(2).miss, "2 was evicted");
        let (hits, misses, _) = c.stats();
        assert_eq!(hits, 1);
        assert_eq!(misses, 4);
        assert!(c.hit_ratio() < 0.5);
    }

    #[test]
    fn dftl_dirty_evictions_are_reported() {
        let mut c = DftlCache::new(1);
        c.access_for_write(1); // miss, cached dirty
        let a = c.access_for_read(2); // evicts dirty 1
        assert!(a.miss);
        assert!(a.dirty_eviction);
        let b = c.access_for_read(3); // evicts clean 2
        assert!(b.miss);
        assert!(!b.dirty_eviction);
        assert_eq!(c.stats().2, 1);
    }

    #[test]
    fn dftl_write_hit_marks_dirty() {
        let mut c = DftlCache::new(2);
        c.access_for_read(1); // clean
        c.access_for_write(1); // hit, becomes dirty
        c.access_for_read(2);
        let a = c.access_for_read(3); // evicts 1 which is dirty
        assert!(a.dirty_eviction);
    }

    #[test]
    fn empty_cache_hit_ratio_is_one() {
        let c = DftlCache::new(8);
        assert_eq!(c.hit_ratio(), 1.0);
    }

    proptest! {
        #[test]
        fn page_map_behaves_like_a_hashmap(ops in prop::collection::vec((0u64..64, any::<bool>()), 1..200)) {
            let mut m = PageMap::new(64);
            let mut model = std::collections::HashMap::new();
            let mut counter = 0u32;
            for (lpn, is_set) in ops {
                if is_set {
                    counter += 1;
                    let p = ppa(counter, 0);
                    let prev = m.set(lpn, p);
                    let model_prev = model.insert(lpn, p);
                    prop_assert_eq!(prev, model_prev);
                } else {
                    prop_assert_eq!(m.clear(lpn), model.remove(&lpn));
                }
            }
            for lpn in 0..64u64 {
                prop_assert_eq!(m.get(lpn), model.get(&lpn).copied());
            }
            prop_assert_eq!(m.mapped_count(), model.len() as u64);
        }

        #[test]
        fn dftl_cache_never_exceeds_capacity(cap in 1usize..16, accesses in prop::collection::vec(0u64..100, 1..300)) {
            let mut c = DftlCache::new(cap);
            for a in accesses {
                c.access_for_write(a);
                prop_assert!(c.lru.len() <= cap);
            }
        }
    }
}
