//! # ftl-sim — a traditional FTL-based SSD on top of the native flash simulator
//!
//! The paper motivates NoFTL by the shortcomings of the conventional SSD
//! architecture: a black-box **Flash Translation Layer** inside the device
//! that emulates a magnetic disk (immutable logical block addresses,
//! in-place update semantics) on top of out-of-place NAND flash.  This
//! crate implements that conventional architecture so the repository can
//! reproduce both sides of the comparison:
//!
//! * a **page-level address mapping** from logical block addresses to
//!   physical flash pages ([`mapping`]), optionally with a DFTL-style
//!   cached mapping table ([`mapping::DftlCache`]);
//! * **garbage collection** with greedy or cost-benefit victim selection
//!   ([`gc`]);
//! * **wear leveling** (dynamic allocation + threshold-based static WL,
//!   [`wear`]);
//! * **over-provisioning** — the exported capacity is smaller than the raw
//!   flash capacity;
//! * a legacy **block-device interface** ([`BlockDevice`]) with 4 KiB
//!   sectors, which is what the DBMS sees when it does *not* use NoFTL.
//!
//! Everything runs against the same [`flash_sim::NandDevice`] as the NoFTL
//! storage manager, so copyback/erase counts, latencies and wear are
//! directly comparable.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod block_device;
pub mod config;
pub mod error;
pub mod gc;
pub mod mapping;
pub mod ssd;
pub mod stats;
pub mod wear;

pub use block_device::BlockDevice;
pub use config::{FtlConfig, GcPolicy, MappingKind, WearLevelingPolicy};
pub use error::FtlError;
pub use ssd::FtlSsd;
pub use stats::FtlStats;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, FtlError>;

#[cfg(test)]
mod lib_tests {
    use super::*;
    use flash_sim::{DeviceBuilder, FlashGeometry, SimTime};
    use std::sync::Arc;

    #[test]
    fn end_to_end_smoke() {
        let device = Arc::new(DeviceBuilder::new(FlashGeometry::small_test()).build());
        let ssd = FtlSsd::new(device, FtlConfig::default());
        let data = vec![7u8; 4096];
        let done = ssd.write(3, &data, SimTime::ZERO).unwrap();
        let (read, _) = ssd.read(3, done).unwrap();
        assert_eq!(read, data);
    }
}
