//! Garbage-collection victim selection.
//!
//! GC reclaims space by choosing a victim block, relocating its still-valid
//! pages and erasing it.  The cost of a GC run is dominated by the number
//! of valid pages that must be copied — which is exactly the quantity the
//! paper reduces through hot/cold separation into regions.  The policies
//! here are shared by the FTL SSD and (via re-export) the NoFTL storage
//! manager's per-region collector.

use flash_sim::{BlockInfo, BlockState};
use serde::{Deserialize, Serialize};

use crate::config::GcPolicy;

/// A candidate victim block as seen by the selection policy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GcCandidate {
    /// Opaque index used by the caller to identify the block (e.g. an index
    /// into its block list).
    pub slot: usize,
    /// Valid (must-copy) pages in the block.
    pub valid_pages: u32,
    /// Invalid (reclaimable) pages in the block.
    pub invalid_pages: u32,
    /// Erase count of the block.
    pub erase_count: u64,
    /// Age proxy: a monotonically increasing sequence number of the last
    /// invalidation that hit this block (0 = never invalidated).  Older
    /// (smaller) values indicate colder blocks.
    pub last_invalidate_seq: u64,
}

impl GcCandidate {
    /// Build a candidate from a device block snapshot.
    pub fn from_info(slot: usize, info: &BlockInfo, last_invalidate_seq: u64) -> Option<Self> {
        // Only full blocks with at least one invalid page are worth collecting.
        if info.state != BlockState::Full || info.invalid_pages == 0 {
            return None;
        }
        Some(GcCandidate {
            slot,
            valid_pages: info.valid_pages,
            invalid_pages: info.invalid_pages,
            erase_count: info.erase_count,
            last_invalidate_seq,
        })
    }

    /// Cost-benefit score (higher is a better victim): classic
    /// `benefit/cost = (1 - u)/(2u) * age`, where `u` is the fraction of
    /// valid pages.  `now_seq` supplies the current invalidation sequence
    /// number used to compute the age.
    pub fn cost_benefit_score(&self, now_seq: u64) -> f64 {
        let total = (self.valid_pages + self.invalid_pages).max(1) as f64;
        let u = self.valid_pages as f64 / total;
        let age = now_seq.saturating_sub(self.last_invalidate_seq) as f64 + 1.0;
        if u <= f64::EPSILON {
            // Entirely invalid: infinitely attractive; use a huge finite score.
            return f64::MAX / 2.0;
        }
        (1.0 - u) / (2.0 * u) * age
    }
}

/// Select a victim among `candidates` according to `policy`.
///
/// Returns the `slot` of the chosen candidate, or `None` if the candidate
/// list is empty.  Ties are broken toward lower erase counts so GC itself
/// contributes to wear leveling.
pub fn select_victim(policy: GcPolicy, candidates: &[GcCandidate], now_seq: u64) -> Option<usize> {
    if candidates.is_empty() {
        return None;
    }
    match policy {
        GcPolicy::Greedy => {
            candidates.iter().min_by_key(|c| (c.valid_pages, c.erase_count, c.slot)).map(|c| c.slot)
        }
        GcPolicy::CostBenefit => candidates
            .iter()
            .max_by(|a, b| {
                let sa = a.cost_benefit_score(now_seq);
                let sb = b.cost_benefit_score(now_seq);
                sa.partial_cmp(&sb)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    // Prefer lower wear, then lower slot, on ties.
                    .then(b.erase_count.cmp(&a.erase_count))
                    .then(b.slot.cmp(&a.slot))
            })
            .map(|c| c.slot),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cand(slot: usize, valid: u32, invalid: u32, erase: u64, seq: u64) -> GcCandidate {
        GcCandidate {
            slot,
            valid_pages: valid,
            invalid_pages: invalid,
            erase_count: erase,
            last_invalidate_seq: seq,
        }
    }

    #[test]
    fn greedy_picks_fewest_valid_pages() {
        let cands = vec![cand(0, 5, 3, 0, 0), cand(1, 2, 6, 0, 0), cand(2, 7, 1, 0, 0)];
        assert_eq!(select_victim(GcPolicy::Greedy, &cands, 100), Some(1));
    }

    #[test]
    fn greedy_breaks_ties_by_wear() {
        let cands = vec![cand(0, 2, 6, 9, 0), cand(1, 2, 6, 3, 0)];
        assert_eq!(select_victim(GcPolicy::Greedy, &cands, 100), Some(1));
    }

    #[test]
    fn cost_benefit_prefers_cold_blocks_over_marginally_emptier_hot_blocks() {
        // Block 0: slightly fewer valid pages but invalidated very recently (hot).
        // Block 1: slightly more valid pages but cold for a long time.
        let cands = vec![cand(0, 3, 5, 0, 99), cand(1, 4, 4, 0, 1)];
        assert_eq!(select_victim(GcPolicy::CostBenefit, &cands, 100), Some(1));
    }

    #[test]
    fn cost_benefit_all_invalid_block_wins() {
        let cands = vec![cand(0, 0, 8, 0, 50), cand(1, 1, 7, 0, 1)];
        assert_eq!(select_victim(GcPolicy::CostBenefit, &cands, 100), Some(0));
    }

    #[test]
    fn empty_candidates_yield_none() {
        assert_eq!(select_victim(GcPolicy::Greedy, &[], 0), None);
        assert_eq!(select_victim(GcPolicy::CostBenefit, &[], 0), None);
    }

    #[test]
    fn candidate_from_info_filters_unsuitable_blocks() {
        use flash_sim::BlockState;
        let full_dirty = BlockInfo {
            state: BlockState::Full,
            write_ptr: 8,
            erase_count: 1,
            valid_pages: 3,
            invalid_pages: 5,
            free_pages: 0,
        };
        let full_clean = BlockInfo { invalid_pages: 0, valid_pages: 8, ..full_dirty };
        let open = BlockInfo { state: BlockState::Open, free_pages: 2, ..full_dirty };
        assert!(GcCandidate::from_info(0, &full_dirty, 1).is_some());
        assert!(GcCandidate::from_info(1, &full_clean, 1).is_none());
        assert!(GcCandidate::from_info(2, &open, 1).is_none());
    }

    #[test]
    fn score_monotonicity_in_validity() {
        // With equal age, fewer valid pages → higher score.
        let low = cand(0, 1, 7, 0, 0).cost_benefit_score(10);
        let high = cand(1, 6, 2, 0, 0).cost_benefit_score(10);
        assert!(low > high);
    }
}
