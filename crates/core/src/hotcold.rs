//! Hot/cold classification of database objects.
//!
//! The paper's central argument: *"the overhead of garbage collection
//! \[...\] is highly dependent on the ability to separate between hot and
//! cold data"* and, unlike the resource-starved SSD controller, *"the DBMS
//! maintains such and other statistics and metadata for each particular
//! database object."*  This module turns the per-object counters that the
//! storage manager collects anyway into a temperature classification and
//! into [`ObjectProfile`]s consumed by the placement advisor.

use serde::{Deserialize, Serialize};

use crate::stats::ObjectStats;

/// Relative update temperature of an object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Temperature {
    /// Rarely or never updated (e.g. `ITEM`, `HISTORY` appends only).
    Cold,
    /// Moderately updated.
    Warm,
    /// Frequently updated (e.g. `STOCK`, `DISTRICT`, `ORDERLINE` inserts).
    Hot,
}

/// An object's I/O profile, the input to placement decisions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ObjectProfile {
    /// Object name.
    pub name: String,
    /// Size of the object in flash pages.
    pub pages: u64,
    /// Page reads per unit of observation (absolute counts are fine; only
    /// relative magnitudes matter).
    pub reads: u64,
    /// Page writes per unit of observation.
    pub writes: u64,
}

impl ObjectProfile {
    /// Build a profile from a statistics snapshot.
    pub fn from_stats(stats: &ObjectStats) -> Self {
        ObjectProfile {
            name: stats.name.clone(),
            pages: stats.pages,
            reads: stats.reads,
            writes: stats.writes,
        }
    }

    /// Total I/O rate of the object.
    pub fn io_rate(&self) -> u64 {
        self.reads + self.writes
    }

    /// Update intensity: writes per live page.  Objects with a high value
    /// invalidate their pages quickly and therefore drive GC cost.
    pub fn update_intensity(&self) -> f64 {
        self.writes as f64 / self.pages.max(1) as f64
    }
}

/// Classify objects into temperatures using relative update intensity.
///
/// Objects are ranked by [`ObjectProfile::update_intensity`]; the top
/// `hot_fraction` of the aggregate write volume is classified [`Temperature::Hot`],
/// objects with (almost) no writes are [`Temperature::Cold`], the rest are
/// [`Temperature::Warm`].
pub fn classify(profiles: &[ObjectProfile], hot_fraction: f64) -> Vec<(String, Temperature)> {
    let total_writes: u64 = profiles.iter().map(|p| p.writes).sum();
    if total_writes == 0 {
        return profiles.iter().map(|p| (p.name.clone(), Temperature::Cold)).collect();
    }
    // Sort by update intensity, hottest first.
    let mut order: Vec<&ObjectProfile> = profiles.iter().collect();
    order.sort_by(|a, b| {
        b.update_intensity()
            .partial_cmp(&a.update_intensity())
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| b.writes.cmp(&a.writes))
            .then_with(|| a.name.cmp(&b.name))
    });
    let hot_budget = (total_writes as f64 * hot_fraction.clamp(0.0, 1.0)).ceil() as u64;
    let mut covered = 0u64;
    let mut out = Vec::with_capacity(profiles.len());
    for p in order {
        let temp = if p.writes == 0 {
            Temperature::Cold
        } else if covered < hot_budget {
            covered += p.writes;
            Temperature::Hot
        } else {
            Temperature::Warm
        };
        out.push((p.name.clone(), temp));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile(name: &str, pages: u64, reads: u64, writes: u64) -> ObjectProfile {
        ObjectProfile { name: name.into(), pages, reads, writes }
    }

    #[test]
    fn profile_metrics() {
        let p = profile("stock", 1000, 500, 2000);
        assert_eq!(p.io_rate(), 2500);
        assert!((p.update_intensity() - 2.0).abs() < 1e-9);
        let empty = profile("x", 0, 0, 5);
        assert_eq!(empty.update_intensity(), 5.0, "guards division by zero");
    }

    #[test]
    fn from_stats_copies_fields() {
        let s = ObjectStats {
            object_id: 2,
            name: "customer".into(),
            region: crate::region::RegionId(1),
            pages: 10,
            reads: 3,
            writes: 4,
        };
        let p = ObjectProfile::from_stats(&s);
        assert_eq!(p.name, "customer");
        assert_eq!(p.pages, 10);
        assert_eq!(p.io_rate(), 7);
    }

    #[test]
    fn classification_separates_hot_and_cold() {
        let profiles = vec![
            profile("stock", 100, 100, 10_000),    // very hot
            profile("orderline", 500, 100, 5_000), // hot
            profile("item", 200, 5_000, 0),        // read-only → cold
            profile("history", 300, 0, 100),       // appends, low intensity → warm/cold-ish
        ];
        let classes = classify(&profiles, 0.8);
        let get = |n: &str| classes.iter().find(|(name, _)| name == n).unwrap().1;
        assert_eq!(get("stock"), Temperature::Hot);
        assert_eq!(get("item"), Temperature::Cold);
        assert!(get("history") != Temperature::Hot);
        // The hottest objects cover the hot budget before history does.
        assert_eq!(get("orderline"), Temperature::Hot);
    }

    #[test]
    fn all_read_only_objects_are_cold() {
        let profiles = vec![profile("a", 10, 100, 0), profile("b", 10, 50, 0)];
        let classes = classify(&profiles, 0.5);
        assert!(classes.iter().all(|(_, t)| *t == Temperature::Cold));
    }

    #[test]
    fn empty_profile_list() {
        assert!(classify(&[], 0.5).is_empty());
    }

    #[test]
    fn temperature_ordering() {
        assert!(Temperature::Cold < Temperature::Warm);
        assert!(Temperature::Warm < Temperature::Hot);
    }
}
