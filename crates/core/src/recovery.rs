//! Crash recovery: the region-metadata journal and the mount report.
//!
//! Under NoFTL there is no FTL to hide durability problems behind: region
//! membership, the object directory and the logical-to-physical page maps
//! all live in DBMS-owned memory and would be lost on power failure.  This
//! module implements the persistent half of the storage manager's
//! crash-consistency story:
//!
//! * **Checkpoints** — `NoFtl::checkpoint` serialises the region specs,
//!   the die assignment, the free-die pool and every object's directory
//!   entry (name, region, counters, page map) into a compact blob, splits
//!   it into page-sized chunks and programs them into a dedicated metadata
//!   region under the reserved [`META_OBJECT_ID`].  Chunks are
//!   self-describing (sequence number, index, count, CRC via the OOB
//!   checksum), so a mount can always find the newest *complete*
//!   checkpoint even if a later one was torn mid-write.
//! * **Mount** — `NoFtl::mount` scans the device's out-of-band metadata,
//!   replays the newest complete checkpoint and then uses the per-page OOB
//!   records (object id, logical page, write epoch) to rebuild every
//!   mapping written *after* that checkpoint; torn pages are detected via
//!   the payload checksum and discarded.  The outcome is summarised in a
//!   [`MountReport`].

use flash_sim::{DieId, PageAddr, ServiceClass, SimTime};

use crate::object::{ObjectCounters, ObjectId};
use crate::placement::PlacementPolicyKind;
use crate::region::{RegionId, RegionSpec};

/// Reserved object id for checkpoint chunks ("no object" is 0, real
/// objects count up from 1, the metadata journal counts down from the
/// top).  Must never collide with a directory-assigned id.
pub const META_OBJECT_ID: ObjectId = u32::MAX;

/// Name of the dedicated metadata region created lazily by the first
/// checkpoint when unassigned dies are available.
pub const META_REGION_NAME: &str = "__noftl_meta";

/// Magic number of a checkpoint chunk page.
const CHUNK_MAGIC: u32 = 0x4E46_434B; // "NFCK"

/// Bytes of chunk header at the start of each checkpoint page:
/// magic:4 | seq:8 | index:4 | count:4 | len:4.
pub(crate) const CHUNK_HEADER: usize = 24;

/// Magic prefix of the checkpoint blob itself.  Version 02 added the
/// per-region placement-policy tag; version 03 added the dirty-die
/// directory (mount skips dies never written) and the opaque replication
/// blob (mirror health + per-child dirty-segment maps); version 04 added
/// the per-region service-class tag.  Each bump makes blobs written by
/// older code decode as "no checkpoint" instead of mis-aligning the
/// cursor on the new fields.
const BLOB_MAGIC: &[u8; 8] = b"NFCKPT04";

/// Summary of what `NoFtl::mount` found and rebuilt.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MountReport {
    /// Sequence number of the checkpoint that was replayed (0 = none; the
    /// device was empty).
    pub checkpoint_seq: u64,
    /// Regions rebuilt.
    pub regions: usize,
    /// Objects rebuilt from the checkpoint directory.
    pub objects: usize,
    /// Objects synthesised for pages whose object was created after the
    /// last checkpoint (reachable as `__orphan_<id>` until re-registered).
    pub orphaned_objects: Vec<ObjectId>,
    /// Live logical pages mapped after recovery.
    pub mapped_pages: u64,
    /// Mapped pages whose write epoch postdates the checkpoint watermark —
    /// i.e. mappings rebuilt purely from OOB metadata.
    pub pages_after_checkpoint: u64,
    /// Pages discarded because their payload checksum did not match
    /// (torn writes).
    pub torn_pages_discarded: u64,
    /// Physically valid pages invalidated because a newer version of the
    /// same logical page exists.
    pub stale_pages_invalidated: u64,
    /// Valid pages whose OOB metadata was unreadable (e.g. destroyed by an
    /// interrupted erase); they hold no recoverable mapping.
    pub unreadable_metadata_pages: u64,
    /// Total valid pages scanned.
    pub pages_scanned: u64,
    /// Dies whose OOB scan was skipped because neither the device's
    /// touched flags nor the checkpoint's dirty-die directory recorded
    /// any write to them.
    pub dies_skipped: u64,
    /// Simulated time at which the mount completed.
    pub completed_at: SimTime,
}

/// One region as recorded in a checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct RegionImage {
    pub id: RegionId,
    pub spec: RegionSpec,
    pub dies: Vec<DieId>,
    pub objects: Vec<ObjectId>,
}

/// One object directory entry as recorded in a checkpoint.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct ObjectImage {
    pub id: ObjectId,
    pub name: String,
    pub region: RegionId,
    pub counters: ObjectCounters,
    pub map: Vec<(u64, PageAddr)>,
}

/// A decoded checkpoint.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct CheckpointImage {
    pub seq: u64,
    /// Device write epoch at checkpoint time; pages with a larger epoch
    /// were written after this checkpoint.
    pub epoch_watermark: u64,
    pub meta_region: Option<RegionId>,
    pub free_dies: Vec<DieId>,
    /// Directory of dies that had ever been programmed or erased at
    /// checkpoint time.  Mount unions this with the device's own
    /// `die_touched` probes and skips the OOB scan of every other die.
    pub dirty_dies: Vec<DieId>,
    /// Opaque replication state ([`flash_sim::FlashBackend::replication_blob`]):
    /// the mirror's child health and dirty-segment maps.  `None` for
    /// unreplicated backends.
    pub replication: Option<Vec<u8>>,
    pub regions: Vec<RegionImage>,
    pub objects: Vec<ObjectImage>,
}

// ---------------------------------------------------------------------
// Blob codec (hand-rolled little-endian; the vendored serde is a marker
// stub with no serialisers)
// ---------------------------------------------------------------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn put_opt_u32(out: &mut Vec<u8>, v: Option<u32>) {
    match v {
        Some(v) => {
            out.push(1);
            put_u32(out, v);
        }
        None => out.push(0),
    }
}

fn put_opt_u64(out: &mut Vec<u8>, v: Option<u64>) {
    match v {
        Some(v) => {
            out.push(1);
            put_u64(out, v);
        }
        None => out.push(0),
    }
}

fn put_placement(out: &mut Vec<u8>, v: Option<PlacementPolicyKind>) {
    out.push(match v {
        None => 0,
        Some(PlacementPolicyKind::RoundRobin) => 1,
        Some(PlacementPolicyKind::QueueAware) => 2,
    });
}

/// Tagged byte for the per-region service-class override: 0 = none,
/// otherwise `ServiceClass::code() + 1` (same shape as `put_placement`).
fn put_service_class(out: &mut Vec<u8>, v: Option<ServiceClass>) {
    out.push(match v {
        None => 0,
        Some(c) => c.code() + 1,
    });
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        if self.pos + n > self.buf.len() {
            return None;
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Some(s)
    }

    fn u8(&mut self) -> Option<u8> {
        Some(self.take(1)?[0])
    }

    fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.take(4)?.try_into().ok()?))
    }

    fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }

    fn string(&mut self) -> Option<String> {
        let len = self.u32()? as usize;
        String::from_utf8(self.take(len)?.to_vec()).ok()
    }

    fn opt_u32(&mut self) -> Option<Option<u32>> {
        Some(if self.u8()? != 0 { Some(self.u32()?) } else { None })
    }

    fn opt_u64(&mut self) -> Option<Option<u64>> {
        Some(if self.u8()? != 0 { Some(self.u64()?) } else { None })
    }

    /// Decode the placement-policy tag written by `put_placement`; the
    /// outer `None` marks a corrupt blob, the inner one "no override".
    fn placement(&mut self) -> Option<Option<PlacementPolicyKind>> {
        match self.u8()? {
            0 => Some(None),
            1 => Some(Some(PlacementPolicyKind::RoundRobin)),
            2 => Some(Some(PlacementPolicyKind::QueueAware)),
            _ => None,
        }
    }

    /// Decode the service-class tag written by `put_service_class`.
    fn service_class(&mut self) -> Option<Option<ServiceClass>> {
        match self.u8()? {
            0 => Some(None),
            b => ServiceClass::from_code(b - 1).map(Some),
        }
    }
}

impl CheckpointImage {
    /// Serialise into the blob format (magic ... crc32).
    pub(crate) fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(256);
        out.extend_from_slice(BLOB_MAGIC);
        put_u64(&mut out, self.seq);
        put_u64(&mut out, self.epoch_watermark);
        put_opt_u32(&mut out, self.meta_region.map(|r| r.0));
        put_u32(&mut out, self.free_dies.len() as u32);
        for d in &self.free_dies {
            put_u32(&mut out, d.0);
        }
        put_u32(&mut out, self.dirty_dies.len() as u32);
        for d in &self.dirty_dies {
            put_u32(&mut out, d.0);
        }
        match &self.replication {
            Some(blob) => {
                out.push(1);
                put_u32(&mut out, blob.len() as u32);
                out.extend_from_slice(blob);
            }
            None => out.push(0),
        }
        put_u32(&mut out, self.regions.len() as u32);
        for r in &self.regions {
            put_u32(&mut out, r.id.0);
            put_str(&mut out, &r.spec.name);
            put_opt_u32(&mut out, r.spec.die_count);
            put_opt_u32(&mut out, r.spec.max_chips);
            put_opt_u32(&mut out, r.spec.max_channels);
            put_opt_u64(&mut out, r.spec.max_size_bytes);
            put_placement(&mut out, r.spec.placement);
            put_service_class(&mut out, r.spec.service_class);
            put_u32(&mut out, r.dies.len() as u32);
            for d in &r.dies {
                put_u32(&mut out, d.0);
            }
            put_u32(&mut out, r.objects.len() as u32);
            for o in &r.objects {
                put_u32(&mut out, *o);
            }
        }
        put_u32(&mut out, self.objects.len() as u32);
        for o in &self.objects {
            put_u32(&mut out, o.id);
            put_str(&mut out, &o.name);
            put_u32(&mut out, o.region.0);
            put_u64(&mut out, o.counters.reads);
            put_u64(&mut out, o.counters.writes);
            put_u64(&mut out, o.map.len() as u64);
            for (lp, ppa) in &o.map {
                put_u64(&mut out, *lp);
                put_u32(&mut out, ppa.die.0);
                put_u32(&mut out, ppa.plane);
                put_u32(&mut out, ppa.block);
                put_u32(&mut out, ppa.page);
            }
        }
        let crc = flash_sim::crc32(&out);
        put_u32(&mut out, crc);
        out
    }

    /// Decode a blob produced by [`CheckpointImage::encode`]; `None` on
    /// any corruption (bad magic, bad CRC, truncation).
    pub(crate) fn decode(buf: &[u8]) -> Option<CheckpointImage> {
        if buf.len() < BLOB_MAGIC.len() + 4 {
            return None;
        }
        let (body, crc_bytes) = buf.split_at(buf.len() - 4);
        let stored = u32::from_le_bytes(crc_bytes.try_into().ok()?);
        if flash_sim::crc32(body) != stored {
            return None;
        }
        let mut c = Cursor { buf: body, pos: 0 };
        if c.take(BLOB_MAGIC.len())? != BLOB_MAGIC {
            return None;
        }
        let seq = c.u64()?;
        let epoch_watermark = c.u64()?;
        let meta_region = c.opt_u32()?.map(RegionId);
        let free_count = c.u32()? as usize;
        let mut free_dies = Vec::with_capacity(free_count);
        for _ in 0..free_count {
            free_dies.push(DieId(c.u32()?));
        }
        let dirty_count = c.u32()? as usize;
        let mut dirty_dies = Vec::with_capacity(dirty_count);
        for _ in 0..dirty_count {
            dirty_dies.push(DieId(c.u32()?));
        }
        let replication = if c.u8()? != 0 {
            let len = c.u32()? as usize;
            Some(c.take(len)?.to_vec())
        } else {
            None
        };
        let region_count = c.u32()? as usize;
        let mut regions = Vec::with_capacity(region_count);
        for _ in 0..region_count {
            let id = RegionId(c.u32()?);
            let name = c.string()?;
            let mut spec = RegionSpec::named(name);
            spec.die_count = c.opt_u32()?;
            spec.max_chips = c.opt_u32()?;
            spec.max_channels = c.opt_u32()?;
            spec.max_size_bytes = c.opt_u64()?;
            spec.placement = c.placement()?;
            spec.service_class = c.service_class()?;
            let die_count = c.u32()? as usize;
            let mut dies = Vec::with_capacity(die_count);
            for _ in 0..die_count {
                dies.push(DieId(c.u32()?));
            }
            let obj_count = c.u32()? as usize;
            let mut objects = Vec::with_capacity(obj_count);
            for _ in 0..obj_count {
                objects.push(c.u32()?);
            }
            regions.push(RegionImage { id, spec, dies, objects });
        }
        let object_count = c.u32()? as usize;
        let mut objects = Vec::with_capacity(object_count);
        for _ in 0..object_count {
            let id = c.u32()?;
            let name = c.string()?;
            let region = RegionId(c.u32()?);
            let counters = ObjectCounters { reads: c.u64()?, writes: c.u64()? };
            let map_len = c.u64()? as usize;
            let mut map = Vec::with_capacity(map_len);
            for _ in 0..map_len {
                let lp = c.u64()?;
                let die = DieId(c.u32()?);
                let plane = c.u32()?;
                let block = c.u32()?;
                let page = c.u32()?;
                map.push((lp, PageAddr::new(die, plane, block, page)));
            }
            objects.push(ObjectImage { id, name, region, counters, map });
        }
        if c.pos != body.len() {
            return None;
        }
        Some(CheckpointImage {
            seq,
            epoch_watermark,
            meta_region,
            free_dies,
            dirty_dies,
            replication,
            regions,
            objects,
        })
    }
}

/// Build one checkpoint chunk page: header + blob slice, zero-padded to
/// `page_size`.
pub(crate) fn encode_chunk(
    seq: u64,
    index: u32,
    count: u32,
    chunk: &[u8],
    page_size: usize,
) -> Vec<u8> {
    debug_assert!(CHUNK_HEADER + chunk.len() <= page_size);
    let mut page = vec![0u8; page_size];
    page[0..4].copy_from_slice(&CHUNK_MAGIC.to_le_bytes());
    page[4..12].copy_from_slice(&seq.to_le_bytes());
    page[12..16].copy_from_slice(&index.to_le_bytes());
    page[16..20].copy_from_slice(&count.to_le_bytes());
    page[20..24].copy_from_slice(&(chunk.len() as u32).to_le_bytes());
    page[CHUNK_HEADER..CHUNK_HEADER + chunk.len()].copy_from_slice(chunk);
    page
}

/// Parse a checkpoint chunk page; `None` if the page is not a chunk.
pub(crate) fn decode_chunk(page: &[u8]) -> Option<(u64, u32, u32, &[u8])> {
    if page.len() < CHUNK_HEADER {
        return None;
    }
    if u32::from_le_bytes(page[0..4].try_into().ok()?) != CHUNK_MAGIC {
        return None;
    }
    let seq = u64::from_le_bytes(page[4..12].try_into().ok()?);
    let index = u32::from_le_bytes(page[12..16].try_into().ok()?);
    let count = u32::from_le_bytes(page[16..20].try_into().ok()?);
    let len = u32::from_le_bytes(page[20..24].try_into().ok()?) as usize;
    if CHUNK_HEADER + len > page.len() {
        return None;
    }
    Some((seq, index, count, &page[CHUNK_HEADER..CHUNK_HEADER + len]))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_image() -> CheckpointImage {
        CheckpointImage {
            seq: 7,
            epoch_watermark: 991,
            meta_region: Some(RegionId(2)),
            free_dies: vec![DieId(6), DieId(7)],
            dirty_dies: vec![DieId(0), DieId(1), DieId(2)],
            replication: Some(vec![0xAB; 17]),
            regions: vec![RegionImage {
                id: RegionId(0),
                spec: RegionSpec::named("rgHot")
                    .with_die_count(2)
                    .with_max_channels(1)
                    .with_placement(PlacementPolicyKind::QueueAware),
                dies: vec![DieId(0), DieId(1)],
                objects: vec![1, 2],
            }],
            objects: vec![ObjectImage {
                id: 1,
                name: "orders".to_string(),
                region: RegionId(0),
                counters: ObjectCounters { reads: 10, writes: 20 },
                map: vec![
                    (0, PageAddr::new(DieId(0), 0, 3, 1)),
                    (7, PageAddr::new(DieId(1), 0, 2, 5)),
                ],
            }],
        }
    }

    #[test]
    fn blob_roundtrip() {
        let img = sample_image();
        let blob = img.encode();
        assert_eq!(CheckpointImage::decode(&blob), Some(img));
    }

    #[test]
    fn corrupted_blob_is_rejected() {
        let mut blob = sample_image().encode();
        let mid = blob.len() / 2;
        blob[mid] ^= 0x40;
        assert_eq!(CheckpointImage::decode(&blob), None);
        assert_eq!(CheckpointImage::decode(&[]), None);
        assert_eq!(CheckpointImage::decode(&blob[..blob.len() - 3]), None);
    }

    #[test]
    fn chunk_roundtrip_and_rejection() {
        let blob = sample_image().encode();
        let page = encode_chunk(3, 0, 1, &blob, 4096);
        let (seq, idx, count, body) = decode_chunk(&page).unwrap();
        assert_eq!((seq, idx, count), (3, 0, 1));
        assert_eq!(body, &blob[..]);
        // A data page is not mistaken for a chunk.
        assert!(decode_chunk(&vec![0xAAu8; 4096]).is_none());
        assert!(decode_chunk(&[]).is_none());
    }
}
