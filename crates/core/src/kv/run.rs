//! Sorted-run page format.
//!
//! A run is one immutable NoFTL object: `data_pages` pages of sorted
//! key/value entries followed by a single *footer* page.  The footer is
//! self-describing — store name, level, the flush-sequence range the run
//! covers, entry count and a sparse per-page index — so a remount can
//! rebuild the whole run directory from object contents alone, and a run
//! whose footer (or any data page) was torn by a power cut is detected
//! and discarded.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! data page:  [magic "KVDP"][count u32] then per entry
//!             [klen u16][vlen u32]([vlen == u32::MAX] = tombstone)[key][value]
//! footer:     [magic "KVRF"][version u16][store_len u16][store]
//!             [level u32][seq_lo u64][seq_hi u64][entries u64]
//!             [data_pages u32][maxk_len u16][max_key]
//!             [index_count u32] then per entry [page u32][klen u16][first_key]
//! ```
//!
//! The index records the first key of every `stride`-th data page (stride
//! 1 unless the run is so large the index would overflow the footer
//! page), so a point lookup reads at most `stride` data pages after one
//! footer-guided jump.

use flash_sim::SimTime;

use crate::object::ObjectId;

/// Magic of a run data page (`"KVDP"`).
pub const DATA_MAGIC: u32 = 0x4B56_4450;
/// Magic of a run footer page (`"KVRF"`).
pub const FOOTER_MAGIC: u32 = 0x4B56_5246;
/// Current format version.
pub const FORMAT_VERSION: u16 = 1;
/// Value-length sentinel marking a tombstone entry.
const TOMBSTONE: u32 = u32::MAX;
/// Per-page header: magic + entry count.
const DATA_HEADER: usize = 8;
/// Per-entry framing: klen (u16) + vlen (u32).
const ENTRY_HEADER: usize = 6;

/// One key/value-or-tombstone entry.
pub type Entry = (Vec<u8>, Option<Vec<u8>>);

/// In-memory descriptor of one on-flash run, rebuilt from the footer.
#[derive(Debug, Clone)]
pub struct RunMeta {
    /// The NoFTL object holding the run's pages.
    pub object: ObjectId,
    /// LSM level (0 = freshly flushed memtables).
    pub level: u32,
    /// Lowest flush sequence number folded into this run.
    pub seq_lo: u64,
    /// Highest flush sequence number folded into this run.
    pub seq_hi: u64,
    /// Entries stored (tombstones included).
    pub entries: u64,
    /// Number of data pages (the footer lives at logical page
    /// `data_pages`).
    pub data_pages: u32,
    /// Smallest key in the run (empty for an entry-less run).
    pub min_key: Vec<u8>,
    /// Largest key in the run (empty for an entry-less run).
    pub max_key: Vec<u8>,
    /// Sparse index: (first key of page, page number), ascending.
    pub index: Vec<(Vec<u8>, u32)>,
    /// Device time when the run became durable.
    pub written_at: SimTime,
}

impl RunMeta {
    /// Whether `key` can possibly live in this run.
    pub fn may_contain(&self, key: &[u8]) -> bool {
        self.entries > 0 && key >= self.min_key.as_slice() && key <= self.max_key.as_slice()
    }

    /// Data-page window `[start, end)` a point lookup of `key` must read.
    pub fn page_window(&self, key: &[u8]) -> (u32, u32) {
        if self.index.is_empty() {
            return (0, self.data_pages);
        }
        // Last index entry whose first key is <= key.
        let pos = self.index.partition_point(|(first, _)| first.as_slice() <= key);
        if pos == 0 {
            return (0, 0); // key sorts before the first page
        }
        let start = self.index[pos - 1].1;
        let end = self.index.get(pos).map(|(_, p)| *p).unwrap_or(self.data_pages);
        (start, end)
    }

    /// Data-page window `[start, end)` overlapping the key range
    /// `[lo, hi]` (both inclusive; `None` = unbounded).
    pub fn range_window(&self, lo: Option<&[u8]>, hi: Option<&[u8]>) -> (u32, u32) {
        if self.index.is_empty() {
            return (0, self.data_pages);
        }
        let start = match lo {
            None => 0,
            Some(lo) => {
                let pos = self.index.partition_point(|(first, _)| first.as_slice() <= lo);
                if pos == 0 {
                    0
                } else {
                    self.index[pos - 1].1
                }
            }
        };
        let end = match hi {
            None => self.data_pages,
            Some(hi) => {
                let pos = self.index.partition_point(|(first, _)| first.as_slice() <= hi);
                self.index.get(pos).map(|(_, p)| *p).unwrap_or(self.data_pages)
            }
        };
        (start, end.max(start))
    }
}

/// Everything `encode_run` produces: the page images (data pages followed
/// by the footer) and the descriptor matching them.
#[derive(Debug)]
pub struct EncodedRun {
    /// Page payloads, each exactly `page_size` bytes; the last one is the
    /// footer.
    pub pages: Vec<Vec<u8>>,
    /// Descriptor (with `object` left as 0 for the caller to fill in).
    pub meta: RunMeta,
}

/// Largest key+value payload a single entry may carry for `page_size`.
pub fn max_entry_payload(page_size: usize) -> usize {
    page_size - DATA_HEADER - ENTRY_HEADER
}

/// Serialise sorted `entries` into run pages.
///
/// # Panics
/// Panics if an entry exceeds [`max_entry_payload`] or the footer cannot
/// fit its fixed fields — both are programming errors the store's put
/// path rejects much earlier.
pub fn encode_run(
    store: &str,
    level: u32,
    seq_lo: u64,
    seq_hi: u64,
    entries: &[Entry],
    page_size: usize,
) -> EncodedRun {
    let mut pages: Vec<Vec<u8>> = Vec::new();
    let mut first_keys: Vec<Vec<u8>> = Vec::new();
    let mut page: Vec<u8> = Vec::new();
    let mut count = 0u32;
    let flush = |pages: &mut Vec<Vec<u8>>, page: &mut Vec<u8>, count: &mut u32| {
        if *count == 0 {
            return;
        }
        let mut full = Vec::with_capacity(page_size);
        full.extend_from_slice(&DATA_MAGIC.to_le_bytes());
        full.extend_from_slice(&count.to_le_bytes());
        full.extend_from_slice(page);
        full.resize(page_size, 0);
        pages.push(full);
        page.clear();
        *count = 0;
    };
    for (key, value) in entries {
        let vlen = value.as_ref().map_or(0, Vec::len);
        // The same bound `KvStore::check_entry_size` enforces at put time:
        // a maximum-size entry occupies a data page exactly.
        assert!(
            key.len() + vlen <= max_entry_payload(page_size),
            "entry of {} payload bytes exceeds the page budget",
            key.len() + vlen
        );
        let need = ENTRY_HEADER + key.len() + vlen;
        if DATA_HEADER + page.len() + need > page_size {
            flush(&mut pages, &mut page, &mut count);
        }
        if count == 0 {
            first_keys.push(key.clone());
        }
        page.extend_from_slice(&(key.len() as u16).to_le_bytes());
        let vtag = match value {
            Some(v) => v.len() as u32,
            None => TOMBSTONE,
        };
        page.extend_from_slice(&vtag.to_le_bytes());
        page.extend_from_slice(key);
        if let Some(v) = value {
            page.extend_from_slice(v);
        }
        count += 1;
    }
    flush(&mut pages, &mut page, &mut count);

    let data_pages = pages.len() as u32;
    let min_key = entries.first().map(|(k, _)| k.clone()).unwrap_or_default();
    let max_key = entries.last().map(|(k, _)| k.clone()).unwrap_or_default();

    // Sparse index: widen the stride until the footer fits in one page.
    let fixed = 4 + 2 + 2 + store.len() + 4 + 8 + 8 + 8 + 4 + 2 + max_key.len() + 4;
    assert!(fixed < page_size, "footer fixed fields must fit a page");
    let mut stride = 1usize;
    let index: Vec<(Vec<u8>, u32)> = loop {
        let picked: Vec<(Vec<u8>, u32)> = first_keys
            .iter()
            .enumerate()
            .filter(|(i, _)| i % stride == 0)
            .map(|(i, k)| (k.clone(), i as u32))
            .collect();
        let size: usize = picked.iter().map(|(k, _)| 6 + k.len()).sum();
        if fixed + size <= page_size {
            break picked;
        }
        stride *= 2;
    };

    let mut footer = Vec::with_capacity(page_size);
    footer.extend_from_slice(&FOOTER_MAGIC.to_le_bytes());
    footer.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    footer.extend_from_slice(&(store.len() as u16).to_le_bytes());
    footer.extend_from_slice(store.as_bytes());
    footer.extend_from_slice(&level.to_le_bytes());
    footer.extend_from_slice(&seq_lo.to_le_bytes());
    footer.extend_from_slice(&seq_hi.to_le_bytes());
    footer.extend_from_slice(&(entries.len() as u64).to_le_bytes());
    footer.extend_from_slice(&data_pages.to_le_bytes());
    footer.extend_from_slice(&(max_key.len() as u16).to_le_bytes());
    footer.extend_from_slice(&max_key);
    footer.extend_from_slice(&(index.len() as u32).to_le_bytes());
    for (key, page_no) in &index {
        footer.extend_from_slice(&page_no.to_le_bytes());
        footer.extend_from_slice(&(key.len() as u16).to_le_bytes());
        footer.extend_from_slice(key);
    }
    footer.resize(page_size, 0);
    pages.push(footer);

    EncodedRun {
        pages,
        meta: RunMeta {
            object: 0,
            level,
            seq_lo,
            seq_hi,
            entries: entries.len() as u64,
            data_pages,
            min_key,
            max_key,
            index,
            written_at: SimTime::ZERO,
        },
    }
}

/// Fields decoded from a footer page.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FooterInfo {
    /// Store the run belongs to.
    pub store: String,
    /// LSM level.
    pub level: u32,
    /// Flush-sequence range `[seq_lo, seq_hi]`.
    pub seq_lo: u64,
    /// See `seq_lo`.
    pub seq_hi: u64,
    /// Entry count.
    pub entries: u64,
    /// Data pages preceding the footer.
    pub data_pages: u32,
    /// Largest key.
    pub max_key: Vec<u8>,
    /// Sparse index.
    pub index: Vec<(Vec<u8>, u32)>,
}

struct Cursor<'a>(&'a [u8], usize);

impl<'a> Cursor<'a> {
    fn bytes(&mut self, n: usize) -> Option<&'a [u8]> {
        let out = self.0.get(self.1..self.1 + n)?;
        self.1 += n;
        Some(out)
    }

    fn u16(&mut self) -> Option<u16> {
        Some(u16::from_le_bytes(self.bytes(2)?.try_into().ok()?))
    }

    fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.bytes(4)?.try_into().ok()?))
    }

    fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.bytes(8)?.try_into().ok()?))
    }
}

/// Decode a footer page; `None` if it is not a well-formed KV run footer.
pub fn decode_footer(page: &[u8]) -> Option<FooterInfo> {
    let mut c = Cursor(page, 0);
    if c.u32()? != FOOTER_MAGIC || c.u16()? != FORMAT_VERSION {
        return None;
    }
    let store_len = c.u16()? as usize;
    let store = String::from_utf8(c.bytes(store_len)?.to_vec()).ok()?;
    let level = c.u32()?;
    let seq_lo = c.u64()?;
    let seq_hi = c.u64()?;
    if seq_lo > seq_hi {
        return None;
    }
    let entries = c.u64()?;
    let data_pages = c.u32()?;
    let maxk_len = c.u16()? as usize;
    let max_key = c.bytes(maxk_len)?.to_vec();
    let index_count = c.u32()? as usize;
    let mut index = Vec::with_capacity(index_count);
    for _ in 0..index_count {
        let page_no = c.u32()?;
        if page_no >= data_pages {
            return None;
        }
        let klen = c.u16()? as usize;
        index.push((c.bytes(klen)?.to_vec(), page_no));
    }
    Some(FooterInfo { store, level, seq_lo, seq_hi, entries, data_pages, max_key, index })
}

/// Decode a data page into its sorted entries; `None` if malformed.
pub fn decode_data_page(page: &[u8]) -> Option<Vec<Entry>> {
    let mut c = Cursor(page, 0);
    if c.u32()? != DATA_MAGIC {
        return None;
    }
    let count = c.u32()? as usize;
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let klen = c.u16()? as usize;
        let vtag = c.u32()?;
        let key = c.bytes(klen)?.to_vec();
        let value = if vtag == TOMBSTONE { None } else { Some(c.bytes(vtag as usize)?.to_vec()) };
        out.push((key, value));
    }
    Some(out)
}

/// Binary-search a decoded data page for `key`.
pub fn search_entries<'a>(entries: &'a [Entry], key: &[u8]) -> Option<&'a Option<Vec<u8>>> {
    entries.binary_search_by(|(k, _)| k.as_slice().cmp(key)).ok().map(|i| &entries[i].1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kv(i: u32) -> Entry {
        (format!("key-{i:06}").into_bytes(), Some(vec![i as u8; 40]))
    }

    #[test]
    fn roundtrip_small_run() {
        let entries: Vec<Entry> = (0..10).map(kv).collect();
        let run = encode_run("s", 0, 3, 3, &entries, 4096);
        assert_eq!(run.meta.data_pages as usize + 1, run.pages.len());
        let footer = decode_footer(run.pages.last().unwrap()).unwrap();
        assert_eq!(footer.store, "s");
        assert_eq!((footer.seq_lo, footer.seq_hi, footer.level), (3, 3, 0));
        assert_eq!(footer.entries, 10);
        assert_eq!(footer.max_key, entries.last().unwrap().0);
        let mut all = Vec::new();
        for page in &run.pages[..run.meta.data_pages as usize] {
            all.extend(decode_data_page(page).unwrap());
        }
        assert_eq!(all, entries);
    }

    #[test]
    fn multi_page_run_has_usable_index() {
        // ~54 bytes per entry → a few hundred entries span several pages.
        let entries: Vec<Entry> = (0..400).map(kv).collect();
        let run = encode_run("s", 1, 1, 4, &entries, 4096);
        assert!(run.meta.data_pages > 2);
        assert_eq!(run.meta.index.len(), run.meta.data_pages as usize, "stride 1 fits");
        for (i, entry) in entries.iter().enumerate().step_by(37) {
            let key = &entry.0;
            let (start, end) = run.meta.page_window(key);
            assert!(start < end, "entry {i} window empty");
            let found = (start..end).any(|p| {
                let decoded = decode_data_page(&run.pages[p as usize]).unwrap();
                search_entries(&decoded, key).is_some()
            });
            assert!(found, "entry {i} not found via index window");
        }
        // A key below the minimum probes nothing.
        assert_eq!(run.meta.page_window(b"key-"), (0, 0));
        assert!(!run.meta.may_contain(b"zzz") || entries.last().unwrap().0 >= b"zzz".to_vec());
    }

    #[test]
    fn tombstones_survive_the_roundtrip() {
        let entries = vec![(b"a".to_vec(), Some(b"1".to_vec())), (b"b".to_vec(), None::<Vec<u8>>)];
        let run = encode_run("s", 0, 1, 1, &entries, 4096);
        let decoded = decode_data_page(&run.pages[0]).unwrap();
        assert_eq!(search_entries(&decoded, b"b"), Some(&None));
        assert_eq!(search_entries(&decoded, b"a"), Some(&Some(b"1".to_vec())));
        assert_eq!(search_entries(&decoded, b"c"), None);
    }

    #[test]
    fn empty_run_is_footer_only() {
        let run = encode_run("s", 2, 5, 9, &[], 4096);
        assert_eq!(run.meta.data_pages, 0);
        assert_eq!(run.pages.len(), 1);
        let footer = decode_footer(&run.pages[0]).unwrap();
        assert_eq!(footer.entries, 0);
        assert!(!run.meta.may_contain(b"anything"));
    }

    #[test]
    fn oversized_index_falls_back_to_sparse_stride() {
        // Long keys force the index past one page: the stride widens but
        // lookups still work through wider windows.
        let entries: Vec<Entry> = (0..6000)
            .map(|i| {
                (format!("verbose-key-prefix-{i:08}-pad-pad-pad").into_bytes(), Some(vec![1; 40]))
            })
            .collect();
        let run = encode_run("s", 0, 1, 1, &entries, 4096);
        assert!(run.meta.index.len() < run.meta.data_pages as usize, "stride must widen");
        let probe = &entries[1234].0;
        let (start, end) = run.meta.page_window(probe);
        let found = (start..end).any(|p| {
            let decoded = decode_data_page(&run.pages[p as usize]).unwrap();
            search_entries(&decoded, probe).is_some()
        });
        assert!(found);
    }

    #[test]
    fn maximum_size_entry_fills_a_page_exactly() {
        // The boundary the store's put-time check admits: key + value ==
        // max_entry_payload must encode without panicking, as a single
        // full data page.
        let key = vec![b'k'; 16];
        let value = vec![b'v'; max_entry_payload(4096) - 16];
        let entries = vec![(key.clone(), Some(value.clone()))];
        let run = encode_run("s", 0, 1, 1, &entries, 4096);
        assert_eq!(run.meta.data_pages, 1);
        let decoded = decode_data_page(&run.pages[0]).unwrap();
        assert_eq!(search_entries(&decoded, &key), Some(&Some(value)));
    }

    #[test]
    fn garbage_pages_decode_to_none() {
        assert!(decode_footer(&[0u8; 4096]).is_none());
        assert!(decode_data_page(&[0u8; 4096]).is_none());
        assert!(decode_footer(&[]).is_none());
        // A data page is not a footer and vice versa.
        let run = encode_run("s", 0, 1, 1, &[(b"k".to_vec(), Some(b"v".to_vec()))], 4096);
        assert!(decode_footer(&run.pages[0]).is_none());
        assert!(decode_data_page(&run.pages[1]).is_none());
    }

    #[test]
    fn range_window_prunes_pages() {
        let entries: Vec<Entry> = (0..400).map(kv).collect();
        let run = encode_run("s", 0, 1, 1, &entries, 4096);
        let lo = entries[200].0.clone();
        let hi = entries[210].0.clone();
        let (start, end) = run.meta.range_window(Some(&lo), Some(&hi));
        assert!(start < end && end <= run.meta.data_pages);
        assert!(end - start < run.meta.data_pages, "a narrow range must prune pages");
        let (full_start, full_end) = run.meta.range_window(None, None);
        assert_eq!((full_start, full_end), (0, run.meta.data_pages));
    }
}
