//! The NoFTL-KV store: memtable + per-region sorted runs, flushed and
//! compacted through the command-queue submission API.
//!
//! See the [module docs](super) for the architecture.  The durability
//! contract in one line: **a put is committed once a flush covering it
//! returns** — run pages written (as one queued multi-die batch) *and*
//! the object directory checkpointed through the storage manager's
//! region-metadata journal.

use std::collections::BTreeMap;
use std::ops::Bound;
use std::sync::Arc;

use parking_lot::Mutex;

use flash_sim::{ServiceClass, SimTime};

use crate::error::NoFtlError;
use crate::manager::NoFtl;
use crate::object::ObjectId;
use crate::obs::KvObs;
use crate::region::RegionId;
use crate::Result;

use super::memtable::Memtable;
use super::run::{self, Entry, RunMeta};

/// Configuration of a [`KvStore`].
#[derive(Debug, Clone, Copy)]
pub struct KvConfig {
    /// Memtable flush threshold in approximate resident bytes.
    pub memtable_bytes: usize,
    /// Number of runs in one level that triggers a size-tiered merge into
    /// the next level.
    pub compaction_threshold: usize,
    /// Fan flushes/compactions out through [`NoFtl::write_batch`] (the
    /// queued multi-die path).  `false` falls back to one blocking write
    /// per page — the ablation the `kv_ops` bench measures.
    pub queued_flush: bool,
    /// Checkpoint the storage manager after create/flush/compaction so
    /// the run directory is durable (the store's commit point).  Disable
    /// only when the caller batches its own checkpoints.
    pub auto_checkpoint: bool,
    /// Maximum reads in flight when scans and compaction merges pull run
    /// pages through [`NoFtl::read_windowed`] — the read-side counterpart
    /// of `queued_flush`.  `1` degrades to one blocking read at a time.
    pub read_window: usize,
}

impl Default for KvConfig {
    fn default() -> Self {
        KvConfig {
            memtable_bytes: 64 * 1024,
            compaction_threshold: 4,
            queued_flush: true,
            auto_checkpoint: true,
            read_window: 8,
        }
    }
}

/// Operation counters of a [`KvStore`].
#[derive(Debug, Clone, Default)]
pub struct KvStats {
    /// Puts accepted.
    pub puts: u64,
    /// Deletes (tombstones) accepted.
    pub deletes: u64,
    /// Point lookups served.
    pub gets: u64,
    /// Range scans served.
    pub scans: u64,
    /// Gets answered from the memtable (value or tombstone).
    pub memtable_hits: u64,
    /// Run pages read on behalf of gets/scans/merges.
    pub run_page_reads: u64,
    /// Memtable flushes completed.
    pub flushes: u64,
    /// Pages written by flushes (data + footer).
    pub flushed_pages: u64,
    /// Compaction merges started.
    pub compactions_started: u64,
    /// Compaction merges completed.
    pub compactions: u64,
    /// Source runs retired by completed compactions.
    pub compacted_runs: u64,
    /// Pages written by completed compactions.
    pub compacted_pages: u64,
    /// Simulated-time windows `(start_ns, end_ns)` of completed
    /// compaction merges — the crash harness aims power cuts into these.
    pub compaction_windows: Vec<(u64, u64)>,
}

/// Rows returned by [`KvStore::scan`]: live key/value pairs in key order.
pub type ScanResult = Vec<(Vec<u8>, Vec<u8>)>;

/// What [`KvStore::open`] found while rebuilding the run directory.
#[derive(Debug, Clone, Default)]
pub struct KvOpenReport {
    /// Valid runs adopted into the directory.
    pub runs_recovered: usize,
    /// Incomplete runs discarded (torn by a power cut before their flush
    /// or merge was acknowledged).
    pub torn_runs_discarded: usize,
    /// Runs dropped because a durable merged run covers their sequence
    /// range (crash landed between a merge commit and the source drops).
    pub superseded_runs_discarded: usize,
    /// Total entries across recovered runs (tombstones included).
    pub entries_recovered: u64,
    /// Next flush sequence number.
    pub next_seq: u64,
    /// Device time when the open (footer reads included) finished.
    pub completed_at: SimTime,
}

#[derive(Debug)]
struct KvInner {
    memtable: Memtable,
    /// Live runs, newest first (descending `seq_hi`; live runs always
    /// cover pairwise-disjoint sequence ranges).
    runs: Vec<RunMeta>,
    next_seq: u64,
    stats: KvStats,
}

/// A log-structured key-value store over one NoFTL region.
pub struct KvStore {
    noftl: Arc<NoFtl>,
    region: RegionId,
    name: String,
    config: KvConfig,
    inner: Mutex<KvInner>,
    /// Pre-bound metric handles on the stack's shared registry.
    obs: KvObs,
}

impl std::fmt::Debug for KvStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("KvStore")
            .field("name", &self.name)
            .field("region", &self.region)
            .field("runs", &inner.runs.len())
            .field("memtable_entries", &inner.memtable.len())
            .finish_non_exhaustive()
    }
}

fn kv_err(message: impl Into<String>) -> NoFtlError {
    NoFtlError::Kv { message: message.into() }
}

impl KvStore {
    /// Marker-object name anchoring a store (records its region in the
    /// checkpointed object directory).
    fn marker_name(name: &str) -> String {
        format!("__kv_{name}")
    }

    /// Name prefix of this store's run objects.
    fn run_prefix(name: &str) -> String {
        format!("__kv_{name}_r")
    }

    fn run_name(&self, level: u32, seq_lo: u64, seq_hi: u64) -> String {
        format!("{}{level}_{seq_lo}_{seq_hi}", Self::run_prefix(&self.name))
    }

    fn validate_name(name: &str) -> Result<()> {
        if name.is_empty() || !name.chars().all(|c| c.is_ascii_alphanumeric() || c == '-') {
            return Err(kv_err(format!(
                "store name '{name}' must be non-empty ASCII alphanumeric/'-'"
            )));
        }
        Ok(())
    }

    /// Create a new store in `region`.  Registers the store's marker
    /// object and (with `auto_checkpoint`) checkpoints so the store
    /// survives a crash even before its first flush.  Returns the store
    /// and the completion time.
    pub fn create(
        noftl: Arc<NoFtl>,
        region: RegionId,
        name: &str,
        config: KvConfig,
        at: SimTime,
    ) -> Result<(KvStore, SimTime)> {
        Self::validate_name(name)?;
        noftl.create_object(&Self::marker_name(name), region)?;
        let mut now = at;
        if config.auto_checkpoint {
            now = noftl.checkpoint(now)?;
        }
        let store = KvStore {
            obs: KvObs::new(Arc::clone(noftl.metrics())),
            noftl,
            region,
            name: name.to_string(),
            config,
            inner: Mutex::new(KvInner {
                memtable: Memtable::new(),
                runs: Vec::new(),
                next_seq: 1,
                stats: KvStats::default(),
            }),
        };
        Ok((store, now))
    }

    /// Re-open a store on a freshly mounted storage manager.
    ///
    /// Rebuilds the run directory from the checkpointed object directory:
    /// every surviving run object's footer is read back and validated.
    /// Runs torn by a power cut (missing pages after the mount's OOB
    /// checksum scan, or an unreadable footer) are discarded — they
    /// belong to flushes that were never acknowledged.  So are orphan
    /// objects that decode as this store's runs (same situation, crash
    /// during the directory checkpoint) and runs whose sequence range is
    /// covered by a durable higher-level merge (crash between a merge
    /// commit and its source drops).
    pub fn open(
        noftl: Arc<NoFtl>,
        name: &str,
        config: KvConfig,
        at: SimTime,
    ) -> Result<(KvStore, KvOpenReport)> {
        Self::validate_name(name)?;
        let marker = Self::marker_name(name);
        let marker_id = noftl
            .object_id(&marker)
            .ok_or_else(|| kv_err(format!("kv store '{name}' not found (no marker object)")))?;
        let region = noftl.object_stats(marker_id)?.region;
        let mut report = KvOpenReport::default();
        let mut now = at;

        // Candidate run objects: properly named runs plus orphans (objects
        // that lost their directory entry to a crash mid-checkpoint).
        let mut candidates = noftl.objects_with_prefix(&Self::run_prefix(name));
        candidates.extend(noftl.objects_with_prefix("__orphan_"));
        let mut runs: Vec<RunMeta> = Vec::new();
        for (obj, obj_name) in candidates {
            let orphan = obj_name.starts_with("__orphan_");
            match Self::load_run(&noftl, name, obj, &mut now) {
                Some(mut meta) if !orphan => {
                    meta.object = obj;
                    report.entries_recovered += meta.entries;
                    runs.push(meta);
                }
                Some(_) => {
                    // A complete run that never made it into the directory:
                    // its flush was not acknowledged.  Discard.
                    noftl.drop_object(obj)?;
                    report.torn_runs_discarded += 1;
                }
                None if orphan => {
                    // Not ours (or not a run at all) — leave it alone.
                }
                None => {
                    noftl.drop_object(obj)?;
                    report.torn_runs_discarded += 1;
                }
            }
        }

        // Supersession: a durable merge covers its sources' entire
        // sequence range at a higher level.
        let covered: Vec<ObjectId> = runs
            .iter()
            .filter(|b| {
                runs.iter()
                    .any(|a| a.level > b.level && a.seq_lo <= b.seq_lo && b.seq_hi <= a.seq_hi)
            })
            .map(|b| b.object)
            .collect();
        for obj in &covered {
            noftl.drop_object(*obj)?;
            report.superseded_runs_discarded += 1;
        }
        runs.retain(|r| !covered.contains(&r.object));
        report.entries_recovered = runs.iter().map(|r| r.entries).sum();

        runs.sort_by_key(|r| std::cmp::Reverse(r.seq_hi));
        report.runs_recovered = runs.len();
        report.next_seq = runs.iter().map(|r| r.seq_hi).max().unwrap_or(0) + 1;
        report.completed_at = now;
        let store = KvStore {
            obs: KvObs::new(Arc::clone(noftl.metrics())),
            noftl,
            region,
            name: name.to_string(),
            config,
            inner: Mutex::new(KvInner {
                memtable: Memtable::new(),
                runs,
                next_seq: report.next_seq,
                stats: KvStats::default(),
            }),
        };
        Ok((store, report))
    }

    /// Validate one candidate run object and decode its footer into a
    /// [`RunMeta`].  `None` = not a complete run of `store`.
    fn load_run(noftl: &NoFtl, store: &str, obj: ObjectId, now: &mut SimTime) -> Option<RunMeta> {
        let extent = noftl.object_extent(obj).ok()?;
        if extent == 0 {
            return None; // no durable pages at all
        }
        // Torn data pages were discarded by the mount's OOB checksum scan,
        // leaving holes in the page map: mapped != extent ⇒ incomplete.
        if noftl.object_pages(obj).ok()? != extent {
            return None;
        }
        let (payload, t) = noftl.read(obj, extent - 1, *now).ok()?;
        *now = t;
        let footer = run::decode_footer(&payload)?;
        if footer.store != store || u64::from(footer.data_pages) + 1 != extent {
            return None;
        }
        let min_key = footer.index.first().map(|(k, _)| k.clone()).unwrap_or_default();
        Some(RunMeta {
            object: obj,
            level: footer.level,
            seq_lo: footer.seq_lo,
            seq_hi: footer.seq_hi,
            entries: footer.entries,
            data_pages: footer.data_pages,
            min_key,
            max_key: footer.max_key,
            index: footer.index,
            written_at: *now,
        })
    }

    /// The store's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The region hosting the store's runs.
    pub fn region(&self) -> RegionId {
        self.region
    }

    /// Snapshot of the operation counters.
    pub fn stats(&self) -> KvStats {
        self.inner.lock().stats.clone()
    }

    /// Number of live runs (all levels).
    pub fn run_count(&self) -> usize {
        self.inner.lock().runs.len()
    }

    /// Entries currently buffered in the memtable.
    pub fn memtable_len(&self) -> usize {
        self.inner.lock().memtable.len()
    }

    fn check_entry_size(&self, key: &[u8], value_len: usize) -> Result<()> {
        let page_size = self.noftl.device().geometry().page_size as usize;
        if key.is_empty() {
            return Err(kv_err("empty keys are not supported"));
        }
        if key.len() > u16::MAX as usize
            || key.len() + value_len > run::max_entry_payload(page_size)
        {
            return Err(kv_err(format!(
                "entry of {} bytes exceeds the per-page budget of {}",
                key.len() + value_len,
                run::max_entry_payload(page_size)
            )));
        }
        Ok(())
    }

    /// Insert or overwrite a key.  May trigger a memtable flush (and
    /// cascading compactions) when the buffer crosses its threshold.
    /// Returns the completion time (`at` if the write stayed in memory).
    pub fn put(&self, key: &[u8], value: &[u8], at: SimTime) -> Result<SimTime> {
        self.check_entry_size(key, value.len())?;
        let mut inner = self.inner.lock();
        inner.stats.puts += 1;
        inner.memtable.insert(key.to_vec(), Some(value.to_vec()));
        let now = self.maybe_flush(&mut inner, at)?;
        self.obs.note_put(at, now);
        Ok(now)
    }

    /// Delete a key (a tombstone that shadows older run versions).
    pub fn delete(&self, key: &[u8], at: SimTime) -> Result<SimTime> {
        self.check_entry_size(key, 0)?;
        let mut inner = self.inner.lock();
        inner.stats.deletes += 1;
        inner.memtable.insert(key.to_vec(), None);
        self.maybe_flush(&mut inner, at)
    }

    /// Point lookup: memtable first, then runs newest-to-oldest.
    pub fn get(&self, key: &[u8], at: SimTime) -> Result<(Option<Vec<u8>>, SimTime)> {
        let mut inner = self.inner.lock();
        let inner = &mut *inner;
        inner.stats.gets += 1;
        if let Some(hit) = inner.memtable.get(key) {
            inner.stats.memtable_hits += 1;
            return Ok((hit.map(<[u8]>::to_vec), at));
        }
        let mut now = at;
        for run_meta in &inner.runs {
            if !run_meta.may_contain(key) {
                continue;
            }
            let (start, end) = run_meta.page_window(key);
            for page in start..end {
                let (payload, t) = self.noftl.read(run_meta.object, u64::from(page), now)?;
                now = t;
                inner.stats.run_page_reads += 1;
                let entries = run::decode_data_page(&payload).ok_or_else(|| {
                    kv_err(format!("run object {} page {page} is not a data page", run_meta.object))
                })?;
                if let Some(value) = run::search_entries(&entries, key) {
                    return Ok((value.clone(), now));
                }
            }
        }
        Ok((None, now))
    }

    /// Range scan over `[lo, hi]` (inclusive; `None` = unbounded).
    /// Returns live key/value pairs in key order.
    pub fn scan(
        &self,
        lo: Option<&[u8]>,
        hi: Option<&[u8]>,
        at: SimTime,
    ) -> Result<(ScanResult, SimTime)> {
        let mut inner = self.inner.lock();
        let inner = &mut *inner;
        inner.stats.scans += 1;
        let mut now = at;
        let in_range = |key: &[u8]| lo.is_none_or(|lo| key >= lo) && hi.is_none_or(|hi| key <= hi);
        let mut merged: BTreeMap<Vec<u8>, Option<Vec<u8>>> = BTreeMap::new();
        // Oldest to newest so later versions overwrite earlier ones.
        for run_meta in inner.runs.iter().rev() {
            if run_meta.entries == 0 {
                continue;
            }
            let (start, end) = run_meta.range_window(lo, hi);
            if start >= end {
                continue;
            }
            // Pull the run's window through the bounded read pipeline so
            // the page fetches overlap the region's dies.
            let reads: Vec<_> =
                (start..end).map(|page| (run_meta.object, u64::from(page))).collect();
            let (pages, t) = self.noftl.read_windowed(&reads, now, self.config.read_window)?;
            now = now.max(t);
            inner.stats.run_page_reads += reads.len() as u64;
            for (i, payload) in pages.iter().enumerate() {
                let page = start + i as u32;
                let entries = run::decode_data_page(payload).ok_or_else(|| {
                    kv_err(format!("run object {} page {page} is not a data page", run_meta.object))
                })?;
                for (key, value) in entries {
                    if in_range(&key) {
                        merged.insert(key, value);
                    }
                }
            }
        }
        let lo_bound = lo.map_or(Bound::Unbounded, Bound::Included);
        let hi_bound = hi.map_or(Bound::Unbounded, Bound::Included);
        for (key, value) in inner.memtable.range(lo_bound, hi_bound) {
            merged.insert(key.to_vec(), value.map(<[u8]>::to_vec));
        }
        let out = merged.into_iter().filter_map(|(k, v)| v.map(|v| (k, v))).collect::<Vec<_>>();
        Ok((out, now))
    }

    /// Bounded range scan: up to `limit` live entries with key `>= lo`
    /// (`None` = from the start), in key order.
    ///
    /// Unlike [`scan`](Self::scan), the merge is *limit-aware*: the runs
    /// are drained through per-run streaming cursors (each pulling pages
    /// through the windowed pipeline in [`KvConfig::read_window`]-sized
    /// chunks on demand), merged smallest-key-first with the newest
    /// source winning each key.  Tombstones do not consume result slots:
    /// the merge keeps draining past masked keys until `limit` live rows
    /// are found or every source is exhausted, so delete-heavy workloads
    /// get exactly as many rows as a full scan would (the former
    /// under-fill).  A short scan of a large store still touches a
    /// handful of pages instead of every run tail.
    pub fn scan_limit(
        &self,
        lo: Option<&[u8]>,
        limit: usize,
        at: SimTime,
    ) -> Result<(ScanResult, SimTime)> {
        if limit == 0 {
            return Ok((Vec::new(), at));
        }
        let mut inner = self.inner.lock();
        let inner = &mut *inner;
        inner.stats.scans += 1;
        let mut now = at;
        // One streaming cursor per run, in `inner.runs` order (newest
        // seq_hi first): each holds the run's undrained entries at or
        // above `lo` and refills a window of pages at a time on demand.
        struct Cursor {
            object: ObjectId,
            next_page: u32,
            end: u32,
            buf: std::collections::VecDeque<(Vec<u8>, Option<Vec<u8>>)>,
        }
        let mut cursors: Vec<Cursor> = inner
            .runs
            .iter()
            .filter(|r| r.entries != 0)
            .map(|r| {
                let (start, end) = r.range_window(lo, None);
                Cursor {
                    object: r.object,
                    next_page: start,
                    end,
                    buf: std::collections::VecDeque::new(),
                }
            })
            .collect();
        let window = self.config.read_window.max(1) as u32;
        // The memtable: the newest source of all.
        let lo_bound = lo.map_or(Bound::Unbounded, Bound::Included);
        let mut mem: std::collections::VecDeque<(Vec<u8>, Option<Vec<u8>>)> = inner
            .memtable
            .range(lo_bound, Bound::Unbounded)
            .map(|(k, v)| (k.to_vec(), v.map(<[u8]>::to_vec)))
            .collect();
        let mut out: ScanResult = Vec::with_capacity(limit);
        loop {
            // Refill every drained cursor that still has pages.
            for c in &mut cursors {
                while c.buf.is_empty() && c.next_page < c.end {
                    let chunk_end = c.end.min(c.next_page + window);
                    let reads: Vec<_> =
                        (c.next_page..chunk_end).map(|p| (c.object, u64::from(p))).collect();
                    let (pages, t) =
                        self.noftl.read_windowed(&reads, now, self.config.read_window)?;
                    now = now.max(t);
                    inner.stats.run_page_reads += reads.len() as u64;
                    for (i, payload) in pages.iter().enumerate() {
                        let p = c.next_page + i as u32;
                        let entries = run::decode_data_page(payload).ok_or_else(|| {
                            kv_err(format!("run object {} page {p} is not a data page", c.object))
                        })?;
                        for (key, value) in entries {
                            if lo.is_none_or(|lo| key.as_slice() >= lo) {
                                c.buf.push_back((key, value));
                            }
                        }
                    }
                    c.next_page = chunk_end;
                }
            }
            // Smallest key across all sources.
            let mut min_key: Option<Vec<u8>> = mem.front().map(|(k, _)| k.clone());
            for c in &cursors {
                if let Some((k, _)) = c.buf.front() {
                    if min_key.as_ref().is_none_or(|m| k < m) {
                        min_key = Some(k.clone());
                    }
                }
            }
            let Some(min_key) = min_key else { break };
            // Newest version wins: the memtable first, then the runs in
            // `inner.runs` order; every older version of the key is
            // popped so the next round sees fresh fronts.
            let mut winner: Option<Option<Vec<u8>>> = None;
            if mem.front().is_some_and(|(k, _)| *k == min_key) {
                if let Some((_, v)) = mem.pop_front() {
                    winner = Some(v);
                }
            }
            for c in &mut cursors {
                if c.buf.front().is_some_and(|(k, _)| *k == min_key) {
                    if let Some((_, v)) = c.buf.pop_front() {
                        if winner.is_none() {
                            winner = Some(v);
                        }
                    }
                }
            }
            // A `Some(None)` winner is a tombstone: drained, not emitted.
            if let Some(Some(value)) = winner {
                out.push((min_key, value));
                if out.len() == limit {
                    break;
                }
            }
        }
        Ok((out, now))
    }

    /// Flush the memtable to a level-0 run (no-op when empty).  This is
    /// the store's durability point: on return the run's pages are on
    /// flash and the run directory is checkpointed.
    pub fn flush(&self, at: SimTime) -> Result<SimTime> {
        let mut inner = self.inner.lock();
        let now = self.flush_locked(&mut inner, at)?;
        self.maybe_compact(&mut inner, now)
    }

    fn maybe_flush(&self, inner: &mut KvInner, at: SimTime) -> Result<SimTime> {
        if inner.memtable.approx_bytes() < self.config.memtable_bytes {
            return Ok(at);
        }
        let now = self.flush_locked(inner, at)?;
        self.maybe_compact(inner, now)
    }

    fn flush_locked(&self, inner: &mut KvInner, at: SimTime) -> Result<SimTime> {
        if inner.memtable.is_empty() {
            return Ok(at);
        }
        let seq = inner.next_seq;
        let entries = inner.memtable.take_sorted();
        let now = self.write_run(inner, 0, (seq, seq), &entries, at, None)?;
        inner.next_seq = seq + 1;
        inner.stats.flushes += 1;
        self.obs.note_flush(entries.len() as u64, at, now);
        Ok(now)
    }

    /// Write one run (pages fanned out through the queued batch path),
    /// checkpoint the directory and install the [`RunMeta`].
    fn write_run(
        &self,
        inner: &mut KvInner,
        level: u32,
        (seq_lo, seq_hi): (u64, u64),
        entries: &[Entry],
        at: SimTime,
        class: Option<ServiceClass>,
    ) -> Result<SimTime> {
        let page_size = self.noftl.device().geometry().page_size as usize;
        let encoded = run::encode_run(&self.name, level, seq_lo, seq_hi, entries, page_size);
        let obj = self.noftl.create_object(&self.run_name(level, seq_lo, seq_hi), self.region)?;
        let page_count = encoded.pages.len() as u64;
        let mut now = if self.config.queued_flush {
            // The whole run issues at one shared time and fans across the
            // region's dies via the command queue.
            let batch: Vec<(ObjectId, u64, Vec<u8>)> = encoded
                .pages
                .into_iter()
                .enumerate()
                .map(|(i, page)| (obj, i as u64, page))
                .collect();
            match class {
                Some(c) => self.noftl.write_batch_classed(&batch, at, c)?,
                None => self.noftl.write_batch(&batch, at)?,
            }
        } else {
            // Ablation: strictly sequential page writes.
            let mut t = at;
            for (i, page) in encoded.pages.into_iter().enumerate() {
                t = match class {
                    Some(c) => self.noftl.write_classed(obj, i as u64, &page, t, c)?,
                    None => self.noftl.write(obj, i as u64, &page, t)?,
                };
            }
            t
        };
        if self.config.auto_checkpoint {
            now = self.noftl.checkpoint(now)?;
        }
        let mut meta = encoded.meta;
        meta.object = obj;
        meta.written_at = now;
        let pos = inner.runs.partition_point(|r| r.seq_hi > meta.seq_hi);
        inner.runs.insert(pos, meta);
        if level == 0 {
            inner.stats.flushed_pages += page_count;
        } else {
            inner.stats.compacted_pages += page_count;
        }
        Ok(now)
    }

    /// Run size-tiered compactions until no level holds
    /// `compaction_threshold` runs or more.  The threshold is clamped to
    /// 2: a merge needs at least two sources, and a lower configured
    /// value would re-select the same single-run level forever.
    fn maybe_compact(&self, inner: &mut KvInner, at: SimTime) -> Result<SimTime> {
        let threshold = self.config.compaction_threshold.max(2);
        let mut now = at;
        // Each merge strictly shrinks the run count, so this terminates.
        loop {
            let mut by_level: BTreeMap<u32, usize> = BTreeMap::new();
            for r in &inner.runs {
                *by_level.entry(r.level).or_default() += 1;
            }
            let Some(level) =
                by_level.iter().find(|(_, count)| **count >= threshold).map(|(level, _)| *level)
            else {
                return Ok(now);
            };
            now = self.compact_level(inner, level, now)?;
        }
    }

    /// Merge every run of `level` into one run at `level + 1`: the
    /// region-local GC expression of LSM compaction.  The merged run is
    /// written as one queued batch and made durable (checkpoint) *before*
    /// the sources are retired through the object-drop path, so a crash
    /// at any instant leaves either the sources or the merge — never
    /// neither.
    fn compact_level(&self, inner: &mut KvInner, level: u32, at: SimTime) -> Result<SimTime> {
        let sources: Vec<RunMeta> =
            inner.runs.iter().filter(|r| r.level == level).cloned().collect();
        if sources.len() < 2 {
            return Ok(at);
        }
        inner.stats.compactions_started += 1;
        let started = at;
        // `sources.len() >= 2` was checked above, so the fold always sees
        // at least one run.
        let (seq_lo, seq_hi) =
            sources.iter().fold((u64::MAX, 0), |(lo, hi), r| (lo.min(r.seq_lo), hi.max(r.seq_hi)));
        // Tombstones may be dropped once no older run could still hold a
        // shadowed version of the key.
        let bottom = !inner.runs.iter().any(|r| r.seq_hi < seq_lo);

        // Merge: read sources oldest-first so newer versions win.
        let mut merged: BTreeMap<Vec<u8>, Option<Vec<u8>>> = BTreeMap::new();
        let mut now = at;
        let mut ordered = sources.clone();
        ordered.sort_by_key(|r| r.seq_hi);
        for src in &ordered {
            if src.data_pages == 0 {
                continue;
            }
            // Merge input is read through the bounded pipeline: up to
            // `read_window` pages of the source run in flight at once.
            let reads: Vec<_> =
                (0..src.data_pages).map(|page| (src.object, u64::from(page))).collect();
            // Compaction merge input is maintenance traffic.
            let (pages, t) = self.noftl.read_windowed_classed(
                &reads,
                now,
                self.config.read_window,
                ServiceClass::Background,
            )?;
            now = now.max(t);
            inner.stats.run_page_reads += reads.len() as u64;
            for (page, payload) in pages.iter().enumerate() {
                let entries = run::decode_data_page(payload).ok_or_else(|| {
                    kv_err(format!("run object {} page {page} is not a data page", src.object))
                })?;
                for (key, value) in entries {
                    merged.insert(key, value);
                }
            }
        }
        if bottom {
            merged.retain(|_, v| v.is_some());
        }
        let entries: Vec<Entry> = merged.into_iter().collect();
        now = self.write_run(
            inner,
            level + 1,
            (seq_lo, seq_hi),
            &entries,
            now,
            Some(ServiceClass::Background),
        )?;

        // Retire the sources through the normal drop path: their pages
        // become invalid and the region's GC reclaims the blocks.
        for src in &sources {
            self.noftl.drop_object(src.object)?;
            inner.runs.retain(|r| r.object != src.object);
            inner.stats.compacted_runs += 1;
        }
        if self.config.auto_checkpoint {
            now = self.noftl.checkpoint(now)?;
        }
        inner.stats.compactions += 1;
        inner.stats.compaction_windows.push((started.as_nanos(), now.as_nanos()));
        self.obs.note_compact(u64::from(level), started, now);
        Ok(now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::region::RegionSpec;
    use crate::NoFtlConfig;
    use flash_sim::{DeviceBuilder, FlashGeometry, NandDevice, TimingModel};

    fn stack(timing: TimingModel) -> (Arc<NandDevice>, Arc<NoFtl>, RegionId) {
        let device =
            Arc::new(DeviceBuilder::new(FlashGeometry::small_test()).timing(timing).build());
        let noftl = Arc::new(NoFtl::new(device.clone(), NoFtlConfig::default()));
        let rid = noftl.create_region(RegionSpec::named("rgKv").with_die_count(3)).unwrap();
        (device, noftl, rid)
    }

    fn small_config() -> KvConfig {
        KvConfig { memtable_bytes: 4 * 1024, compaction_threshold: 3, ..KvConfig::default() }
    }

    fn key(i: u64) -> Vec<u8> {
        format!("user{i:06}").into_bytes()
    }

    fn val(i: u64, round: u64) -> Vec<u8> {
        format!("value-{i:06}-v{round:04}-padpadpad").into_bytes()
    }

    #[test]
    fn put_get_roundtrip_through_memtable_and_runs() {
        let (_d, noftl, rid) = stack(TimingModel::instant());
        let (kv, mut t) =
            KvStore::create(Arc::clone(&noftl), rid, "s", small_config(), SimTime::ZERO).unwrap();
        for i in 0..200u64 {
            t = kv.put(&key(i), &val(i, 0), t).unwrap();
        }
        assert!(kv.stats().flushes > 0, "threshold must have forced flushes");
        assert!(kv.run_count() > 0);
        // Some keys now live only in runs, some still in the memtable.
        for i in 0..200u64 {
            let (got, t2) = kv.get(&key(i), t).unwrap();
            t = t2;
            assert_eq!(got.as_deref(), Some(val(i, 0).as_slice()), "key {i}");
        }
        let stats = kv.stats();
        assert!(stats.memtable_hits > 0);
        assert!(stats.run_page_reads > 0);
        assert_eq!(kv.get(b"missing", t).unwrap().0, None);
    }

    #[test]
    fn scan_limit_drains_past_tombstones_to_fill_the_limit() {
        let (_d, noftl, rid) = stack(TimingModel::instant());
        let (kv, mut t) =
            KvStore::create(Arc::clone(&noftl), rid, "s", small_config(), SimTime::ZERO).unwrap();
        // 120 keys, then delete every key not divisible by 10 — a
        // tombstone-heavy store where live rows are sparse in key order.
        for i in 0..120u64 {
            t = kv.put(&key(i), &val(i, 0), t).unwrap();
        }
        t = kv.flush(t).unwrap();
        for i in 0..120u64 {
            if i % 10 != 0 {
                t = kv.delete(&key(i), t).unwrap();
            }
        }
        t = kv.flush(t).unwrap();
        // 12 live rows remain (0, 10, ..., 110).  A limit-8 scan must
        // return 8 of them, not under-fill on the masked candidates.
        let (rows, t2) = kv.scan_limit(None, 8, t).unwrap();
        t = t2;
        let expect: Vec<Vec<u8>> = (0..8u64).map(|i| key(i * 10)).collect();
        assert_eq!(rows.len(), 8, "limit-8 over 12 live rows must fill");
        assert_eq!(rows.iter().map(|(k, _)| k.clone()).collect::<Vec<_>>(), expect);
        for (i, (_, v)) in rows.iter().enumerate() {
            assert_eq!(v, &val(i as u64 * 10, 0));
        }
        // Asking past exhaustion returns every live row, no phantoms.
        let (rows, t2) = kv.scan_limit(None, 100, t).unwrap();
        t = t2;
        assert_eq!(rows.len(), 12);
        // A lo bound mid-range still fills from the bound onward.
        let (rows, _) = kv.scan_limit(Some(&key(55)), 4, t).unwrap();
        let expect: Vec<Vec<u8>> = [60u64, 70, 80, 90].iter().map(|i| key(*i)).collect();
        assert_eq!(rows.iter().map(|(k, _)| k.clone()).collect::<Vec<_>>(), expect);
    }

    #[test]
    fn overwrites_and_tombstones_shadow_run_versions() {
        let (_d, noftl, rid) = stack(TimingModel::instant());
        let (kv, mut t) =
            KvStore::create(Arc::clone(&noftl), rid, "s", small_config(), SimTime::ZERO).unwrap();
        for i in 0..60u64 {
            t = kv.put(&key(i), &val(i, 1), t).unwrap();
        }
        t = kv.flush(t).unwrap();
        // Overwrite half, delete a quarter; flush again so the newer run
        // shadows the older one.
        for i in 0..30u64 {
            t = kv.put(&key(i), &val(i, 2), t).unwrap();
        }
        for i in 30..45u64 {
            t = kv.delete(&key(i), t).unwrap();
        }
        t = kv.flush(t).unwrap();
        for i in 0..30u64 {
            let (got, t2) = kv.get(&key(i), t).unwrap();
            t = t2;
            assert_eq!(got.as_deref(), Some(val(i, 2).as_slice()), "overwritten key {i}");
        }
        for i in 30..45u64 {
            let (got, t2) = kv.get(&key(i), t).unwrap();
            t = t2;
            assert_eq!(got, None, "deleted key {i}");
        }
        for i in 45..60u64 {
            let (got, t2) = kv.get(&key(i), t).unwrap();
            t = t2;
            assert_eq!(got.as_deref(), Some(val(i, 1).as_slice()), "untouched key {i}");
        }
    }

    #[test]
    fn windowed_scan_and_compaction_match_serial_reads_and_finish_no_later() {
        // Identical workloads under read_window = 1 (serial reads) and
        // the default pipeline: same scan contents, same compaction
        // output, and the windowed variant never finishes later under a
        // real timing model (its reads overlap the region's dies).
        let run = |read_window: usize| {
            let (_d, noftl, rid) = stack(TimingModel::mlc_2015());
            let config = KvConfig { read_window, ..small_config() };
            let (kv, mut t) =
                KvStore::create(Arc::clone(&noftl), rid, "s", config, SimTime::ZERO).unwrap();
            for i in 0..120u64 {
                t = kv.put(&key(i), &val(i, 0), t).unwrap();
            }
            t = kv.flush(t).unwrap();
            let scan_start = t;
            let (rows, t2) = kv.scan(None, None, t).unwrap();
            let scan_ns = t2.as_nanos() - scan_start.as_nanos();
            (rows, scan_ns, kv.stats().run_page_reads, kv.stats().compactions)
        };
        let (serial_rows, serial_ns, serial_reads, serial_compactions) = run(1);
        let (windowed_rows, windowed_ns, windowed_reads, windowed_compactions) =
            run(KvConfig::default().read_window);
        assert_eq!(serial_rows, windowed_rows, "window width must not change scan contents");
        assert_eq!(serial_reads, windowed_reads, "both variants read the same pages");
        assert_eq!(serial_compactions, windowed_compactions);
        assert!(serial_compactions > 0, "workload must exercise the merge path");
        assert!(
            windowed_ns <= serial_ns,
            "windowed scan ({windowed_ns} ns) slower than serial ({serial_ns} ns)"
        );
    }

    #[test]
    fn scan_merges_memtable_and_runs() {
        let (_d, noftl, rid) = stack(TimingModel::instant());
        let (kv, mut t) =
            KvStore::create(Arc::clone(&noftl), rid, "s", small_config(), SimTime::ZERO).unwrap();
        for i in 0..50u64 {
            t = kv.put(&key(i), &val(i, 1), t).unwrap();
        }
        t = kv.flush(t).unwrap();
        t = kv.put(&key(10), &val(10, 9), t).unwrap(); // newer, memtable only
        t = kv.delete(&key(11), t).unwrap(); // tombstone in memtable
        let (rows, t2) = kv.scan(Some(&key(5)), Some(&key(14)), t).unwrap();
        t = t2;
        let keys: Vec<u64> = rows
            .iter()
            .map(|(k, _)| String::from_utf8_lossy(k)[4..].parse::<u64>().unwrap())
            .collect();
        assert_eq!(keys, vec![5, 6, 7, 8, 9, 10, 12, 13, 14], "11 deleted, bounds inclusive");
        let ten = rows.iter().find(|(k, _)| k == &key(10)).unwrap();
        assert_eq!(ten.1, val(10, 9), "memtable version wins");
        // Unbounded scan returns everything alive.
        let (all, _) = kv.scan(None, None, t).unwrap();
        assert_eq!(all.len(), 49);
    }

    #[test]
    fn flush_issues_one_queued_multi_die_batch() {
        let (device, noftl, rid) = stack(TimingModel::mlc_2015());
        let (kv, mut t) =
            KvStore::create(Arc::clone(&noftl), rid, "s", KvConfig::default(), SimTime::ZERO)
                .unwrap();
        for i in 0..300u64 {
            t = kv.put(&key(i), &val(i, 0), t).unwrap();
        }
        let before = noftl.io_queue_stats();
        t = kv.flush(t).unwrap();
        let after = noftl.io_queue_stats();
        let pages = kv.stats().flushed_pages;
        assert!(pages >= 4, "300 entries must span several pages (got {pages})");
        // Every run page went through the submission queue...
        assert_eq!(after.submitted - before.submitted, pages);
        // ...fanned over more than one die of the region.
        let dies_hit = after
            .per_die_submitted
            .iter()
            .zip(before.per_die_submitted.iter())
            .filter(|(a, b)| *a > *b)
            .count();
        assert!(dies_hit >= 2, "flush must fan across dies (hit {dies_hit})");
        let _ = t;
        let _ = device;
    }

    #[test]
    fn queued_flush_beats_sequential_flush() {
        let run = |queued: bool| {
            let (_d, noftl, rid) = stack(TimingModel::mlc_2015());
            let config = KvConfig { queued_flush: queued, ..KvConfig::default() };
            let (kv, mut t) =
                KvStore::create(Arc::clone(&noftl), rid, "s", config, SimTime::ZERO).unwrap();
            for i in 0..300u64 {
                t = kv.put(&key(i), &val(i, 0), t).unwrap();
            }
            let start = t;
            let done = kv.flush(t).unwrap();
            done - start
        };
        let queued = run(true);
        let sequential = run(false);
        assert!(
            queued < sequential,
            "queued flush ({queued:?}) must beat sequential ({sequential:?})"
        );
    }

    #[test]
    fn compaction_merges_runs_and_retires_sources() {
        let (_d, noftl, rid) = stack(TimingModel::instant());
        let config = KvConfig { compaction_threshold: 3, ..small_config() };
        let (kv, mut t) =
            KvStore::create(Arc::clone(&noftl), rid, "s", config, SimTime::ZERO).unwrap();
        // Overwrite the same keys across enough flushes to force merges.
        for round in 1..=9u64 {
            for i in 0..40u64 {
                t = kv.put(&key(i), &val(i, round), t).unwrap();
            }
            t = kv.flush(t).unwrap();
        }
        let stats = kv.stats();
        assert!(stats.compactions > 0, "threshold 3 over 9 flushes must compact");
        assert_eq!(stats.compactions_started, stats.compactions);
        assert!(stats.compacted_runs >= 3);
        assert!(!stats.compaction_windows.is_empty());
        assert!(
            kv.run_count() < stats.flushes as usize,
            "merges must shrink the run directory ({} runs after {} flushes)",
            kv.run_count(),
            stats.flushes
        );
        // Latest versions win after all merges.
        for i in 0..40u64 {
            let (got, t2) = kv.get(&key(i), t).unwrap();
            t = t2;
            assert_eq!(got.as_deref(), Some(val(i, 9).as_slice()), "key {i}");
        }
        // Source run objects are gone from the manager's directory.
        let live_runs = noftl.objects_with_prefix("__kv_s_r").len();
        assert_eq!(live_runs, kv.run_count());
    }

    #[test]
    fn compaction_io_is_tagged_background_on_an_arbiter_device() {
        let device = Arc::new(
            DeviceBuilder::new(FlashGeometry::small_test())
                .timing(TimingModel::instant())
                .arbiter(flash_sim::ArbiterConfig::default())
                .build(),
        );
        let noftl = Arc::new(NoFtl::new(device.clone(), NoFtlConfig::default()));
        let rid = noftl
            .create_region(
                RegionSpec::named("rgKv")
                    .with_die_count(3)
                    .with_service_class(flash_sim::ServiceClass::Latency),
            )
            .unwrap();
        let config = KvConfig { compaction_threshold: 3, ..small_config() };
        let (kv, mut t) =
            KvStore::create(Arc::clone(&noftl), rid, "s", config, SimTime::ZERO).unwrap();
        let bg = || device.metrics().counter("flash.arbiter.class.background.ops").get();
        for round in 1..=4u64 {
            for i in 0..40u64 {
                t = kv.put(&key(i), &val(i, round), t).unwrap();
            }
            t = kv.flush(t).unwrap();
        }
        assert!(kv.stats().compactions > 0, "threshold 3 over 4 flushes must compact");
        // Both the merge reads and the merged-run writes are maintenance
        // traffic: tagged Background even though the region is Latency.
        assert!(bg() > 0, "compaction I/O must be admitted as background");
        // Plain flushes and gets stay on the region's own class.
        let before = bg();
        let (got, _) = kv.get(&key(0), t).unwrap();
        assert!(got.is_some());
        assert_eq!(bg(), before, "host gets are not background traffic");
        assert!(device.metrics().counter("flash.arbiter.class.latency.ops").get() > 0);
    }

    #[test]
    fn bottom_level_compaction_drops_tombstones() {
        let (_d, noftl, rid) = stack(TimingModel::instant());
        let config =
            KvConfig { compaction_threshold: 2, memtable_bytes: 1 << 20, ..KvConfig::default() };
        let (kv, mut t) =
            KvStore::create(Arc::clone(&noftl), rid, "s", config, SimTime::ZERO).unwrap();
        for i in 0..20u64 {
            t = kv.put(&key(i), &val(i, 0), t).unwrap();
        }
        t = kv.flush(t).unwrap();
        for i in 0..20u64 {
            t = kv.delete(&key(i), t).unwrap();
        }
        t = kv.flush(t).unwrap(); // two L0 runs → merge into L1 (bottom)
        let stats = kv.stats();
        assert!(stats.compactions > 0);
        assert_eq!(kv.run_count(), 1);
        let merged_entries = { kv.inner.lock().runs[0].entries };
        assert_eq!(merged_entries, 0, "all entries were tombstoned and dropped at the bottom");
        let (rows, _) = kv.scan(None, None, t).unwrap();
        assert!(rows.is_empty());
    }

    #[test]
    fn create_open_roundtrip_after_remount() {
        let (device, noftl, rid) = stack(TimingModel::mlc_2015());
        let (kv, mut t) =
            KvStore::create(Arc::clone(&noftl), rid, "s", small_config(), SimTime::ZERO).unwrap();
        for i in 0..120u64 {
            t = kv.put(&key(i), &val(i, 3), t).unwrap();
        }
        t = kv.flush(t).unwrap();
        let runs_before = kv.run_count();
        // Clean reboot: snapshot → new device → mount → open.
        let snap = device.snapshot();
        let device2 = Arc::new(NandDevice::from_snapshot(&snap, TimingModel::mlc_2015()).unwrap());
        let (noftl2, mount) = NoFtl::mount(device2, NoFtlConfig::default(), t).unwrap();
        let (kv2, report) =
            KvStore::open(Arc::new(noftl2), "s", small_config(), mount.completed_at).unwrap();
        assert_eq!(report.runs_recovered, runs_before);
        assert_eq!(report.torn_runs_discarded, 0);
        assert_eq!(report.superseded_runs_discarded, 0);
        let mut t2 = report.completed_at;
        for i in 0..120u64 {
            let (got, t3) = kv2.get(&key(i), t2).unwrap();
            t2 = t3;
            assert_eq!(got.as_deref(), Some(val(i, 3).as_slice()), "key {i}");
        }
        // The reopened store keeps working, with fresh sequence numbers.
        t2 = kv2.put(b"after-reopen", b"ok", t2).unwrap();
        t2 = kv2.flush(t2).unwrap();
        assert_eq!(kv2.get(b"after-reopen", t2).unwrap().0.as_deref(), Some(b"ok".as_slice()));
    }

    #[test]
    fn open_unknown_store_fails() {
        let (_d, noftl, _rid) = stack(TimingModel::instant());
        assert!(matches!(
            KvStore::open(noftl, "nope", KvConfig::default(), SimTime::ZERO),
            Err(NoFtlError::Kv { .. })
        ));
    }

    #[test]
    fn compaction_threshold_below_two_is_clamped() {
        // Regression: threshold 1 used to make maybe_compact re-select a
        // single-run level forever (compact_level needs >= 2 sources and
        // returned without changing anything), hanging the first flush.
        let (_d, noftl, rid) = stack(TimingModel::instant());
        let config = KvConfig { compaction_threshold: 1, ..KvConfig::default() };
        let (kv, mut t) =
            KvStore::create(Arc::clone(&noftl), rid, "s", config, SimTime::ZERO).unwrap();
        for round in 0..3u64 {
            for i in 0..20u64 {
                t = kv.put(&key(i), &val(i, round), t).unwrap();
            }
            t = kv.flush(t).unwrap(); // must terminate
        }
        assert!(kv.stats().compactions > 0, "clamped threshold 2 still merges");
        assert_eq!(kv.get(&key(7), t).unwrap().0.as_deref(), Some(val(7, 2).as_slice()));
    }

    #[test]
    fn maximum_size_entry_survives_put_and_flush() {
        // Regression: the put-time size check was 6 bytes looser than the
        // encoder's assert, so a maximum-size entry was accepted into the
        // memtable and then panicked the flush.
        let (_d, noftl, rid) = stack(TimingModel::instant());
        let (kv, t) =
            KvStore::create(Arc::clone(&noftl), rid, "s", KvConfig::default(), SimTime::ZERO)
                .unwrap();
        let page_size = noftl.device().geometry().page_size as usize;
        let max = run::max_entry_payload(page_size);
        let big_val = vec![0xBB; max - 3];
        let t = kv.put(b"big", &big_val, t).unwrap();
        assert!(kv.put(b"big2", &vec![0xBB; max - 3], t).is_err(), "one byte over is rejected");
        let t = kv.flush(t).unwrap(); // must not panic
        assert_eq!(kv.get(b"big", t).unwrap().0.as_deref(), Some(big_val.as_slice()));
    }

    #[test]
    fn invalid_names_and_oversized_entries_rejected() {
        let (_d, noftl, rid) = stack(TimingModel::instant());
        assert!(KvStore::create(
            Arc::clone(&noftl),
            rid,
            "bad_name",
            KvConfig::default(),
            SimTime::ZERO
        )
        .is_err());
        let (kv, t) =
            KvStore::create(Arc::clone(&noftl), rid, "ok", KvConfig::default(), SimTime::ZERO)
                .unwrap();
        assert!(kv.put(b"", b"v", t).is_err(), "empty key");
        let huge = vec![0u8; 5000];
        assert!(kv.put(b"k", &huge, t).is_err(), "entry larger than a page");
    }
}
