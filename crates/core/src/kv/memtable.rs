//! The in-memory sorted write buffer of a [`KvStore`].
//!
//! A memtable maps keys to either a value or a *tombstone* (a recorded
//! delete).  Both must be kept until they reach a sorted run: a tombstone
//! has to shadow older on-flash versions of the key.  The memtable tracks
//! an approximate byte footprint so the store can flush once a configured
//! threshold is crossed.
//!
//! [`KvStore`]: super::store::KvStore

use std::collections::BTreeMap;
use std::ops::Bound;

/// Fixed per-entry overhead charged against the flush threshold (map node,
/// lengths, option discriminant) on top of the key/value payload bytes.
const ENTRY_OVERHEAD: usize = 32;

/// An in-memory sorted buffer of key → value-or-tombstone entries.
#[derive(Debug, Default)]
pub struct Memtable {
    entries: BTreeMap<Vec<u8>, Option<Vec<u8>>>,
    bytes: usize,
}

impl Memtable {
    /// An empty memtable.
    pub fn new() -> Self {
        Memtable::default()
    }

    /// Record a put (`Some(value)`) or a delete tombstone (`None`).
    pub fn insert(&mut self, key: Vec<u8>, value: Option<Vec<u8>>) {
        let added = ENTRY_OVERHEAD + key.len() + value.as_ref().map_or(0, Vec::len);
        let key_len = key.len();
        if let Some(old) = self.entries.insert(key, value) {
            // Replaced in place: release the old entry's full charge (the
            // key included — `added` re-charges it) so repeated overwrites
            // of a resident key leave the footprint payload-accurate.
            self.bytes = self
                .bytes
                .saturating_sub(ENTRY_OVERHEAD + key_len + old.as_ref().map_or(0, Vec::len));
        }
        self.bytes += added;
    }

    /// Look a key up.  `None` = not present here (check the runs);
    /// `Some(None)` = tombstoned; `Some(Some(v))` = live value.
    pub fn get(&self, key: &[u8]) -> Option<Option<&[u8]>> {
        self.entries.get(key).map(|v| v.as_deref())
    }

    /// Number of buffered entries (tombstones included).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the memtable holds no entries at all.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Approximate resident bytes, compared against the flush threshold.
    pub fn approx_bytes(&self) -> usize {
        self.bytes
    }

    /// Iterate entries of `[lo, hi]` in key order (tombstones included).
    pub fn range<'a>(
        &'a self,
        lo: Bound<&[u8]>,
        hi: Bound<&[u8]>,
    ) -> impl Iterator<Item = (&'a [u8], Option<&'a [u8]>)> + 'a {
        self.entries.range::<[u8], _>((lo, hi)).map(|(k, v)| (k.as_slice(), v.as_deref()))
    }

    /// Drain the memtable into a sorted entry list for a flush.
    pub fn take_sorted(&mut self) -> Vec<(Vec<u8>, Option<Vec<u8>>)> {
        self.bytes = 0;
        std::mem::take(&mut self.entries).into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_and_tombstones() {
        let mut m = Memtable::new();
        assert!(m.is_empty());
        m.insert(b"b".to_vec(), Some(b"2".to_vec()));
        m.insert(b"a".to_vec(), Some(b"1".to_vec()));
        m.insert(b"c".to_vec(), None);
        assert_eq!(m.len(), 3);
        assert_eq!(m.get(b"a"), Some(Some(b"1".as_slice())));
        assert_eq!(m.get(b"c"), Some(None), "tombstone is present but empty");
        assert_eq!(m.get(b"d"), None, "unknown key is absent");
    }

    #[test]
    fn byte_accounting_tracks_replacements() {
        let mut m = Memtable::new();
        m.insert(b"k".to_vec(), Some(vec![0u8; 100]));
        let first = m.approx_bytes();
        m.insert(b"k".to_vec(), Some(vec![0u8; 10]));
        assert!(m.approx_bytes() < first, "smaller replacement shrinks the footprint");
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn same_size_overwrites_do_not_inflate_the_footprint() {
        // Regression: overwriting a resident key used to leak the key's
        // length into the footprint on every replacement, flushing
        // near-empty memtables under update-heavy workloads.
        let mut m = Memtable::new();
        m.insert(b"counter".to_vec(), Some(vec![1u8; 50]));
        let first = m.approx_bytes();
        for _ in 0..1_000 {
            m.insert(b"counter".to_vec(), Some(vec![2u8; 50]));
        }
        assert_eq!(m.approx_bytes(), first, "steady-state overwrites keep the footprint flat");
    }

    #[test]
    fn take_sorted_drains_in_key_order() {
        let mut m = Memtable::new();
        m.insert(b"z".to_vec(), Some(b"26".to_vec()));
        m.insert(b"a".to_vec(), None);
        let items = m.take_sorted();
        assert_eq!(items.len(), 2);
        assert_eq!(items[0].0, b"a");
        assert_eq!(items[1].0, b"z");
        assert!(m.is_empty());
        assert_eq!(m.approx_bytes(), 0);
    }

    #[test]
    fn range_respects_bounds() {
        let mut m = Memtable::new();
        for k in [b"a", b"b", b"c", b"d"] {
            m.insert(k.to_vec(), Some(k.to_vec()));
        }
        let mid: Vec<&[u8]> = m
            .range(Bound::Included(b"b".as_slice()), Bound::Excluded(b"d".as_slice()))
            .map(|(k, _)| k)
            .collect();
        assert_eq!(mid, vec![b"b".as_slice(), b"c".as_slice()]);
    }
}
