//! KV crash harness: workload → power cut → reboot → mount → open →
//! verify, the key-value analogue of `dbms::crash_harness`.
//!
//! The harness drives a deterministic put/delete workload with auto
//! flushes (and therefore cascading compactions) against a [`KvStore`],
//! cuts power at a chosen simulated instant, reboots the device from its
//! snapshot, remounts the storage manager and reopens the store, then
//! verifies the store's durability contract:
//!
//! * **no lost committed keys** — every key state covered by an
//!   *acknowledged* flush is fully present with its exact value;
//! * **flush atomicity** — the one flush that may have been in flight at
//!   the cut is either completely visible (its checkpoint landed) or
//!   completely absent (its torn run was discarded on open);
//! * **scan/get agreement** — a full range scan of the reopened store
//!   returns exactly the point-lookup view.
//!
//! Because the simulator is deterministic the harness first performs a
//! dry run to learn the workload's time span — and the simulated-time
//! windows of its compaction merges, so cuts can be aimed *into a
//! compaction* to prove that a torn merge never loses source data.
//!
//! [`KvStore`]: super::store::KvStore

use std::collections::BTreeMap;
use std::sync::Arc;

use flash_sim::{DeviceBuilder, FlashGeometry, NandDevice, SimTime, TimingModel};

use crate::error::NoFtlError;
use crate::manager::NoFtl;
use crate::placement::PlacementPolicyKind;
use crate::recovery::MountReport;
use crate::region::RegionSpec;
use crate::{NoFtlConfig, Result};

use super::store::{KvConfig, KvOpenReport, KvStore};

/// Harness configuration.
#[derive(Debug, Clone)]
pub struct KvCrashConfig {
    /// Device geometry (default: the tiny unit-test geometry).
    pub geometry: FlashGeometry,
    /// Device timing model.
    pub timing: TimingModel,
    /// Store configuration.  The default shrinks the memtable threshold
    /// so flushes and compactions fire every few dozen operations.
    pub kv: KvConfig,
    /// Dies of the store's region.
    pub region_dies: u32,
    /// Operations to attempt (~80 % puts, ~20 % deletes).
    pub ops: u64,
    /// Distinct keys in the working set.
    pub keys: u64,
    /// Workload RNG seed.
    pub seed: u64,
    /// Die-level write placement under test.  The default honours the
    /// [`crate::PLACEMENT_ENV`] environment variable (falling back to
    /// round-robin), so the whole sweep can be pointed at either policy;
    /// the tier-1 crash tests also alternate it per round explicitly.
    pub placement: PlacementPolicyKind,
}

impl Default for KvCrashConfig {
    fn default() -> Self {
        KvCrashConfig {
            geometry: FlashGeometry::small_test(),
            timing: TimingModel::mlc_2015(),
            kv: KvConfig { memtable_bytes: 2048, compaction_threshold: 3, ..KvConfig::default() },
            region_dies: 2,
            ops: 400,
            keys: 48,
            seed: 0x5EED_4B56,
            placement: PlacementPolicyKind::from_env(PlacementPolicyKind::RoundRobin),
        }
    }
}

/// Outcome of one workload → cut → reboot → open → verify cycle.
#[derive(Debug, Clone)]
pub struct KvCrashOutcome {
    /// The armed power-cut instant.
    pub cut_at: SimTime,
    /// Keys (with exact values) covered by the last acknowledged flush.
    pub committed_keys: u64,
    /// Flushes acknowledged before the cut.
    pub flushes_acknowledged: u64,
    /// Whether the cut landed inside a compaction merge.
    pub cut_during_compaction: bool,
    /// Whether the flush in flight at the cut survived in full (its
    /// checkpoint landed before the power went out).
    pub in_flight_flush_survived: bool,
    /// Keys verified after recovery.
    pub verified_keys: u64,
    /// The storage-manager mount summary.
    pub mount: MountReport,
    /// The store-open summary (torn/superseded runs discarded).
    pub open: KvOpenReport,
}

/// Deterministic SplitMix64, the harness's workload RNG.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound.max(1)
    }
}

fn key_bytes(key: u64) -> Vec<u8> {
    format!("user{key:06}").into_bytes()
}

fn value_bytes(key: u64, op: u64) -> Vec<u8> {
    format!("v-{key:06}-{op:08}-pad-pad-pad").into_bytes()
}

const STORE: &str = "kvcrash";

struct Stack {
    device: Arc<NandDevice>,
    store: KvStore,
}

fn noftl_config(cfg: &KvCrashConfig) -> NoFtlConfig {
    NoFtlConfig { placement: cfg.placement, ..NoFtlConfig::default() }
}

fn build_stack(cfg: &KvCrashConfig) -> Result<(Stack, SimTime)> {
    // The infallible `Default` impl can only log a malformed placement
    // override; here the harness can return it as a proper config error.
    PlacementPolicyKind::try_from_env(cfg.placement)?;
    let device = Arc::new(DeviceBuilder::new(cfg.geometry).timing(cfg.timing).build());
    let noftl = Arc::new(NoFtl::new(device.clone(), noftl_config(cfg)));
    let rid = noftl.create_region(RegionSpec::named("rgKv").with_die_count(cfg.region_dies))?;
    let (store, created_at) =
        KvStore::create(Arc::clone(&noftl), rid, STORE, cfg.kv, SimTime::ZERO)?;
    let setup_end = created_at.max(device.quiesce_time());
    Ok((Stack { device, store }, setup_end))
}

struct RunResult {
    /// World as of the last *acknowledged* flush.
    committed: BTreeMap<u64, Vec<u8>>,
    /// World including the operation that errored out (meaningful only if
    /// that operation's flush may have landed before the cut).
    in_flight: Option<BTreeMap<u64, Vec<u8>>>,
    flushes_acknowledged: u64,
    cut_during_compaction: bool,
    end: SimTime,
    compaction_windows: Vec<(u64, u64)>,
}

/// Run the put/delete workload until `ops` operations complete or the
/// device loses power.
fn run_workload(cfg: &KvCrashConfig, stack: &Stack, start: SimTime) -> RunResult {
    let mut rng = Rng(cfg.seed);
    let mut pending: BTreeMap<u64, Vec<u8>> = BTreeMap::new();
    let mut committed: BTreeMap<u64, Vec<u8>> = BTreeMap::new();
    let mut in_flight = None;
    let mut flushes_seen = 0u64;
    let mut now = start;
    let store = &stack.store;
    for op in 0..cfg.ops {
        let k = rng.below(cfg.keys);
        let delete = rng.below(10) < 2;
        let result = if delete {
            pending.remove(&k);
            store.delete(&key_bytes(k), now)
        } else {
            let v = value_bytes(k, op);
            pending.insert(k, v.clone());
            store.put(&key_bytes(k), &v, now)
        };
        match result {
            Ok(t) => {
                now = t;
                let flushes = store.stats().flushes;
                if flushes > flushes_seen {
                    // The operation triggered a flush and it was
                    // acknowledged: everything so far is durable.
                    flushes_seen = flushes;
                    committed = pending.clone();
                }
            }
            Err(_) => {
                // Power cut.  The erroring operation entered the memtable
                // before the flush attempt, so if its flush's checkpoint
                // landed the recovered world includes this operation too.
                in_flight = Some(pending.clone());
                break;
            }
        }
    }
    let stats = store.stats();
    RunResult {
        committed,
        in_flight,
        flushes_acknowledged: flushes_seen,
        cut_during_compaction: stats.compactions_started > stats.compactions,
        end: now.max(stack.device.quiesce_time()),
        compaction_windows: stats.compaction_windows,
    }
}

/// Execute one full crash cycle with the cut at
/// `setup_end + fraction · span`.  `fraction` is clamped to `[0, 1)`.
pub fn run_kv_crash_cycle(cfg: &KvCrashConfig, fraction: f64) -> Result<KvCrashOutcome> {
    let (dry, dry_setup_end) = build_stack(cfg)?;
    let dry_run = run_workload(cfg, &dry, dry_setup_end);
    let span = dry_run.end.as_nanos().saturating_sub(dry_setup_end.as_nanos()).max(1);
    let fraction = fraction.clamp(0.0, 0.999_999);
    let cut_at = SimTime(dry_setup_end.as_nanos() + (span as f64 * fraction) as u64);
    run_cycle_with_cut(cfg, cut_at)
}

/// Execute one crash cycle with the cut aimed *inside a compaction
/// merge* (the `fraction`-th window of the dry run, midpoint).  Returns
/// `Ok(None)` if the dry run never compacted — callers should then grow
/// the workload.
pub fn run_kv_crash_cycle_in_compaction(
    cfg: &KvCrashConfig,
    fraction: f64,
) -> Result<Option<KvCrashOutcome>> {
    let (dry, dry_setup_end) = build_stack(cfg)?;
    let dry_run = run_workload(cfg, &dry, dry_setup_end);
    if dry_run.compaction_windows.is_empty() {
        return Ok(None);
    }
    let fraction = fraction.clamp(0.0, 0.999_999);
    let pick = ((dry_run.compaction_windows.len() as f64) * fraction) as usize;
    let (start, end) = dry_run.compaction_windows[pick.min(dry_run.compaction_windows.len() - 1)];
    // Aim at the merge's queued batch: somewhere strictly inside the
    // window, biased by the fractional part so repeated calls sweep it.
    let inside = start + ((end.saturating_sub(start)) as f64 * (0.2 + 0.6 * fraction)) as u64;
    let outcome = run_cycle_with_cut(cfg, SimTime(inside.max(start + 1)))?;
    Ok(Some(outcome))
}

fn run_cycle_with_cut(cfg: &KvCrashConfig, cut_at: SimTime) -> Result<KvCrashOutcome> {
    let (stack, setup_end) = build_stack(cfg)?;
    stack.device.arm_power_cut(cut_at);
    let run = run_workload(cfg, &stack, setup_end);

    // Reboot → mount → open.
    let snap = stack.device.snapshot();
    let device2 = Arc::new(
        NandDevice::from_snapshot(&snap, cfg.timing)
            .map_err(|e| NoFtlError::Recovery { message: format!("reboot failed: {e}") })?,
    );
    let (noftl2, mount) = NoFtl::mount(device2.clone(), noftl_config(cfg), cut_at)?;
    let (store2, open) = KvStore::open(Arc::new(noftl2), STORE, cfg.kv, mount.completed_at)?;

    // ---- Verification -------------------------------------------------
    let mut now = open.completed_at;
    let mut actual: BTreeMap<u64, Vec<u8>> = BTreeMap::new();
    for k in 0..cfg.keys {
        let (got, t) = store2.get(&key_bytes(k), now)?;
        now = t;
        if let Some(v) = got {
            actual.insert(k, v);
        }
    }
    let matches_committed = actual == run.committed;
    let matches_in_flight = run.in_flight.as_ref() == Some(&actual);
    if !matches_committed && !matches_in_flight {
        return Err(NoFtlError::Kv {
            message: format!(
                "recovered state matches neither the committed world ({} keys, {} flushes) \
                 nor the in-flight world ({:?} keys); actual has {} keys (cut at {} ns)",
                run.committed.len(),
                run.flushes_acknowledged,
                run.in_flight.as_ref().map(BTreeMap::len),
                actual.len(),
                cut_at.as_nanos()
            ),
        });
    }
    // A full scan must agree with the point-lookup view exactly.
    let (scanned, _) = store2.scan(None, None, now)?;
    let scan_view: BTreeMap<u64, Vec<u8>> = scanned
        .into_iter()
        .filter_map(|(k, v)| {
            String::from_utf8_lossy(&k)
                .strip_prefix("user")
                .and_then(|s| s.parse().ok())
                .map(|key: u64| (key, v))
        })
        .collect();
    if scan_view != actual {
        return Err(NoFtlError::Kv {
            message: format!(
                "scan sees {} keys but point lookups see {}",
                scan_view.len(),
                actual.len()
            ),
        });
    }

    Ok(KvCrashOutcome {
        cut_at,
        committed_keys: run.committed.len() as u64,
        flushes_acknowledged: run.flushes_acknowledged,
        cut_during_compaction: run.cut_during_compaction,
        in_flight_flush_survived: matches_in_flight && !matches_committed,
        verified_keys: actual.len() as u64,
        mount,
        open,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dry_run_produces_flushes_and_compactions() {
        let cfg = KvCrashConfig::default();
        let (stack, setup_end) = build_stack(&cfg).unwrap();
        let run = run_workload(&cfg, &stack, setup_end);
        assert!(run.in_flight.is_none(), "dry run must not crash");
        assert!(run.flushes_acknowledged >= 5, "got {}", run.flushes_acknowledged);
        assert!(!run.compaction_windows.is_empty(), "workload must compact");
        assert!(!run.committed.is_empty());
    }

    #[test]
    fn mid_workload_cut_recovers_committed_keys() {
        let outcome = run_kv_crash_cycle(&KvCrashConfig::default(), 0.5).unwrap();
        assert!(outcome.flushes_acknowledged > 0);
        assert!(outcome.mount.checkpoint_seq > 0);
        assert!(outcome.verified_keys <= KvCrashConfig::default().keys);
    }

    #[test]
    fn cut_inside_a_compaction_never_loses_sources() {
        let outcome = run_kv_crash_cycle_in_compaction(&KvCrashConfig::default(), 0.4)
            .unwrap()
            .expect("default workload compacts");
        assert!(outcome.cut_during_compaction, "the cut was aimed into a merge window but missed");
    }
}
