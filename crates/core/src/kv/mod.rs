//! # NoFTL-KV — a log-structured key-value layer on queued multi-die I/O.
//!
//! The paper's follow-up direction to configurable regions: instead of an
//! LSM engine fighting an opaque FTL (its flushes and compactions
//! colliding with the device's own garbage collection), the key-value
//! mechanics are expressed as *region-local* operations against the NoFTL
//! storage manager:
//!
//! * **Memtable** ([`memtable`]) — an in-memory sorted write buffer with a
//!   size threshold.  Puts and deletes (tombstones) land here first.
//! * **Sorted runs** ([`run`]) — a flushed memtable becomes one immutable
//!   sorted run: an ordinary NoFTL *object* whose data pages are written
//!   through [`NoFtl::write_batch`], so the whole flush fans out across
//!   the region's dies at one shared issue time via the command-queue
//!   submission API.  The last page of a run is a self-describing footer
//!   carrying a sparse per-page index.
//! * **Compaction as region-local GC** ([`store`]) — when a level
//!   accumulates enough runs they are merged (newest version wins,
//!   tombstones dropped at the bottom) and the merged run is written as
//!   one queued batch; the source runs are then retired through the
//!   existing object-drop path, whose invalidations feed the region's
//!   normal GC/erase machinery.
//! * **Crash safety rides the checkpoint/mount path** — the run directory
//!   and sequence numbers are exactly the storage manager's object
//!   directory, journalled by [`NoFtl::checkpoint`] chunk pages.  After a
//!   power cut, [`NoFtl::mount`] discards torn pages via the OOB payload
//!   checksum and [`KvStore::open`] then discards incomplete (torn tail)
//!   runs and runs superseded by a durable merge.  A flush is *committed*
//!   once `flush` returns: run pages durable and the directory
//!   checkpointed.
//!
//! [`harness`] drives a put/delete workload into a cut → reboot → mount →
//! open → verify cycle, the KV analogue of `dbms::crash_harness`.
//!
//! [`NoFtl`]: crate::NoFtl
//! [`NoFtl::write_batch`]: crate::NoFtl::write_batch
//! [`NoFtl::checkpoint`]: crate::NoFtl::checkpoint
//! [`NoFtl::mount`]: crate::NoFtl::mount
//! [`KvStore::open`]: store::KvStore::open

pub mod harness;
pub mod memtable;
pub mod run;
pub mod store;

pub use harness::{
    run_kv_crash_cycle, run_kv_crash_cycle_in_compaction, KvCrashConfig, KvCrashOutcome,
};
pub use run::RunMeta;
pub use store::{KvConfig, KvOpenReport, KvStats, KvStore};
