//! Wear leveling inside and across regions.
//!
//! Intra-region wear leveling mirrors what an FTL does (allocate least-worn
//! blocks, occasionally migrate cold data).  In addition the paper notes
//! that the *membership* of a region (which dies it owns) can change over
//! time for global wear-leveling purposes; [`region_wear_imbalance`]
//! quantifies the inter-region wear skew that drives such a rebalance.

use crate::config::WearLevelingPolicy;

/// A free block candidate for allocation inside a region die.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FreeBlockCandidate {
    /// Index in the caller's free-block list.
    pub slot: usize,
    /// Erase count of the block.
    pub erase_count: u64,
}

/// Pick the free block to allocate next under `policy`.
pub fn pick_free_block(
    policy: WearLevelingPolicy,
    candidates: &[FreeBlockCandidate],
) -> Option<usize> {
    if candidates.is_empty() {
        return None;
    }
    match policy {
        WearLevelingPolicy::None => candidates.first().map(|c| c.slot),
        WearLevelingPolicy::Dynamic | WearLevelingPolicy::Static { .. } => {
            candidates.iter().min_by_key(|c| (c.erase_count, c.slot)).map(|c| c.slot)
        }
    }
}

/// Whether the wear spread inside a region warrants a static-WL migration.
pub fn needs_static_wl(policy: WearLevelingPolicy, min_erase: u64, max_erase: u64) -> bool {
    match policy {
        WearLevelingPolicy::Static { threshold } => max_erase.saturating_sub(min_erase) > threshold,
        _ => false,
    }
}

/// Inter-region wear imbalance: ratio of the highest to the lowest mean
/// per-die erase count over a set of regions (1.0 = perfectly balanced).
/// Regions with no erases are treated as having a mean of zero; if every
/// region is at zero the imbalance is 1.0.
pub fn region_wear_imbalance(mean_erases_per_region: &[f64]) -> f64 {
    let max = mean_erases_per_region.iter().cloned().fold(0.0f64, f64::max);
    if max <= f64::EPSILON {
        return 1.0;
    }
    let min =
        mean_erases_per_region.iter().cloned().fold(f64::INFINITY, f64::min).max(f64::EPSILON);
    max / min
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pick_free_block_policies() {
        let cands = vec![
            FreeBlockCandidate { slot: 0, erase_count: 5 },
            FreeBlockCandidate { slot: 1, erase_count: 1 },
        ];
        assert_eq!(pick_free_block(WearLevelingPolicy::None, &cands), Some(0));
        assert_eq!(pick_free_block(WearLevelingPolicy::Dynamic, &cands), Some(1));
        assert_eq!(pick_free_block(WearLevelingPolicy::Dynamic, &[]), None);
    }

    #[test]
    fn static_wl_threshold() {
        let p = WearLevelingPolicy::Static { threshold: 3 };
        assert!(!needs_static_wl(p, 2, 5));
        assert!(needs_static_wl(p, 2, 6));
        assert!(!needs_static_wl(WearLevelingPolicy::Dynamic, 0, 100));
    }

    #[test]
    fn inter_region_imbalance() {
        assert_eq!(region_wear_imbalance(&[]), 1.0);
        assert_eq!(region_wear_imbalance(&[0.0, 0.0]), 1.0);
        assert!((region_wear_imbalance(&[10.0, 10.0]) - 1.0).abs() < 1e-9);
        assert!((region_wear_imbalance(&[20.0, 5.0]) - 4.0).abs() < 1e-9);
        // A zero-wear region makes the imbalance very large but finite.
        assert!(region_wear_imbalance(&[20.0, 0.0]).is_finite());
        assert!(region_wear_imbalance(&[20.0, 0.0]) > 1e6);
    }
}
