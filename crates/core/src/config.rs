//! NoFTL storage manager configuration.

use serde::{Deserialize, Serialize};

use flash_sim::ServiceClass;

use crate::placement::PlacementPolicyKind;

/// Garbage-collection victim selection policy (per region).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum GcPolicy {
    /// Pick the full block with the fewest valid pages.
    Greedy,
    /// Cost-benefit selection that also considers how long ago a block was
    /// last invalidated (favours cold blocks).
    CostBenefit,
}

/// Wear-leveling policy (per region).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WearLevelingPolicy {
    /// No wear awareness in block allocation.
    None,
    /// Allocate the least-worn free block.
    Dynamic,
    /// Dynamic allocation plus proactive migration when the wear spread
    /// inside a region exceeds `threshold` erase cycles.
    Static {
        /// Maximum tolerated wear spread.
        threshold: u64,
    },
}

/// Configuration of the NoFTL storage manager.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NoFtlConfig {
    /// GC is triggered on a die when its free-block count drops to this value.
    pub gc_low_watermark: u32,
    /// GC keeps reclaiming until the die has this many free blocks again.
    pub gc_high_watermark: u32,
    /// Victim selection policy.
    pub gc_policy: GcPolicy,
    /// Wear-leveling policy.
    pub wear_leveling: WearLevelingPolicy,
    /// Fraction of each region's raw capacity that must remain unexported
    /// as GC headroom (the NoFTL analogue of SSD over-provisioning).
    pub gc_headroom: f64,
    /// Die-level write placement inside regions.  The default
    /// [`PlacementPolicyKind::RoundRobin`] reproduces the seed allocator's
    /// striping byte-for-byte; [`PlacementPolicyKind::QueueAware`] steers
    /// writes toward idle dies using the device's load snapshots.
    /// Individual regions can override this via
    /// [`crate::RegionSpec::with_placement`].
    pub placement: PlacementPolicyKind,
    /// Default I/O service class for regions that do not set one via
    /// [`crate::RegionSpec::with_service_class`].  `Throughput` leaves
    /// the arbiter neutral; maintenance traffic (GC relocation, KV
    /// compaction, rebuild copies) is always tagged `Background`
    /// regardless of this default.
    pub service_class: ServiceClass,
}

impl NoFtlConfig {
    /// Defaults mirroring the paper's prototype: greedy GC, dynamic wear
    /// leveling, 10 % GC headroom per region.
    pub fn paper_defaults() -> Self {
        NoFtlConfig {
            gc_low_watermark: 2,
            gc_high_watermark: 4,
            gc_policy: GcPolicy::Greedy,
            wear_leveling: WearLevelingPolicy::Dynamic,
            gc_headroom: 0.10,
            placement: PlacementPolicyKind::RoundRobin,
            service_class: ServiceClass::Throughput,
        }
    }

    /// Validate the configuration.
    pub fn validate(&self) -> std::result::Result<(), String> {
        if self.gc_low_watermark == 0 {
            return Err("gc_low_watermark must be at least 1".into());
        }
        if self.gc_high_watermark < self.gc_low_watermark {
            return Err("gc_high_watermark must be >= gc_low_watermark".into());
        }
        if !(0.0..0.9).contains(&self.gc_headroom) {
            return Err(format!("gc_headroom must be in [0, 0.9), got {}", self.gc_headroom));
        }
        Ok(())
    }
}

impl Default for NoFtlConfig {
    fn default() -> Self {
        Self::paper_defaults()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_valid() {
        assert!(NoFtlConfig::default().validate().is_ok());
        assert!(NoFtlConfig::paper_defaults().validate().is_ok());
    }

    #[test]
    fn validation_rejects_bad_configs() {
        let c = NoFtlConfig { gc_low_watermark: 0, ..NoFtlConfig::default() };
        assert!(c.validate().is_err());
        let c = NoFtlConfig { gc_high_watermark: 1, gc_low_watermark: 2, ..NoFtlConfig::default() };
        assert!(c.validate().is_err());
        let c = NoFtlConfig { gc_headroom: 0.95, ..NoFtlConfig::default() };
        assert!(c.validate().is_err());
    }
}
