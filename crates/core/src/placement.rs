//! Placement advisor: derive multi-region configurations from object
//! statistics.
//!
//! The paper's Figure 2 shows a hand-tuned assignment of the TPC-C objects
//! to 6 regions and of the 64 flash dies to those regions "based on sizes
//! of objects and their I/O rate (required level of I/O parallelism)".
//! [`PlacementAdvisor::assign_dies`] automates exactly that computation:
//! given groups of objects and their measured profiles, it apportions the
//! available dies proportionally to a weighted combination of I/O rate and
//! size (largest-remainder method, at least one die per region).

use serde::{Deserialize, Serialize};

use crate::hotcold::ObjectProfile;

/// One region of a placement configuration: its name, the objects placed
/// in it, and the number of dies assigned to it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RegionAssignment {
    /// Region name.
    pub region_name: String,
    /// Names of the objects placed in this region.
    pub objects: Vec<String>,
    /// Number of dies assigned to the region.
    pub dies: u32,
}

/// A complete data-placement configuration (the shape of the paper's
/// Figure 2).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlacementConfig {
    /// The regions, in declaration order.
    pub regions: Vec<RegionAssignment>,
}

impl PlacementConfig {
    /// The "traditional data placement" baseline: a single region spanning
    /// all dies, holding every object.
    pub fn traditional(total_dies: u32, objects: impl IntoIterator<Item = String>) -> Self {
        PlacementConfig {
            regions: vec![RegionAssignment {
                region_name: "rgAll".to_string(),
                objects: objects.into_iter().collect(),
                dies: total_dies,
            }],
        }
    }

    /// Total number of dies used by the configuration.
    pub fn total_dies(&self) -> u32 {
        self.regions.iter().map(|r| r.dies).sum()
    }

    /// Number of regions.
    pub fn region_count(&self) -> usize {
        self.regions.len()
    }

    /// Find the region an object is assigned to.
    pub fn region_of(&self, object: &str) -> Option<&RegionAssignment> {
        self.regions.iter().find(|r| r.objects.iter().any(|o| o == object))
    }

    /// Render the configuration as an ASCII table (mirrors Figure 2).
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("{:<12} {:>9}   {}\n", "Region", "Dies", "DB-Objects"));
        for r in &self.regions {
            out.push_str(&format!(
                "{:<12} {:>9}   {}\n",
                r.region_name,
                r.dies,
                r.objects.join("; ")
            ));
        }
        out.push_str(&format!("{:<12} {:>9}\n", "TOTAL", self.total_dies()));
        out
    }
}

/// Computes die apportionments from object profiles.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlacementAdvisor {
    /// Relative weight of a group's I/O rate in the die share.
    pub io_weight: f64,
    /// Relative weight of a group's size (pages) in the die share.
    pub size_weight: f64,
    /// Minimum number of dies any region receives.
    pub min_dies_per_region: u32,
}

impl Default for PlacementAdvisor {
    fn default() -> Self {
        PlacementAdvisor { io_weight: 0.6, size_weight: 0.4, min_dies_per_region: 1 }
    }
}

impl PlacementAdvisor {
    /// Apportion `total_dies` dies over the given object groups.
    ///
    /// Each group becomes one region named after the group.  The die share
    /// of a group is proportional to
    /// `io_weight * (group I/O / total I/O) + size_weight * (group pages / total pages)`,
    /// subject to the minimum per region, rounded with the largest-remainder
    /// method so the shares always sum to `total_dies`.
    ///
    /// # Panics
    /// Panics if `total_dies` cannot satisfy the per-region minimum — that
    /// is a configuration error in the calling experiment.
    pub fn assign_dies(
        &self,
        groups: &[(String, Vec<ObjectProfile>)],
        total_dies: u32,
    ) -> PlacementConfig {
        assert!(!groups.is_empty(), "placement advisor needs at least one object group");
        let min_total = self.min_dies_per_region * groups.len() as u32;
        assert!(
            total_dies >= min_total,
            "cannot assign {total_dies} dies to {} regions with a minimum of {} each",
            groups.len(),
            self.min_dies_per_region
        );
        let total_io: u64 = groups.iter().flat_map(|(_, ps)| ps.iter()).map(|p| p.io_rate()).sum();
        let total_pages: u64 = groups.iter().flat_map(|(_, ps)| ps.iter()).map(|p| p.pages).sum();
        let weights: Vec<f64> = groups
            .iter()
            .map(|(_, ps)| {
                let io: u64 = ps.iter().map(|p| p.io_rate()).sum();
                let pages: u64 = ps.iter().map(|p| p.pages).sum();
                let io_share = if total_io == 0 { 0.0 } else { io as f64 / total_io as f64 };
                let size_share =
                    if total_pages == 0 { 0.0 } else { pages as f64 / total_pages as f64 };
                self.io_weight * io_share + self.size_weight * size_share
            })
            .collect();
        let weight_sum: f64 = weights.iter().sum();
        // Distribute the dies above the per-region minimum proportionally.
        let distributable = total_dies - min_total;
        let mut dies: Vec<u32> = vec![self.min_dies_per_region; groups.len()];
        if distributable > 0 {
            let shares: Vec<f64> = weights
                .iter()
                .map(|w| {
                    if weight_sum <= f64::EPSILON {
                        distributable as f64 / groups.len() as f64
                    } else {
                        w / weight_sum * distributable as f64
                    }
                })
                .collect();
            let floors: Vec<u32> = shares.iter().map(|s| s.floor() as u32).collect();
            let mut assigned: u32 = floors.iter().sum();
            for (d, f) in dies.iter_mut().zip(floors.iter()) {
                *d += *f;
            }
            // Largest remainder: hand out the leftover dies to the groups
            // with the largest fractional parts.
            let mut remainders: Vec<(usize, f64)> =
                shares.iter().enumerate().map(|(i, s)| (i, s - s.floor())).collect();
            remainders.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
            let mut i = 0;
            while assigned < distributable {
                dies[remainders[i % remainders.len()].0] += 1;
                assigned += 1;
                i += 1;
            }
        }
        PlacementConfig {
            regions: groups
                .iter()
                .zip(dies)
                .map(|((name, ps), d)| RegionAssignment {
                    region_name: name.clone(),
                    objects: ps.iter().map(|p| p.name.clone()).collect(),
                    dies: d,
                })
                .collect(),
        }
    }

    /// Group objects automatically into `num_groups` buckets of similar
    /// update intensity (hottest group first).  This is the fully automatic
    /// variant of the manual grouping in the paper's Figure 2.
    pub fn auto_group(
        &self,
        profiles: &[ObjectProfile],
        num_groups: usize,
    ) -> Vec<(String, Vec<ObjectProfile>)> {
        if profiles.is_empty() || num_groups == 0 {
            return Vec::new();
        }
        let mut sorted: Vec<ObjectProfile> = profiles.to_vec();
        sorted.sort_by(|a, b| {
            b.update_intensity()
                .partial_cmp(&a.update_intensity())
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.name.cmp(&b.name))
        });
        let num_groups = num_groups.min(sorted.len());
        let per_group = sorted.len().div_ceil(num_groups);
        sorted
            .chunks(per_group)
            .enumerate()
            .map(|(i, chunk)| (format!("rgAuto{i}"), chunk.to_vec()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn profile(name: &str, pages: u64, reads: u64, writes: u64) -> ObjectProfile {
        ObjectProfile { name: name.into(), pages, reads, writes }
    }

    fn groups() -> Vec<(String, Vec<ObjectProfile>)> {
        vec![
            (
                "rgMeta".into(),
                vec![profile("metadata", 10, 100, 10), profile("history", 200, 0, 300)],
            ),
            ("rgOrderline".into(), vec![profile("orderline", 3_000, 4_000, 9_000)]),
            ("rgCustomer".into(), vec![profile("customer", 2_500, 6_000, 3_000)]),
            (
                "rgStock".into(),
                vec![
                    profile("stock", 8_000, 12_000, 10_000),
                    profile("ol_idx", 1_500, 3_000, 2_000),
                ],
            ),
            (
                "rgSmallHot".into(),
                vec![profile("warehouse", 5, 2_000, 1_500), profile("district", 10, 2_500, 2_000)],
            ),
            (
                "rgOrderIdx".into(),
                vec![profile("no_idx", 300, 1_000, 1_200), profile("o_idx", 400, 900, 800)],
            ),
        ]
    }

    #[test]
    fn traditional_config_uses_one_region() {
        let cfg = PlacementConfig::traditional(64, ["a".to_string(), "b".to_string()]);
        assert_eq!(cfg.region_count(), 1);
        assert_eq!(cfg.total_dies(), 64);
        assert_eq!(cfg.region_of("a").unwrap().region_name, "rgAll");
        assert!(cfg.region_of("zzz").is_none());
    }

    #[test]
    fn die_shares_sum_to_total_and_respect_minimum() {
        let advisor = PlacementAdvisor::default();
        let cfg = advisor.assign_dies(&groups(), 64);
        assert_eq!(cfg.total_dies(), 64);
        assert_eq!(cfg.region_count(), 6);
        assert!(cfg.regions.iter().all(|r| r.dies >= 1));
        // The biggest, most I/O-intensive group (stock) gets the most dies.
        let stock = cfg.regions.iter().find(|r| r.region_name == "rgStock").unwrap();
        assert!(cfg.regions.iter().all(|r| r.dies <= stock.dies));
        // The metadata group gets the fewest.
        let meta = cfg.regions.iter().find(|r| r.region_name == "rgMeta").unwrap();
        assert!(cfg.regions.iter().all(|r| r.dies >= meta.dies));
    }

    #[test]
    fn table_rendering_contains_all_regions() {
        let advisor = PlacementAdvisor::default();
        let cfg = advisor.assign_dies(&groups(), 64);
        let table = cfg.to_table();
        for r in &cfg.regions {
            assert!(table.contains(&r.region_name));
        }
        assert!(table.contains("TOTAL"));
        assert!(table.contains("64"));
    }

    #[test]
    #[should_panic(expected = "cannot assign")]
    fn too_few_dies_panics() {
        PlacementAdvisor::default().assign_dies(&groups(), 3);
    }

    #[test]
    fn zero_io_groups_still_get_their_minimum() {
        let advisor = PlacementAdvisor::default();
        let gs = vec![
            ("rgA".into(), vec![profile("a", 0, 0, 0)]),
            ("rgB".into(), vec![profile("b", 0, 0, 0)]),
        ];
        let cfg = advisor.assign_dies(&gs, 8);
        assert_eq!(cfg.total_dies(), 8);
        assert!(cfg.regions.iter().all(|r| r.dies >= 1));
    }

    #[test]
    fn auto_group_orders_hot_first() {
        let advisor = PlacementAdvisor::default();
        let profiles = vec![
            profile("cold", 1000, 100, 0),
            profile("hot", 100, 100, 10_000),
            profile("warm", 500, 100, 500),
        ];
        let gs = advisor.auto_group(&profiles, 3);
        assert_eq!(gs.len(), 3);
        assert_eq!(gs[0].1[0].name, "hot");
        assert_eq!(gs[2].1[0].name, "cold");
        assert!(advisor.auto_group(&[], 3).is_empty());
        assert!(advisor.auto_group(&profiles, 0).is_empty());
        // More groups than objects collapses to one object per group.
        assert_eq!(advisor.auto_group(&profiles, 10).len(), 3);
    }

    proptest! {
        #[test]
        fn apportionment_always_sums_to_total(
            dies in 6u32..128,
            weights in prop::collection::vec((1u64..10_000, 1u64..10_000, 1u64..10_000), 2..6),
        ) {
            let gs: Vec<(String, Vec<ObjectProfile>)> = weights
                .iter()
                .enumerate()
                .map(|(i, (pages, reads, writes))| {
                    (format!("g{i}"), vec![profile(&format!("o{i}"), *pages, *reads, *writes)])
                })
                .collect();
            let cfg = PlacementAdvisor::default().assign_dies(&gs, dies);
            prop_assert_eq!(cfg.total_dies(), dies);
            prop_assert!(cfg.regions.iter().all(|r| r.dies >= 1));
        }
    }
}
