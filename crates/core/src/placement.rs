//! Placement: which region an object lives in, and which die inside the
//! region takes the next write.
//!
//! Two layers of policy live here:
//!
//! * **Region-level** — the paper's Figure 2 shows a hand-tuned assignment
//!   of the TPC-C objects to 6 regions and of the 64 flash dies to those
//!   regions "based on sizes of objects and their I/O rate (required level
//!   of I/O parallelism)".  [`PlacementAdvisor::assign_dies`] automates
//!   exactly that computation: given groups of objects and their measured
//!   profiles, it apportions the available dies proportionally to a
//!   weighted combination of I/O rate and size (largest-remainder method,
//!   at least one die per region).
//! * **Die-level** — inside a region every host write must pick a die.
//!   [`PlacementPolicy`] abstracts that choice: [`RoundRobin`] reproduces
//!   the seed allocator's striping byte-for-byte (proven by the
//!   `placement_equivalence` golden harness), while [`QueueAware`] reads
//!   the device's per-die load snapshots ([`flash_sim::DieLoad`]) and
//!   steers single-page writes and `write_batch` fan-out toward idle dies,
//!   so skewed background load (GC storms, a busy co-resident object) no
//!   longer gates the whole batch.  Policies are selected per region via
//!   [`crate::NoFtlConfig::placement`] and the per-region override
//!   [`crate::RegionSpec::with_placement`], and tie into the [`hotcold`]
//!   classifier through [`PlacementPolicyKind::for_temperature`].
//!
//! [`hotcold`]: crate::hotcold

use serde::{Deserialize, Serialize};

use flash_sim::{DieLoad, ServiceClass, SimTime};

use crate::error::NoFtlError;
use crate::hotcold::{classify, ObjectProfile, Temperature};

/// Environment variable overriding the default die-level placement policy
/// (`round_robin` or `queue_aware`).  Read by
/// [`PlacementPolicyKind::from_env`]; the crash harnesses use it so the
/// tier-1 crash sweeps can be pointed at either policy without a rebuild.
pub const PLACEMENT_ENV: &str = "NOFTL_PLACEMENT";

/// How a region picks the die of the next host-write allocation.
///
/// The storage manager asks the policy for a *probe order* over the
/// region's dies; it then walks that order, running GC on a die whose
/// free-block pool is low and taking the first die that yields a page.
/// The policy therefore only expresses *preference* — a full or failing
/// die never blocks allocation as long as any die in the region has
/// space, under every policy.
pub trait PlacementPolicy: Send + Sync + std::fmt::Debug {
    /// Stable display name (bench labels, reports).
    fn name(&self) -> &'static str;

    /// Whether [`PlacementPolicy::probe_order`] wants per-die load
    /// snapshots.  Policies that return `false` (the default) skip the
    /// per-die lock acquisitions entirely, keeping the hot allocation
    /// path as cheap as the seed allocator.
    fn needs_loads(&self) -> bool {
        false
    }

    /// Fill `order` with the sequence in which the region's dies are
    /// probed for the next allocation (cleared first; afterwards a
    /// permutation of `0..die_count`).  `cursor` is the region's
    /// round-robin pointer (the die after the previous allocation's),
    /// `at` is the issue time of the write, and `loads[i]` is the load
    /// snapshot of the region's `i`-th die — empty unless
    /// [`PlacementPolicy::needs_loads`] returns true.
    ///
    /// The buffer-filling shape lets the storage manager reuse one
    /// scratch vector per region, so the per-write allocation path stays
    /// heap-allocation-free like the seed allocator's modular loop.
    fn probe_order_into(
        &self,
        die_count: usize,
        cursor: usize,
        at: SimTime,
        loads: &[DieLoad],
        order: &mut Vec<usize>,
    );

    /// Convenience wrapper over [`PlacementPolicy::probe_order_into`]
    /// returning a fresh vector.
    fn probe_order(
        &self,
        die_count: usize,
        cursor: usize,
        at: SimTime,
        loads: &[DieLoad],
    ) -> Vec<usize> {
        let mut order = Vec::with_capacity(die_count);
        self.probe_order_into(die_count, cursor, at, loads, &mut order);
        order
    }
}

/// The seed allocator: stripe writes round-robin over the region's dies.
/// Byte-identical to the pre-policy write path (golden-tested), and the
/// default.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RoundRobin;

impl PlacementPolicy for RoundRobin {
    fn name(&self) -> &'static str {
        "round_robin"
    }

    fn probe_order_into(
        &self,
        die_count: usize,
        cursor: usize,
        _at: SimTime,
        _loads: &[DieLoad],
        order: &mut Vec<usize>,
    ) {
        order.clear();
        order.extend((0..die_count).map(|attempt| (cursor + attempt) % die_count));
    }
}

/// Queue-aware placement: prefer the die that could start the program
/// soonest ([`DieLoad::earliest_start`]), breaking ties by in-flight
/// queue depth and then by round-robin distance from the cursor.
///
/// On an idle region every die ties and the round-robin distance decides,
/// so `QueueAware` degrades to exactly [`RoundRobin`]'s striping; under
/// skew (a die busy with GC erases, a deep queue from an earlier batch)
/// writes flow to the idle dies until the load evens out.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueueAware;

impl PlacementPolicy for QueueAware {
    fn name(&self) -> &'static str {
        "queue_aware"
    }

    fn needs_loads(&self) -> bool {
        true
    }

    fn probe_order_into(
        &self,
        die_count: usize,
        cursor: usize,
        at: SimTime,
        loads: &[DieLoad],
        order: &mut Vec<usize>,
    ) {
        order.clear();
        order.extend(0..die_count);
        order.sort_by_key(|&i| {
            let load = loads.get(i).copied().unwrap_or_default();
            let rr_distance = (i + die_count - cursor % die_count) % die_count;
            (load.earliest_start(at), load.queue_depth, rr_distance)
        });
    }
}

/// Serialisable selector for a [`PlacementPolicy`] implementation — the
/// form policies take in [`crate::NoFtlConfig`] and
/// [`crate::RegionSpec`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum PlacementPolicyKind {
    /// [`RoundRobin`] striping (the default; seed-equivalent).
    #[default]
    RoundRobin,
    /// [`QueueAware`] steering toward idle dies.
    QueueAware,
}

impl PlacementPolicyKind {
    /// The policy implementation this kind selects.
    pub fn policy(self) -> &'static dyn PlacementPolicy {
        match self {
            PlacementPolicyKind::RoundRobin => &RoundRobin,
            PlacementPolicyKind::QueueAware => &QueueAware,
        }
    }

    /// Stable display name.
    pub fn name(self) -> &'static str {
        self.policy().name()
    }

    /// Parse a policy name (`round_robin`/`rr`, `queue_aware`/`qa`;
    /// dashes and case are ignored).
    pub fn parse(s: &str) -> Option<Self> {
        match s.trim().to_ascii_lowercase().replace('-', "_").as_str() {
            "round_robin" | "roundrobin" | "rr" => Some(PlacementPolicyKind::RoundRobin),
            "queue_aware" | "queueaware" | "qa" => Some(PlacementPolicyKind::QueueAware),
            _ => None,
        }
    }

    /// Resolve an optional [`PLACEMENT_ENV`] value: an unset variable
    /// selects `default`; a set value must name a policy or the malformed
    /// input is surfaced as a [`NoFtlError::Config`].  Pure so it can be
    /// unit-tested without mutating the process environment.
    pub fn parse_env_value(value: Option<&str>, default: Self) -> crate::Result<Self> {
        match value {
            None => Ok(default),
            Some(v) => Self::parse(v).ok_or_else(|| NoFtlError::Config {
                message: format!(
                    "malformed {PLACEMENT_ENV} value '{v}': \
                     expected round_robin/rr or queue_aware/qa"
                ),
            }),
        }
    }

    /// The kind selected by the [`PLACEMENT_ENV`] environment variable:
    /// `default` when unset, an error when set to an unparseable value.
    /// Config-load paths that can return an error (the crash harnesses)
    /// call this instead of [`PlacementPolicyKind::from_env`].
    pub fn try_from_env(default: Self) -> crate::Result<Self> {
        let value = std::env::var(PLACEMENT_ENV).ok();
        Self::parse_env_value(value.as_deref(), default)
    }

    /// The kind selected by the [`PLACEMENT_ENV`] environment variable,
    /// or `default` when the variable is unset.  A malformed value is
    /// *logged* and falls back to `default` — infallible contexts
    /// (`Default` impls) cannot return the parse error, but they no
    /// longer swallow it silently.
    pub fn from_env(default: Self) -> Self {
        Self::try_from_env(default).unwrap_or_else(|e| {
            eprintln!("noftl: {e}; falling back to {}", default.name());
            default
        })
    }

    /// The policy suggested for an object temperature: hot objects write
    /// (and therefore GC) constantly, so their regions benefit from
    /// queue-aware steering; warm and cold regions keep the predictable
    /// round-robin stripe.
    pub fn for_temperature(temperature: Temperature) -> Self {
        match temperature {
            Temperature::Hot => PlacementPolicyKind::QueueAware,
            Temperature::Warm | Temperature::Cold => PlacementPolicyKind::RoundRobin,
        }
    }
}

/// Suggest a die-level policy per object from measured profiles: the
/// [`classify`] verdict mapped through
/// [`PlacementPolicyKind::for_temperature`].  Callers building a
/// [`PlacementConfig`] apply the hottest member's suggestion to each
/// region's [`crate::RegionSpec`].
pub fn suggest_policies(
    profiles: &[ObjectProfile],
    hot_fraction: f64,
) -> Vec<(String, PlacementPolicyKind)> {
    classify(profiles, hot_fraction)
        .into_iter()
        .map(|(name, temp)| (name, PlacementPolicyKind::for_temperature(temp)))
        .collect()
}

/// One region of a placement configuration: its name, the objects placed
/// in it, and the number of dies assigned to it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RegionAssignment {
    /// Region name.
    pub region_name: String,
    /// Names of the objects placed in this region.
    pub objects: Vec<String>,
    /// Number of dies assigned to the region.
    pub dies: u32,
    /// I/O service class for the region (`None` = manager default).
    /// Becomes [`crate::RegionSpec::with_service_class`] when the DBMS
    /// backend creates the region.
    pub service_class: Option<ServiceClass>,
}

impl RegionAssignment {
    /// Set the region's I/O service class.
    pub fn with_service_class(mut self, class: ServiceClass) -> Self {
        self.service_class = Some(class);
        self
    }
}

/// A complete data-placement configuration (the shape of the paper's
/// Figure 2).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlacementConfig {
    /// The regions, in declaration order.
    pub regions: Vec<RegionAssignment>,
}

impl PlacementConfig {
    /// The "traditional data placement" baseline: a single region spanning
    /// all dies, holding every object.
    pub fn traditional(total_dies: u32, objects: impl IntoIterator<Item = String>) -> Self {
        PlacementConfig {
            regions: vec![RegionAssignment {
                region_name: "rgAll".to_string(),
                objects: objects.into_iter().collect(),
                dies: total_dies,
                service_class: None,
            }],
        }
    }

    /// Total number of dies used by the configuration.
    pub fn total_dies(&self) -> u32 {
        self.regions.iter().map(|r| r.dies).sum()
    }

    /// Number of regions.
    pub fn region_count(&self) -> usize {
        self.regions.len()
    }

    /// Find the region an object is assigned to.
    pub fn region_of(&self, object: &str) -> Option<&RegionAssignment> {
        self.regions.iter().find(|r| r.objects.iter().any(|o| o == object))
    }

    /// Render the configuration as an ASCII table (mirrors Figure 2).
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("{:<12} {:>9}   {}\n", "Region", "Dies", "DB-Objects"));
        for r in &self.regions {
            out.push_str(&format!(
                "{:<12} {:>9}   {}\n",
                r.region_name,
                r.dies,
                r.objects.join("; ")
            ));
        }
        out.push_str(&format!("{:<12} {:>9}\n", "TOTAL", self.total_dies()));
        out
    }
}

/// Computes die apportionments from object profiles.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlacementAdvisor {
    /// Relative weight of a group's I/O rate in the die share.
    pub io_weight: f64,
    /// Relative weight of a group's size (pages) in the die share.
    pub size_weight: f64,
    /// Minimum number of dies any region receives.
    pub min_dies_per_region: u32,
}

impl Default for PlacementAdvisor {
    fn default() -> Self {
        PlacementAdvisor { io_weight: 0.6, size_weight: 0.4, min_dies_per_region: 1 }
    }
}

impl PlacementAdvisor {
    /// Apportion `total_dies` dies over the given object groups.
    ///
    /// Each group becomes one region named after the group.  The die share
    /// of a group is proportional to
    /// `io_weight * (group I/O / total I/O) + size_weight * (group pages / total pages)`,
    /// subject to the minimum per region, rounded with the largest-remainder
    /// method so the shares always sum to `total_dies`.
    ///
    /// # Panics
    /// Panics if `total_dies` cannot satisfy the per-region minimum — that
    /// is a configuration error in the calling experiment.
    pub fn assign_dies(
        &self,
        groups: &[(String, Vec<ObjectProfile>)],
        total_dies: u32,
    ) -> PlacementConfig {
        assert!(!groups.is_empty(), "placement advisor needs at least one object group");
        let min_total = self.min_dies_per_region * groups.len() as u32;
        assert!(
            total_dies >= min_total,
            "cannot assign {total_dies} dies to {} regions with a minimum of {} each",
            groups.len(),
            self.min_dies_per_region
        );
        let total_io: u64 = groups.iter().flat_map(|(_, ps)| ps.iter()).map(|p| p.io_rate()).sum();
        let total_pages: u64 = groups.iter().flat_map(|(_, ps)| ps.iter()).map(|p| p.pages).sum();
        let weights: Vec<f64> = groups
            .iter()
            .map(|(_, ps)| {
                let io: u64 = ps.iter().map(|p| p.io_rate()).sum();
                let pages: u64 = ps.iter().map(|p| p.pages).sum();
                let io_share = if total_io == 0 { 0.0 } else { io as f64 / total_io as f64 };
                let size_share =
                    if total_pages == 0 { 0.0 } else { pages as f64 / total_pages as f64 };
                self.io_weight * io_share + self.size_weight * size_share
            })
            .collect();
        let weight_sum: f64 = weights.iter().sum();
        // Distribute the dies above the per-region minimum proportionally.
        let distributable = total_dies - min_total;
        let mut dies: Vec<u32> = vec![self.min_dies_per_region; groups.len()];
        if distributable > 0 {
            let shares: Vec<f64> = weights
                .iter()
                .map(|w| {
                    if weight_sum <= f64::EPSILON {
                        distributable as f64 / groups.len() as f64
                    } else {
                        w / weight_sum * distributable as f64
                    }
                })
                .collect();
            let floors: Vec<u32> = shares.iter().map(|s| s.floor() as u32).collect();
            let mut assigned: u32 = floors.iter().sum();
            for (d, f) in dies.iter_mut().zip(floors.iter()) {
                *d += *f;
            }
            // Largest remainder: hand out the leftover dies to the groups
            // with the largest fractional parts.
            let mut remainders: Vec<(usize, f64)> =
                shares.iter().enumerate().map(|(i, s)| (i, s - s.floor())).collect();
            remainders.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
            let mut i = 0;
            while assigned < distributable {
                dies[remainders[i % remainders.len()].0] += 1;
                assigned += 1;
                i += 1;
            }
        }
        PlacementConfig {
            regions: groups
                .iter()
                .zip(dies)
                .map(|((name, ps), d)| RegionAssignment {
                    region_name: name.clone(),
                    objects: ps.iter().map(|p| p.name.clone()).collect(),
                    dies: d,
                    service_class: None,
                })
                .collect(),
        }
    }

    /// Group objects automatically into `num_groups` buckets of similar
    /// update intensity (hottest group first).  This is the fully automatic
    /// variant of the manual grouping in the paper's Figure 2.
    pub fn auto_group(
        &self,
        profiles: &[ObjectProfile],
        num_groups: usize,
    ) -> Vec<(String, Vec<ObjectProfile>)> {
        if profiles.is_empty() || num_groups == 0 {
            return Vec::new();
        }
        let mut sorted: Vec<ObjectProfile> = profiles.to_vec();
        sorted.sort_by(|a, b| {
            b.update_intensity()
                .partial_cmp(&a.update_intensity())
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.name.cmp(&b.name))
        });
        let num_groups = num_groups.min(sorted.len());
        let per_group = sorted.len().div_ceil(num_groups);
        sorted
            .chunks(per_group)
            .enumerate()
            .map(|(i, chunk)| (format!("rgAuto{i}"), chunk.to_vec()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn profile(name: &str, pages: u64, reads: u64, writes: u64) -> ObjectProfile {
        ObjectProfile { name: name.into(), pages, reads, writes }
    }

    fn groups() -> Vec<(String, Vec<ObjectProfile>)> {
        vec![
            (
                "rgMeta".into(),
                vec![profile("metadata", 10, 100, 10), profile("history", 200, 0, 300)],
            ),
            ("rgOrderline".into(), vec![profile("orderline", 3_000, 4_000, 9_000)]),
            ("rgCustomer".into(), vec![profile("customer", 2_500, 6_000, 3_000)]),
            (
                "rgStock".into(),
                vec![
                    profile("stock", 8_000, 12_000, 10_000),
                    profile("ol_idx", 1_500, 3_000, 2_000),
                ],
            ),
            (
                "rgSmallHot".into(),
                vec![profile("warehouse", 5, 2_000, 1_500), profile("district", 10, 2_500, 2_000)],
            ),
            (
                "rgOrderIdx".into(),
                vec![profile("no_idx", 300, 1_000, 1_200), profile("o_idx", 400, 900, 800)],
            ),
        ]
    }

    #[test]
    fn parse_env_value_accepts_all_spellings() {
        for (input, want) in [
            ("round_robin", PlacementPolicyKind::RoundRobin),
            ("rr", PlacementPolicyKind::RoundRobin),
            ("Round-Robin", PlacementPolicyKind::RoundRobin),
            ("queue_aware", PlacementPolicyKind::QueueAware),
            ("QA", PlacementPolicyKind::QueueAware),
            (" queueaware ", PlacementPolicyKind::QueueAware),
        ] {
            let got =
                PlacementPolicyKind::parse_env_value(Some(input), PlacementPolicyKind::RoundRobin)
                    .unwrap();
            assert_eq!(got, want, "input {input:?}");
        }
    }

    #[test]
    fn parse_env_value_unset_selects_the_default() {
        for default in [PlacementPolicyKind::RoundRobin, PlacementPolicyKind::QueueAware] {
            assert_eq!(PlacementPolicyKind::parse_env_value(None, default).unwrap(), default);
        }
    }

    #[test]
    fn parse_env_value_rejects_malformed_input_instead_of_falling_back() {
        let err = PlacementPolicyKind::parse_env_value(
            Some("queue_awrae"),
            PlacementPolicyKind::RoundRobin,
        )
        .unwrap_err();
        match err {
            NoFtlError::Config { message } => {
                assert!(message.contains("queue_awrae"), "names the bad input: {message}");
                assert!(message.contains(PLACEMENT_ENV), "names the variable: {message}");
            }
            other => panic!("expected Config error, got {other:?}"),
        }
    }

    #[test]
    fn traditional_config_uses_one_region() {
        let cfg = PlacementConfig::traditional(64, ["a".to_string(), "b".to_string()]);
        assert_eq!(cfg.region_count(), 1);
        assert_eq!(cfg.total_dies(), 64);
        assert_eq!(cfg.region_of("a").unwrap().region_name, "rgAll");
        assert!(cfg.region_of("zzz").is_none());
    }

    #[test]
    fn die_shares_sum_to_total_and_respect_minimum() {
        let advisor = PlacementAdvisor::default();
        let cfg = advisor.assign_dies(&groups(), 64);
        assert_eq!(cfg.total_dies(), 64);
        assert_eq!(cfg.region_count(), 6);
        assert!(cfg.regions.iter().all(|r| r.dies >= 1));
        // The biggest, most I/O-intensive group (stock) gets the most dies.
        let stock = cfg.regions.iter().find(|r| r.region_name == "rgStock").unwrap();
        assert!(cfg.regions.iter().all(|r| r.dies <= stock.dies));
        // The metadata group gets the fewest.
        let meta = cfg.regions.iter().find(|r| r.region_name == "rgMeta").unwrap();
        assert!(cfg.regions.iter().all(|r| r.dies >= meta.dies));
    }

    #[test]
    fn table_rendering_contains_all_regions() {
        let advisor = PlacementAdvisor::default();
        let cfg = advisor.assign_dies(&groups(), 64);
        let table = cfg.to_table();
        for r in &cfg.regions {
            assert!(table.contains(&r.region_name));
        }
        assert!(table.contains("TOTAL"));
        assert!(table.contains("64"));
    }

    #[test]
    #[should_panic(expected = "cannot assign")]
    fn too_few_dies_panics() {
        PlacementAdvisor::default().assign_dies(&groups(), 3);
    }

    #[test]
    fn zero_io_groups_still_get_their_minimum() {
        let advisor = PlacementAdvisor::default();
        let gs = vec![
            ("rgA".into(), vec![profile("a", 0, 0, 0)]),
            ("rgB".into(), vec![profile("b", 0, 0, 0)]),
        ];
        let cfg = advisor.assign_dies(&gs, 8);
        assert_eq!(cfg.total_dies(), 8);
        assert!(cfg.regions.iter().all(|r| r.dies >= 1));
    }

    #[test]
    fn auto_group_orders_hot_first() {
        let advisor = PlacementAdvisor::default();
        let profiles = vec![
            profile("cold", 1000, 100, 0),
            profile("hot", 100, 100, 10_000),
            profile("warm", 500, 100, 500),
        ];
        let gs = advisor.auto_group(&profiles, 3);
        assert_eq!(gs.len(), 3);
        assert_eq!(gs[0].1[0].name, "hot");
        assert_eq!(gs[2].1[0].name, "cold");
        assert!(advisor.auto_group(&[], 3).is_empty());
        assert!(advisor.auto_group(&profiles, 0).is_empty());
        // More groups than objects collapses to one object per group.
        assert_eq!(advisor.auto_group(&profiles, 10).len(), 3);
    }

    fn load(busy_us: u64, depth: u32) -> DieLoad {
        DieLoad { busy_until: SimTime::from_us(busy_us), queue_depth: depth }
    }

    #[test]
    fn round_robin_probe_order_starts_at_cursor() {
        assert_eq!(RoundRobin.probe_order(4, 2, SimTime::ZERO, &[]), vec![2, 3, 0, 1]);
        assert_eq!(RoundRobin.probe_order(1, 0, SimTime::ZERO, &[]), vec![0]);
        assert!(!RoundRobin.needs_loads());
    }

    #[test]
    fn queue_aware_prefers_the_earliest_start() {
        // Die 1 drains first, then die 2; die 0 is busiest.
        let loads = [load(300, 3), load(10, 1), load(20, 1)];
        assert_eq!(QueueAware.probe_order(3, 0, SimTime::ZERO, &loads), vec![1, 2, 0]);
        assert!(QueueAware.needs_loads());
    }

    #[test]
    fn queue_aware_breaks_start_ties_by_depth_then_cursor_distance() {
        // All three dies already idle at the issue time: earliest start
        // ties at `at`, depth ties at 0 → round-robin distance decides,
        // so an idle region stripes exactly like RoundRobin.
        let idle = [load(0, 0), load(0, 0), load(0, 0)];
        let at = SimTime::from_us(500);
        assert_eq!(QueueAware.probe_order(3, 2, at, &idle), vec![2, 0, 1]);
        // Equal drain instants, different in-flight depth: shallower wins.
        let loads = [load(700, 2), load(700, 1), load(700, 3)];
        assert_eq!(QueueAware.probe_order(3, 0, SimTime::ZERO, &loads), vec![1, 0, 2]);
    }

    #[test]
    fn policy_kind_parse_env_and_names() {
        assert_eq!(
            PlacementPolicyKind::parse("queue-aware"),
            Some(PlacementPolicyKind::QueueAware)
        );
        assert_eq!(PlacementPolicyKind::parse("QA"), Some(PlacementPolicyKind::QueueAware));
        assert_eq!(PlacementPolicyKind::parse("rr"), Some(PlacementPolicyKind::RoundRobin));
        assert_eq!(
            PlacementPolicyKind::parse("Round_Robin"),
            Some(PlacementPolicyKind::RoundRobin)
        );
        assert_eq!(PlacementPolicyKind::parse("nonsense"), None);
        assert_eq!(PlacementPolicyKind::default(), PlacementPolicyKind::RoundRobin);
        assert_eq!(PlacementPolicyKind::QueueAware.name(), "queue_aware");
        assert_eq!(PlacementPolicyKind::RoundRobin.name(), "round_robin");
    }

    #[test]
    fn hot_objects_are_suggested_queue_aware() {
        let profiles = vec![
            profile("stock", 100, 100, 10_000),
            profile("item", 200, 5_000, 0), // read-only → cold
        ];
        let suggestions = suggest_policies(&profiles, 0.8);
        let get = |n: &str| suggestions.iter().find(|(name, _)| name == n).unwrap().1;
        assert_eq!(get("stock"), PlacementPolicyKind::QueueAware);
        assert_eq!(get("item"), PlacementPolicyKind::RoundRobin);
        assert_eq!(
            PlacementPolicyKind::for_temperature(Temperature::Warm),
            PlacementPolicyKind::RoundRobin
        );
    }

    proptest! {
        #[test]
        fn queue_aware_probe_order_is_a_permutation(
            cursor in 0usize..8,
            loads in prop::collection::vec((0u64..1_000, 0u32..4), 1..8),
        ) {
            let die_loads: Vec<DieLoad> =
                loads.iter().map(|(busy, depth)| load(*busy, *depth)).collect();
            let n = die_loads.len();
            let order = QueueAware.probe_order(n, cursor, SimTime::from_us(50), &die_loads);
            let mut sorted = order.clone();
            sorted.sort_unstable();
            prop_assert_eq!(sorted, (0..n).collect::<Vec<_>>());
            // The head of the order is a die with the minimal start time.
            let min_start = die_loads
                .iter()
                .map(|l| l.earliest_start(SimTime::from_us(50)))
                .min()
                .unwrap();
            prop_assert_eq!(die_loads[order[0]].earliest_start(SimTime::from_us(50)), min_start);
        }
    }

    proptest! {
        #[test]
        fn apportionment_always_sums_to_total(
            dies in 6u32..128,
            weights in prop::collection::vec((1u64..10_000, 1u64..10_000, 1u64..10_000), 2..6),
        ) {
            let gs: Vec<(String, Vec<ObjectProfile>)> = weights
                .iter()
                .enumerate()
                .map(|(i, (pages, reads, writes))| {
                    (format!("g{i}"), vec![profile(&format!("o{i}"), *pages, *reads, *writes)])
                })
                .collect();
            let cfg = PlacementAdvisor::default().assign_dies(&gs, dies);
            prop_assert_eq!(cfg.total_dies(), dies);
            prop_assert!(cfg.regions.iter().all(|r| r.dies >= 1));
        }
    }
}
