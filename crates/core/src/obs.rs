//! Registry handles pre-bound by the storage manager, flusher and KV
//! store.
//!
//! All handles are registered once at construction (the cold path) so
//! per-operation recording is pure relaxed atomics; a disabled registry
//! reduces every call below to one relaxed load.  `noftl-obs` never
//! touches the tracked lock order, so every recording site here is safe
//! under any combination of manager/die/shared locks.
//!
//! Metric names (see the README's Observability section):
//!
//! * `core.placement.decisions.{round_robin,queue_aware}` — allocations
//!   resolved by each policy;
//! * `core.placement.probes_total` — dies probed before one yielded a
//!   page (1 per allocation when the first choice works);
//! * `core.placement.steered` / `core.placement.steer_delta_total` —
//!   allocations that landed off the round-robin stripe position, and
//!   the summed ring distance of those deflections;
//! * `core.flush.window_occupancy` — in-flight depth of the windowed
//!   write pipeline, sampled at every submission;
//! * `core.flush.window_ns` — issue→drain latency of whole windows;
//! * `core.read.window_occupancy` / `core.read.window_ns` — the same two
//!   views of the windowed *read* pipeline (scans, compaction merges);
//! * `core.gc.{runs,pages_moved,blocks_erased}` — GC activity;
//! * `core.flusher.{batches,pages}` / `core.flusher.inflight_hwm` — the
//!   background flusher's batch counters and window high-water mark;
//! * `kv.put.latency_ns`, `kv.flush.latency_ns`, `kv.compact.latency_ns`
//!   and `kv.{flushes,compactions}` — LSM store activity.
//!
//! Tracer track IDs: flash dies use their die index (see
//! `flash-sim`); host-side spans use fixed tracks `100` (KV),
//! `103` (flush windows) so they render as separate rows in the Chrome
//! trace viewer.

use std::sync::Arc;

use noftl_obs::{Counter, Gauge, Histogram, MetricsRegistry, Unit};

use flash_sim::SimTime;

use crate::placement::PlacementPolicyKind;

/// Tracer track for KV store spans.
pub(crate) const TRACK_KV: u64 = 100;
/// Tracer track for windowed-flush spans.
pub(crate) const TRACK_FLUSH: u64 = 103;

/// Handles the storage manager records into on allocation, GC, windowed
/// writes and background flushes.
#[derive(Debug)]
pub(crate) struct CoreObs {
    registry: Arc<MetricsRegistry>,
    decisions_rr: Counter,
    decisions_qa: Counter,
    probes_total: Counter,
    steered: Counter,
    steer_delta_total: Counter,
    flush_window_occupancy: Histogram,
    flush_window_ns: Histogram,
    read_window_occupancy: Histogram,
    read_window_ns: Histogram,
    gc_runs: Counter,
    gc_pages_moved: Counter,
    gc_blocks_erased: Counter,
    flusher_batches: Counter,
    flusher_pages: Counter,
    flusher_inflight_hwm: Gauge,
}

impl CoreObs {
    pub(crate) fn new(registry: Arc<MetricsRegistry>) -> Self {
        CoreObs {
            decisions_rr: registry.counter("core.placement.decisions.round_robin"),
            decisions_qa: registry.counter("core.placement.decisions.queue_aware"),
            probes_total: registry.counter("core.placement.probes_total"),
            steered: registry.counter("core.placement.steered"),
            steer_delta_total: registry.counter("core.placement.steer_delta_total"),
            flush_window_occupancy: registry.histogram("core.flush.window_occupancy", Unit::Count),
            flush_window_ns: registry.histogram("core.flush.window_ns", Unit::SimNanos),
            read_window_occupancy: registry.histogram("core.read.window_occupancy", Unit::Count),
            read_window_ns: registry.histogram("core.read.window_ns", Unit::SimNanos),
            gc_runs: registry.counter("core.gc.runs"),
            gc_pages_moved: registry.counter("core.gc.pages_moved"),
            gc_blocks_erased: registry.counter("core.gc.blocks_erased"),
            flusher_batches: registry.counter("core.flusher.batches"),
            flusher_pages: registry.counter("core.flusher.pages"),
            flusher_inflight_hwm: registry.gauge("core.flusher.inflight_hwm"),
            registry,
        }
    }

    pub(crate) fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }

    /// Record one successful page allocation: which policy decided, how
    /// many dies were probed, and how far off the round-robin stripe
    /// position (`expected`) the chosen die landed.
    pub(crate) fn note_allocation(
        &self,
        kind: PlacementPolicyKind,
        probes: u64,
        chosen: usize,
        expected: usize,
        die_count: usize,
    ) {
        match kind {
            PlacementPolicyKind::RoundRobin => self.decisions_rr.inc(),
            PlacementPolicyKind::QueueAware => self.decisions_qa.inc(),
        }
        self.probes_total.add(probes);
        if chosen != expected && die_count > 0 {
            self.steered.inc();
            let delta = (chosen + die_count - expected) % die_count;
            self.steer_delta_total.add(delta as u64);
        }
    }

    /// Record one GC invocation on a die: pages relocated via copyback
    /// and blocks reclaimed, plus a tracer instant on the die's track.
    pub(crate) fn note_gc(
        &self,
        die_track: u64,
        pages_moved: u64,
        blocks_erased: u64,
        at: SimTime,
    ) {
        self.gc_runs.inc();
        self.gc_pages_moved.add(pages_moved);
        self.gc_blocks_erased.add(blocks_erased);
        self.registry.tracer().instant(
            "core.gc",
            "gc",
            die_track,
            at.as_nanos(),
            &[("pages_moved", pages_moved), ("blocks_erased", blocks_erased)],
        );
    }

    /// Sample the windowed write pipeline's in-flight depth at one
    /// submission instant.
    pub(crate) fn note_window_occupancy(&self, inflight: u64) {
        self.flush_window_occupancy.record(inflight);
    }

    /// Record a completed write window: issue→drain latency plus a
    /// tracer span on the flush track.
    pub(crate) fn note_window_done(&self, pages: u64, issued: SimTime, done: SimTime) {
        self.flush_window_ns.record(done.since(issued).as_nanos());
        self.registry.tracer().span(
            "core.flush",
            "write_window",
            TRACK_FLUSH,
            issued.as_nanos(),
            done.as_nanos(),
            &[("pages", pages)],
        );
    }

    /// Sample the windowed read pipeline's in-flight depth at one
    /// submission instant.
    pub(crate) fn note_read_window_occupancy(&self, inflight: u64) {
        self.read_window_occupancy.record(inflight);
    }

    /// Record a completed read window: issue→drain latency plus a
    /// tracer span on the flush track.  Kept separate from
    /// [`CoreObs::note_window_done`] so scan/merge read windows never
    /// skew the write-flush latency distribution.
    pub(crate) fn note_read_window_done(&self, pages: u64, issued: SimTime, done: SimTime) {
        self.read_window_ns.record(done.since(issued).as_nanos());
        self.registry.tracer().span(
            "core.read",
            "read_window",
            TRACK_FLUSH,
            issued.as_nanos(),
            done.as_nanos(),
            &[("pages", pages)],
        );
    }

    /// Record one background-flusher batch.
    pub(crate) fn note_flusher_batch(&self, pages: u64, inflight_hwm: u64) {
        self.flusher_batches.inc();
        self.flusher_pages.add(pages);
        self.flusher_inflight_hwm.set_max(inflight_hwm);
    }
}

/// Handles the KV store records into on puts, memtable flushes and
/// compactions.
#[derive(Debug)]
pub(crate) struct KvObs {
    registry: Arc<MetricsRegistry>,
    put_latency: Histogram,
    flush_latency: Histogram,
    compact_latency: Histogram,
    flushes: Counter,
    compactions: Counter,
}

impl KvObs {
    pub(crate) fn new(registry: Arc<MetricsRegistry>) -> Self {
        KvObs {
            put_latency: registry.histogram("kv.put.latency_ns", Unit::SimNanos),
            flush_latency: registry.histogram("kv.flush.latency_ns", Unit::SimNanos),
            compact_latency: registry.histogram("kv.compact.latency_ns", Unit::SimNanos),
            flushes: registry.counter("kv.flushes"),
            compactions: registry.counter("kv.compactions"),
            registry,
        }
    }

    /// Record one `put` end to end (`at` if it stayed in the memtable).
    pub(crate) fn note_put(&self, issued: SimTime, done: SimTime) {
        self.put_latency.record(done.since(issued).as_nanos());
    }

    /// Record one memtable flush as a histogram sample and tracer span.
    pub(crate) fn note_flush(&self, entries: u64, issued: SimTime, done: SimTime) {
        self.flushes.inc();
        self.flush_latency.record(done.since(issued).as_nanos());
        self.registry.tracer().span(
            "kv",
            "memtable_flush",
            TRACK_KV,
            issued.as_nanos(),
            done.as_nanos(),
            &[("entries", entries)],
        );
    }

    /// Record one level compaction as a histogram sample and tracer span.
    pub(crate) fn note_compact(&self, level: u64, issued: SimTime, done: SimTime) {
        self.compactions.inc();
        self.compact_latency.record(done.since(issued).as_nanos());
        self.registry.tracer().span(
            "kv",
            "compaction",
            TRACK_KV,
            issued.as_nanos(),
            done.as_nanos(),
            &[("level", level)],
        );
    }
}
