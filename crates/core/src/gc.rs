//! Per-region garbage collection: victim selection.
//!
//! Under NoFTL garbage collection runs *inside each region*.  Because a
//! region only holds objects with similar update behaviour, the pages of a
//! full block tend to share a temperature: blocks in hot regions are
//! mostly invalid when they are collected (cheap victims), blocks in cold
//! regions are rarely collected at all.  That is the mechanism behind the
//! paper's reduction in COPYBACK and ERASE counts.

use flash_sim::{BlockInfo, BlockState};
use serde::{Deserialize, Serialize};

use crate::config::GcPolicy;

/// A candidate victim block within one region die.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GcCandidate {
    /// Index of the block in the caller's used-block list.
    pub slot: usize,
    /// Valid pages that would have to be relocated.
    pub valid_pages: u32,
    /// Invalid pages that would be reclaimed.
    pub invalid_pages: u32,
    /// Erase count of the block.
    pub erase_count: u64,
    /// Sequence number of the most recent invalidation that hit the block
    /// (0 = never invalidated); smaller values mean colder blocks.
    pub last_invalidate_seq: u64,
}

impl GcCandidate {
    /// Build a candidate from a block snapshot; returns `None` for blocks
    /// that are not worth collecting (not full, or without invalid pages).
    pub fn from_info(slot: usize, info: &BlockInfo, last_invalidate_seq: u64) -> Option<Self> {
        if info.state != BlockState::Full || info.invalid_pages == 0 {
            return None;
        }
        Some(GcCandidate {
            slot,
            valid_pages: info.valid_pages,
            invalid_pages: info.invalid_pages,
            erase_count: info.erase_count,
            last_invalidate_seq,
        })
    }

    /// Classic cost-benefit score `(1-u)/(2u) * age` — higher is better.
    pub fn cost_benefit_score(&self, now_seq: u64) -> f64 {
        let total = (self.valid_pages + self.invalid_pages).max(1) as f64;
        let u = self.valid_pages as f64 / total;
        let age = now_seq.saturating_sub(self.last_invalidate_seq) as f64 + 1.0;
        if u <= f64::EPSILON {
            return f64::MAX / 2.0;
        }
        (1.0 - u) / (2.0 * u) * age
    }
}

/// Pick a victim among `candidates` under `policy`.  Ties are broken
/// toward less-worn blocks.
pub fn select_victim(policy: GcPolicy, candidates: &[GcCandidate], now_seq: u64) -> Option<usize> {
    if candidates.is_empty() {
        return None;
    }
    match policy {
        GcPolicy::Greedy => {
            candidates.iter().min_by_key(|c| (c.valid_pages, c.erase_count, c.slot)).map(|c| c.slot)
        }
        GcPolicy::CostBenefit => candidates
            .iter()
            .max_by(|a, b| {
                a.cost_benefit_score(now_seq)
                    .partial_cmp(&b.cost_benefit_score(now_seq))
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(b.erase_count.cmp(&a.erase_count))
                    .then(b.slot.cmp(&a.slot))
            })
            .map(|c| c.slot),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn cand(slot: usize, valid: u32, invalid: u32) -> GcCandidate {
        GcCandidate {
            slot,
            valid_pages: valid,
            invalid_pages: invalid,
            erase_count: 0,
            last_invalidate_seq: 0,
        }
    }

    #[test]
    fn greedy_minimises_copy_cost() {
        let cands = vec![cand(0, 6, 2), cand(1, 1, 7), cand(2, 3, 5)];
        assert_eq!(select_victim(GcPolicy::Greedy, &cands, 10), Some(1));
    }

    #[test]
    fn cost_benefit_prefers_fully_invalid() {
        let cands = vec![cand(0, 0, 8), cand(1, 1, 7)];
        assert_eq!(select_victim(GcPolicy::CostBenefit, &cands, 10), Some(0));
    }

    #[test]
    fn empty_input_gives_none() {
        assert_eq!(select_victim(GcPolicy::Greedy, &[], 0), None);
    }

    #[test]
    fn from_info_filters_open_and_clean_blocks() {
        let full = BlockInfo {
            state: BlockState::Full,
            write_ptr: 8,
            erase_count: 0,
            valid_pages: 4,
            invalid_pages: 4,
            free_pages: 0,
        };
        assert!(GcCandidate::from_info(0, &full, 0).is_some());
        let clean = BlockInfo { invalid_pages: 0, valid_pages: 8, ..full };
        assert!(GcCandidate::from_info(0, &clean, 0).is_none());
        let open = BlockInfo { state: BlockState::Open, ..full };
        assert!(GcCandidate::from_info(0, &open, 0).is_none());
    }

    proptest! {
        /// Greedy always returns the candidate with the minimum number of
        /// valid pages (the cheapest victim).
        #[test]
        fn greedy_is_optimal_for_copy_cost(valids in prop::collection::vec(0u32..16, 1..20)) {
            let cands: Vec<GcCandidate> = valids
                .iter()
                .enumerate()
                .map(|(slot, &v)| cand(slot, v, 16 - v))
                .filter(|c| c.invalid_pages > 0)
                .collect();
            prop_assume!(!cands.is_empty());
            let min_valid = cands.iter().map(|c| c.valid_pages).min().unwrap();
            let chosen = select_victim(GcPolicy::Greedy, &cands, 100).unwrap();
            let chosen_valid = cands.iter().find(|c| c.slot == chosen).unwrap().valid_pages;
            prop_assert_eq!(chosen_valid, min_valid);
        }

        /// Both policies always return a slot that exists among the candidates.
        #[test]
        fn selection_returns_existing_slot(valids in prop::collection::vec(0u32..8, 1..12), cb in any::<bool>()) {
            let cands: Vec<GcCandidate> = valids
                .iter()
                .enumerate()
                .map(|(slot, &v)| cand(slot * 3, v, 8 - v))
                .filter(|c| c.invalid_pages > 0)
                .collect();
            prop_assume!(!cands.is_empty());
            let policy = if cb { GcPolicy::CostBenefit } else { GcPolicy::Greedy };
            let chosen = select_victim(policy, &cands, 50).unwrap();
            prop_assert!(cands.iter().any(|c| c.slot == chosen));
        }
    }
}
