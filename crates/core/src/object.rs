//! Database objects as seen by the storage manager.
//!
//! The NoFTL storage manager addresses data by `(object, logical page)`.
//! An object is anything the DBMS stores: a table heap, an index, the
//! write-ahead log, catalog pages.  Each object lives in exactly one
//! region and carries its own logical-to-physical page map plus the access
//! statistics used for hot/cold classification and placement decisions.

use flash_sim::PageAddr;
use serde::{Deserialize, Serialize};

use crate::region::RegionId;

/// Identifier of a database object.  `0` is reserved; real objects start
/// at 1 so the id can double as the `object_id` stored in flash page
/// metadata.
pub type ObjectId = u32;

/// Per-object access counters used for hot/cold classification.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ObjectCounters {
    /// Logical page reads served for this object.
    pub reads: u64,
    /// Logical page writes served for this object.
    pub writes: u64,
}

/// Runtime state of one object.
#[derive(Debug, Clone)]
pub(crate) struct ObjectState {
    /// Human-readable name (unique).
    pub name: String,
    /// The region the object is placed in.
    pub region: RegionId,
    /// Logical page number → physical page address.
    pub map: Vec<Option<PageAddr>>,
    /// Access counters.
    pub counters: ObjectCounters,
}

impl ObjectState {
    pub(crate) fn new(name: impl Into<String>, region: RegionId) -> Self {
        ObjectState {
            name: name.into(),
            region,
            map: Vec::new(),
            counters: ObjectCounters::default(),
        }
    }

    /// Current translation of a logical page.
    pub(crate) fn translate(&self, page: u64) -> Option<PageAddr> {
        self.map.get(page as usize).copied().flatten()
    }

    /// Install a translation, growing the map as needed; returns the
    /// previous translation.
    pub(crate) fn set_translation(&mut self, page: u64, ppa: PageAddr) -> Option<PageAddr> {
        let idx = page as usize;
        if idx >= self.map.len() {
            self.map.resize(idx + 1, None);
        }
        self.map[idx].replace(ppa)
    }

    /// Remove a translation; returns the previous one.
    pub(crate) fn clear_translation(&mut self, page: u64) -> Option<PageAddr> {
        self.map.get_mut(page as usize).and_then(|s| s.take())
    }

    /// Number of logical pages currently mapped (i.e. the object's size on
    /// flash in pages).
    pub(crate) fn mapped_pages(&self) -> u64 {
        self.map.iter().filter(|e| e.is_some()).count() as u64
    }

    /// Highest mapped logical page number plus one (the object's logical
    /// extent), or 0 for an empty object.
    pub(crate) fn logical_extent(&self) -> u64 {
        self.map.iter().rposition(|e| e.is_some()).map(|i| i as u64 + 1).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flash_sim::DieId;

    fn ppa(block: u32) -> PageAddr {
        PageAddr::new(DieId(0), 0, block, 0)
    }

    #[test]
    fn translation_lifecycle() {
        let mut o = ObjectState::new("t", RegionId(0));
        assert_eq!(o.translate(5), None);
        assert_eq!(o.set_translation(5, ppa(1)), None);
        assert_eq!(o.translate(5), Some(ppa(1)));
        assert_eq!(o.set_translation(5, ppa(2)), Some(ppa(1)));
        assert_eq!(o.mapped_pages(), 1);
        assert_eq!(o.logical_extent(), 6);
        assert_eq!(o.clear_translation(5), Some(ppa(2)));
        assert_eq!(o.mapped_pages(), 0);
        assert_eq!(o.logical_extent(), 0);
    }

    #[test]
    fn sparse_pages_grow_the_map() {
        let mut o = ObjectState::new("t", RegionId(0));
        o.set_translation(100, ppa(3));
        assert_eq!(o.map.len(), 101);
        assert_eq!(o.translate(99), None);
        assert_eq!(o.translate(100), Some(ppa(3)));
        assert_eq!(o.logical_extent(), 101);
        assert_eq!(o.mapped_pages(), 1);
    }

    #[test]
    fn clear_of_unmapped_page_is_none() {
        let mut o = ObjectState::new("t", RegionId(0));
        assert_eq!(o.clear_translation(42), None);
    }
}
