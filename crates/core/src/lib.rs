//! # noftl-core — NoFTL regions: DBMS space management for native flash
//!
//! This crate is the primary contribution of the reproduced paper,
//! *"Revisiting DBMS Space Management for Native Flash"* (Hardock, Petrov,
//! Gottstein, Buchmann — EDBT 2016).  Under the NoFTL architecture the
//! DBMS owns the physical flash address space directly (no FTL, no file
//! system, no block device).  The paper introduces **regions** as the
//! physical storage structure used to organise that space:
//!
//! > *"A region comprises multiple Flash chips or dies, over which the
//! > data is evenly distributed. \[...\] One or more database objects with
//! > similar access properties can be physically placed in a region."*
//!
//! What this crate provides:
//!
//! * [`RegionSpec`] / [`NoFtl::create_region`] — the `CREATE REGION`
//!   primitive (limits on chips, channels and size, as in the paper's DDL
//!   example), with dies drawn from a device-wide pool;
//! * object management — database objects (heaps, indexes, logs, catalog)
//!   are registered in a region and addressed by `(ObjectId, logical page)`;
//! * **out-of-place updates** with per-region write allocation that stripes
//!   pages round-robin over the region's dies for I/O parallelism;
//! * **per-region garbage collection** ([`gc`]) using greedy or
//!   cost-benefit victim selection and die-internal copybacks;
//! * **wear leveling** ([`wear`]) inside regions and a global view used to
//!   rebalance dies between regions;
//! * **hot/cold statistics** ([`hotcold`]) per object, feeding the
//!   [`placement`] advisor that derives multi-region configurations such as
//!   the paper's Figure 2;
//! * a small **DDL dialect** ([`ddl`]): `CREATE REGION`,
//!   `CREATE TABLESPACE`, `CREATE TABLE ... TABLESPACE`;
//! * **flusher batches** ([`flusher`]) and **short atomic writes**
//!   ([`atomic`]) exploiting direct control of out-of-place updates
//!   (advantage (iv) in the paper's introduction);
//! * **NoFTL-KV** ([`kv`]) — a log-structured key-value layer whose
//!   memtable flushes and compactions are region-local queued multi-die
//!   batches, with crash safety riding the checkpoint/mount path.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod atomic;
pub mod config;
pub mod ddl;
pub mod error;
pub mod flusher;
pub mod gc;
pub mod hotcold;
pub mod kv;
pub mod manager;
pub mod object;
pub(crate) mod obs;
pub mod placement;
pub mod recovery;
pub mod region;
pub mod stats;
pub mod wear;

pub use config::{GcPolicy, NoFtlConfig, WearLevelingPolicy};
pub use ddl::{Ddl, DdlStatement};
pub use error::NoFtlError;
pub use hotcold::{ObjectProfile, Temperature};
pub use kv::{KvConfig, KvOpenReport, KvStats, KvStore};
pub use manager::NoFtl;
pub use object::ObjectId;
pub use placement::{
    suggest_policies, PlacementAdvisor, PlacementConfig, PlacementPolicy, PlacementPolicyKind,
    QueueAware, RegionAssignment, RoundRobin, PLACEMENT_ENV,
};
pub use recovery::{MountReport, META_OBJECT_ID, META_REGION_NAME};
pub use region::{RegionId, RegionInfo, RegionSpec};
pub use stats::{NoFtlStats, ObjectStats, RegionStats};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, NoFtlError>;

#[cfg(test)]
mod lib_tests {
    use super::*;
    use flash_sim::{DeviceBuilder, FlashGeometry, SimTime};
    use std::sync::Arc;

    #[test]
    fn end_to_end_smoke() {
        let device = Arc::new(DeviceBuilder::new(FlashGeometry::small_test()).build());
        let noftl = NoFtl::new(device, NoFtlConfig::default());
        let region = noftl.create_region(RegionSpec::named("rgSmoke").with_die_count(2)).unwrap();
        let obj = noftl.create_object("t_smoke", region).unwrap();
        let data = vec![0x42u8; 4096];
        let done = noftl.write(obj, 0, &data, SimTime::ZERO).unwrap();
        let (back, _) = noftl.read(obj, 0, done).unwrap();
        assert_eq!(back, data);
    }
}
