//! The NoFTL storage manager.
//!
//! [`NoFtl`] is the component labelled "Storage Manager" in the paper's
//! Figure 1: it owns the physical flash address space, performs address
//! translation and out-of-place updates, runs garbage collection and wear
//! leveling — all *per region*, using DBMS-level knowledge (which object a
//! page belongs to) that a conventional FTL does not have.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use flash_sim::lockorder::{self, LockClass, TrackedGuard};
use flash_sim::queue::{CmdHandle, CommandQueue, FlashCommand};
use flash_sim::{
    BlockAddr, DieId, FlashBackend, IoTag, PageAddr, PageMetadata, PageState, ServiceClass, SimTime,
};

use noftl_obs::{MetricsRegistry, MetricsSnapshot};

use crate::config::NoFtlConfig;
use crate::error::NoFtlError;
use crate::gc::{select_victim, GcCandidate};
use crate::object::{ObjectId, ObjectState};
use crate::obs::CoreObs;
use crate::recovery::{
    self, CheckpointImage, MountReport, ObjectImage, RegionImage, META_OBJECT_ID, META_REGION_NAME,
};
use crate::region::{RegionDie, RegionId, RegionRuntime, RegionSpec};
use crate::stats::{NoFtlStats, ObjectStats, RegionStats};
use crate::wear::needs_static_wl;
use crate::Result;

/// In-memory state of the region-metadata journal: where checkpoint chunk
/// pages currently live.  The chunks themselves carry all recovery
/// information in their page payloads and OOB records; this directory only
/// lets the *running* manager invalidate superseded chunks and lets GC
/// keep the chunk locations current when it relocates them.
#[derive(Debug, Default)]
struct MetaDirectory {
    /// Region hosting the checkpoint chunks (created lazily).
    region: Option<RegionId>,
    /// Chunk index → physical page of the newest *completed* checkpoint.
    map: Vec<Option<PageAddr>>,
    /// Chunk pages of a checkpoint currently being written.  The previous
    /// checkpoint's pages stay valid (and in `map`) until every new chunk
    /// is durable, so a crash mid-checkpoint always leaves one complete
    /// checkpoint on flash.
    staging: Vec<Option<PageAddr>>,
    /// Sequence number of the newest completed checkpoint.
    seq: u64,
}

struct Inner {
    regions: Vec<Option<RegionRuntime>>,
    region_by_name: HashMap<String, RegionId>,
    free_dies: Vec<DieId>,
    /// Indexed by `ObjectId`; slot 0 is unused so object ids can be stored
    /// directly in flash page metadata (where 0 means "no object").
    objects: Vec<Option<ObjectState>>,
    object_by_name: HashMap<String, ObjectId>,
    /// Region-metadata journal state.
    meta: MetaDirectory,
}

/// A claimed-but-not-yet-collected asynchronous I/O: the payload (reads
/// only) and the completion time, parked until [`NoFtl::wait_io`].
#[derive(Debug)]
struct PendingIo {
    data: Vec<u8>,
    completed_at: SimTime,
}

/// The NoFTL storage manager: regions, objects, address translation,
/// out-of-place updates, GC, wear leveling.
pub struct NoFtl {
    device: Arc<dyn FlashBackend>,
    config: NoFtlConfig,
    /// Submission queue feeding the device; `write_batch` and the
    /// `submit_read`/`submit_write` APIs fan commands out through it.
    queue: CommandQueue,
    /// Completions of `submit_read`/`submit_write` awaiting `wait_io`.
    pending_io: Mutex<HashMap<u64, PendingIo>>,
    inner: Mutex<Inner>,
    /// Pre-bound metric handles (placement, GC, flush windows) on the
    /// device's registry.  Atomics-only: safe under any tracked lock.
    obs: CoreObs,
}

impl std::fmt::Debug for NoFtl {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.lock_inner();
        f.debug_struct("NoFtl")
            .field("regions", &inner.region_by_name.len())
            .field("objects", &inner.object_by_name.len())
            .field("free_dies", &inner.free_dies.len())
            .finish_non_exhaustive()
    }
}

impl NoFtl {
    /// Create a storage manager over `device`.  All dies start in the free
    /// pool; create regions to make them usable.
    ///
    /// # Panics
    /// Panics if the configuration fails validation (a programming error).
    pub fn new(device: Arc<dyn FlashBackend>, config: NoFtlConfig) -> Self {
        // analyzer:allow(panic_freedom) configuration failures are programming errors, documented under `# Panics`
        config.validate().unwrap_or_else(|e| panic!("invalid NoFTL configuration: {e}"));
        let free_dies: Vec<DieId> = device.geometry().dies().collect();
        NoFtl {
            queue: CommandQueue::new(device.clone()),
            pending_io: Mutex::new(HashMap::new()),
            obs: CoreObs::new(Arc::clone(device.metrics())),
            device,
            config,
            inner: Mutex::new(Inner {
                regions: Vec::new(),
                region_by_name: HashMap::new(),
                free_dies,
                objects: vec![None],
                object_by_name: HashMap::new(),
                meta: MetaDirectory::default(),
            }),
        }
    }

    /// Convenience constructor for the "traditional data placement"
    /// baseline: one region named `rgAll` spanning every die of the device.
    pub fn with_single_region(
        device: Arc<dyn FlashBackend>,
        config: NoFtlConfig,
    ) -> (Self, RegionId) {
        let total = device.geometry().total_dies();
        let noftl = Self::new(device, config);
        let rid = noftl
            .create_region(RegionSpec::named("rgAll").with_die_count(total))
            // analyzer:allow(panic_freedom) a fresh manager has every die free, so one region spanning them all always fits
            .expect("single region over all dies always fits");
        (noftl, rid)
    }

    /// The underlying native flash device.
    pub fn device(&self) -> &Arc<dyn FlashBackend> {
        &self.device
    }

    /// The configuration in use.
    pub fn config(&self) -> &NoFtlConfig {
        &self.config
    }

    /// The metrics registry shared with the underlying device: every
    /// layer of the stack (device, queue, manager, KV) records into it.
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        self.obs.registry()
    }

    /// Snapshot every counter, gauge and histogram of the shared
    /// registry at this instant.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.obs.registry().snapshot()
    }

    /// Pre-bound metric handles (crate-internal recording sites).
    pub(crate) fn obs(&self) -> &CoreObs {
        &self.obs
    }

    /// Lock the manager state.  This is the sole acquisition site of the
    /// manager lock, the first class in the documented lock order: it may
    /// be held across queue and device calls (allocation and translation
    /// commit must be atomic with respect to GC) but never acquired while
    /// any later-ordered lock is held.
    fn lock_inner(&self) -> TrackedGuard<'_, Inner> {
        lockorder::lock_tracked(LockClass::Manager, &self.inner)
    }

    /// Lock the pending-I/O completion map.  Sole acquisition site of the
    /// pending-io lock; held only for a map insert/remove, never across
    /// device execution.
    fn lock_pending_io(&self) -> TrackedGuard<'_, HashMap<u64, PendingIo>> {
        lockorder::lock_tracked(LockClass::PendingIo, &self.pending_io)
    }

    // ------------------------------------------------------------------
    // Region management
    // ------------------------------------------------------------------

    /// Create a region from a spec (`CREATE REGION`).  Dies are taken from
    /// the free pool, spread over as many channels as possible (or at most
    /// `max_channels` if the spec limits them).
    pub fn create_region(&self, spec: RegionSpec) -> Result<RegionId> {
        let mut inner = self.lock_inner();
        if inner.region_by_name.contains_key(&spec.name) {
            return Err(NoFtlError::RegionExists { name: spec.name });
        }
        let geo = self.device.geometry();
        let want = spec.resolve_die_count(geo);
        // Group the free dies by channel so we can stripe across channels.
        let mut by_channel: Vec<Vec<DieId>> = vec![Vec::new(); geo.channels as usize];
        for die in &inner.free_dies {
            by_channel[geo.channel_of_die(*die) as usize].push(*die);
        }
        let channel_limit = spec.max_channels.unwrap_or(geo.channels).max(1) as usize;
        let usable: Vec<&mut Vec<DieId>> =
            by_channel.iter_mut().filter(|v| !v.is_empty()).take(channel_limit).collect();
        let available: u32 = usable.iter().map(|v| v.len() as u32).sum();
        if available < want {
            return Err(NoFtlError::NotEnoughDies { requested: want, available });
        }
        // Round-robin over the usable channels.
        let mut chosen: Vec<DieId> = Vec::with_capacity(want as usize);
        let mut lanes: Vec<Vec<DieId>> = usable.into_iter().map(std::mem::take).collect();
        let lane_count = lanes.len();
        let mut lane = 0usize;
        while (chosen.len() as u32) < want {
            if let Some(d) = lanes[lane % lane_count].pop() {
                chosen.push(d);
            }
            lane += 1;
            // Guard against all lanes being empty (cannot happen given the
            // availability check above, but keeps the loop obviously finite).
            if lane > (want as usize + 1) * lane_count {
                break;
            }
        }
        // Return unchosen dies to the pool.
        let mut remaining: Vec<DieId> = lanes.into_iter().flatten().collect();
        // Dies on channels beyond the channel limit stayed in `by_channel`
        // only if they were never moved into `lanes`; rebuild the pool from
        // what's left plus the untouched channels.
        for v in by_channel {
            remaining.extend(v);
        }
        inner.free_dies = remaining;
        let rid = RegionId(inner.regions.len() as u32);
        let runtime = RegionRuntime::new(rid, spec.clone(), self.device.as_ref(), chosen);
        inner.region_by_name.insert(spec.name, rid);
        inner.regions.push(Some(runtime));
        Ok(rid)
    }

    /// Drop an empty region, erasing any blocks it dirtied and returning
    /// its dies to the free pool.  Returns the time at which the erases
    /// complete.
    pub fn drop_region(&self, rid: RegionId, at: SimTime) -> Result<SimTime> {
        let mut inner = self.lock_inner();
        if inner.meta.region == Some(rid) {
            return Err(NoFtlError::Recovery {
                message: format!(
                    "region {rid:?} hosts the region-metadata journal and cannot be dropped"
                ),
            });
        }
        let region = Self::region_mut(&mut inner.regions, rid)?;
        if !region.objects.is_empty() {
            return Err(NoFtlError::RegionNotEmpty { region: rid, objects: region.objects.len() });
        }
        let mut done = at;
        let mut dies = Vec::new();
        for die in &mut region.dies {
            // Erase everything that is not already erased so the die goes
            // back to the pool clean.
            let mut to_erase: Vec<flash_sim::BlockAddr> = die.used_blocks.drain(..).collect();
            if let Some((b, _)) = die.active.take() {
                to_erase.push(b);
            }
            if let Some((b, _)) = die.gc_active.take() {
                to_erase.push(b);
            }
            for b in to_erase {
                match self.device.erase_block(b, at) {
                    Ok(out) => {
                        done = done.max(out.completed_at);
                        die.free_blocks.push(b);
                    }
                    Err(e) if e.is_permanent() => {}
                    Err(e) => return Err(e.into()),
                }
            }
            dies.push(die.die);
        }
        let name = region.name.clone();
        inner.region_by_name.remove(&name);
        inner.regions[rid.0 as usize] = None;
        inner.free_dies.extend(dies);
        Ok(done)
    }

    /// Look up a region id by name.
    pub fn region_id(&self, name: &str) -> Option<RegionId> {
        self.lock_inner().region_by_name.get(name).copied()
    }

    /// Ids of all live regions.
    pub fn region_ids(&self) -> Vec<RegionId> {
        self.lock_inner().regions.iter().filter_map(|r| r.as_ref().map(|r| r.id)).collect()
    }

    /// Name of a region.
    pub fn region_name(&self, rid: RegionId) -> Result<String> {
        let inner = self.lock_inner();
        Ok(Self::region_ref(&inner.regions, rid)?.name.clone())
    }

    /// Dies currently owned by a region.
    pub fn region_dies(&self, rid: RegionId) -> Result<Vec<DieId>> {
        let inner = self.lock_inner();
        Ok(Self::region_ref(&inner.regions, rid)?.die_ids())
    }

    /// Statistics of a region.
    pub fn region_stats(&self, rid: RegionId) -> Result<RegionStats> {
        let inner = self.lock_inner();
        Ok(Self::region_ref(&inner.regions, rid)?.stats.clone())
    }

    /// Configuration/occupancy snapshot of a region.
    pub fn region_info(&self, rid: RegionId) -> Result<crate::region::RegionInfo> {
        let inner = self.lock_inner();
        Ok(Self::region_ref(&inner.regions, rid)?.info(self.device.geometry(), &self.config))
    }

    /// Number of dies still unassigned.
    pub fn free_die_count(&self) -> u32 {
        self.lock_inner().free_dies.len() as u32
    }

    /// Add `additional_dies` dies from the free pool to a region.
    pub fn grow_region(&self, rid: RegionId, additional_dies: u32) -> Result<()> {
        let mut inner = self.lock_inner();
        if (inner.free_dies.len() as u32) < additional_dies {
            return Err(NoFtlError::NotEnoughDies {
                requested: additional_dies,
                available: inner.free_dies.len() as u32,
            });
        }
        // Take from the tail in the same order repeated `pop()`s would.
        let keep = inner.free_dies.len() - additional_dies as usize;
        let mut taken = inner.free_dies.split_off(keep);
        taken.reverse();
        let device = Arc::clone(&self.device);
        let region = Self::region_mut(&mut inner.regions, rid)?;
        for die in taken {
            region.dies.push(crate::region::RegionDie::new(device.as_ref(), die));
        }
        Ok(())
    }

    /// Remove `remove_dies` dies from a region, migrating their live data
    /// to the remaining dies (used for global wear leveling / rebalancing,
    /// which the paper lists as a reason for dynamic region membership).
    /// Returns the completion time of the migration.
    pub fn shrink_region(&self, rid: RegionId, remove_dies: u32, at: SimTime) -> Result<SimTime> {
        let mut inner = self.lock_inner();
        let inner = &mut *inner;
        let geo = *self.device.geometry();
        let region = Self::region_mut(&mut inner.regions, rid)?;
        if region.dies.len() as u32 <= remove_dies {
            return Err(NoFtlError::Ddl {
                message: format!(
                    "cannot remove {remove_dies} die(s) from region '{}' with only {} die(s)",
                    region.name,
                    region.dies.len()
                ),
            });
        }
        let mut done = at;
        let mut freed = Vec::new();
        for _ in 0..remove_dies {
            let Some(mut die) = region.dies.pop() else { break };
            region.next_die = 0;
            // Collect every block that may hold valid pages.
            let mut blocks: Vec<flash_sim::BlockAddr> = die.used_blocks.drain(..).collect();
            if let Some((b, _)) = die.active.take() {
                blocks.push(b);
            }
            if let Some((b, _)) = die.gc_active.take() {
                blocks.push(b);
            }
            for block in &blocks {
                for page in 0..geo.pages_per_block {
                    let src = block.page(page);
                    if self.device.page_state(src).map(|s| s == PageState::Valid).unwrap_or(false) {
                        // Rebalance copies are maintenance traffic.
                        let tag = IoTag::background(Some(rid.0));
                        let (data, meta, read_out) = self.device.read_page_tagged(src, at, tag)?;
                        let Some(meta) = meta else { continue };
                        // Re-write the page on one of the remaining dies.
                        let ppa = Self::allocate_in_region(
                            &self.obs,
                            self.device.as_ref(),
                            &self.config,
                            region,
                            &mut inner.objects,
                            &mut inner.meta,
                            at,
                        )
                        .ok_or(NoFtlError::RegionFull { region: rid })?;
                        let out = self.device.program_page_tagged(
                            ppa,
                            &data,
                            meta,
                            read_out.completed_at,
                            IoTag::background(Some(rid.0)),
                        )?;
                        done = done.max(out.completed_at);
                        self.device.mark_invalid(src)?;
                        region.stats.rebalance_moves += 1;
                        Self::retranslate(&mut inner.objects, &mut inner.meta, &meta, src, ppa);
                    }
                }
            }
            // Erase everything on the die before returning it to the pool.
            for block in blocks {
                match self.device.erase_block(block, done) {
                    Ok(out) => {
                        done = done.max(out.completed_at);
                        die.free_blocks.push(block);
                    }
                    Err(e) if e.is_permanent() => {}
                    Err(e) => return Err(e.into()),
                }
            }
            freed.push(die.die);
        }
        inner.free_dies.extend(freed);
        Ok(done)
    }

    // ------------------------------------------------------------------
    // Object management
    // ------------------------------------------------------------------

    /// Register a new database object in a region.
    pub fn create_object(&self, name: &str, region: RegionId) -> Result<ObjectId> {
        let mut inner = self.lock_inner();
        if inner.object_by_name.contains_key(name) {
            return Err(NoFtlError::ObjectExists { name: name.to_string() });
        }
        Self::region_ref(&inner.regions, region)?;
        let id = inner.objects.len() as ObjectId;
        inner.objects.push(Some(ObjectState::new(name, region)));
        inner.object_by_name.insert(name.to_string(), id);
        Self::region_mut(&mut inner.regions, region)?.objects.push(id);
        Ok(id)
    }

    /// Register a new object in a region identified by name.
    pub fn create_object_in(&self, name: &str, region_name: &str) -> Result<ObjectId> {
        let rid = self
            .region_id(region_name)
            .ok_or_else(|| NoFtlError::UnknownRegion { region: region_name.to_string() })?;
        self.create_object(name, rid)
    }

    /// Look up an object id by name.
    pub fn object_id(&self, name: &str) -> Option<ObjectId> {
        self.lock_inner().object_by_name.get(name).copied()
    }

    /// Drop an object: all of its pages become invalid (reclaimable by GC).
    pub fn drop_object(&self, obj: ObjectId) -> Result<()> {
        let mut inner = self.lock_inner();
        let inner = &mut *inner;
        let state = inner
            .objects
            .get_mut(obj as usize)
            .and_then(|o| o.take())
            .ok_or_else(|| NoFtlError::UnknownObject { object: obj.to_string() })?;
        inner.object_by_name.remove(&state.name);
        if let Ok(region) = Self::region_mut(&mut inner.regions, state.region) {
            region.objects.retain(|o| *o != obj);
            for ppa in state.map.iter().flatten() {
                let _ = self.device.mark_invalid(*ppa);
                region.record_invalidation(*ppa);
            }
        }
        Ok(())
    }

    /// Statistics snapshot of one object.
    pub fn object_stats(&self, obj: ObjectId) -> Result<ObjectStats> {
        let inner = self.lock_inner();
        let state = Self::object_ref(&inner.objects, obj)?;
        Ok(ObjectStats {
            object_id: obj,
            name: state.name.clone(),
            region: state.region,
            pages: state.mapped_pages(),
            reads: state.counters.reads,
            writes: state.counters.writes,
        })
    }

    /// Statistics snapshots of all live objects.
    pub fn all_object_stats(&self) -> Vec<ObjectStats> {
        let inner = self.lock_inner();
        inner
            .objects
            .iter()
            .enumerate()
            .filter_map(|(id, o)| {
                o.as_ref().map(|state| ObjectStats {
                    object_id: id as ObjectId,
                    name: state.name.clone(),
                    region: state.region,
                    pages: state.mapped_pages(),
                    reads: state.counters.reads,
                    writes: state.counters.writes,
                })
            })
            .collect()
    }

    /// Ids and names of all live objects whose name starts with `prefix`.
    /// Layers that manage families of objects (e.g. the NoFTL-KV run
    /// directory) use this to rediscover their members after a mount.
    pub fn objects_with_prefix(&self, prefix: &str) -> Vec<(ObjectId, String)> {
        let inner = self.lock_inner();
        inner
            .objects
            .iter()
            .enumerate()
            .filter_map(|(id, o)| o.as_ref().map(|state| (id as ObjectId, state.name.clone())))
            .filter(|(_, name)| name.starts_with(prefix))
            .collect()
    }

    /// Number of live (mapped) pages of an object.
    pub fn object_pages(&self, obj: ObjectId) -> Result<u64> {
        let inner = self.lock_inner();
        Ok(Self::object_ref(&inner.objects, obj)?.mapped_pages())
    }

    /// Logical extent of an object: the highest written logical page number
    /// plus one (0 for an empty object).  The DBMS layer uses this to size
    /// its extent allocation.
    pub fn object_extent(&self, obj: ObjectId) -> Result<u64> {
        let inner = self.lock_inner();
        Ok(Self::object_ref(&inner.objects, obj)?.logical_extent())
    }

    // ------------------------------------------------------------------
    // Data path
    // ------------------------------------------------------------------

    /// Read a logical page of an object.  Returns the payload and the
    /// completion time.
    pub fn read(&self, obj: ObjectId, page: u64, at: SimTime) -> Result<(Vec<u8>, SimTime)> {
        let mut inner = self.lock_inner();
        let inner = &mut *inner;
        let (ppa, rid) = {
            let state = Self::object_mut(&mut inner.objects, obj)?;
            let ppa =
                state.translate(page).ok_or(NoFtlError::PageNotWritten { object: obj, page })?;
            state.counters.reads += 1;
            (ppa, state.region)
        };
        let tag = Self::region_tag(&inner.regions, &self.config, rid);
        let (data, _, out) = self.device.read_page_tagged(ppa, at, tag)?;
        let region = Self::region_mut(&mut inner.regions, rid)?;
        region.stats.host_reads += 1;
        region.stats.read_latency_sum += out.completed_at - at;
        Ok((data, out.completed_at))
    }

    /// Write (out-of-place) a logical page of an object.  Returns the
    /// completion time.
    pub fn write(&self, obj: ObjectId, page: u64, data: &[u8], at: SimTime) -> Result<SimTime> {
        self.write_with(obj, page, data, at, None)
    }

    /// [`NoFtl::write`] with the submitted command's service class forced
    /// to `class` (maintenance paths tag their writes `Background` this
    /// way regardless of the region's own class).
    pub fn write_classed(
        &self,
        obj: ObjectId,
        page: u64,
        data: &[u8],
        at: SimTime,
        class: ServiceClass,
    ) -> Result<SimTime> {
        self.write_with(obj, page, data, at, Some(class))
    }

    fn write_with(
        &self,
        obj: ObjectId,
        page: u64,
        data: &[u8],
        at: SimTime,
        class: Option<ServiceClass>,
    ) -> Result<SimTime> {
        self.check_page_size(data)?;
        let mut inner = self.lock_inner();
        let inner = &mut *inner;
        let rid = Self::object_ref(&inner.objects, obj)?.region;
        let ppa = {
            let region = Self::region_mut(&mut inner.regions, rid)?;
            Self::allocate_in_region(
                &self.obs,
                self.device.as_ref(),
                &self.config,
                region,
                &mut inner.objects,
                &mut inner.meta,
                at,
            )
            .ok_or(NoFtlError::RegionFull { region: rid })?
        };
        let meta = PageMetadata::new(obj, page).with_payload_checksum(data);
        let mut tag = Self::region_tag(&inner.regions, &self.config, rid);
        if let Some(class) = class {
            tag.class = class;
        }
        let out = self.device.program_page_tagged(ppa, data, meta, at, tag)?;
        Self::commit_program(self.device.as_ref(), inner, obj, page, ppa, at, out.completed_at)?;
        Ok(out.completed_at)
    }

    /// Commit a successfully programmed page: switch the object's
    /// translation to `ppa`, invalidate the superseded version and
    /// account the write in the owning region's statistics.  Shared by
    /// the blocking write, the atomic batch, the queued batch and the
    /// asynchronous submit path so the four stay equivalent by
    /// construction.
    fn commit_program(
        device: &dyn FlashBackend,
        inner: &mut Inner,
        obj: ObjectId,
        page: u64,
        ppa: PageAddr,
        at: SimTime,
        completed: SimTime,
    ) -> Result<()> {
        let rid = Self::object_ref(&inner.objects, obj)?.region;
        let old = {
            let state = Self::object_mut(&mut inner.objects, obj)?;
            state.counters.writes += 1;
            state.set_translation(page, ppa)
        };
        let region = Self::region_mut(&mut inner.regions, rid)?;
        if let Some(old) = old {
            let _ = device.mark_invalid(old);
            region.record_invalidation(old);
        }
        region.stats.host_writes += 1;
        region.stats.write_latency_sum += completed - at;
        Ok(())
    }

    /// Write a batch of pages, all issued at `at`, fanned out through the
    /// device's command queue.
    ///
    /// Every page is allocated striped round-robin over its region's dies
    /// (running GC where a die's free pool is low) and its program is
    /// submitted to the [`CommandQueue`] carrying the same issue time, so
    /// the batch executes with full die-level parallelism in the timing
    /// model; the returned time is the completion of the slowest page.
    /// This is the path used by the buffer manager's background flushers
    /// and the WAL group-commit force.
    ///
    /// Each page's translation is committed before the next page is
    /// allocated — a GC pass triggered by a later allocation therefore
    /// always sees current mappings and may safely relocate any page of
    /// the batch it has already committed.
    ///
    /// On failure (e.g. a power cut tearing part of the batch) the
    /// translations of every *successful* program are still committed,
    /// torn pages stay unmapped for recovery to discard, and the first
    /// failure in submission order is returned.
    pub fn write_batch(&self, writes: &[(ObjectId, u64, Vec<u8>)], at: SimTime) -> Result<SimTime> {
        self.write_batch_with(writes, at, None)
    }

    /// [`NoFtl::write_batch`] with every command's service class forced to
    /// `class` (e.g. `Background` for KV compaction merges).
    pub fn write_batch_classed(
        &self,
        writes: &[(ObjectId, u64, Vec<u8>)],
        at: SimTime,
        class: ServiceClass,
    ) -> Result<SimTime> {
        self.write_batch_with(writes, at, Some(class))
    }

    fn write_batch_with(
        &self,
        writes: &[(ObjectId, u64, Vec<u8>)],
        at: SimTime,
        class: Option<ServiceClass>,
    ) -> Result<SimTime> {
        if writes.is_empty() {
            return Ok(at);
        }
        for (_, _, data) in writes {
            self.check_page_size(data)?;
        }
        let mut inner = self.lock_inner();
        let inner = &mut *inner;
        let mut done = at;
        let mut first_err: Option<NoFtlError> = None;
        // Regions that already reported RegionFull during this batch:
        // retrying them would re-run the GC victim scan per page for
        // nothing (only invalidations could free space, and those were
        // already applied when the region filled up).
        let mut full_regions: Vec<RegionId> = Vec::new();
        for (obj, page, data) in writes {
            // Allocation, program and translation commit stay together:
            // deferring the commit would let a mid-batch GC erase a
            // staged-but-unmapped page (GC's retranslate only follows
            // committed mappings).
            let rid = match Self::object_ref(&inner.objects, *obj) {
                Ok(o) => o.region,
                Err(e) => {
                    first_err.get_or_insert(e);
                    continue;
                }
            };
            if full_regions.contains(&rid) {
                first_err.get_or_insert(NoFtlError::RegionFull { region: rid });
                continue;
            }
            let region = match Self::region_mut(&mut inner.regions, rid) {
                Ok(r) => r,
                Err(e) => {
                    first_err.get_or_insert(e);
                    continue;
                }
            };
            let Some(ppa) = Self::allocate_in_region(
                &self.obs,
                self.device.as_ref(),
                &self.config,
                region,
                &mut inner.objects,
                &mut inner.meta,
                at,
            ) else {
                full_regions.push(rid);
                first_err.get_or_insert(NoFtlError::RegionFull { region: rid });
                continue;
            };
            let meta = PageMetadata::new(*obj, *page).with_payload_checksum(data);
            let mut tag = Self::region_tag(&inner.regions, &self.config, rid);
            if let Some(class) = class {
                tag.class = class;
            }
            let handle = self.queue.submit_tagged(
                FlashCommand::Program { addr: ppa, data: data.clone(), meta },
                at,
                tag,
            );
            let completion = self.queue.wait(handle)?;
            match completion.result {
                Ok(out) => {
                    let completed = out.outcome.completed_at;
                    done = done.max(completed);
                    Self::commit_program(
                        self.device.as_ref(),
                        inner,
                        *obj,
                        *page,
                        ppa,
                        at,
                        completed,
                    )?;
                }
                Err(e) => {
                    // The physical page may be torn but is never mapped;
                    // GC or mount-time recovery reclaims it.
                    first_err.get_or_insert(e.into());
                }
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(done),
        }
    }

    /// Write a batch of pages through a bounded completion-driven
    /// pipeline: up to `window` pages are kept in flight via
    /// [`NoFtl::submit_write`], and each further page is issued at the
    /// completion instant of the oldest outstanding one — the behaviour
    /// of a depth-limited host driver.  With `window >= dies` this
    /// reproduces [`NoFtl::write_batch`]'s fan-out timing exactly while
    /// holding only `window` submissions outstanding.
    ///
    /// The returned time is the **maximum completion across the whole
    /// window**, not the last page's: under queue-aware placement a later
    /// page steered to an idle die can complete before an earlier page
    /// queued behind a busy one.
    ///
    /// On failure the pipeline drains its outstanding completions (so
    /// none is leaked), keeps every already-committed translation — the
    /// same torn-tail semantics as `write_batch` — and returns the first
    /// error.
    pub fn write_windowed(
        &self,
        writes: &[(ObjectId, u64, Vec<u8>)],
        at: SimTime,
        window: usize,
    ) -> Result<SimTime> {
        let window_cap = window.max(1);
        let mut inflight: std::collections::VecDeque<CmdHandle> =
            std::collections::VecDeque::with_capacity(window_cap);
        let mut clock = at;
        let mut done = at;
        let mut failure: Option<NoFtlError> = None;
        for (obj, page, data) in writes {
            if let Some(oldest) =
                (inflight.len() == window_cap).then(|| inflight.pop_front()).flatten()
            {
                match self.wait_io(oldest) {
                    Ok((_, completed)) => {
                        done = done.max(completed);
                        clock = clock.max(completed);
                    }
                    Err(e) => {
                        failure = Some(e);
                        break;
                    }
                }
            }
            match self.submit_write(*obj, *page, data, clock) {
                Ok(handle) => {
                    inflight.push_back(handle);
                    self.obs.note_window_occupancy(inflight.len() as u64);
                }
                Err(e) => {
                    failure = Some(e);
                    break;
                }
            }
        }
        for handle in inflight {
            match self.wait_io(handle) {
                Ok((_, completed)) => done = done.max(completed),
                Err(e) => failure = failure.or(Some(e)),
            }
        }
        match failure {
            Some(e) => Err(e),
            None => {
                if !writes.is_empty() {
                    self.obs.note_window_done(writes.len() as u64, at, done);
                }
                Ok(done)
            }
        }
    }

    /// Read a batch of pages through the same bounded completion-driven
    /// pipeline as [`NoFtl::write_windowed`]: up to `window` reads are
    /// kept in flight via [`NoFtl::submit_read`], and each further read
    /// is issued at the completion instant of the oldest outstanding one.
    /// This is the path KV compaction run-merges, B⁺-tree range scans and
    /// heap scans use to overlap their page fetches across dies instead
    /// of reading one page at a time.
    ///
    /// Returns the payloads **in request order** and the maximum
    /// completion across the whole window.  On failure the pipeline
    /// drains its outstanding completions and returns the first error.
    pub fn read_windowed(
        &self,
        reads: &[(ObjectId, u64)],
        at: SimTime,
        window: usize,
    ) -> Result<(Vec<Vec<u8>>, SimTime)> {
        self.read_windowed_with(reads, at, window, None)
    }

    /// [`NoFtl::read_windowed`] with every command's service class forced
    /// to `class` (e.g. `Background` for KV compaction merge input).
    pub fn read_windowed_classed(
        &self,
        reads: &[(ObjectId, u64)],
        at: SimTime,
        window: usize,
        class: ServiceClass,
    ) -> Result<(Vec<Vec<u8>>, SimTime)> {
        self.read_windowed_with(reads, at, window, Some(class))
    }

    fn read_windowed_with(
        &self,
        reads: &[(ObjectId, u64)],
        at: SimTime,
        window: usize,
        class: Option<ServiceClass>,
    ) -> Result<(Vec<Vec<u8>>, SimTime)> {
        let window_cap = window.max(1);
        let mut inflight: std::collections::VecDeque<(usize, CmdHandle)> =
            std::collections::VecDeque::with_capacity(window_cap);
        let mut results: Vec<Vec<u8>> = vec![Vec::new(); reads.len()];
        let mut clock = at;
        let mut done = at;
        let mut failure: Option<NoFtlError> = None;
        for (idx, (obj, page)) in reads.iter().enumerate() {
            if let Some((slot, oldest)) =
                (inflight.len() == window_cap).then(|| inflight.pop_front()).flatten()
            {
                match self.wait_io(oldest) {
                    Ok((data, completed)) => {
                        results[slot] = data;
                        done = done.max(completed);
                        clock = clock.max(completed);
                    }
                    Err(e) => {
                        failure = Some(e);
                        break;
                    }
                }
            }
            match self.submit_read_with(*obj, *page, clock, class) {
                Ok(handle) => {
                    inflight.push_back((idx, handle));
                    self.obs.note_read_window_occupancy(inflight.len() as u64);
                }
                Err(e) => {
                    failure = Some(e);
                    break;
                }
            }
        }
        for (slot, handle) in inflight {
            match self.wait_io(handle) {
                Ok((data, completed)) => {
                    results[slot] = data;
                    done = done.max(completed);
                }
                Err(e) => failure = failure.or(Some(e)),
            }
        }
        match failure {
            Some(e) => Err(e),
            None => {
                if !reads.is_empty() {
                    self.obs.note_read_window_done(reads.len() as u64, at, done);
                }
                Ok((results, done))
            }
        }
    }

    /// Submit an asynchronous read of a logical page, issued at `at`.
    ///
    /// The returned handle is claimed with [`NoFtl::wait_io`], which
    /// yields the payload and the completion time.  The manager lock is
    /// held across translation *and* the device read — the same atomicity
    /// the blocking [`NoFtl::read`] provides — so a concurrent writer's
    /// GC can never erase the translated page out from under the read.
    /// Concurrent NoFtl clients therefore serialize on the manager while
    /// reads issued at the same `at` on different dies still overlap in
    /// simulated time; clients that want lock-free die parallelism drive
    /// a [`CommandQueue`] over the device directly.
    pub fn submit_read(&self, obj: ObjectId, page: u64, at: SimTime) -> Result<CmdHandle> {
        self.submit_read_with(obj, page, at, None)
    }

    fn submit_read_with(
        &self,
        obj: ObjectId,
        page: u64,
        at: SimTime,
        class: Option<ServiceClass>,
    ) -> Result<CmdHandle> {
        let mut inner = self.lock_inner();
        let inner = &mut *inner;
        let (ppa, rid) = {
            let state = Self::object_mut(&mut inner.objects, obj)?;
            let ppa =
                state.translate(page).ok_or(NoFtlError::PageNotWritten { object: obj, page })?;
            state.counters.reads += 1;
            (ppa, state.region)
        };
        let mut tag = Self::region_tag(&inner.regions, &self.config, rid);
        if let Some(class) = class {
            tag.class = class;
        }
        let handle = self.queue.submit_tagged(FlashCommand::Read { addr: ppa }, at, tag);
        let completion = self.queue.wait(handle)?;
        match completion.result {
            Ok(out) => {
                let completed = out.outcome.completed_at;
                let rid = Self::object_ref(&inner.objects, obj)?.region;
                let region = Self::region_mut(&mut inner.regions, rid)?;
                region.stats.host_reads += 1;
                region.stats.read_latency_sum += completed - at;
                self.lock_pending_io()
                    .insert(handle.seq(), PendingIo { data: out.data, completed_at: completed });
                Ok(handle)
            }
            Err(e) => Err(e.into()),
        }
    }

    /// Submit an asynchronous (out-of-place) write of a logical page,
    /// issued at `at`.  The translation switches at submission — a
    /// subsequent read observes the new version — and [`NoFtl::wait_io`]
    /// yields the completion time the caller must charge.
    ///
    /// Unlike `submit_read`, the manager lock is held across the program:
    /// allocation and translation commit must be atomic with respect to
    /// GC (a relocated-then-erased target would otherwise be committed).
    /// Concurrent writers therefore serialize on the manager while their
    /// programs still overlap in *simulated* time via the shared issue
    /// time; use [`NoFtl::write_batch`] to fan many pages out at once.
    pub fn submit_write(
        &self,
        obj: ObjectId,
        page: u64,
        data: &[u8],
        at: SimTime,
    ) -> Result<CmdHandle> {
        self.submit_write_with(obj, page, data, at, None)
    }

    fn submit_write_with(
        &self,
        obj: ObjectId,
        page: u64,
        data: &[u8],
        at: SimTime,
        class: Option<ServiceClass>,
    ) -> Result<CmdHandle> {
        self.check_page_size(data)?;
        let mut inner = self.lock_inner();
        let inner = &mut *inner;
        let rid = Self::object_ref(&inner.objects, obj)?.region;
        let ppa = {
            let region = Self::region_mut(&mut inner.regions, rid)?;
            Self::allocate_in_region(
                &self.obs,
                self.device.as_ref(),
                &self.config,
                region,
                &mut inner.objects,
                &mut inner.meta,
                at,
            )
            .ok_or(NoFtlError::RegionFull { region: rid })?
        };
        let meta = PageMetadata::new(obj, page).with_payload_checksum(data);
        let mut tag = Self::region_tag(&inner.regions, &self.config, rid);
        if let Some(class) = class {
            tag.class = class;
        }
        let handle = self.queue.submit_tagged(
            FlashCommand::Program { addr: ppa, data: data.to_vec(), meta },
            at,
            tag,
        );
        let completion = self.queue.wait(handle)?;
        match completion.result {
            Ok(out) => {
                let completed = out.outcome.completed_at;
                Self::commit_program(self.device.as_ref(), inner, obj, page, ppa, at, completed)?;
                self.lock_pending_io()
                    .insert(handle.seq(), PendingIo { data: Vec::new(), completed_at: completed });
                Ok(handle)
            }
            Err(e) => Err(e.into()),
        }
    }

    /// Claim a completed asynchronous I/O: the payload (empty for writes)
    /// and the completion time.  Fails for a handle that was never
    /// returned by `submit_read`/`submit_write` or was already claimed.
    pub fn wait_io(&self, handle: CmdHandle) -> Result<(Vec<u8>, SimTime)> {
        match self.lock_pending_io().remove(&handle.seq()) {
            Some(io) => Ok((io.data, io.completed_at)),
            None => Err(flash_sim::FlashError::UnknownHandle { handle: handle.seq() }.into()),
        }
    }

    /// Submission counters of the device-level queue backing this
    /// manager.  The queue itself is private: an external `poll`/`drain`
    /// could steal completions the manager's own submit paths are about
    /// to claim.  Clients wanting a raw queue create their own
    /// [`CommandQueue`] over [`NoFtl::device`] — queues are independent.
    pub fn io_queue_stats(&self) -> flash_sim::QueueStats {
        self.queue.stats()
    }

    /// Atomically write a batch of pages: either all of them become
    /// visible or none does.
    ///
    /// This exploits NoFTL's direct control over out-of-place updates
    /// (advantage (iv) in the paper): the new versions are programmed to
    /// freshly allocated pages first, and only if *all* programs succeed
    /// are the address translations switched and the old versions
    /// invalidated.  On any failure the freshly written pages are marked
    /// invalid and the previous versions remain visible.
    pub fn write_atomic(
        &self,
        writes: &[(ObjectId, u64, Vec<u8>)],
        at: SimTime,
    ) -> Result<SimTime> {
        for (_, _, data) in writes {
            self.check_page_size(data)?;
        }
        let mut inner = self.lock_inner();
        let inner = &mut *inner;
        let mut staged: Vec<(ObjectId, u64, PageAddr, SimTime)> = Vec::with_capacity(writes.len());
        let mut failure: Option<NoFtlError> = None;
        for (obj, page, data) in writes {
            let rid = match Self::object_ref(&inner.objects, *obj) {
                Ok(o) => o.region,
                Err(e) => {
                    failure = Some(e);
                    break;
                }
            };
            let region = match Self::region_mut(&mut inner.regions, rid) {
                Ok(r) => r,
                Err(e) => {
                    failure = Some(e);
                    break;
                }
            };
            let Some(ppa) = Self::allocate_in_region(
                &self.obs,
                self.device.as_ref(),
                &self.config,
                region,
                &mut inner.objects,
                &mut inner.meta,
                at,
            ) else {
                failure = Some(NoFtlError::RegionFull { region: rid });
                break;
            };
            let meta = PageMetadata::new(*obj, *page).with_payload_checksum(data);
            let tag = Self::region_tag(&inner.regions, &self.config, rid);
            match self.device.program_page_tagged(ppa, data, meta, at, tag) {
                Ok(out) => staged.push((*obj, *page, ppa, out.completed_at)),
                Err(e) => {
                    failure = Some(e.into());
                    break;
                }
            }
        }
        if let Some(err) = failure {
            // Abort: the staged versions never become visible.
            for (_, _, ppa, _) in staged {
                let _ = self.device.mark_invalid(ppa);
            }
            return Err(err);
        }
        // Commit: switch the translations.
        let mut done = at;
        for (obj, page, ppa, completed) in staged {
            done = done.max(completed);
            Self::commit_program(self.device.as_ref(), inner, obj, page, ppa, at, completed)?;
        }
        Ok(done)
    }

    /// Release a logical page: its flash page becomes invalid and the
    /// translation is removed.
    pub fn free_page(&self, obj: ObjectId, page: u64) -> Result<()> {
        let mut inner = self.lock_inner();
        let inner = &mut *inner;
        let (old, rid) = {
            let state = Self::object_mut(&mut inner.objects, obj)?;
            (state.clear_translation(page), state.region)
        };
        if let Some(old) = old {
            let _ = self.device.mark_invalid(old);
            Self::region_mut(&mut inner.regions, rid)?.record_invalidation(old);
        }
        Ok(())
    }

    /// Aggregate statistics over all regions.
    pub fn stats(&self) -> NoFtlStats {
        let inner = self.lock_inner();
        let mut agg = NoFtlStats::default();
        for region in inner.regions.iter().flatten() {
            agg.accumulate(&region.stats);
        }
        agg
    }

    // ------------------------------------------------------------------
    // Crash consistency: checkpoint & mount
    // ------------------------------------------------------------------

    /// Sequence number of the newest completed region-metadata checkpoint
    /// (0 if none has been taken yet).
    pub fn checkpoint_seq(&self) -> u64 {
        self.lock_inner().meta.seq
    }

    /// The region hosting the region-metadata journal, if a checkpoint has
    /// been taken.
    pub fn meta_region(&self) -> Option<RegionId> {
        self.lock_inner().meta.region
    }

    /// Pick (and if necessary create) the region hosting checkpoint
    /// chunks: a dedicated one-die region when unassigned dies exist,
    /// otherwise the first live region.
    fn ensure_meta_region(&self) -> Result<RegionId> {
        {
            let mut inner = self.lock_inner();
            if let Some(rid) = inner.meta.region {
                return Ok(rid);
            }
            if inner.free_dies.is_empty() {
                // Journal and checkpoint programs are die-time injected
                // into whichever region hosts them, so prefer the least
                // latency-sensitive one.  Ties keep declaration order,
                // which on a device without service classes reduces to
                // "the first live region" — the pre-arbiter behavior.
                let rank = |class: ServiceClass| match class {
                    ServiceClass::Background => 0u8,
                    ServiceClass::Throughput => 1,
                    ServiceClass::Latency => 2,
                };
                let picked = inner
                    .regions
                    .iter()
                    .flatten()
                    .min_by_key(|r| rank(r.service_class(&self.config)))
                    .map(|r| r.id)
                    .ok_or_else(|| NoFtlError::Recovery {
                        message: "no free die and no region available for the metadata journal"
                            .to_string(),
                    })?;
                inner.meta.region = Some(picked);
                return Ok(picked);
            }
        }
        let rid = match self.create_region(RegionSpec::named(META_REGION_NAME).with_die_count(1)) {
            Ok(rid) => rid,
            // Present from a previous incarnation (e.g. after a remount).
            Err(NoFtlError::RegionExists { .. }) => {
                self.region_id(META_REGION_NAME).ok_or_else(|| NoFtlError::Recovery {
                    message: format!("region '{META_REGION_NAME}' exists but has no id entry"),
                })?
            }
            Err(e) => return Err(e),
        };
        // analyzer:allow(lock_order) two disjoint lock sections: the probe guard above is scoped out before create_region runs, then the choice is recorded
        self.lock_inner().meta.region = Some(rid);
        Ok(rid)
    }

    /// Checkpoint the region metadata: region specs and die assignment,
    /// the free-die pool, and the full object directory (names, regions,
    /// access counters and logical-to-physical page maps) are serialised
    /// and programmed into the metadata region as self-describing chunk
    /// pages under the reserved [`META_OBJECT_ID`].
    ///
    /// [`NoFtl::mount`] replays the newest complete checkpoint and then
    /// rebuilds everything written after it from out-of-band page
    /// metadata (mount always performs a full OOB scan; the checkpoint's
    /// job is the *directory* — region and object identity — which the
    /// OOB records alone cannot provide).  A checkpoint is never required
    /// for data durability — only DDL (regions/objects created after the
    /// last checkpoint) needs a new checkpoint to survive a crash with
    /// its name and placement intact.
    ///
    /// The previous checkpoint's chunk pages are invalidated only after
    /// every chunk of the new one is durable, so a crash at any instant
    /// leaves at least one complete checkpoint on flash.
    ///
    /// Returns the completion time of the slowest chunk program.
    pub fn checkpoint(&self, at: SimTime) -> Result<SimTime> {
        let rid = self.ensure_meta_region()?;
        let mut inner = self.lock_inner();
        let inner = &mut *inner;
        let seq = inner.meta.seq + 1;
        let image = CheckpointImage {
            seq,
            epoch_watermark: self.device.current_epoch(),
            meta_region: Some(rid),
            free_dies: inner.free_dies.clone(),
            dirty_dies: self
                .device
                .geometry()
                .dies()
                .filter(|d| self.device.die_touched(*d))
                .collect(),
            replication: self.device.replication_blob(),
            regions: inner
                .regions
                .iter()
                .flatten()
                .map(|r| RegionImage {
                    id: r.id,
                    spec: r.spec.clone(),
                    dies: r.die_ids(),
                    objects: r.objects.clone(),
                })
                .collect(),
            objects: inner
                .objects
                .iter()
                .enumerate()
                .filter_map(|(id, o)| {
                    o.as_ref().map(|state| ObjectImage {
                        id: id as ObjectId,
                        name: state.name.clone(),
                        region: state.region,
                        counters: state.counters,
                        map: state
                            .map
                            .iter()
                            .enumerate()
                            .filter_map(|(lp, ppa)| ppa.map(|p| (lp as u64, p)))
                            .collect(),
                    })
                })
                .collect(),
        };
        let blob = image.encode();
        let page_size = self.device.geometry().page_size as usize;
        let cap = page_size - recovery::CHUNK_HEADER;
        let chunk_count = blob.len().div_ceil(cap).max(1) as u32;
        let mut done = at;
        // Phase 1: program every new chunk into staging.  `meta.map` (the
        // previous checkpoint) is left untouched so its pages stay valid —
        // a crash anywhere in this loop loses only the half-written new
        // checkpoint, never the old one.  GC may relocate either
        // generation concurrently; `retranslate` tracks both.
        inner.meta.staging = vec![None; chunk_count as usize];
        for index in 0..chunk_count {
            let lo = index as usize * cap;
            let hi = (lo + cap).min(blob.len());
            let page = recovery::encode_chunk(seq, index, chunk_count, &blob[lo..hi], page_size);
            let ppa = {
                let region = Self::region_mut(&mut inner.regions, rid)?;
                Self::allocate_in_region(
                    &self.obs,
                    self.device.as_ref(),
                    &self.config,
                    region,
                    &mut inner.objects,
                    &mut inner.meta,
                    at,
                )
                .ok_or(NoFtlError::RegionFull { region: rid })?
            };
            let meta = PageMetadata::new(META_OBJECT_ID, index as u64).with_payload_checksum(&page);
            // Checkpoint chunks are durability traffic even when the
            // journal falls back to a regular region: never budget-defer.
            let tag = {
                let mut t = Self::region_tag(&inner.regions, &self.config, rid);
                t.exempt = true;
                t
            };
            let out = self.device.program_page_tagged(ppa, &page, meta, at, tag)?;
            done = done.max(out.completed_at);
            inner.meta.staging[index as usize] = Some(ppa);
        }
        // Phase 2: the new checkpoint is fully durable — retire the old
        // chunk pages and promote the staged ones.
        let old = std::mem::replace(&mut inner.meta.map, std::mem::take(&mut inner.meta.staging));
        for page in old.into_iter().flatten() {
            let _ = self.device.mark_invalid(page);
            Self::region_mut(&mut inner.regions, rid)?.record_invalidation(page);
        }
        inner.meta.seq = seq;
        Ok(done)
    }

    /// Mount a device: rebuild the full storage-manager state from the
    /// newest complete checkpoint plus the out-of-band page metadata of
    /// everything written after it.
    ///
    /// The mount performs a full OOB scan (reading page payloads where a
    /// checksum must be verified), discards torn pages, breaks duplicate
    /// mappings by write epoch and reconstructs per-die allocation state
    /// from the physical block states.  Objects created after the last
    /// checkpoint have no directory entry; their pages are preserved under
    /// a synthesised `__orphan_<id>` name and reported in the
    /// [`MountReport`].
    ///
    /// An empty device mounts as a fresh manager; a device that holds data
    /// but no complete checkpoint fails with [`NoFtlError::NoCheckpoint`].
    pub fn mount(
        device: Arc<dyn FlashBackend>,
        config: NoFtlConfig,
        at: SimTime,
    ) -> Result<(NoFtl, MountReport)> {
        config
            .validate()
            .map_err(|e| NoFtlError::Recovery { message: format!("invalid config: {e}") })?;
        let geo = *device.geometry();
        let verify_payloads = device.stores_data();
        let mut report = MountReport::default();
        let mut now = at;

        // ---- Phase 1: full OOB scan ---------------------------------
        // (object, logical page) → (epoch, ppa) winners, losers to
        // invalidate, and checkpoint chunks grouped by sequence number.
        let mut winners: HashMap<(ObjectId, u64), (u64, PageAddr)> = HashMap::new();
        let mut losers: Vec<PageAddr> = Vec::new();
        #[allow(clippy::type_complexity)]
        let mut chunks: HashMap<u64, HashMap<u32, (u32, u64, PageAddr, Vec<u8>)>> = HashMap::new();
        for die in geo.dies() {
            // Partial-device mount: a die that was never programmed or
            // erased (per the device's touched flags, which survive
            // snapshot/restore, and the checkpoint's dirty-die directory)
            // holds no pages, no chunks and no allocation state worth
            // scanning — `RegionDie::rebuild` below reconstructs it from
            // block states without OOB reads.
            if !device.die_touched(die) {
                report.dies_skipped += 1;
                continue;
            }
            for plane in 0..geo.planes_per_die {
                for block in 0..geo.blocks_per_plane {
                    let baddr = BlockAddr::new(die, plane, block);
                    let info = device.block_info(baddr)?;
                    if info.state == flash_sim::BlockState::Bad {
                        continue;
                    }
                    for page in 0..info.write_ptr {
                        let addr = baddr.page(page);
                        if device.page_state(addr)? != PageState::Valid {
                            continue;
                        }
                        report.pages_scanned += 1;
                        let (meta, out) = device.read_metadata(addr, at)?;
                        now = now.max(out.completed_at);
                        let Some(meta) = meta else {
                            // OOB destroyed (early tear / interrupted
                            // erase): nothing recoverable here.
                            report.unreadable_metadata_pages += 1;
                            continue;
                        };
                        if meta.object_id == META_OBJECT_ID {
                            let (payload, _, out) = device.read_page(addr, at)?;
                            now = now.max(out.completed_at);
                            if !meta.payload_matches(&payload) {
                                report.torn_pages_discarded += 1;
                                let _ = device.mark_invalid(addr);
                                continue;
                            }
                            let Some((seq, index, count, _)) = recovery::decode_chunk(&payload)
                            else {
                                report.torn_pages_discarded += 1;
                                let _ = device.mark_invalid(addr);
                                continue;
                            };
                            let by_idx = chunks.entry(seq).or_default();
                            match by_idx.get(&index) {
                                Some((_, epoch, _, _)) if *epoch >= meta.epoch => {
                                    losers.push(addr);
                                }
                                _ => {
                                    if let Some((_, _, old, _)) =
                                        by_idx.insert(index, (count, meta.epoch, addr, payload))
                                    {
                                        losers.push(old);
                                    }
                                }
                            }
                            continue;
                        }
                        if verify_payloads && meta.checksum != 0 {
                            let (payload, _, out) = device.read_page(addr, at)?;
                            now = now.max(out.completed_at);
                            if !meta.payload_matches(&payload) {
                                report.torn_pages_discarded += 1;
                                let _ = device.mark_invalid(addr);
                                continue;
                            }
                        }
                        match winners.entry((meta.object_id, meta.logical_page)) {
                            std::collections::hash_map::Entry::Vacant(e) => {
                                e.insert((meta.epoch, addr));
                            }
                            std::collections::hash_map::Entry::Occupied(mut e) => {
                                if meta.epoch > e.get().0 {
                                    losers.push(e.get().1);
                                    e.insert((meta.epoch, addr));
                                } else {
                                    // Older version — or an epoch tie from a
                                    // torn copyback, where both copies are
                                    // identical and either may win.
                                    losers.push(addr);
                                }
                            }
                        }
                    }
                }
            }
        }

        // ---- Phase 2: pick the newest complete checkpoint -----------
        let mut best: Option<CheckpointImage> = None;
        let mut best_chunks: Vec<Option<PageAddr>> = Vec::new();
        let mut seqs: Vec<u64> = chunks.keys().copied().collect();
        seqs.sort_unstable_by(|a, b| b.cmp(a));
        for seq in seqs {
            let by_idx = &chunks[&seq];
            let Some(count) = by_idx.values().map(|(count, _, _, _)| *count).next() else {
                continue;
            };
            if count == 0 || by_idx.len() != count as usize {
                continue;
            }
            let mut blob = Vec::new();
            let mut addrs = Vec::with_capacity(count as usize);
            let mut complete = true;
            for index in 0..count {
                match by_idx.get(&index).and_then(|(_, _, addr, payload)| {
                    recovery::decode_chunk(payload).map(|(_, _, _, body)| (*addr, body.to_vec()))
                }) {
                    Some((addr, body)) => {
                        blob.extend_from_slice(&body);
                        addrs.push(Some(addr));
                    }
                    None => {
                        complete = false;
                        break;
                    }
                }
            }
            if !complete {
                continue;
            }
            if let Some(image) = CheckpointImage::decode(&blob) {
                best = Some(image);
                best_chunks = addrs;
                break;
            }
        }
        // Chunk pages not part of the chosen checkpoint are stale.
        let chosen: std::collections::HashSet<PageAddr> =
            best_chunks.iter().flatten().copied().collect();
        for by_idx in chunks.values() {
            for (_, _, addr, _) in by_idx.values() {
                if !chosen.contains(addr) {
                    losers.push(*addr);
                }
            }
        }

        let Some(image) = best else {
            if winners.is_empty() {
                // Pristine device: a fresh manager.
                let noftl = NoFtl::new(device, config);
                report.completed_at = now;
                return Ok((noftl, report));
            }
            return Err(NoFtlError::NoCheckpoint);
        };
        report.checkpoint_seq = image.seq;

        // Hand the persisted replication state (mirror health + dirty
        // segment maps) back to the backend.  A checkpoint written before
        // replication existed carries no blob; the backend then treats
        // every non-source child as stale ("rebuild everything") rather
        // than trusting it silently.
        now = now.max(device.restore_replication(image.replication.as_deref(), now)?);

        // ---- Phase 3: rebuild regions, objects and the free pool ----
        let max_region = image.regions.iter().map(|r| r.id.0).max().unwrap_or(0) as usize;
        let mut regions: Vec<Option<RegionRuntime>> = (0..=max_region).map(|_| None).collect();
        let mut region_by_name = HashMap::new();
        let mut die_owner: HashMap<DieId, RegionId> = HashMap::new();
        for rimg in &image.regions {
            let mut rt =
                RegionRuntime::new(rimg.id, rimg.spec.clone(), device.as_ref(), Vec::new());
            for die in &rimg.dies {
                die_owner.insert(*die, rimg.id);
                rt.dies.push(RegionDie::rebuild(device.as_ref(), *die));
            }
            rt.objects = rimg.objects.clone();
            region_by_name.insert(rt.name.clone(), rimg.id);
            regions[rimg.id.0 as usize] = Some(rt);
        }
        let free_dies: Vec<DieId> = geo.dies().filter(|d| !die_owner.contains_key(d)).collect();

        let checkpoint_map: HashMap<(ObjectId, u64), PageAddr> = image
            .objects
            .iter()
            .flat_map(|o| o.map.iter().map(move |(lp, ppa)| ((o.id, *lp), *ppa)))
            .collect();
        let max_obj = image
            .objects
            .iter()
            .map(|o| o.id)
            .chain(winners.keys().map(|(obj, _)| *obj))
            .max()
            .unwrap_or(0) as usize;
        let mut objects: Vec<Option<ObjectState>> = (0..=max_obj).map(|_| None).collect();
        let mut object_by_name = HashMap::new();
        for oimg in &image.objects {
            let mut state = ObjectState::new(oimg.name.clone(), oimg.region);
            state.counters = oimg.counters;
            object_by_name.insert(oimg.name.clone(), oimg.id);
            objects[oimg.id as usize] = Some(state);
        }

        // Install the winning mappings; synthesise directory entries for
        // objects created after the checkpoint.
        let mut winner_list: Vec<((ObjectId, u64), (u64, PageAddr))> =
            winners.into_iter().collect();
        winner_list.sort_unstable_by_key(|((obj, lp), _)| (*obj, *lp));
        for ((obj, lp), (epoch, ppa)) in winner_list {
            if objects.get(obj as usize).map(|o| o.is_none()).unwrap_or(true) {
                let Some(rid) = die_owner.get(&ppa.die).copied() else {
                    // Page on a die no region owns (e.g. its region was
                    // dropped right before the crash): unreachable data.
                    losers.push(ppa);
                    continue;
                };
                let name = format!("__orphan_{obj}");
                objects[obj as usize] = Some(ObjectState::new(name.clone(), rid));
                object_by_name.insert(name, obj);
                if let Some(region) = regions[rid.0 as usize].as_mut() {
                    region.objects.push(obj);
                }
                report.orphaned_objects.push(obj);
            }
            // The entry was installed just above when missing; a `None`
            // here would mean the page's die has no owning region, and
            // that case already `continue`d.
            let Some(state) = objects[obj as usize].as_mut() else { continue };
            state.set_translation(lp, ppa);
            report.mapped_pages += 1;
            if epoch > image.epoch_watermark {
                report.pages_after_checkpoint += 1;
            } else if checkpoint_map.get(&(obj, lp)) != Some(&ppa) {
                // Same-epoch page at a new address: relocated by GC after
                // the checkpoint was taken.
                report.pages_after_checkpoint += 1;
            }
        }

        // ---- Phase 4: invalidate superseded physical pages ----------
        for addr in losers {
            let _ = device.mark_invalid(addr);
            if let Some(rid) = die_owner.get(&addr.die) {
                if let Some(region) = regions[rid.0 as usize].as_mut() {
                    region.record_invalidation(addr);
                }
            }
            report.stale_pages_invalidated += 1;
        }

        let meta = MetaDirectory {
            region: image.meta_region,
            map: best_chunks,
            staging: Vec::new(),
            seq: image.seq,
        };
        report.regions = image.regions.len();
        report.objects = image.objects.len();
        report.completed_at = now;
        let noftl = NoFtl {
            queue: CommandQueue::new(device.clone()),
            pending_io: Mutex::new(HashMap::new()),
            obs: CoreObs::new(Arc::clone(device.metrics())),
            device,
            config,
            inner: Mutex::new(Inner {
                regions,
                region_by_name,
                free_dies,
                objects,
                object_by_name,
                meta,
            }),
        };
        Ok((noftl, report))
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    fn check_page_size(&self, data: &[u8]) -> Result<()> {
        let expected = self.device.geometry().page_size;
        if !data.is_empty() && data.len() != expected as usize {
            return Err(NoFtlError::BadPageSize { expected, got: data.len() });
        }
        Ok(())
    }

    /// The arbiter tag for host traffic of region `rid`: the region's
    /// resolved service class (spec override or config default), keyed by
    /// region id so the device meters each region's channel budget
    /// separately.  Traffic of the metadata-journal region is
    /// durability-exempt — checkpoints are never budget-deferred.
    fn region_tag(regions: &[Option<RegionRuntime>], config: &NoFtlConfig, rid: RegionId) -> IoTag {
        let Ok(region) = Self::region_ref(regions, rid) else {
            return IoTag::default();
        };
        let class = region.service_class(config);
        if region.name == META_REGION_NAME {
            IoTag::durability(class, Some(rid.0))
        } else {
            IoTag::new(class, Some(rid.0))
        }
    }

    fn region_ref(regions: &[Option<RegionRuntime>], rid: RegionId) -> Result<&RegionRuntime> {
        regions
            .get(rid.0 as usize)
            .and_then(|r| r.as_ref())
            .ok_or_else(|| NoFtlError::UnknownRegion { region: format!("{rid:?}") })
    }

    fn region_mut(
        regions: &mut [Option<RegionRuntime>],
        rid: RegionId,
    ) -> Result<&mut RegionRuntime> {
        regions
            .get_mut(rid.0 as usize)
            .and_then(|r| r.as_mut())
            .ok_or_else(|| NoFtlError::UnknownRegion { region: format!("{rid:?}") })
    }

    fn object_ref(objects: &[Option<ObjectState>], obj: ObjectId) -> Result<&ObjectState> {
        objects
            .get(obj as usize)
            .and_then(|o| o.as_ref())
            .ok_or_else(|| NoFtlError::UnknownObject { object: obj.to_string() })
    }

    fn object_mut(objects: &mut [Option<ObjectState>], obj: ObjectId) -> Result<&mut ObjectState> {
        objects
            .get_mut(obj as usize)
            .and_then(|o| o.as_mut())
            .ok_or_else(|| NoFtlError::UnknownObject { object: obj.to_string() })
    }

    /// Allocate the next physical page for a host write in `region`,
    /// running GC when a die's free-block pool runs low.  Returns `None`
    /// when the region is completely full.
    ///
    /// The die is chosen by the region's
    /// [`PlacementPolicy`](crate::placement::PlacementPolicy): the policy
    /// produces a probe order over the region's dies (for the default
    /// [`RoundRobin`](crate::placement::RoundRobin) exactly the seed
    /// allocator's `next_die` stripe; for
    /// [`QueueAware`](crate::placement::QueueAware) sorted by the device's
    /// per-die load snapshots), and the allocator takes the first die in
    /// that order able to yield a page.  Every write path — single writes,
    /// `write_batch`, `write_atomic`, `submit_write`, rebalancing and the
    /// metadata journal — funnels through here, so a policy governs the
    /// complete write path of its region.
    fn allocate_in_region(
        obs: &CoreObs,
        device: &dyn FlashBackend,
        config: &NoFtlConfig,
        region: &mut RegionRuntime,
        objects: &mut [Option<ObjectState>],
        meta_dir: &mut MetaDirectory,
        at: SimTime,
    ) -> Option<PageAddr> {
        let pages_per_block = device.geometry().pages_per_block;
        let die_count = region.dies.len();
        if die_count == 0 {
            return None;
        }
        let kind = region.placement_kind(config);
        let policy = kind.policy();
        let stripe_die = region.next_die;
        // Probe order and load snapshots fill region-owned scratch
        // buffers (taken out for the borrow, put back below), so the
        // per-write path allocates nothing — as cheap as the seed
        // allocator's modular loop.
        let mut loads = std::mem::take(&mut region.load_scratch);
        loads.clear();
        if policy.needs_loads() {
            loads.extend(region.dies.iter().map(|d| device.die_load(d.die, at)));
        }
        let mut order = std::mem::take(&mut region.probe_scratch);
        policy.probe_order_into(die_count, region.next_die, at, &loads, &mut order);
        let mut picked = None;
        for (probe, &idx) in order.iter().enumerate() {
            if (region.dies[idx].free_blocks.len() as u32) <= config.gc_low_watermark {
                Self::gc_die(obs, device, config, region, objects, meta_dir, idx, at);
            }
            if let Some(ppa) =
                region.dies[idx].next_host_page(device, config.wear_leveling, pages_per_block)
            {
                region.next_die = (idx + 1) % die_count;
                obs.note_allocation(kind, probe as u64 + 1, idx, stripe_die, die_count);
                picked = Some(ppa);
                break;
            }
        }
        region.probe_scratch = order;
        region.load_scratch = loads;
        picked
    }

    /// Update the owner's translation after a page move (GC copyback or
    /// rebalance): regular objects through the directory, checkpoint
    /// chunks through the metadata journal map.
    fn retranslate(
        objects: &mut [Option<ObjectState>],
        meta_dir: &mut MetaDirectory,
        meta: &PageMetadata,
        src: PageAddr,
        dst: PageAddr,
    ) {
        if meta.object_id == META_OBJECT_ID {
            let idx = meta.logical_page as usize;
            if meta_dir.map.get(idx).copied().flatten() == Some(src) {
                meta_dir.map[idx] = Some(dst);
            }
            if meta_dir.staging.get(idx).copied().flatten() == Some(src) {
                meta_dir.staging[idx] = Some(dst);
            }
        } else if let Some(Some(obj)) = objects.get_mut(meta.object_id as usize) {
            if obj.translate(meta.logical_page) == Some(src) {
                obj.set_translation(meta.logical_page, dst);
            }
        }
    }

    /// Run garbage collection on one die of a region until its free-block
    /// pool reaches the high watermark or no more victims exist.
    #[allow(clippy::too_many_arguments)]
    fn gc_die(
        obs: &CoreObs,
        device: &dyn FlashBackend,
        config: &NoFtlConfig,
        region: &mut RegionRuntime,
        objects: &mut [Option<ObjectState>],
        meta_dir: &mut MetaDirectory,
        die_idx: usize,
        at: SimTime,
    ) {
        region.stats.gc_runs += 1;
        let (cb_before, er_before) = (region.stats.gc_copybacks, region.stats.gc_erases);
        let high = config.gc_high_watermark as usize;
        let mut guard = 0u32;
        while region.dies[die_idx].free_blocks.len() < high {
            guard += 1;
            if guard > device.geometry().blocks_per_die() * 2 {
                break;
            }
            let now_seq = region.invalidate_seq;
            let candidates: Vec<GcCandidate> = {
                let die = &region.dies[die_idx];
                die.used_blocks
                    .iter()
                    .enumerate()
                    .filter_map(|(slot, b)| {
                        let info = device.block_info(*b).ok()?;
                        let seq = region
                            .block_invalidate_seq
                            .get(&(b.die.0, b.plane, b.block))
                            .copied()
                            .unwrap_or(0);
                        GcCandidate::from_info(slot, &info, seq)
                    })
                    .collect()
            };
            let Some(slot) = select_victim(config.gc_policy, &candidates, now_seq) else {
                break;
            };
            let victim = region.dies[die_idx].used_blocks[slot];
            if !Self::collect_block(device, config, region, objects, meta_dir, die_idx, victim, at)
            {
                break;
            }
        }
        obs.note_gc(
            u64::from(region.dies[die_idx].die.0),
            region.stats.gc_copybacks - cb_before,
            region.stats.gc_erases - er_before,
            at,
        );
        Self::maybe_static_wl(device, config, region, objects, meta_dir, die_idx, at);
    }

    /// Relocate all valid pages of `victim` via copyback (updating the
    /// owning objects' translations) and erase it.  Returns `false` if the
    /// block could not be fully collected.
    #[allow(clippy::too_many_arguments)]
    fn collect_block(
        device: &dyn FlashBackend,
        config: &NoFtlConfig,
        region: &mut RegionRuntime,
        objects: &mut [Option<ObjectState>],
        meta_dir: &mut MetaDirectory,
        die_idx: usize,
        victim: flash_sim::BlockAddr,
        at: SimTime,
    ) -> bool {
        let pages_per_block = device.geometry().pages_per_block;
        for page in 0..pages_per_block {
            let src = victim.page(page);
            match device.page_state(src) {
                Ok(PageState::Valid) => {}
                Ok(_) => continue,
                Err(_) => return false,
            }
            // GC relocation is maintenance traffic: tagged `Background`
            // so the arbiter budgets its channel time (the copyback
            // itself is die-internal and takes no channel).
            let gc_tag = IoTag::background(Some(region.id.0));
            let Ok((meta, _)) = device.read_metadata_tagged(src, at, gc_tag) else {
                return false;
            };
            let Some(meta) = meta else { continue };
            let Some(dst) =
                region.dies[die_idx].next_gc_page(device, config.wear_leveling, pages_per_block)
            else {
                return false;
            };
            if device.copyback(src, dst, at).is_err() {
                return false;
            }
            region.stats.gc_copybacks += 1;
            Self::retranslate(objects, meta_dir, &meta, src, dst);
        }
        match device.erase_block(victim, at) {
            Ok(_) => {
                region.stats.gc_erases += 1;
                let die = &mut region.dies[die_idx];
                die.used_blocks.retain(|b| *b != victim);
                die.free_blocks.push(victim);
                true
            }
            Err(e) if e.is_permanent() => {
                region.dies[die_idx].used_blocks.retain(|b| *b != victim);
                false
            }
            Err(_) => false,
        }
    }

    /// Threshold-based static wear leveling within one die of a region.
    fn maybe_static_wl(
        device: &dyn FlashBackend,
        config: &NoFtlConfig,
        region: &mut RegionRuntime,
        objects: &mut [Option<ObjectState>],
        meta_dir: &mut MetaDirectory,
        die_idx: usize,
        at: SimTime,
    ) {
        if !matches!(config.wear_leveling, crate::config::WearLevelingPolicy::Static { .. }) {
            return;
        }
        let counts: Vec<(flash_sim::BlockAddr, u64, flash_sim::BlockState)> = {
            let die = &region.dies[die_idx];
            die.used_blocks
                .iter()
                .chain(die.free_blocks.iter())
                .filter_map(|b| device.block_info(*b).ok().map(|i| (*b, i.erase_count, i.state)))
                .collect()
        };
        let Some(max) = counts.iter().map(|(_, c, _)| *c).max() else { return };
        let Some(min) = counts.iter().map(|(_, c, _)| *c).min() else { return };
        if !needs_static_wl(config.wear_leveling, min, max) {
            return;
        }
        let victim = counts
            .iter()
            .filter(|(b, _, s)| {
                *s == flash_sim::BlockState::Full && region.dies[die_idx].used_blocks.contains(b)
            })
            .min_by_key(|(_, c, _)| *c)
            .map(|(b, _, _)| *b);
        if let Some(victim) = victim {
            if Self::collect_block(device, config, region, objects, meta_dir, die_idx, victim, at) {
                region.stats.wl_migrations += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{GcPolicy, WearLevelingPolicy};
    use flash_sim::{DeviceBuilder, FlashGeometry, NandDevice, TimingModel};

    fn make_noftl() -> NoFtl {
        let device = Arc::new(
            DeviceBuilder::new(FlashGeometry::small_test()).timing(TimingModel::mlc_2015()).build(),
        );
        NoFtl::new(device, NoFtlConfig::default())
    }

    fn page(byte: u8) -> Vec<u8> {
        vec![byte; 4096]
    }

    #[test]
    fn create_region_takes_dies_from_pool() {
        let noftl = make_noftl();
        assert_eq!(noftl.free_die_count(), 4);
        let r = noftl.create_region(RegionSpec::named("rgA").with_die_count(3)).unwrap();
        assert_eq!(noftl.free_die_count(), 1);
        assert_eq!(noftl.region_dies(r).unwrap().len(), 3);
        assert_eq!(noftl.region_name(r).unwrap(), "rgA");
        assert_eq!(noftl.region_ids(), vec![r]);
    }

    #[test]
    fn duplicate_region_name_is_rejected() {
        let noftl = make_noftl();
        noftl.create_region(RegionSpec::named("rgA").with_die_count(1)).unwrap();
        let err = noftl.create_region(RegionSpec::named("rgA").with_die_count(1)).unwrap_err();
        assert!(matches!(err, NoFtlError::RegionExists { .. }));
    }

    #[test]
    fn region_creation_fails_without_enough_dies() {
        let noftl = make_noftl();
        let err = noftl.create_region(RegionSpec::named("rgBig").with_die_count(5)).unwrap_err();
        assert!(matches!(err, NoFtlError::NotEnoughDies { requested: 5, available: 4 }));
    }

    #[test]
    fn regions_spread_across_channels() {
        let noftl = make_noftl();
        let geo = *noftl.device().geometry();
        let r = noftl.create_region(RegionSpec::named("rg").with_die_count(2)).unwrap();
        let dies = noftl.region_dies(r).unwrap();
        let channels: std::collections::HashSet<u32> =
            dies.iter().map(|d| geo.channel_of_die(*d)).collect();
        assert_eq!(channels.len(), 2, "two dies should land on two channels");
    }

    #[test]
    fn max_channels_limits_channel_spread() {
        let noftl = make_noftl();
        let geo = *noftl.device().geometry();
        let r = noftl
            .create_region(RegionSpec::named("rg").with_die_count(2).with_max_channels(1))
            .unwrap();
        let dies = noftl.region_dies(r).unwrap();
        let channels: std::collections::HashSet<u32> =
            dies.iter().map(|d| geo.channel_of_die(*d)).collect();
        assert_eq!(channels.len(), 1);
    }

    #[test]
    fn write_read_roundtrip_and_stats() {
        let noftl = make_noftl();
        let r = noftl.create_region(RegionSpec::named("rg").with_die_count(2)).unwrap();
        let obj = noftl.create_object("t", r).unwrap();
        let done = noftl.write(obj, 7, &page(0xAA), SimTime::ZERO).unwrap();
        let (data, done2) = noftl.read(obj, 7, done).unwrap();
        assert_eq!(data, page(0xAA));
        assert!(done2 > done);
        let os = noftl.object_stats(obj).unwrap();
        assert_eq!(os.reads, 1);
        assert_eq!(os.writes, 1);
        assert_eq!(os.pages, 1);
        let rs = noftl.region_stats(r).unwrap();
        assert_eq!(rs.host_reads, 1);
        assert_eq!(rs.host_writes, 1);
        assert!(rs.avg_write_latency_us() > 0.0);
        let agg = noftl.stats();
        assert_eq!(agg.host_writes, 1);
    }

    #[test]
    fn overwrites_invalidate_previous_versions() {
        let noftl = make_noftl();
        let r = noftl.create_region(RegionSpec::named("rg").with_die_count(1)).unwrap();
        let obj = noftl.create_object("t", r).unwrap();
        let mut t = SimTime::ZERO;
        for i in 0..5u8 {
            t = noftl.write(obj, 0, &page(i), t).unwrap();
        }
        let (data, _) = noftl.read(obj, 0, t).unwrap();
        assert_eq!(data, page(4));
        assert_eq!(noftl.object_pages(obj).unwrap(), 1, "only one live page");
    }

    #[test]
    fn unwritten_page_read_fails() {
        let noftl = make_noftl();
        let r = noftl.create_region(RegionSpec::named("rg").with_die_count(1)).unwrap();
        let obj = noftl.create_object("t", r).unwrap();
        assert!(matches!(
            noftl.read(obj, 3, SimTime::ZERO),
            Err(NoFtlError::PageNotWritten { page: 3, .. })
        ));
    }

    #[test]
    fn unknown_object_and_region_errors() {
        let noftl = make_noftl();
        assert!(matches!(noftl.read(42, 0, SimTime::ZERO), Err(NoFtlError::UnknownObject { .. })));
        assert!(noftl.region_stats(RegionId(9)).is_err());
        assert!(noftl.create_object("x", RegionId(9)).is_err());
        assert!(noftl.create_object_in("x", "nope").is_err());
        assert!(noftl.object_id("nope").is_none());
    }

    #[test]
    fn duplicate_object_name_rejected() {
        let noftl = make_noftl();
        let r = noftl.create_region(RegionSpec::named("rg").with_die_count(1)).unwrap();
        noftl.create_object("t", r).unwrap();
        assert!(matches!(noftl.create_object("t", r), Err(NoFtlError::ObjectExists { .. })));
    }

    #[test]
    fn bad_page_size_rejected() {
        let noftl = make_noftl();
        let r = noftl.create_region(RegionSpec::named("rg").with_die_count(1)).unwrap();
        let obj = noftl.create_object("t", r).unwrap();
        assert!(matches!(
            noftl.write(obj, 0, &[1, 2, 3], SimTime::ZERO),
            Err(NoFtlError::BadPageSize { .. })
        ));
    }

    #[test]
    fn sustained_overwrites_trigger_gc_and_preserve_data() {
        let noftl = make_noftl();
        let r = noftl.create_region(RegionSpec::named("rg").with_die_count(2)).unwrap();
        let obj = noftl.create_object("t", r).unwrap();
        let geo = *noftl.device().geometry();
        // Working set = 60 % of the region's raw capacity.
        let working_set = 2 * geo.pages_per_die() * 6 / 10;
        let mut t = SimTime::ZERO;
        let mut latest = vec![0u8; working_set as usize];
        for round in 0..5u8 {
            for p in 0..working_set {
                let v = round.wrapping_mul(37).wrapping_add(p as u8);
                t = noftl.write(obj, p, &page(v), t).unwrap();
                latest[p as usize] = v;
            }
        }
        let rs = noftl.region_stats(r).unwrap();
        assert!(rs.gc_runs > 0);
        assert!(rs.gc_erases > 0);
        assert!(noftl.device().stats().block_erases > 0);
        for p in 0..working_set {
            let (data, _) = noftl.read(obj, p, t).unwrap();
            assert_eq!(data, page(latest[p as usize]), "page {p}");
        }
    }

    #[test]
    fn hot_cold_separation_reduces_copybacks() {
        // Two objects: one hot (overwritten constantly) and one cold
        // (written once).  Placing them in separate regions (the paper's
        // proposal) must produce fewer GC copybacks than mixing them in a
        // single region (traditional placement), because in the mixed case
        // victim blocks contain valid cold pages that have to be relocated.
        fn run(separate: bool) -> u64 {
            let device = Arc::new(
                DeviceBuilder::new(FlashGeometry::small_test())
                    .timing(TimingModel::instant())
                    .build(),
            );
            let noftl = NoFtl::new(device.clone(), NoFtlConfig::default());
            let (hot_region, cold_region) = if separate {
                let h = noftl.create_region(RegionSpec::named("rgHot").with_die_count(2)).unwrap();
                let c = noftl.create_region(RegionSpec::named("rgCold").with_die_count(2)).unwrap();
                (h, c)
            } else {
                let all =
                    noftl.create_region(RegionSpec::named("rgAll").with_die_count(4)).unwrap();
                (all, all)
            };
            let hot = noftl.create_object("hot", hot_region).unwrap();
            let cold = noftl.create_object("cold", cold_region).unwrap();
            let geo = *device.geometry();
            let pages_per_die = geo.pages_per_die();
            let cold_pages = pages_per_die; // fills a good part of its share
            let hot_pages = pages_per_die / 4;
            let t = SimTime::ZERO;
            // Interleave cold fill with hot updates so blocks mix in the
            // shared-region case.
            let mut cold_written = 0u64;
            for round in 0..40u64 {
                for p in 0..hot_pages {
                    noftl.write(hot, p, &page((round % 251) as u8), t).unwrap();
                }
                while cold_written < cold_pages
                    && cold_written < (round + 1) * (cold_pages / 40 + 1)
                {
                    noftl.write(cold, cold_written, &page(0xCC), t).unwrap();
                    cold_written += 1;
                }
            }
            device.stats().copybacks
        }
        let mixed = run(false);
        let separated = run(true);
        assert!(
            separated < mixed,
            "region separation should reduce copybacks (separated={separated}, mixed={mixed})"
        );
    }

    #[test]
    fn write_batch_returns_latest_completion() {
        let noftl = make_noftl();
        let r = noftl.create_region(RegionSpec::named("rg").with_die_count(2)).unwrap();
        let obj = noftl.create_object("t", r).unwrap();
        let writes: Vec<(ObjectId, u64, Vec<u8>)> =
            (0..4).map(|i| (obj, i as u64, page(i as u8))).collect();
        let single = noftl.write(obj, 99, &page(9), SimTime::ZERO).unwrap();
        let batch_done = noftl.write_batch(&writes, SimTime::ZERO).unwrap();
        // The batch of four pages over two dies takes about two program
        // times, i.e. it must finish later than a single write but much
        // earlier than four serialized writes would.
        assert!(batch_done > single);
        for i in 0..4u64 {
            let (data, _) = noftl.read(obj, i, batch_done).unwrap();
            assert_eq!(data, page(i as u8));
        }
    }

    #[test]
    fn write_batch_survives_mid_batch_gc() {
        // Regression: a GC pass triggered by a later allocation of the
        // same batch must never erase an earlier page of the batch.  With
        // translations committed per page (not deferred to a second
        // phase), GC relocates committed pages through `retranslate` and
        // every batch page stays readable.
        let device = Arc::new(
            DeviceBuilder::new(FlashGeometry::small_test()).timing(TimingModel::instant()).build(),
        );
        let noftl = NoFtl::new(device.clone(), NoFtlConfig::default());
        let r = noftl.create_region(RegionSpec::named("rg").with_die_count(1)).unwrap();
        let obj = noftl.create_object("t", r).unwrap();
        let geo = *device.geometry();
        // Working set = 60 % of the single die, overwritten in batches so
        // GC must fire repeatedly while batches are in flight.
        let working_set = geo.pages_per_die() * 6 / 10;
        let mut latest = vec![0u8; working_set as usize];
        let mut t = SimTime::ZERO;
        for round in 0..6u8 {
            let batch: Vec<(ObjectId, u64, Vec<u8>)> = (0..working_set)
                .map(|p| {
                    let v = round.wrapping_mul(41).wrapping_add(p as u8);
                    latest[p as usize] = v;
                    (obj, p, page(v))
                })
                .collect();
            t = noftl.write_batch(&batch, t).unwrap();
        }
        let rs = noftl.region_stats(r).unwrap();
        assert!(rs.gc_runs > 0, "the workload must actually trigger GC");
        assert!(rs.gc_erases > 0);
        for p in 0..working_set {
            let (data, _) = noftl.read(obj, p, t).unwrap();
            assert_eq!(data, page(latest[p as usize]), "page {p}");
        }
    }

    #[test]
    fn submit_and_wait_io_roundtrip() {
        let noftl = make_noftl();
        let r = noftl.create_region(RegionSpec::named("rg").with_die_count(2)).unwrap();
        let obj = noftl.create_object("t", r).unwrap();
        // Two async writes issued at t=0 land on different dies and
        // complete at the same simulated time.
        let w0 = noftl.submit_write(obj, 0, &page(0xA0), SimTime::ZERO).unwrap();
        let w1 = noftl.submit_write(obj, 1, &page(0xA1), SimTime::ZERO).unwrap();
        let (_, t0) = noftl.wait_io(w0).unwrap();
        let (_, t1) = noftl.wait_io(w1).unwrap();
        assert!(t0 > SimTime::ZERO);
        assert_eq!(t0, t1, "striped writes overlap in simulated time");
        // Async reads return the payloads.
        let r0 = noftl.submit_read(obj, 0, t0).unwrap();
        let r1 = noftl.submit_read(obj, 1, t0).unwrap();
        let (d0, rt0) = noftl.wait_io(r0).unwrap();
        let (d1, rt1) = noftl.wait_io(r1).unwrap();
        assert_eq!(d0, page(0xA0));
        assert_eq!(d1, page(0xA1));
        assert_eq!(rt0, rt1, "reads on disjoint dies overlap too");
        // A handle cannot be claimed twice.
        assert!(noftl.wait_io(r0).is_err());
        // Stats flowed through the same counters as the blocking API.
        let rs = noftl.region_stats(r).unwrap();
        assert_eq!(rs.host_writes, 2);
        assert_eq!(rs.host_reads, 2);
        assert_eq!(noftl.io_queue_stats().submitted, 4);
    }

    #[test]
    fn submit_read_of_unwritten_page_fails_at_submission() {
        let noftl = make_noftl();
        let r = noftl.create_region(RegionSpec::named("rg").with_die_count(1)).unwrap();
        let obj = noftl.create_object("t", r).unwrap();
        assert!(matches!(
            noftl.submit_read(obj, 5, SimTime::ZERO),
            Err(NoFtlError::PageNotWritten { page: 5, .. })
        ));
    }

    #[test]
    fn queued_batch_beats_sequential_submission() {
        // The acceptance check of the command-queue redesign at the
        // storage-manager level: a batch fanned over a 4-die region must
        // finish in less simulated time than the same writes submitted
        // sequentially (each issued only after the previous completed).
        let make = || {
            let device = Arc::new(
                DeviceBuilder::new(FlashGeometry::small_test())
                    .timing(TimingModel::mlc_2015())
                    .build(),
            );
            let noftl = NoFtl::new(device, NoFtlConfig::default());
            let r = noftl.create_region(RegionSpec::named("rg").with_die_count(4)).unwrap();
            let obj = noftl.create_object("t", r).unwrap();
            (noftl, obj)
        };
        let writes: Vec<(ObjectId, u64, Vec<u8>)> =
            (0..8u64).map(|i| (0, i, page(i as u8))).collect();

        let (queued, obj) = make();
        let batch: Vec<_> = writes.iter().map(|(_, p, d)| (obj, *p, d.clone())).collect();
        let queued_done = queued.write_batch(&batch, SimTime::ZERO).unwrap();

        let (serial, obj) = make();
        let mut serial_done = SimTime::ZERO;
        for (_, p, d) in &writes {
            serial_done = serial.write(obj, *p, d, serial_done).unwrap();
        }
        assert!(
            queued_done < serial_done,
            "8 queued writes over 4 dies ({queued_done}) must beat sequential ({serial_done})"
        );
        // All four dies took part.
        let ds = queued.device().die_stats();
        assert_eq!(ds.iter().filter(|d| d.ops > 0).count(), 4);
        // Data identical either way.
        for (_, p, d) in &writes {
            assert_eq!(&queued.read(obj, *p, queued_done).unwrap().0, d);
            assert_eq!(&serial.read(obj, *p, serial_done).unwrap().0, d);
        }
    }

    #[test]
    fn queue_aware_placement_steers_around_a_busy_die() {
        use crate::placement::PlacementPolicyKind;
        // Two fresh managers over identical devices; dies 0 and 1 form the
        // region, and die 0 (the round-robin cursor's first choice) is
        // made busy with a burst of background erases before a write
        // lands.  RoundRobin ignores the load and queues behind the
        // erases; QueueAware starts on the idle die immediately.
        let run = |placement: PlacementPolicyKind| {
            let device = Arc::new(
                DeviceBuilder::new(FlashGeometry::small_test())
                    .timing(TimingModel::mlc_2015())
                    .build(),
            );
            let config = NoFtlConfig { placement, ..NoFtlConfig::default() };
            let noftl = NoFtl::new(device.clone(), config);
            let r = noftl.create_region(RegionSpec::named("rg").with_die_count(2)).unwrap();
            let obj = noftl.create_object("t", r).unwrap();
            let dies = noftl.region_dies(r).unwrap();
            // Background erase storm on the first region die (a stand-in
            // for GC/wear-leveling traffic).
            let blocks = device.geometry().blocks_per_die();
            for b in 0..4u32 {
                device
                    .erase_block(flash_sim::BlockAddr::new(dies[0], 0, b % blocks), SimTime::ZERO)
                    .unwrap();
            }
            noftl.write(obj, 0, &page(0x5E), SimTime::ZERO).unwrap()
        };
        let rr_done = run(PlacementPolicyKind::RoundRobin);
        let qa_done = run(PlacementPolicyKind::QueueAware);
        assert!(
            qa_done < rr_done,
            "queue-aware write ({qa_done}) must dodge the busy die ({rr_done})"
        );
    }

    #[test]
    fn region_spec_placement_overrides_the_config_default() {
        use crate::placement::PlacementPolicyKind;
        // Config default RoundRobin, but the region opts into QueueAware:
        // the write behaves queue-aware (starts on the idle die).
        let device = Arc::new(
            DeviceBuilder::new(FlashGeometry::small_test()).timing(TimingModel::mlc_2015()).build(),
        );
        let noftl = NoFtl::new(device.clone(), NoFtlConfig::default());
        let r = noftl
            .create_region(
                RegionSpec::named("rg")
                    .with_die_count(2)
                    .with_placement(PlacementPolicyKind::QueueAware),
            )
            .unwrap();
        let obj = noftl.create_object("t", r).unwrap();
        let dies = noftl.region_dies(r).unwrap();
        for b in 0..4u32 {
            device.erase_block(flash_sim::BlockAddr::new(dies[0], 0, b), SimTime::ZERO).unwrap();
        }
        let busy_until = device.die_busy_until(dies[0]);
        let done = noftl.write(obj, 0, &page(0x7A), SimTime::ZERO).unwrap();
        assert!(
            done < busy_until,
            "override must steer the write to the idle die (done {done}, busy {busy_until})"
        );
        // The mapping still round-trips.
        assert_eq!(noftl.read(obj, 0, done).unwrap().0, page(0x7A));
    }

    #[test]
    fn queue_aware_batch_balances_skewed_die_load() {
        use crate::placement::PlacementPolicyKind;
        // A 4-die region with erase storms on half the dies, then a
        // 32-page batch: QueueAware must finish the batch earlier than
        // RoundRobin because it feeds the idle dies first.
        let run = |placement: PlacementPolicyKind| {
            let device = Arc::new(
                DeviceBuilder::new(FlashGeometry::small_test())
                    .timing(TimingModel::mlc_2015())
                    .build(),
            );
            let config = NoFtlConfig { placement, ..NoFtlConfig::default() };
            let noftl = NoFtl::new(device.clone(), config);
            let r = noftl.create_region(RegionSpec::named("rg").with_die_count(4)).unwrap();
            let obj = noftl.create_object("t", r).unwrap();
            let dies = noftl.region_dies(r).unwrap();
            for die in &dies[..2] {
                for b in 0..3u32 {
                    device
                        .erase_block(flash_sim::BlockAddr::new(*die, 0, b), SimTime::ZERO)
                        .unwrap();
                }
            }
            let batch: Vec<(ObjectId, u64, Vec<u8>)> =
                (0..32u64).map(|p| (obj, p, page(p as u8))).collect();
            let done = noftl.write_batch(&batch, SimTime::ZERO).unwrap();
            for p in 0..32u64 {
                assert_eq!(noftl.read(obj, p, done).unwrap().0, page(p as u8), "page {p}");
            }
            done
        };
        let rr = run(PlacementPolicyKind::RoundRobin);
        let qa = run(PlacementPolicyKind::QueueAware);
        assert!(qa < rr, "queue-aware batch ({qa}) must beat round-robin ({rr}) under skew");
    }

    #[test]
    fn atomic_write_commits_all_or_nothing() {
        let noftl = make_noftl();
        let r = noftl.create_region(RegionSpec::named("rg").with_die_count(2)).unwrap();
        let obj = noftl.create_object("t", r).unwrap();
        let t0 = SimTime::ZERO;
        noftl.write(obj, 0, &page(1), t0).unwrap();
        noftl.write(obj, 1, &page(1), t0).unwrap();
        // Successful atomic batch.
        let batch = vec![(obj, 0u64, page(2)), (obj, 1u64, page(2))];
        let done = noftl.write_atomic(&batch, t0).unwrap();
        assert_eq!(noftl.read(obj, 0, done).unwrap().0, page(2));
        assert_eq!(noftl.read(obj, 1, done).unwrap().0, page(2));
        // Failing atomic batch (unknown object in the middle): nothing changes.
        let bad = vec![(obj, 0u64, page(3)), (999u32, 0u64, page(3))];
        assert!(noftl.write_atomic(&bad, done).is_err());
        assert_eq!(noftl.read(obj, 0, done).unwrap().0, page(2));
    }

    #[test]
    fn free_page_and_drop_object_invalidate_pages() {
        let noftl = make_noftl();
        let r = noftl.create_region(RegionSpec::named("rg").with_die_count(1)).unwrap();
        let obj = noftl.create_object("t", r).unwrap();
        noftl.write(obj, 0, &page(1), SimTime::ZERO).unwrap();
        noftl.write(obj, 1, &page(1), SimTime::ZERO).unwrap();
        noftl.free_page(obj, 0).unwrap();
        assert!(noftl.read(obj, 0, SimTime::ZERO).is_err());
        assert_eq!(noftl.object_pages(obj).unwrap(), 1);
        noftl.drop_object(obj).unwrap();
        assert!(noftl.object_stats(obj).is_err());
        assert!(noftl.object_id("t").is_none());
        // Freeing a never-written page is a no-op.
        let obj2 = noftl.create_object("t2", r).unwrap();
        noftl.free_page(obj2, 5).unwrap();
    }

    #[test]
    fn drop_region_requires_empty_and_returns_dies() {
        let noftl = make_noftl();
        let r = noftl.create_region(RegionSpec::named("rg").with_die_count(2)).unwrap();
        let obj = noftl.create_object("t", r).unwrap();
        noftl.write(obj, 0, &page(1), SimTime::ZERO).unwrap();
        assert!(matches!(
            noftl.drop_region(r, SimTime::ZERO),
            Err(NoFtlError::RegionNotEmpty { .. })
        ));
        noftl.drop_object(obj).unwrap();
        noftl.drop_region(r, SimTime::ZERO).unwrap();
        assert_eq!(noftl.free_die_count(), 4);
        assert!(noftl.region_id("rg").is_none());
        // The returned dies can immediately back a new region.
        let r2 = noftl.create_region(RegionSpec::named("rg2").with_die_count(4)).unwrap();
        let obj2 = noftl.create_object("t2", r2).unwrap();
        noftl.write(obj2, 0, &page(7), SimTime::ZERO).unwrap();
        assert_eq!(noftl.read(obj2, 0, SimTime::ZERO).unwrap().0, page(7));
    }

    #[test]
    fn grow_and_shrink_region_preserve_data() {
        let noftl = make_noftl();
        let r = noftl.create_region(RegionSpec::named("rg").with_die_count(1)).unwrap();
        let obj = noftl.create_object("t", r).unwrap();
        let mut t = SimTime::ZERO;
        for p in 0..20u64 {
            t = noftl.write(obj, p, &page(p as u8), t).unwrap();
        }
        noftl.grow_region(r, 2).unwrap();
        assert_eq!(noftl.region_dies(r).unwrap().len(), 3);
        assert_eq!(noftl.free_die_count(), 1);
        for p in 20..40u64 {
            t = noftl.write(obj, p, &page(p as u8), t).unwrap();
        }
        // Shrink back down to one die; the data written on the removed dies
        // must be migrated and stay readable.
        let done = noftl.shrink_region(r, 2, t).unwrap();
        assert_eq!(noftl.region_dies(r).unwrap().len(), 1);
        assert_eq!(noftl.free_die_count(), 3);
        for p in 0..40u64 {
            let (data, _) = noftl.read(obj, p, done).unwrap();
            assert_eq!(data, page(p as u8), "page {p}");
        }
        let rs = noftl.region_stats(r).unwrap();
        assert!(rs.rebalance_moves > 0);
        // Shrinking to zero dies is rejected.
        assert!(noftl.shrink_region(r, 1, done).is_err());
        // Growing beyond the pool is rejected.
        assert!(noftl.grow_region(r, 10).is_err());
    }

    #[test]
    fn static_wl_policy_is_exercised() {
        let device = Arc::new(
            DeviceBuilder::new(FlashGeometry::small_test()).timing(TimingModel::instant()).build(),
        );
        let config = NoFtlConfig {
            wear_leveling: WearLevelingPolicy::Static { threshold: 2 },
            gc_policy: GcPolicy::CostBenefit,
            ..NoFtlConfig::default()
        };
        let noftl = NoFtl::new(device.clone(), config);
        let r = noftl.create_region(RegionSpec::named("rg").with_die_count(1)).unwrap();
        let cold = noftl.create_object("cold", r).unwrap();
        let hot = noftl.create_object("hot", r).unwrap();
        let geo = *device.geometry();
        let t = SimTime::ZERO;
        // A block's worth of cold data that never changes...
        for p in 0..geo.pages_per_block as u64 {
            noftl.write(cold, p, &page(0xCC), t).unwrap();
        }
        // ...and a hot page hammered long enough to wear out the rest.
        for i in 0..(geo.pages_per_die() * 6) {
            noftl.write(hot, 0, &page((i % 255) as u8), t).unwrap();
        }
        let rs = noftl.region_stats(r).unwrap();
        assert!(rs.wl_migrations > 0, "static WL should have migrated the cold block");
        // Cold data is still correct after migration.
        assert_eq!(noftl.read(cold, 0, t).unwrap().0, page(0xCC));
    }

    #[test]
    fn with_single_region_spans_all_dies() {
        let device = Arc::new(DeviceBuilder::new(FlashGeometry::small_test()).build());
        let (noftl, rid) = NoFtl::with_single_region(device, NoFtlConfig::default());
        assert_eq!(noftl.region_dies(rid).unwrap().len(), 4);
        assert_eq!(noftl.free_die_count(), 0);
        assert_eq!(noftl.region_name(rid).unwrap(), "rgAll");
    }

    #[test]
    fn region_info_and_object_extent() {
        let noftl = make_noftl();
        let geo = *noftl.device().geometry();
        let r = noftl.create_region(RegionSpec::named("rg").with_die_count(2)).unwrap();
        let obj = noftl.create_object("t", r).unwrap();
        noftl.write(obj, 10, &page(1), SimTime::ZERO).unwrap();
        let info = noftl.region_info(r).unwrap();
        assert_eq!(info.name, "rg");
        assert_eq!(info.dies.len(), 2);
        assert_eq!(info.objects, vec![obj]);
        assert_eq!(info.capacity_pages, 2 * geo.pages_per_die());
        assert!(info.effective_capacity_pages <= info.capacity_pages);
        assert_eq!(info.tracked_blocks, 2 * geo.blocks_per_die() as u64);
        assert!(info.free_blocks < info.tracked_blocks, "one block is now open");
        assert_eq!(noftl.object_extent(obj).unwrap(), 11);
        assert_eq!(noftl.object_pages(obj).unwrap(), 1);
        assert!(noftl.region_info(RegionId(7)).is_err());
    }

    fn raw_device(noftl: &NoFtl) -> &NandDevice {
        noftl.device().as_any().downcast_ref::<NandDevice>().unwrap()
    }

    fn reboot(noftl: &NoFtl) -> Arc<dyn FlashBackend> {
        let snap = raw_device(noftl).snapshot();
        Arc::new(NandDevice::from_snapshot(&snap, TimingModel::mlc_2015()).unwrap())
    }

    #[test]
    fn checkpoint_and_mount_rebuild_state() {
        let noftl = make_noftl();
        let rg_hot = noftl.create_region(RegionSpec::named("rgHot").with_die_count(2)).unwrap();
        let rg_cold = noftl.create_region(RegionSpec::named("rgCold").with_die_count(1)).unwrap();
        let orders = noftl.create_object("orders", rg_hot).unwrap();
        let history = noftl.create_object("history", rg_cold).unwrap();
        let mut t = SimTime::ZERO;
        for p in 0..10u64 {
            t = noftl.write(orders, p, &page(p as u8), t).unwrap();
        }
        t = noftl.write(history, 0, &page(0xCC), t).unwrap();
        t = noftl.checkpoint(t).unwrap();
        assert_eq!(noftl.checkpoint_seq(), 1);
        // Post-checkpoint writes are recovered from OOB metadata alone.
        for p in 5..15u64 {
            t = noftl.write(orders, p, &page(0x40 + p as u8), t).unwrap();
        }
        let device2 = reboot(&noftl);
        let (noftl2, report) = NoFtl::mount(device2, NoFtlConfig::default(), t).unwrap();
        assert_eq!(report.checkpoint_seq, 1);
        assert_eq!(report.regions, 3, "rgHot, rgCold and the meta region");
        assert_eq!(report.objects, 2);
        assert!(report.pages_after_checkpoint >= 10);
        assert!(report.orphaned_objects.is_empty());
        assert_eq!(noftl2.region_id("rgHot"), Some(rg_hot));
        assert_eq!(noftl2.region_id("rgCold"), Some(rg_cold));
        assert_eq!(noftl2.object_id("orders"), Some(orders));
        assert_eq!(noftl2.object_id("history"), Some(history));
        assert_eq!(noftl2.region_dies(rg_hot).unwrap().len(), 2);
        let done = report.completed_at;
        for p in 0..5u64 {
            assert_eq!(noftl2.read(orders, p, done).unwrap().0, page(p as u8), "page {p}");
        }
        for p in 5..15u64 {
            assert_eq!(noftl2.read(orders, p, done).unwrap().0, page(0x40 + p as u8), "page {p}");
        }
        assert_eq!(noftl2.read(history, 0, done).unwrap().0, page(0xCC));
        // The remounted manager keeps working: writes and re-checkpoints.
        let t2 = noftl2.write(orders, 99, &page(0x77), done).unwrap();
        assert_eq!(noftl2.read(orders, 99, t2).unwrap().0, page(0x77));
        noftl2.checkpoint(t2).unwrap();
        assert_eq!(noftl2.checkpoint_seq(), 2);
    }

    #[test]
    fn mount_of_pristine_device_is_fresh() {
        let device = Arc::new(DeviceBuilder::new(FlashGeometry::small_test()).build());
        let (noftl, report) = NoFtl::mount(device, NoFtlConfig::default(), SimTime::ZERO).unwrap();
        assert_eq!(report.checkpoint_seq, 0);
        assert_eq!(report.pages_scanned, 0);
        assert_eq!(noftl.free_die_count(), 4);
        noftl.create_region(RegionSpec::named("rg").with_die_count(1)).unwrap();
    }

    #[test]
    fn mount_without_checkpoint_fails_when_data_exists() {
        let noftl = make_noftl();
        let r = noftl.create_region(RegionSpec::named("rg").with_die_count(1)).unwrap();
        let obj = noftl.create_object("t", r).unwrap();
        noftl.write(obj, 0, &page(1), SimTime::ZERO).unwrap();
        let device2 = reboot(&noftl);
        assert!(matches!(
            NoFtl::mount(device2, NoFtlConfig::default(), SimTime::ZERO),
            Err(NoFtlError::NoCheckpoint)
        ));
    }

    #[test]
    fn mount_preserves_orphan_objects_created_after_checkpoint() {
        let noftl = make_noftl();
        let r = noftl.create_region(RegionSpec::named("rg").with_die_count(2)).unwrap();
        let a = noftl.create_object("a", r).unwrap();
        let mut t = noftl.write(a, 0, &page(1), SimTime::ZERO).unwrap();
        t = noftl.checkpoint(t).unwrap();
        // Object created after the checkpoint: its directory entry is lost
        // but its data must survive under a synthesised name.
        let b = noftl.create_object("b", r).unwrap();
        t = noftl.write(b, 3, &page(9), t).unwrap();
        let device2 = reboot(&noftl);
        let (noftl2, report) = NoFtl::mount(device2, NoFtlConfig::default(), t).unwrap();
        assert_eq!(report.orphaned_objects, vec![b]);
        assert_eq!(noftl2.object_id(&format!("__orphan_{b}")), Some(b));
        assert_eq!(noftl2.read(b, 3, report.completed_at).unwrap().0, page(9));
        assert_eq!(noftl2.read(a, 0, report.completed_at).unwrap().0, page(1));
    }

    #[test]
    fn read_windowed_matches_blocking_reads_and_overlaps_dies() {
        let noftl = make_noftl();
        let r = noftl.create_region(RegionSpec::named("rg").with_die_count(4)).unwrap();
        let obj = noftl.create_object("t", r).unwrap();
        let writes: Vec<(ObjectId, u64, Vec<u8>)> =
            (0..16u64).map(|p| (obj, p, page(p as u8))).collect();
        let t = noftl.write_batch(&writes, SimTime::ZERO).unwrap();

        let reads: Vec<(ObjectId, u64)> = (0..16u64).map(|p| (obj, p)).collect();
        let (payloads, done) = noftl.read_windowed(&reads, t, 8).unwrap();
        let windowed_span = done - t;

        // Sequential baseline on the now-idle device: each read issued at
        // the previous completion, so nothing overlaps.
        let mut seq_clock = done;
        let mut blocking = Vec::new();
        for p in 0..16u64 {
            let (data, fin) = noftl.read(obj, p, seq_clock).unwrap();
            blocking.push(data);
            seq_clock = fin;
        }
        let sequential_span = seq_clock - done;

        assert_eq!(payloads.len(), 16);
        for (p, data) in payloads.iter().enumerate() {
            assert_eq!(data, &blocking[p], "payload order must match request order");
        }
        // With 4 dies and window 8 the fetches overlap: strictly faster
        // than the chained sequential baseline.
        assert!(
            windowed_span < sequential_span,
            "windowed {windowed_span:?} vs sequential {sequential_span:?}"
        );

        // An unwritten page fails the whole batch and leaks no pending IO.
        let err = noftl.read_windowed(&[(obj, 99)], t, 4).unwrap_err();
        assert!(matches!(err, NoFtlError::PageNotWritten { .. }));
    }

    #[test]
    fn mount_skips_untouched_dies() {
        let noftl = make_noftl();
        let r = noftl.create_region(RegionSpec::named("rg").with_die_count(1)).unwrap();
        let obj = noftl.create_object("t", r).unwrap();
        let mut t = SimTime::ZERO;
        for p in 0..6u64 {
            t = noftl.write(obj, p, &page(p as u8), t).unwrap();
        }
        t = noftl.checkpoint(t).unwrap();
        let device2 = reboot(&noftl);
        let (noftl2, report) = NoFtl::mount(device2, NoFtlConfig::default(), t).unwrap();
        // One die holds the region, one the metadata journal; the other
        // two of small_test's four dies were never written and their OOB
        // scan is skipped entirely.
        assert_eq!(report.dies_skipped, 2);
        assert!(report.pages_scanned > 0);
        for p in 0..6u64 {
            assert_eq!(noftl2.read(obj, p, report.completed_at).unwrap().0, page(p as u8));
        }
        // The skipped dies are still usable: they returned to the free
        // pool and can host a new region.
        assert_eq!(noftl2.free_die_count(), 2);
        noftl2.create_region(RegionSpec::named("rg2").with_die_count(2)).unwrap();
    }

    #[test]
    fn torn_write_is_discarded_on_mount_and_old_version_survives() {
        let noftl = make_noftl();
        let r = noftl.create_region(RegionSpec::named("rg").with_die_count(1)).unwrap();
        let obj = noftl.create_object("t", r).unwrap();
        let mut t = noftl.write(obj, 0, &page(0x11), SimTime::ZERO).unwrap();
        t = noftl.checkpoint(t).unwrap();
        // Cut power in the middle of the overwrite of logical page 0.
        let device = raw_device(&noftl);
        let quiesce = device.quiesce_time();
        let probe_span = {
            // A program on this device takes a fixed time under mlc_2015.
            let probe = DeviceBuilder::new(FlashGeometry::small_test())
                .timing(TimingModel::mlc_2015())
                .build();
            let out = probe
                .program_page(
                    flash_sim::PageAddr::new(DieId(0), 0, 0, 0),
                    &page(0),
                    PageMetadata::new(1, 0),
                    SimTime::ZERO,
                )
                .unwrap();
            out.completed_at.as_nanos() - out.started_at.as_nanos()
        };
        device.arm_power_cut(quiesce + flash_sim::Duration(probe_span * 9 / 10));
        let err = noftl.write(obj, 0, &page(0x22), quiesce).unwrap_err();
        assert!(matches!(err, NoFtlError::Flash(e) if e.is_power_loss()));
        let device2 = reboot(&noftl);
        let (noftl2, report) = NoFtl::mount(device2, NoFtlConfig::default(), t).unwrap();
        assert_eq!(report.torn_pages_discarded, 1);
        // The pre-crash committed version is still readable.
        assert_eq!(noftl2.read(obj, 0, report.completed_at).unwrap().0, page(0x11));
    }

    #[test]
    fn torn_multichunk_checkpoint_falls_back_to_previous() {
        let noftl = make_noftl();
        let r = noftl.create_region(RegionSpec::named("rg").with_die_count(2)).unwrap();
        let obj = noftl.create_object("t", r).unwrap();
        let mut t = SimTime::ZERO;
        // Enough mapped pages that the checkpoint blob spans several chunks.
        for p in 0..200u64 {
            t = noftl.write(obj, p, &page(p as u8), t).unwrap();
        }
        t = noftl.checkpoint(t).unwrap();
        assert!(
            noftl.checkpoint_seq() == 1 && noftl.meta_region().is_some(),
            "first checkpoint completed"
        );
        // Post-checkpoint overwrites, then a power cut that tears the
        // *second* checkpoint in the middle of its first chunk program
        // (chunk 0 is dense with real payload, so the tear is guaranteed
        // to corrupt it — a tear in a later chunk's zero padding would
        // harmlessly reproduce the complete page).
        for p in 0..5u64 {
            t = noftl.write(obj, p, &page(0xE0 + p as u8), t).unwrap();
        }
        let probe =
            DeviceBuilder::new(FlashGeometry::small_test()).timing(TimingModel::mlc_2015()).build();
        let out = probe
            .program_page(
                flash_sim::PageAddr::new(DieId(0), 0, 0, 0),
                &page(0),
                PageMetadata::new(1, 0),
                SimTime::ZERO,
            )
            .unwrap();
        let span = out.completed_at.as_nanos() - out.started_at.as_nanos();
        let q = noftl.device().quiesce_time();
        raw_device(&noftl).arm_power_cut(q + flash_sim::Duration(span * 9 / 10));
        let err = noftl.checkpoint(q).unwrap_err();
        assert!(matches!(err, NoFtlError::Flash(e) if e.is_power_loss()));
        // Mount must fall back to the complete checkpoint #1 and still
        // recover every page (including the post-checkpoint overwrites,
        // which come from the OOB scan).
        let device2 = reboot(&noftl);
        let (noftl2, report) = NoFtl::mount(device2, NoFtlConfig::default(), t).unwrap();
        assert_eq!(report.checkpoint_seq, 1, "torn checkpoint #2 is ignored");
        let done = report.completed_at;
        for p in 0..5u64 {
            assert_eq!(noftl2.read(obj, p, done).unwrap().0, page(0xE0 + p as u8), "page {p}");
        }
        for p in 5..200u64 {
            assert_eq!(noftl2.read(obj, p, done).unwrap().0, page(p as u8), "page {p}");
        }
    }

    #[test]
    fn meta_region_cannot_be_dropped() {
        let noftl = make_noftl();
        let r = noftl.create_region(RegionSpec::named("rg").with_die_count(1)).unwrap();
        let obj = noftl.create_object("t", r).unwrap();
        noftl.write(obj, 0, &page(1), SimTime::ZERO).unwrap();
        noftl.checkpoint(SimTime::ZERO).unwrap();
        let meta = noftl.meta_region().unwrap();
        assert!(matches!(noftl.drop_region(meta, SimTime::ZERO), Err(NoFtlError::Recovery { .. })));
    }

    #[test]
    fn checkpoint_without_free_dies_uses_first_region() {
        let device = Arc::new(DeviceBuilder::new(FlashGeometry::small_test()).build());
        let (noftl, rid) = NoFtl::with_single_region(device, NoFtlConfig::default());
        let obj = noftl.create_object("t", rid).unwrap();
        let t = noftl.write(obj, 0, &page(5), SimTime::ZERO).unwrap();
        noftl.checkpoint(t).unwrap();
        assert_eq!(noftl.meta_region(), Some(rid));
        let device2 = reboot(&noftl);
        let (noftl2, report) = NoFtl::mount(device2, NoFtlConfig::default(), t).unwrap();
        assert_eq!(report.checkpoint_seq, 1);
        assert_eq!(noftl2.read(obj, 0, report.completed_at).unwrap().0, page(5));
    }

    #[test]
    fn all_object_stats_lists_every_object() {
        let noftl = make_noftl();
        let r = noftl.create_region(RegionSpec::named("rg").with_die_count(2)).unwrap();
        let a = noftl.create_object("a", r).unwrap();
        let _b = noftl.create_object("b", r).unwrap();
        noftl.write(a, 0, &page(1), SimTime::ZERO).unwrap();
        let stats = noftl.all_object_stats();
        assert_eq!(stats.len(), 2);
        assert_eq!(stats.iter().find(|s| s.name == "a").unwrap().writes, 1);
        assert_eq!(stats.iter().find(|s| s.name == "b").unwrap().writes, 0);
    }

    mod service_class_audit {
        use super::*;
        use flash_sim::ArbiterConfig;

        fn make_arbiter_noftl(config: NoFtlConfig) -> NoFtl {
            let device = Arc::new(
                DeviceBuilder::new(FlashGeometry::small_test())
                    .timing(TimingModel::mlc_2015())
                    .arbiter(ArbiterConfig::default())
                    .build(),
            );
            NoFtl::new(device, config)
        }

        fn counter(noftl: &NoFtl, name: &str) -> u64 {
            noftl.device().metrics().counter(name).get()
        }

        #[test]
        fn host_io_carries_the_region_class() {
            let noftl = make_arbiter_noftl(NoFtlConfig::default());
            let r = noftl
                .create_region(
                    RegionSpec::named("rgOltp")
                        .with_die_count(1)
                        .with_service_class(ServiceClass::Latency),
                )
                .unwrap();
            let obj = noftl.create_object("t", r).unwrap();
            let t = noftl.write(obj, 0, &page(1), SimTime::ZERO).unwrap();
            noftl.read(obj, 0, t).unwrap();
            assert_eq!(counter(&noftl, "flash.arbiter.class.latency.ops"), 2);
            assert_eq!(counter(&noftl, "flash.arbiter.class.background.ops"), 0);
        }

        #[test]
        fn unclassed_regions_fall_back_to_the_manager_default() {
            let config =
                NoFtlConfig { service_class: ServiceClass::Latency, ..NoFtlConfig::default() };
            let noftl = make_arbiter_noftl(config);
            let r = noftl.create_region(RegionSpec::named("rg").with_die_count(1)).unwrap();
            let obj = noftl.create_object("t", r).unwrap();
            noftl.write(obj, 0, &page(1), SimTime::ZERO).unwrap();
            assert_eq!(counter(&noftl, "flash.arbiter.class.latency.ops"), 1);
            assert_eq!(counter(&noftl, "flash.arbiter.class.throughput.ops"), 0);
        }

        #[test]
        fn gc_relocations_are_tagged_background_regardless_of_region_class() {
            let noftl = make_arbiter_noftl(NoFtlConfig::default());
            let r = noftl
                .create_region(
                    RegionSpec::named("rg")
                        .with_die_count(2)
                        .with_service_class(ServiceClass::Latency),
                )
                .unwrap();
            let obj = noftl.create_object("t", r).unwrap();
            let geo = *noftl.device().geometry();
            let working_set = 2 * geo.pages_per_die() * 6 / 10;
            let mut t = SimTime::ZERO;
            for p in 0..working_set {
                t = noftl.write(obj, p, &page(p as u8), t).unwrap();
            }
            // Overwrite only the even pages so every victim block keeps
            // valid odd pages that GC must relocate (not just erase).
            for round in 0..8u8 {
                for p in (0..working_set).step_by(2) {
                    t = noftl.write(obj, p, &page(round.wrapping_add(p as u8)), t).unwrap();
                }
            }
            let rs = noftl.region_stats(r).unwrap();
            assert!(rs.gc_runs > 0, "workload must trigger GC");
            assert!(rs.gc_copybacks > 0, "GC must relocate live pages");
            // GC victim scans are metadata reads tagged Background even
            // though the region itself is Latency class.
            assert!(counter(&noftl, "flash.arbiter.class.background.ops") > 0);
            assert!(counter(&noftl, "flash.arbiter.class.latency.ops") > 0);
        }

        #[test]
        fn checkpoint_and_meta_journal_writes_are_exempt() {
            let noftl = make_arbiter_noftl(NoFtlConfig::default());
            let r = noftl.create_region(RegionSpec::named("rg").with_die_count(1)).unwrap();
            let obj = noftl.create_object("t", r).unwrap();
            let t = noftl.write(obj, 0, &page(1), SimTime::ZERO).unwrap();
            let before = counter(&noftl, "flash.arbiter.exempt");
            let t = noftl.checkpoint(t).unwrap();
            let after_ckpt = counter(&noftl, "flash.arbiter.exempt");
            assert!(after_ckpt > before, "checkpoint chunk programs must be exempt");
            assert_eq!(
                counter(&noftl, "flash.arbiter.deferred"),
                0,
                "durability traffic is never budget-deferred"
            );
            // Further checkpoints keep riding the __noftl_meta region
            // exempt — durability traffic is never inverted behind the
            // background budget.
            let t = noftl.write(obj, 1, &page(2), t).unwrap();
            noftl.checkpoint(t).unwrap();
            assert!(counter(&noftl, "flash.arbiter.exempt") > after_ckpt);
            assert_eq!(counter(&noftl, "flash.arbiter.deferred"), 0);
        }
    }
}
