//! The NoFTL storage manager.
//!
//! [`NoFtl`] is the component labelled "Storage Manager" in the paper's
//! Figure 1: it owns the physical flash address space, performs address
//! translation and out-of-place updates, runs garbage collection and wear
//! leveling — all *per region*, using DBMS-level knowledge (which object a
//! page belongs to) that a conventional FTL does not have.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use flash_sim::{DieId, NandDevice, PageAddr, PageMetadata, PageState, SimTime};

use crate::config::NoFtlConfig;
use crate::error::NoFtlError;
use crate::gc::{select_victim, GcCandidate};
use crate::object::{ObjectId, ObjectState};
use crate::region::{RegionId, RegionRuntime, RegionSpec};
use crate::stats::{NoFtlStats, ObjectStats, RegionStats};
use crate::wear::needs_static_wl;
use crate::Result;

struct Inner {
    regions: Vec<Option<RegionRuntime>>,
    region_by_name: HashMap<String, RegionId>,
    free_dies: Vec<DieId>,
    /// Indexed by `ObjectId`; slot 0 is unused so object ids can be stored
    /// directly in flash page metadata (where 0 means "no object").
    objects: Vec<Option<ObjectState>>,
    object_by_name: HashMap<String, ObjectId>,
}

/// The NoFTL storage manager: regions, objects, address translation,
/// out-of-place updates, GC, wear leveling.
pub struct NoFtl {
    device: Arc<NandDevice>,
    config: NoFtlConfig,
    inner: Mutex<Inner>,
}

impl std::fmt::Debug for NoFtl {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("NoFtl")
            .field("regions", &inner.region_by_name.len())
            .field("objects", &inner.object_by_name.len())
            .field("free_dies", &inner.free_dies.len())
            .finish_non_exhaustive()
    }
}

impl NoFtl {
    /// Create a storage manager over `device`.  All dies start in the free
    /// pool; create regions to make them usable.
    ///
    /// # Panics
    /// Panics if the configuration fails validation (a programming error).
    pub fn new(device: Arc<NandDevice>, config: NoFtlConfig) -> Self {
        config.validate().unwrap_or_else(|e| panic!("invalid NoFTL configuration: {e}"));
        let free_dies: Vec<DieId> = device.geometry().dies().collect();
        NoFtl {
            device,
            config,
            inner: Mutex::new(Inner {
                regions: Vec::new(),
                region_by_name: HashMap::new(),
                free_dies,
                objects: vec![None],
                object_by_name: HashMap::new(),
            }),
        }
    }

    /// Convenience constructor for the "traditional data placement"
    /// baseline: one region named `rgAll` spanning every die of the device.
    pub fn with_single_region(device: Arc<NandDevice>, config: NoFtlConfig) -> (Self, RegionId) {
        let total = device.geometry().total_dies();
        let noftl = Self::new(device, config);
        let rid = noftl
            .create_region(RegionSpec::named("rgAll").with_die_count(total))
            .expect("single region over all dies always fits");
        (noftl, rid)
    }

    /// The underlying native flash device.
    pub fn device(&self) -> &Arc<NandDevice> {
        &self.device
    }

    /// The configuration in use.
    pub fn config(&self) -> &NoFtlConfig {
        &self.config
    }

    // ------------------------------------------------------------------
    // Region management
    // ------------------------------------------------------------------

    /// Create a region from a spec (`CREATE REGION`).  Dies are taken from
    /// the free pool, spread over as many channels as possible (or at most
    /// `max_channels` if the spec limits them).
    pub fn create_region(&self, spec: RegionSpec) -> Result<RegionId> {
        let mut inner = self.inner.lock();
        if inner.region_by_name.contains_key(&spec.name) {
            return Err(NoFtlError::RegionExists { name: spec.name });
        }
        let geo = self.device.geometry();
        let want = spec.resolve_die_count(geo);
        // Group the free dies by channel so we can stripe across channels.
        let mut by_channel: Vec<Vec<DieId>> = vec![Vec::new(); geo.channels as usize];
        for die in &inner.free_dies {
            by_channel[geo.channel_of_die(*die) as usize].push(*die);
        }
        let channel_limit = spec.max_channels.unwrap_or(geo.channels).max(1) as usize;
        let usable: Vec<&mut Vec<DieId>> =
            by_channel.iter_mut().filter(|v| !v.is_empty()).take(channel_limit).collect();
        let available: u32 = usable.iter().map(|v| v.len() as u32).sum();
        if available < want {
            return Err(NoFtlError::NotEnoughDies { requested: want, available });
        }
        // Round-robin over the usable channels.
        let mut chosen: Vec<DieId> = Vec::with_capacity(want as usize);
        let mut lanes: Vec<Vec<DieId>> = usable.into_iter().map(std::mem::take).collect();
        let lane_count = lanes.len();
        let mut lane = 0usize;
        while (chosen.len() as u32) < want {
            if let Some(d) = lanes[lane % lane_count].pop() {
                chosen.push(d);
            }
            lane += 1;
            // Guard against all lanes being empty (cannot happen given the
            // availability check above, but keeps the loop obviously finite).
            if lane > (want as usize + 1) * lane_count {
                break;
            }
        }
        // Return unchosen dies to the pool.
        let mut remaining: Vec<DieId> = lanes.into_iter().flatten().collect();
        // Dies on channels beyond the channel limit stayed in `by_channel`
        // only if they were never moved into `lanes`; rebuild the pool from
        // what's left plus the untouched channels.
        for v in by_channel {
            remaining.extend(v);
        }
        inner.free_dies = remaining;
        let rid = RegionId(inner.regions.len() as u32);
        let runtime = RegionRuntime::new(rid, spec.clone(), &self.device, chosen);
        inner.region_by_name.insert(spec.name, rid);
        inner.regions.push(Some(runtime));
        Ok(rid)
    }

    /// Drop an empty region, erasing any blocks it dirtied and returning
    /// its dies to the free pool.  Returns the time at which the erases
    /// complete.
    pub fn drop_region(&self, rid: RegionId, at: SimTime) -> Result<SimTime> {
        let mut inner = self.inner.lock();
        let region = Self::region_mut(&mut inner.regions, rid)?;
        if !region.objects.is_empty() {
            return Err(NoFtlError::RegionNotEmpty { region: rid, objects: region.objects.len() });
        }
        let mut done = at;
        let mut dies = Vec::new();
        for die in &mut region.dies {
            // Erase everything that is not already erased so the die goes
            // back to the pool clean.
            let mut to_erase: Vec<flash_sim::BlockAddr> = die.used_blocks.drain(..).collect();
            if let Some((b, _)) = die.active.take() {
                to_erase.push(b);
            }
            if let Some((b, _)) = die.gc_active.take() {
                to_erase.push(b);
            }
            for b in to_erase {
                match self.device.erase_block(b, at) {
                    Ok(out) => {
                        done = done.max(out.completed_at);
                        die.free_blocks.push(b);
                    }
                    Err(e) if e.is_permanent() => {}
                    Err(e) => return Err(e.into()),
                }
            }
            dies.push(die.die);
        }
        let name = region.name.clone();
        inner.region_by_name.remove(&name);
        inner.regions[rid.0 as usize] = None;
        inner.free_dies.extend(dies);
        Ok(done)
    }

    /// Look up a region id by name.
    pub fn region_id(&self, name: &str) -> Option<RegionId> {
        self.inner.lock().region_by_name.get(name).copied()
    }

    /// Ids of all live regions.
    pub fn region_ids(&self) -> Vec<RegionId> {
        self.inner.lock().regions.iter().filter_map(|r| r.as_ref().map(|r| r.id)).collect()
    }

    /// Name of a region.
    pub fn region_name(&self, rid: RegionId) -> Result<String> {
        let inner = self.inner.lock();
        Ok(Self::region_ref(&inner.regions, rid)?.name.clone())
    }

    /// Dies currently owned by a region.
    pub fn region_dies(&self, rid: RegionId) -> Result<Vec<DieId>> {
        let inner = self.inner.lock();
        Ok(Self::region_ref(&inner.regions, rid)?.die_ids())
    }

    /// Statistics of a region.
    pub fn region_stats(&self, rid: RegionId) -> Result<RegionStats> {
        let inner = self.inner.lock();
        Ok(Self::region_ref(&inner.regions, rid)?.stats.clone())
    }

    /// Configuration/occupancy snapshot of a region.
    pub fn region_info(&self, rid: RegionId) -> Result<crate::region::RegionInfo> {
        let inner = self.inner.lock();
        Ok(Self::region_ref(&inner.regions, rid)?.info(self.device.geometry(), &self.config))
    }

    /// Number of dies still unassigned.
    pub fn free_die_count(&self) -> u32 {
        self.inner.lock().free_dies.len() as u32
    }

    /// Add `additional_dies` dies from the free pool to a region.
    pub fn grow_region(&self, rid: RegionId, additional_dies: u32) -> Result<()> {
        let mut inner = self.inner.lock();
        if (inner.free_dies.len() as u32) < additional_dies {
            return Err(NoFtlError::NotEnoughDies {
                requested: additional_dies,
                available: inner.free_dies.len() as u32,
            });
        }
        let mut taken = Vec::with_capacity(additional_dies as usize);
        for _ in 0..additional_dies {
            taken.push(inner.free_dies.pop().expect("checked above"));
        }
        let device = Arc::clone(&self.device);
        let region = Self::region_mut(&mut inner.regions, rid)?;
        for die in taken {
            region.dies.push(crate::region::RegionDie::new(&device, die));
        }
        Ok(())
    }

    /// Remove `remove_dies` dies from a region, migrating their live data
    /// to the remaining dies (used for global wear leveling / rebalancing,
    /// which the paper lists as a reason for dynamic region membership).
    /// Returns the completion time of the migration.
    pub fn shrink_region(&self, rid: RegionId, remove_dies: u32, at: SimTime) -> Result<SimTime> {
        let mut inner = self.inner.lock();
        let inner = &mut *inner;
        let geo = *self.device.geometry();
        let region = Self::region_mut(&mut inner.regions, rid)?;
        if region.dies.len() as u32 <= remove_dies {
            return Err(NoFtlError::Ddl {
                message: format!(
                    "cannot remove {remove_dies} die(s) from region '{}' with only {} die(s)",
                    region.name,
                    region.dies.len()
                ),
            });
        }
        let mut done = at;
        let mut freed = Vec::new();
        for _ in 0..remove_dies {
            let mut die = region.dies.pop().expect("length checked above");
            region.next_die = 0;
            // Collect every block that may hold valid pages.
            let mut blocks: Vec<flash_sim::BlockAddr> = die.used_blocks.drain(..).collect();
            if let Some((b, _)) = die.active.take() {
                blocks.push(b);
            }
            if let Some((b, _)) = die.gc_active.take() {
                blocks.push(b);
            }
            for block in &blocks {
                for page in 0..geo.pages_per_block {
                    let src = block.page(page);
                    if self.device.page_state(src).map(|s| s == PageState::Valid).unwrap_or(false) {
                        let (data, meta, read_out) = self.device.read_page(src, at)?;
                        let Some(meta) = meta else { continue };
                        // Re-write the page on one of the remaining dies.
                        let ppa = Self::allocate_in_region(
                            &self.device,
                            &self.config,
                            region,
                            &mut inner.objects,
                            at,
                        )
                        .ok_or(NoFtlError::RegionFull { region: rid })?;
                        let out =
                            self.device.program_page(ppa, &data, meta, read_out.completed_at)?;
                        done = done.max(out.completed_at);
                        self.device.mark_invalid(src)?;
                        region.stats.rebalance_moves += 1;
                        if let Some(Some(obj)) = inner.objects.get_mut(meta.object_id as usize) {
                            if obj.translate(meta.logical_page) == Some(src) {
                                obj.set_translation(meta.logical_page, ppa);
                            }
                        }
                    }
                }
            }
            // Erase everything on the die before returning it to the pool.
            for block in blocks {
                match self.device.erase_block(block, done) {
                    Ok(out) => {
                        done = done.max(out.completed_at);
                        die.free_blocks.push(block);
                    }
                    Err(e) if e.is_permanent() => {}
                    Err(e) => return Err(e.into()),
                }
            }
            freed.push(die.die);
        }
        inner.free_dies.extend(freed);
        Ok(done)
    }

    // ------------------------------------------------------------------
    // Object management
    // ------------------------------------------------------------------

    /// Register a new database object in a region.
    pub fn create_object(&self, name: &str, region: RegionId) -> Result<ObjectId> {
        let mut inner = self.inner.lock();
        if inner.object_by_name.contains_key(name) {
            return Err(NoFtlError::ObjectExists { name: name.to_string() });
        }
        Self::region_ref(&inner.regions, region)?;
        let id = inner.objects.len() as ObjectId;
        inner.objects.push(Some(ObjectState::new(name, region)));
        inner.object_by_name.insert(name.to_string(), id);
        Self::region_mut(&mut inner.regions, region)?.objects.push(id);
        Ok(id)
    }

    /// Register a new object in a region identified by name.
    pub fn create_object_in(&self, name: &str, region_name: &str) -> Result<ObjectId> {
        let rid = self
            .region_id(region_name)
            .ok_or_else(|| NoFtlError::UnknownRegion { region: region_name.to_string() })?;
        self.create_object(name, rid)
    }

    /// Look up an object id by name.
    pub fn object_id(&self, name: &str) -> Option<ObjectId> {
        self.inner.lock().object_by_name.get(name).copied()
    }

    /// Drop an object: all of its pages become invalid (reclaimable by GC).
    pub fn drop_object(&self, obj: ObjectId) -> Result<()> {
        let mut inner = self.inner.lock();
        let inner = &mut *inner;
        let state = inner
            .objects
            .get_mut(obj as usize)
            .and_then(|o| o.take())
            .ok_or_else(|| NoFtlError::UnknownObject { object: obj.to_string() })?;
        inner.object_by_name.remove(&state.name);
        if let Ok(region) = Self::region_mut(&mut inner.regions, state.region) {
            region.objects.retain(|o| *o != obj);
            for ppa in state.map.iter().flatten() {
                let _ = self.device.mark_invalid(*ppa);
                region.record_invalidation(*ppa);
            }
        }
        Ok(())
    }

    /// Statistics snapshot of one object.
    pub fn object_stats(&self, obj: ObjectId) -> Result<ObjectStats> {
        let inner = self.inner.lock();
        let state = Self::object_ref(&inner.objects, obj)?;
        Ok(ObjectStats {
            object_id: obj,
            name: state.name.clone(),
            region: state.region,
            pages: state.mapped_pages(),
            reads: state.counters.reads,
            writes: state.counters.writes,
        })
    }

    /// Statistics snapshots of all live objects.
    pub fn all_object_stats(&self) -> Vec<ObjectStats> {
        let inner = self.inner.lock();
        inner
            .objects
            .iter()
            .enumerate()
            .filter_map(|(id, o)| {
                o.as_ref().map(|state| ObjectStats {
                    object_id: id as ObjectId,
                    name: state.name.clone(),
                    region: state.region,
                    pages: state.mapped_pages(),
                    reads: state.counters.reads,
                    writes: state.counters.writes,
                })
            })
            .collect()
    }

    /// Number of live (mapped) pages of an object.
    pub fn object_pages(&self, obj: ObjectId) -> Result<u64> {
        let inner = self.inner.lock();
        Ok(Self::object_ref(&inner.objects, obj)?.mapped_pages())
    }

    /// Logical extent of an object: the highest written logical page number
    /// plus one (0 for an empty object).  The DBMS layer uses this to size
    /// its extent allocation.
    pub fn object_extent(&self, obj: ObjectId) -> Result<u64> {
        let inner = self.inner.lock();
        Ok(Self::object_ref(&inner.objects, obj)?.logical_extent())
    }

    // ------------------------------------------------------------------
    // Data path
    // ------------------------------------------------------------------

    /// Read a logical page of an object.  Returns the payload and the
    /// completion time.
    pub fn read(&self, obj: ObjectId, page: u64, at: SimTime) -> Result<(Vec<u8>, SimTime)> {
        let mut inner = self.inner.lock();
        let inner = &mut *inner;
        let (ppa, rid) = {
            let state = Self::object_mut(&mut inner.objects, obj)?;
            let ppa =
                state.translate(page).ok_or(NoFtlError::PageNotWritten { object: obj, page })?;
            state.counters.reads += 1;
            (ppa, state.region)
        };
        let (data, _, out) = self.device.read_page(ppa, at)?;
        let region = Self::region_mut(&mut inner.regions, rid)?;
        region.stats.host_reads += 1;
        region.stats.read_latency_sum += out.completed_at - at;
        Ok((data, out.completed_at))
    }

    /// Write (out-of-place) a logical page of an object.  Returns the
    /// completion time.
    pub fn write(&self, obj: ObjectId, page: u64, data: &[u8], at: SimTime) -> Result<SimTime> {
        self.check_page_size(data)?;
        let mut inner = self.inner.lock();
        let inner = &mut *inner;
        let rid = Self::object_ref(&inner.objects, obj)?.region;
        let ppa = {
            let region = Self::region_mut(&mut inner.regions, rid)?;
            Self::allocate_in_region(&self.device, &self.config, region, &mut inner.objects, at)
                .ok_or(NoFtlError::RegionFull { region: rid })?
        };
        let meta = PageMetadata::new(obj, page);
        let out = self.device.program_page(ppa, data, meta, at)?;
        let old = {
            let state = Self::object_mut(&mut inner.objects, obj)?;
            state.counters.writes += 1;
            state.set_translation(page, ppa)
        };
        let region = Self::region_mut(&mut inner.regions, rid)?;
        if let Some(old) = old {
            let _ = self.device.mark_invalid(old);
            region.record_invalidation(old);
        }
        region.stats.host_writes += 1;
        region.stats.write_latency_sum += out.completed_at - at;
        Ok(out.completed_at)
    }

    /// Write a batch of pages, all issued at `at`.  Because allocation
    /// stripes consecutive writes over the region's dies, the batch
    /// executes with die-level parallelism; the returned time is the
    /// completion of the slowest page (this is the path used by the buffer
    /// manager's background flushers).
    pub fn write_batch(&self, writes: &[(ObjectId, u64, Vec<u8>)], at: SimTime) -> Result<SimTime> {
        let mut done = at;
        for (obj, page, data) in writes {
            let t = self.write(*obj, *page, data, at)?;
            done = done.max(t);
        }
        Ok(done)
    }

    /// Atomically write a batch of pages: either all of them become
    /// visible or none does.
    ///
    /// This exploits NoFTL's direct control over out-of-place updates
    /// (advantage (iv) in the paper): the new versions are programmed to
    /// freshly allocated pages first, and only if *all* programs succeed
    /// are the address translations switched and the old versions
    /// invalidated.  On any failure the freshly written pages are marked
    /// invalid and the previous versions remain visible.
    pub fn write_atomic(
        &self,
        writes: &[(ObjectId, u64, Vec<u8>)],
        at: SimTime,
    ) -> Result<SimTime> {
        for (_, _, data) in writes {
            self.check_page_size(data)?;
        }
        let mut inner = self.inner.lock();
        let inner = &mut *inner;
        let mut staged: Vec<(ObjectId, u64, PageAddr, SimTime)> = Vec::with_capacity(writes.len());
        let mut failure: Option<NoFtlError> = None;
        for (obj, page, data) in writes {
            let rid = match Self::object_ref(&inner.objects, *obj) {
                Ok(o) => o.region,
                Err(e) => {
                    failure = Some(e);
                    break;
                }
            };
            let region = match Self::region_mut(&mut inner.regions, rid) {
                Ok(r) => r,
                Err(e) => {
                    failure = Some(e);
                    break;
                }
            };
            let Some(ppa) = Self::allocate_in_region(
                &self.device,
                &self.config,
                region,
                &mut inner.objects,
                at,
            ) else {
                failure = Some(NoFtlError::RegionFull { region: rid });
                break;
            };
            let meta = PageMetadata::new(*obj, *page);
            match self.device.program_page(ppa, data, meta, at) {
                Ok(out) => staged.push((*obj, *page, ppa, out.completed_at)),
                Err(e) => {
                    failure = Some(e.into());
                    break;
                }
            }
        }
        if let Some(err) = failure {
            // Abort: the staged versions never become visible.
            for (_, _, ppa, _) in staged {
                let _ = self.device.mark_invalid(ppa);
            }
            return Err(err);
        }
        // Commit: switch the translations.
        let mut done = at;
        for (obj, page, ppa, completed) in staged {
            done = done.max(completed);
            let rid = Self::object_ref(&inner.objects, obj)?.region;
            let old = {
                let state = Self::object_mut(&mut inner.objects, obj)?;
                state.counters.writes += 1;
                state.set_translation(page, ppa)
            };
            let region = Self::region_mut(&mut inner.regions, rid)?;
            if let Some(old) = old {
                let _ = self.device.mark_invalid(old);
                region.record_invalidation(old);
            }
            region.stats.host_writes += 1;
            region.stats.write_latency_sum += completed - at;
        }
        Ok(done)
    }

    /// Release a logical page: its flash page becomes invalid and the
    /// translation is removed.
    pub fn free_page(&self, obj: ObjectId, page: u64) -> Result<()> {
        let mut inner = self.inner.lock();
        let inner = &mut *inner;
        let (old, rid) = {
            let state = Self::object_mut(&mut inner.objects, obj)?;
            (state.clear_translation(page), state.region)
        };
        if let Some(old) = old {
            let _ = self.device.mark_invalid(old);
            Self::region_mut(&mut inner.regions, rid)?.record_invalidation(old);
        }
        Ok(())
    }

    /// Aggregate statistics over all regions.
    pub fn stats(&self) -> NoFtlStats {
        let inner = self.inner.lock();
        let mut agg = NoFtlStats::default();
        for region in inner.regions.iter().flatten() {
            agg.accumulate(&region.stats);
        }
        agg
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    fn check_page_size(&self, data: &[u8]) -> Result<()> {
        let expected = self.device.geometry().page_size;
        if !data.is_empty() && data.len() != expected as usize {
            return Err(NoFtlError::BadPageSize { expected, got: data.len() });
        }
        Ok(())
    }

    fn region_ref(regions: &[Option<RegionRuntime>], rid: RegionId) -> Result<&RegionRuntime> {
        regions
            .get(rid.0 as usize)
            .and_then(|r| r.as_ref())
            .ok_or_else(|| NoFtlError::UnknownRegion { region: format!("{rid:?}") })
    }

    fn region_mut(
        regions: &mut [Option<RegionRuntime>],
        rid: RegionId,
    ) -> Result<&mut RegionRuntime> {
        regions
            .get_mut(rid.0 as usize)
            .and_then(|r| r.as_mut())
            .ok_or_else(|| NoFtlError::UnknownRegion { region: format!("{rid:?}") })
    }

    fn object_ref(objects: &[Option<ObjectState>], obj: ObjectId) -> Result<&ObjectState> {
        objects
            .get(obj as usize)
            .and_then(|o| o.as_ref())
            .ok_or_else(|| NoFtlError::UnknownObject { object: obj.to_string() })
    }

    fn object_mut(objects: &mut [Option<ObjectState>], obj: ObjectId) -> Result<&mut ObjectState> {
        objects
            .get_mut(obj as usize)
            .and_then(|o| o.as_mut())
            .ok_or_else(|| NoFtlError::UnknownObject { object: obj.to_string() })
    }

    /// Allocate the next physical page for a host write in `region`,
    /// running GC when a die's free-block pool runs low.  Returns `None`
    /// when the region is completely full.
    fn allocate_in_region(
        device: &NandDevice,
        config: &NoFtlConfig,
        region: &mut RegionRuntime,
        objects: &mut [Option<ObjectState>],
        at: SimTime,
    ) -> Option<PageAddr> {
        let pages_per_block = device.geometry().pages_per_block;
        let die_count = region.dies.len();
        if die_count == 0 {
            return None;
        }
        for attempt in 0..die_count {
            let idx = (region.next_die + attempt) % die_count;
            if (region.dies[idx].free_blocks.len() as u32) <= config.gc_low_watermark {
                Self::gc_die(device, config, region, objects, idx, at);
            }
            if let Some(ppa) =
                region.dies[idx].next_host_page(device, config.wear_leveling, pages_per_block)
            {
                region.next_die = (idx + 1) % die_count;
                return Some(ppa);
            }
        }
        None
    }

    /// Run garbage collection on one die of a region until its free-block
    /// pool reaches the high watermark or no more victims exist.
    fn gc_die(
        device: &NandDevice,
        config: &NoFtlConfig,
        region: &mut RegionRuntime,
        objects: &mut [Option<ObjectState>],
        die_idx: usize,
        at: SimTime,
    ) {
        region.stats.gc_runs += 1;
        let high = config.gc_high_watermark as usize;
        let mut guard = 0u32;
        while region.dies[die_idx].free_blocks.len() < high {
            guard += 1;
            if guard > device.geometry().blocks_per_die() * 2 {
                break;
            }
            let now_seq = region.invalidate_seq;
            let candidates: Vec<GcCandidate> = {
                let die = &region.dies[die_idx];
                die.used_blocks
                    .iter()
                    .enumerate()
                    .filter_map(|(slot, b)| {
                        let info = device.block_info(*b).ok()?;
                        let seq = region
                            .block_invalidate_seq
                            .get(&(b.die.0, b.plane, b.block))
                            .copied()
                            .unwrap_or(0);
                        GcCandidate::from_info(slot, &info, seq)
                    })
                    .collect()
            };
            let Some(slot) = select_victim(config.gc_policy, &candidates, now_seq) else {
                break;
            };
            let victim = region.dies[die_idx].used_blocks[slot];
            if !Self::collect_block(device, config, region, objects, die_idx, victim, at) {
                break;
            }
        }
        Self::maybe_static_wl(device, config, region, objects, die_idx, at);
    }

    /// Relocate all valid pages of `victim` via copyback (updating the
    /// owning objects' translations) and erase it.  Returns `false` if the
    /// block could not be fully collected.
    fn collect_block(
        device: &NandDevice,
        config: &NoFtlConfig,
        region: &mut RegionRuntime,
        objects: &mut [Option<ObjectState>],
        die_idx: usize,
        victim: flash_sim::BlockAddr,
        at: SimTime,
    ) -> bool {
        let pages_per_block = device.geometry().pages_per_block;
        for page in 0..pages_per_block {
            let src = victim.page(page);
            match device.page_state(src) {
                Ok(PageState::Valid) => {}
                Ok(_) => continue,
                Err(_) => return false,
            }
            let Ok((meta, _)) = device.read_metadata(src, at) else {
                return false;
            };
            let Some(meta) = meta else { continue };
            let Some(dst) =
                region.dies[die_idx].next_gc_page(device, config.wear_leveling, pages_per_block)
            else {
                return false;
            };
            if device.copyback(src, dst, at).is_err() {
                return false;
            }
            region.stats.gc_copybacks += 1;
            if let Some(Some(obj)) = objects.get_mut(meta.object_id as usize) {
                if obj.translate(meta.logical_page) == Some(src) {
                    obj.set_translation(meta.logical_page, dst);
                }
            }
        }
        match device.erase_block(victim, at) {
            Ok(_) => {
                region.stats.gc_erases += 1;
                let die = &mut region.dies[die_idx];
                die.used_blocks.retain(|b| *b != victim);
                die.free_blocks.push(victim);
                true
            }
            Err(e) if e.is_permanent() => {
                region.dies[die_idx].used_blocks.retain(|b| *b != victim);
                false
            }
            Err(_) => false,
        }
    }

    /// Threshold-based static wear leveling within one die of a region.
    fn maybe_static_wl(
        device: &NandDevice,
        config: &NoFtlConfig,
        region: &mut RegionRuntime,
        objects: &mut [Option<ObjectState>],
        die_idx: usize,
        at: SimTime,
    ) {
        if !matches!(config.wear_leveling, crate::config::WearLevelingPolicy::Static { .. }) {
            return;
        }
        let counts: Vec<(flash_sim::BlockAddr, u64, flash_sim::BlockState)> = {
            let die = &region.dies[die_idx];
            die.used_blocks
                .iter()
                .chain(die.free_blocks.iter())
                .filter_map(|b| device.block_info(*b).ok().map(|i| (*b, i.erase_count, i.state)))
                .collect()
        };
        let Some(max) = counts.iter().map(|(_, c, _)| *c).max() else { return };
        let Some(min) = counts.iter().map(|(_, c, _)| *c).min() else { return };
        if !needs_static_wl(config.wear_leveling, min, max) {
            return;
        }
        let victim = counts
            .iter()
            .filter(|(b, _, s)| {
                *s == flash_sim::BlockState::Full && region.dies[die_idx].used_blocks.contains(b)
            })
            .min_by_key(|(_, c, _)| *c)
            .map(|(b, _, _)| *b);
        if let Some(victim) = victim {
            if Self::collect_block(device, config, region, objects, die_idx, victim, at) {
                region.stats.wl_migrations += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{GcPolicy, WearLevelingPolicy};
    use flash_sim::{DeviceBuilder, FlashGeometry, TimingModel};

    fn make_noftl() -> NoFtl {
        let device = Arc::new(
            DeviceBuilder::new(FlashGeometry::small_test()).timing(TimingModel::mlc_2015()).build(),
        );
        NoFtl::new(device, NoFtlConfig::default())
    }

    fn page(byte: u8) -> Vec<u8> {
        vec![byte; 4096]
    }

    #[test]
    fn create_region_takes_dies_from_pool() {
        let noftl = make_noftl();
        assert_eq!(noftl.free_die_count(), 4);
        let r = noftl.create_region(RegionSpec::named("rgA").with_die_count(3)).unwrap();
        assert_eq!(noftl.free_die_count(), 1);
        assert_eq!(noftl.region_dies(r).unwrap().len(), 3);
        assert_eq!(noftl.region_name(r).unwrap(), "rgA");
        assert_eq!(noftl.region_ids(), vec![r]);
    }

    #[test]
    fn duplicate_region_name_is_rejected() {
        let noftl = make_noftl();
        noftl.create_region(RegionSpec::named("rgA").with_die_count(1)).unwrap();
        let err = noftl.create_region(RegionSpec::named("rgA").with_die_count(1)).unwrap_err();
        assert!(matches!(err, NoFtlError::RegionExists { .. }));
    }

    #[test]
    fn region_creation_fails_without_enough_dies() {
        let noftl = make_noftl();
        let err = noftl.create_region(RegionSpec::named("rgBig").with_die_count(5)).unwrap_err();
        assert!(matches!(err, NoFtlError::NotEnoughDies { requested: 5, available: 4 }));
    }

    #[test]
    fn regions_spread_across_channels() {
        let noftl = make_noftl();
        let geo = *noftl.device().geometry();
        let r = noftl.create_region(RegionSpec::named("rg").with_die_count(2)).unwrap();
        let dies = noftl.region_dies(r).unwrap();
        let channels: std::collections::HashSet<u32> =
            dies.iter().map(|d| geo.channel_of_die(*d)).collect();
        assert_eq!(channels.len(), 2, "two dies should land on two channels");
    }

    #[test]
    fn max_channels_limits_channel_spread() {
        let noftl = make_noftl();
        let geo = *noftl.device().geometry();
        let r = noftl
            .create_region(RegionSpec::named("rg").with_die_count(2).with_max_channels(1))
            .unwrap();
        let dies = noftl.region_dies(r).unwrap();
        let channels: std::collections::HashSet<u32> =
            dies.iter().map(|d| geo.channel_of_die(*d)).collect();
        assert_eq!(channels.len(), 1);
    }

    #[test]
    fn write_read_roundtrip_and_stats() {
        let noftl = make_noftl();
        let r = noftl.create_region(RegionSpec::named("rg").with_die_count(2)).unwrap();
        let obj = noftl.create_object("t", r).unwrap();
        let done = noftl.write(obj, 7, &page(0xAA), SimTime::ZERO).unwrap();
        let (data, done2) = noftl.read(obj, 7, done).unwrap();
        assert_eq!(data, page(0xAA));
        assert!(done2 > done);
        let os = noftl.object_stats(obj).unwrap();
        assert_eq!(os.reads, 1);
        assert_eq!(os.writes, 1);
        assert_eq!(os.pages, 1);
        let rs = noftl.region_stats(r).unwrap();
        assert_eq!(rs.host_reads, 1);
        assert_eq!(rs.host_writes, 1);
        assert!(rs.avg_write_latency_us() > 0.0);
        let agg = noftl.stats();
        assert_eq!(agg.host_writes, 1);
    }

    #[test]
    fn overwrites_invalidate_previous_versions() {
        let noftl = make_noftl();
        let r = noftl.create_region(RegionSpec::named("rg").with_die_count(1)).unwrap();
        let obj = noftl.create_object("t", r).unwrap();
        let mut t = SimTime::ZERO;
        for i in 0..5u8 {
            t = noftl.write(obj, 0, &page(i), t).unwrap();
        }
        let (data, _) = noftl.read(obj, 0, t).unwrap();
        assert_eq!(data, page(4));
        assert_eq!(noftl.object_pages(obj).unwrap(), 1, "only one live page");
    }

    #[test]
    fn unwritten_page_read_fails() {
        let noftl = make_noftl();
        let r = noftl.create_region(RegionSpec::named("rg").with_die_count(1)).unwrap();
        let obj = noftl.create_object("t", r).unwrap();
        assert!(matches!(
            noftl.read(obj, 3, SimTime::ZERO),
            Err(NoFtlError::PageNotWritten { page: 3, .. })
        ));
    }

    #[test]
    fn unknown_object_and_region_errors() {
        let noftl = make_noftl();
        assert!(matches!(noftl.read(42, 0, SimTime::ZERO), Err(NoFtlError::UnknownObject { .. })));
        assert!(noftl.region_stats(RegionId(9)).is_err());
        assert!(noftl.create_object("x", RegionId(9)).is_err());
        assert!(noftl.create_object_in("x", "nope").is_err());
        assert!(noftl.object_id("nope").is_none());
    }

    #[test]
    fn duplicate_object_name_rejected() {
        let noftl = make_noftl();
        let r = noftl.create_region(RegionSpec::named("rg").with_die_count(1)).unwrap();
        noftl.create_object("t", r).unwrap();
        assert!(matches!(noftl.create_object("t", r), Err(NoFtlError::ObjectExists { .. })));
    }

    #[test]
    fn bad_page_size_rejected() {
        let noftl = make_noftl();
        let r = noftl.create_region(RegionSpec::named("rg").with_die_count(1)).unwrap();
        let obj = noftl.create_object("t", r).unwrap();
        assert!(matches!(
            noftl.write(obj, 0, &[1, 2, 3], SimTime::ZERO),
            Err(NoFtlError::BadPageSize { .. })
        ));
    }

    #[test]
    fn sustained_overwrites_trigger_gc_and_preserve_data() {
        let noftl = make_noftl();
        let r = noftl.create_region(RegionSpec::named("rg").with_die_count(2)).unwrap();
        let obj = noftl.create_object("t", r).unwrap();
        let geo = *noftl.device().geometry();
        // Working set = 60 % of the region's raw capacity.
        let working_set = 2 * geo.pages_per_die() * 6 / 10;
        let mut t = SimTime::ZERO;
        let mut latest = vec![0u8; working_set as usize];
        for round in 0..5u8 {
            for p in 0..working_set {
                let v = round.wrapping_mul(37).wrapping_add(p as u8);
                t = noftl.write(obj, p, &page(v), t).unwrap();
                latest[p as usize] = v;
            }
        }
        let rs = noftl.region_stats(r).unwrap();
        assert!(rs.gc_runs > 0);
        assert!(rs.gc_erases > 0);
        assert!(noftl.device().stats().block_erases > 0);
        for p in 0..working_set {
            let (data, _) = noftl.read(obj, p, t).unwrap();
            assert_eq!(data, page(latest[p as usize]), "page {p}");
        }
    }

    #[test]
    fn hot_cold_separation_reduces_copybacks() {
        // Two objects: one hot (overwritten constantly) and one cold
        // (written once).  Placing them in separate regions (the paper's
        // proposal) must produce fewer GC copybacks than mixing them in a
        // single region (traditional placement), because in the mixed case
        // victim blocks contain valid cold pages that have to be relocated.
        fn run(separate: bool) -> u64 {
            let device = Arc::new(
                DeviceBuilder::new(FlashGeometry::small_test())
                    .timing(TimingModel::instant())
                    .build(),
            );
            let noftl = NoFtl::new(Arc::clone(&device), NoFtlConfig::default());
            let (hot_region, cold_region) = if separate {
                let h = noftl.create_region(RegionSpec::named("rgHot").with_die_count(2)).unwrap();
                let c = noftl.create_region(RegionSpec::named("rgCold").with_die_count(2)).unwrap();
                (h, c)
            } else {
                let all =
                    noftl.create_region(RegionSpec::named("rgAll").with_die_count(4)).unwrap();
                (all, all)
            };
            let hot = noftl.create_object("hot", hot_region).unwrap();
            let cold = noftl.create_object("cold", cold_region).unwrap();
            let geo = *device.geometry();
            let pages_per_die = geo.pages_per_die();
            let cold_pages = pages_per_die; // fills a good part of its share
            let hot_pages = pages_per_die / 4;
            let t = SimTime::ZERO;
            // Interleave cold fill with hot updates so blocks mix in the
            // shared-region case.
            let mut cold_written = 0u64;
            for round in 0..40u64 {
                for p in 0..hot_pages {
                    noftl.write(hot, p, &page((round % 251) as u8), t).unwrap();
                }
                while cold_written < cold_pages
                    && cold_written < (round + 1) * (cold_pages / 40 + 1)
                {
                    noftl.write(cold, cold_written, &page(0xCC), t).unwrap();
                    cold_written += 1;
                }
            }
            device.stats().copybacks
        }
        let mixed = run(false);
        let separated = run(true);
        assert!(
            separated < mixed,
            "region separation should reduce copybacks (separated={separated}, mixed={mixed})"
        );
    }

    #[test]
    fn write_batch_returns_latest_completion() {
        let noftl = make_noftl();
        let r = noftl.create_region(RegionSpec::named("rg").with_die_count(2)).unwrap();
        let obj = noftl.create_object("t", r).unwrap();
        let writes: Vec<(ObjectId, u64, Vec<u8>)> =
            (0..4).map(|i| (obj, i as u64, page(i as u8))).collect();
        let single = noftl.write(obj, 99, &page(9), SimTime::ZERO).unwrap();
        let batch_done = noftl.write_batch(&writes, SimTime::ZERO).unwrap();
        // The batch of four pages over two dies takes about two program
        // times, i.e. it must finish later than a single write but much
        // earlier than four serialized writes would.
        assert!(batch_done > single);
        for i in 0..4u64 {
            let (data, _) = noftl.read(obj, i, batch_done).unwrap();
            assert_eq!(data, page(i as u8));
        }
    }

    #[test]
    fn atomic_write_commits_all_or_nothing() {
        let noftl = make_noftl();
        let r = noftl.create_region(RegionSpec::named("rg").with_die_count(2)).unwrap();
        let obj = noftl.create_object("t", r).unwrap();
        let t0 = SimTime::ZERO;
        noftl.write(obj, 0, &page(1), t0).unwrap();
        noftl.write(obj, 1, &page(1), t0).unwrap();
        // Successful atomic batch.
        let batch = vec![(obj, 0u64, page(2)), (obj, 1u64, page(2))];
        let done = noftl.write_atomic(&batch, t0).unwrap();
        assert_eq!(noftl.read(obj, 0, done).unwrap().0, page(2));
        assert_eq!(noftl.read(obj, 1, done).unwrap().0, page(2));
        // Failing atomic batch (unknown object in the middle): nothing changes.
        let bad = vec![(obj, 0u64, page(3)), (999u32, 0u64, page(3))];
        assert!(noftl.write_atomic(&bad, done).is_err());
        assert_eq!(noftl.read(obj, 0, done).unwrap().0, page(2));
    }

    #[test]
    fn free_page_and_drop_object_invalidate_pages() {
        let noftl = make_noftl();
        let r = noftl.create_region(RegionSpec::named("rg").with_die_count(1)).unwrap();
        let obj = noftl.create_object("t", r).unwrap();
        noftl.write(obj, 0, &page(1), SimTime::ZERO).unwrap();
        noftl.write(obj, 1, &page(1), SimTime::ZERO).unwrap();
        noftl.free_page(obj, 0).unwrap();
        assert!(noftl.read(obj, 0, SimTime::ZERO).is_err());
        assert_eq!(noftl.object_pages(obj).unwrap(), 1);
        noftl.drop_object(obj).unwrap();
        assert!(noftl.object_stats(obj).is_err());
        assert!(noftl.object_id("t").is_none());
        // Freeing a never-written page is a no-op.
        let obj2 = noftl.create_object("t2", r).unwrap();
        noftl.free_page(obj2, 5).unwrap();
    }

    #[test]
    fn drop_region_requires_empty_and_returns_dies() {
        let noftl = make_noftl();
        let r = noftl.create_region(RegionSpec::named("rg").with_die_count(2)).unwrap();
        let obj = noftl.create_object("t", r).unwrap();
        noftl.write(obj, 0, &page(1), SimTime::ZERO).unwrap();
        assert!(matches!(
            noftl.drop_region(r, SimTime::ZERO),
            Err(NoFtlError::RegionNotEmpty { .. })
        ));
        noftl.drop_object(obj).unwrap();
        noftl.drop_region(r, SimTime::ZERO).unwrap();
        assert_eq!(noftl.free_die_count(), 4);
        assert!(noftl.region_id("rg").is_none());
        // The returned dies can immediately back a new region.
        let r2 = noftl.create_region(RegionSpec::named("rg2").with_die_count(4)).unwrap();
        let obj2 = noftl.create_object("t2", r2).unwrap();
        noftl.write(obj2, 0, &page(7), SimTime::ZERO).unwrap();
        assert_eq!(noftl.read(obj2, 0, SimTime::ZERO).unwrap().0, page(7));
    }

    #[test]
    fn grow_and_shrink_region_preserve_data() {
        let noftl = make_noftl();
        let r = noftl.create_region(RegionSpec::named("rg").with_die_count(1)).unwrap();
        let obj = noftl.create_object("t", r).unwrap();
        let mut t = SimTime::ZERO;
        for p in 0..20u64 {
            t = noftl.write(obj, p, &page(p as u8), t).unwrap();
        }
        noftl.grow_region(r, 2).unwrap();
        assert_eq!(noftl.region_dies(r).unwrap().len(), 3);
        assert_eq!(noftl.free_die_count(), 1);
        for p in 20..40u64 {
            t = noftl.write(obj, p, &page(p as u8), t).unwrap();
        }
        // Shrink back down to one die; the data written on the removed dies
        // must be migrated and stay readable.
        let done = noftl.shrink_region(r, 2, t).unwrap();
        assert_eq!(noftl.region_dies(r).unwrap().len(), 1);
        assert_eq!(noftl.free_die_count(), 3);
        for p in 0..40u64 {
            let (data, _) = noftl.read(obj, p, done).unwrap();
            assert_eq!(data, page(p as u8), "page {p}");
        }
        let rs = noftl.region_stats(r).unwrap();
        assert!(rs.rebalance_moves > 0);
        // Shrinking to zero dies is rejected.
        assert!(noftl.shrink_region(r, 1, done).is_err());
        // Growing beyond the pool is rejected.
        assert!(noftl.grow_region(r, 10).is_err());
    }

    #[test]
    fn static_wl_policy_is_exercised() {
        let device = Arc::new(
            DeviceBuilder::new(FlashGeometry::small_test()).timing(TimingModel::instant()).build(),
        );
        let config = NoFtlConfig {
            wear_leveling: WearLevelingPolicy::Static { threshold: 2 },
            gc_policy: GcPolicy::CostBenefit,
            ..NoFtlConfig::default()
        };
        let noftl = NoFtl::new(Arc::clone(&device), config);
        let r = noftl.create_region(RegionSpec::named("rg").with_die_count(1)).unwrap();
        let cold = noftl.create_object("cold", r).unwrap();
        let hot = noftl.create_object("hot", r).unwrap();
        let geo = *device.geometry();
        let t = SimTime::ZERO;
        // A block's worth of cold data that never changes...
        for p in 0..geo.pages_per_block as u64 {
            noftl.write(cold, p, &page(0xCC), t).unwrap();
        }
        // ...and a hot page hammered long enough to wear out the rest.
        for i in 0..(geo.pages_per_die() * 6) {
            noftl.write(hot, 0, &page((i % 255) as u8), t).unwrap();
        }
        let rs = noftl.region_stats(r).unwrap();
        assert!(rs.wl_migrations > 0, "static WL should have migrated the cold block");
        // Cold data is still correct after migration.
        assert_eq!(noftl.read(cold, 0, t).unwrap().0, page(0xCC));
    }

    #[test]
    fn with_single_region_spans_all_dies() {
        let device = Arc::new(DeviceBuilder::new(FlashGeometry::small_test()).build());
        let (noftl, rid) = NoFtl::with_single_region(device, NoFtlConfig::default());
        assert_eq!(noftl.region_dies(rid).unwrap().len(), 4);
        assert_eq!(noftl.free_die_count(), 0);
        assert_eq!(noftl.region_name(rid).unwrap(), "rgAll");
    }

    #[test]
    fn region_info_and_object_extent() {
        let noftl = make_noftl();
        let geo = *noftl.device().geometry();
        let r = noftl.create_region(RegionSpec::named("rg").with_die_count(2)).unwrap();
        let obj = noftl.create_object("t", r).unwrap();
        noftl.write(obj, 10, &page(1), SimTime::ZERO).unwrap();
        let info = noftl.region_info(r).unwrap();
        assert_eq!(info.name, "rg");
        assert_eq!(info.dies.len(), 2);
        assert_eq!(info.objects, vec![obj]);
        assert_eq!(info.capacity_pages, 2 * geo.pages_per_die());
        assert!(info.effective_capacity_pages <= info.capacity_pages);
        assert_eq!(info.tracked_blocks, 2 * geo.blocks_per_die() as u64);
        assert!(info.free_blocks < info.tracked_blocks, "one block is now open");
        assert_eq!(noftl.object_extent(obj).unwrap(), 11);
        assert_eq!(noftl.object_pages(obj).unwrap(), 1);
        assert!(noftl.region_info(RegionId(7)).is_err());
    }

    #[test]
    fn all_object_stats_lists_every_object() {
        let noftl = make_noftl();
        let r = noftl.create_region(RegionSpec::named("rg").with_die_count(2)).unwrap();
        let a = noftl.create_object("a", r).unwrap();
        let _b = noftl.create_object("b", r).unwrap();
        noftl.write(a, 0, &page(1), SimTime::ZERO).unwrap();
        let stats = noftl.all_object_stats();
        assert_eq!(stats.len(), 2);
        assert_eq!(stats.iter().find(|s| s.name == "a").unwrap().writes, 1);
        assert_eq!(stats.iter().find(|s| s.name == "b").unwrap().writes, 0);
    }
}
