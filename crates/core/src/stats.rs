//! Statistics exposed by the NoFTL storage manager.

use serde::{Deserialize, Serialize};

use flash_sim::Duration;

/// Per-region counters.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RegionStats {
    /// Host page reads served from this region.
    pub host_reads: u64,
    /// Host page writes served by this region.
    pub host_writes: u64,
    /// GC invocations in this region.
    pub gc_runs: u64,
    /// Valid pages relocated by region GC (copybacks).
    pub gc_copybacks: u64,
    /// Blocks erased by region GC.
    pub gc_erases: u64,
    /// Static wear-leveling migrations inside the region.
    pub wl_migrations: u64,
    /// Pages migrated because a die was removed from the region.
    pub rebalance_moves: u64,
    /// Sum of end-to-end host read latencies in this region.
    pub read_latency_sum: Duration,
    /// Sum of end-to-end host write latencies in this region.
    pub write_latency_sum: Duration,
}

impl RegionStats {
    /// Mean host read latency in microseconds.
    pub fn avg_read_latency_us(&self) -> f64 {
        if self.host_reads == 0 {
            0.0
        } else {
            self.read_latency_sum.as_us_f64() / self.host_reads as f64
        }
    }

    /// Mean host write latency in microseconds.
    pub fn avg_write_latency_us(&self) -> f64 {
        if self.host_writes == 0 {
            0.0
        } else {
            self.write_latency_sum.as_us_f64() / self.host_writes as f64
        }
    }

    /// Write amplification within the region: (host writes + GC copybacks)
    /// per host write.
    pub fn write_amplification(&self) -> f64 {
        if self.host_writes == 0 {
            0.0
        } else {
            (self.host_writes + self.gc_copybacks) as f64 / self.host_writes as f64
        }
    }
}

/// Aggregate storage-manager statistics (sums over regions).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct NoFtlStats {
    /// Host page reads.
    pub host_reads: u64,
    /// Host page writes.
    pub host_writes: u64,
    /// GC invocations.
    pub gc_runs: u64,
    /// GC copybacks (valid-page relocations).
    pub gc_copybacks: u64,
    /// GC erases.
    pub gc_erases: u64,
    /// Static wear-leveling migrations.
    pub wl_migrations: u64,
    /// Pages moved for region rebalancing.
    pub rebalance_moves: u64,
    /// Sum of host read latencies.
    pub read_latency_sum: Duration,
    /// Sum of host write latencies.
    pub write_latency_sum: Duration,
}

impl NoFtlStats {
    /// Accumulate a region's counters into the aggregate.
    pub fn accumulate(&mut self, r: &RegionStats) {
        self.host_reads += r.host_reads;
        self.host_writes += r.host_writes;
        self.gc_runs += r.gc_runs;
        self.gc_copybacks += r.gc_copybacks;
        self.gc_erases += r.gc_erases;
        self.wl_migrations += r.wl_migrations;
        self.rebalance_moves += r.rebalance_moves;
        self.read_latency_sum += r.read_latency_sum;
        self.write_latency_sum += r.write_latency_sum;
    }

    /// Mean host read latency in microseconds.
    pub fn avg_read_latency_us(&self) -> f64 {
        if self.host_reads == 0 {
            0.0
        } else {
            self.read_latency_sum.as_us_f64() / self.host_reads as f64
        }
    }

    /// Mean host write latency in microseconds.
    pub fn avg_write_latency_us(&self) -> f64 {
        if self.host_writes == 0 {
            0.0
        } else {
            self.write_latency_sum.as_us_f64() / self.host_writes as f64
        }
    }

    /// Write amplification: (host writes + copybacks) / host writes.
    pub fn write_amplification(&self) -> f64 {
        if self.host_writes == 0 {
            0.0
        } else {
            (self.host_writes + self.gc_copybacks) as f64 / self.host_writes as f64
        }
    }
}

/// Per-object statistics snapshot (for the DBA and the placement advisor).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ObjectStats {
    /// Object id.
    pub object_id: u32,
    /// Object name.
    pub name: String,
    /// Region the object is placed in.
    pub region: crate::region::RegionId,
    /// Number of mapped (live) pages.
    pub pages: u64,
    /// Logical page reads served.
    pub reads: u64,
    /// Logical page writes served.
    pub writes: u64,
}

impl ObjectStats {
    /// Total I/O operations on the object.
    pub fn io_total(&self) -> u64 {
        self.reads + self.writes
    }

    /// Fraction of the object's I/O that is writes (0 when the object has
    /// seen no I/O).
    pub fn write_ratio(&self) -> f64 {
        let total = self.io_total();
        if total == 0 {
            0.0
        } else {
            self.writes as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::region::RegionId;

    #[test]
    fn region_stats_averages_and_wa() {
        let r = RegionStats {
            host_reads: 2,
            host_writes: 10,
            gc_copybacks: 5,
            read_latency_sum: Duration::from_us(300),
            write_latency_sum: Duration::from_us(1000),
            ..Default::default()
        };
        assert!((r.avg_read_latency_us() - 150.0).abs() < 1e-9);
        assert!((r.avg_write_latency_us() - 100.0).abs() < 1e-9);
        assert!((r.write_amplification() - 1.5).abs() < 1e-9);
        assert_eq!(RegionStats::default().write_amplification(), 0.0);
        assert_eq!(RegionStats::default().avg_read_latency_us(), 0.0);
    }

    #[test]
    fn aggregate_accumulates_regions() {
        let mut agg = NoFtlStats::default();
        let r1 = RegionStats { host_reads: 5, gc_erases: 2, ..Default::default() };
        let r2 = RegionStats { host_reads: 7, gc_copybacks: 3, ..Default::default() };
        agg.accumulate(&r1);
        agg.accumulate(&r2);
        assert_eq!(agg.host_reads, 12);
        assert_eq!(agg.gc_erases, 2);
        assert_eq!(agg.gc_copybacks, 3);
    }

    #[test]
    fn object_stats_ratios() {
        let o = ObjectStats {
            object_id: 1,
            name: "orderline".into(),
            region: RegionId(0),
            pages: 100,
            reads: 30,
            writes: 70,
        };
        assert_eq!(o.io_total(), 100);
        assert!((o.write_ratio() - 0.7).abs() < 1e-9);
        let idle = ObjectStats { reads: 0, writes: 0, ..o };
        assert_eq!(idle.write_ratio(), 0.0);
    }
}
