//! Error type for the NoFTL storage manager.

use flash_sim::FlashError;
use std::fmt;

use crate::object::ObjectId;
use crate::region::RegionId;

/// Errors surfaced by the NoFTL storage manager.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NoFtlError {
    /// A region with this name already exists.
    RegionExists {
        /// Conflicting name.
        name: String,
    },
    /// No region with this id/name exists.
    UnknownRegion {
        /// Requested region description.
        region: String,
    },
    /// The device does not have enough unassigned dies to satisfy a
    /// `CREATE REGION` / grow request.
    NotEnoughDies {
        /// Dies requested.
        requested: u32,
        /// Dies available in the free pool.
        available: u32,
    },
    /// A region cannot be dropped / shrunk while objects still live in it.
    RegionNotEmpty {
        /// The region in question.
        region: RegionId,
        /// Number of objects still placed in it.
        objects: usize,
    },
    /// An object with this name already exists.
    ObjectExists {
        /// Conflicting name.
        name: String,
    },
    /// No object with this id/name exists.
    UnknownObject {
        /// Requested object description.
        object: String,
    },
    /// Read of a logical page that has never been written.
    PageNotWritten {
        /// Object owning the page.
        object: ObjectId,
        /// Logical page number.
        page: u64,
    },
    /// The region ran out of space and garbage collection could not
    /// reclaim enough (the region's dies are full of valid data).
    RegionFull {
        /// The region that is full.
        region: RegionId,
    },
    /// The data buffer does not match the device page size.
    BadPageSize {
        /// Expected size in bytes.
        expected: u32,
        /// Supplied buffer length.
        got: usize,
    },
    /// A DDL statement could not be parsed or executed.
    Ddl {
        /// Human-readable description.
        message: String,
    },
    /// A configuration input (e.g. the `NOFTL_PLACEMENT` environment
    /// variable) could not be parsed.
    Config {
        /// Human-readable description.
        message: String,
    },
    /// `NoFtl::mount` found data on the device but no complete region-
    /// metadata checkpoint to rebuild the directory from.
    NoCheckpoint,
    /// A checkpoint or mount operation failed.
    Recovery {
        /// Human-readable description.
        message: String,
    },
    /// A NoFTL-KV store operation failed (missing store, corrupt run,
    /// oversized entry, or a crash-consistency contract violation caught
    /// by the harness).
    Kv {
        /// Human-readable description.
        message: String,
    },
    /// An underlying native flash error.
    Flash(FlashError),
}

impl fmt::Display for NoFtlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NoFtlError::RegionExists { name } => write!(f, "region '{name}' already exists"),
            NoFtlError::UnknownRegion { region } => write!(f, "unknown region {region}"),
            NoFtlError::NotEnoughDies { requested, available } => {
                write!(f, "not enough free dies: requested {requested}, available {available}")
            }
            NoFtlError::RegionNotEmpty { region, objects } => {
                write!(f, "region {:?} still holds {objects} object(s)", region)
            }
            NoFtlError::ObjectExists { name } => write!(f, "object '{name}' already exists"),
            NoFtlError::UnknownObject { object } => write!(f, "unknown object {object}"),
            NoFtlError::PageNotWritten { object, page } => {
                write!(f, "object {object} page {page} has never been written")
            }
            NoFtlError::RegionFull { region } => write!(f, "region {:?} is out of space", region),
            NoFtlError::BadPageSize { expected, got } => {
                write!(f, "bad page buffer size: expected {expected}, got {got}")
            }
            NoFtlError::Ddl { message } => write!(f, "DDL error: {message}"),
            NoFtlError::Config { message } => write!(f, "configuration error: {message}"),
            NoFtlError::NoCheckpoint => write!(
                f,
                "device holds data but no complete region-metadata checkpoint; \
                 cannot rebuild the object directory"
            ),
            NoFtlError::Recovery { message } => write!(f, "recovery error: {message}"),
            NoFtlError::Kv { message } => write!(f, "kv error: {message}"),
            NoFtlError::Flash(e) => write!(f, "flash error: {e}"),
        }
    }
}

impl std::error::Error for NoFtlError {}

impl From<FlashError> for NoFtlError {
    fn from(e: FlashError) -> Self {
        NoFtlError::Flash(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(NoFtlError::RegionExists { name: "rgHot".into() }.to_string().contains("rgHot"));
        assert!(NoFtlError::NotEnoughDies { requested: 8, available: 2 }
            .to_string()
            .contains("requested 8"));
        assert!(NoFtlError::PageNotWritten { object: 3, page: 9 }.to_string().contains("page 9"));
        let e: NoFtlError = FlashError::oob("x").into();
        assert!(matches!(e, NoFtlError::Flash(_)));
    }
}
