//! DDL for regions, tablespaces and tables.
//!
//! The paper shows how the DBA administers native flash with *existing*
//! logical structures plus one new physical structure, the region:
//!
//! ```sql
//! CREATE REGION rgHotTbl (MAX_CHIPS=8, MAX_CHANNELS=4, MAX_SIZE=1280M);
//! CREATE TABLESPACE tsHotTbl (REGION=rgHotTbl, EXTENT_SIZE=128K);
//! CREATE TABLE T (t_id NUMBER(3)) TABLESPACE tsHotTbl;
//! ```
//!
//! This module implements a small parser for exactly that dialect and an
//! executor that applies the statements to a [`NoFtl`] storage manager,
//! maintaining the tablespace → region binding.  Column definitions inside
//! `CREATE TABLE` are accepted and recorded verbatim (the storage manager
//! does not interpret them; the DBMS layer above does).

use std::collections::HashMap;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use crate::error::NoFtlError;
use crate::manager::NoFtl;
use crate::object::ObjectId;
use flash_sim::ServiceClass;

use crate::placement::PlacementPolicyKind;
use crate::region::{RegionId, RegionSpec};
use crate::Result;

/// A parsed DDL statement.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum DdlStatement {
    /// `CREATE REGION name (MAX_CHIPS=.., MAX_CHANNELS=.., MAX_SIZE=..,
    /// DIES=.., PLACEMENT=.., CLASS=..)`
    CreateRegion {
        /// Region name.
        name: String,
        /// Explicit die count (`DIES=n`), if given.
        dies: Option<u32>,
        /// `MAX_CHIPS` limit, if given.
        max_chips: Option<u32>,
        /// `MAX_CHANNELS` limit, if given.
        max_channels: Option<u32>,
        /// `MAX_SIZE` limit in bytes, if given.
        max_size_bytes: Option<u64>,
        /// `PLACEMENT` policy override (`ROUND_ROBIN`/`QUEUE_AWARE`), if
        /// given.
        placement: Option<PlacementPolicyKind>,
        /// `CLASS` service-class override
        /// (`LATENCY`/`THROUGHPUT`/`BACKGROUND`), if given.
        class: Option<ServiceClass>,
    },
    /// `CREATE TABLESPACE name (REGION=.., EXTENT_SIZE=..)`
    CreateTablespace {
        /// Tablespace name.
        name: String,
        /// The region the tablespace is bound to.
        region: String,
        /// Extent size in bytes, if given.
        extent_size_bytes: Option<u64>,
    },
    /// `CREATE TABLE name (col defs...) TABLESPACE ts`
    CreateTable {
        /// Table name.
        name: String,
        /// Raw column definition list (uninterpreted).
        columns: Vec<String>,
        /// The tablespace the table is placed in.
        tablespace: String,
    },
    /// `DROP REGION name`
    DropRegion {
        /// Region name.
        name: String,
    },
    /// `DROP TABLE name`
    DropTable {
        /// Table name.
        name: String,
    },
}

fn ddl_err(msg: impl Into<String>) -> NoFtlError {
    NoFtlError::Ddl { message: msg.into() }
}

/// Parse a size literal such as `1280M`, `128K`, `4G`, or `4096`.
pub fn parse_size(s: &str) -> Result<u64> {
    let s = s.trim();
    if s.is_empty() {
        return Err(ddl_err("empty size literal"));
    }
    let (digits, suffix) = match s.chars().last() {
        Some('k' | 'K') => (&s[..s.len() - 1], 1024u64),
        Some('m' | 'M') => (&s[..s.len() - 1], 1024 * 1024),
        Some('g' | 'G') => (&s[..s.len() - 1], 1024 * 1024 * 1024),
        _ => (s, 1),
    };
    digits
        .trim()
        .parse::<u64>()
        .map(|v| v * suffix)
        .map_err(|_| ddl_err(format!("invalid size literal '{s}'")))
}

/// Split a statement's parenthesised body into top-level comma-separated
/// items (nested parentheses, as in `NUMBER(3)`, stay intact).
fn split_top_level(body: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut cur = String::new();
    for c in body.chars() {
        match c {
            '(' => {
                depth += 1;
                cur.push(c);
            }
            ')' => {
                depth -= 1;
                cur.push(c);
            }
            ',' if depth == 0 => {
                out.push(cur.trim().to_string());
                cur.clear();
            }
            _ => cur.push(c),
        }
    }
    if !cur.trim().is_empty() {
        out.push(cur.trim().to_string());
    }
    out
}

/// Parse one DDL statement (a trailing `;` is allowed).
pub fn parse_statement(sql: &str) -> Result<DdlStatement> {
    let sql = sql.trim().trim_end_matches(';').trim();
    let upper = sql.to_ascii_uppercase();
    if let Some(rest) = upper.strip_prefix("CREATE REGION") {
        let rest_orig = &sql[sql.len() - rest.len()..];
        return parse_create_region(rest_orig);
    }
    if let Some(rest) = upper.strip_prefix("CREATE TABLESPACE") {
        let rest_orig = &sql[sql.len() - rest.len()..];
        return parse_create_tablespace(rest_orig);
    }
    if let Some(rest) = upper.strip_prefix("CREATE TABLE") {
        let rest_orig = &sql[sql.len() - rest.len()..];
        return parse_create_table(rest_orig);
    }
    if let Some(rest) = upper.strip_prefix("DROP REGION") {
        let name = sql[sql.len() - rest.len()..].trim();
        if name.is_empty() {
            return Err(ddl_err("DROP REGION requires a name"));
        }
        return Ok(DdlStatement::DropRegion { name: name.to_string() });
    }
    if let Some(rest) = upper.strip_prefix("DROP TABLE") {
        let name = sql[sql.len() - rest.len()..].trim();
        if name.is_empty() {
            return Err(ddl_err("DROP TABLE requires a name"));
        }
        return Ok(DdlStatement::DropTable { name: name.to_string() });
    }
    Err(ddl_err(format!("unrecognised DDL statement: '{sql}'")))
}

fn name_and_body(rest: &str) -> Result<(String, Option<String>)> {
    let rest = rest.trim();
    match rest.find('(') {
        Some(open) => {
            let name = rest[..open].trim().to_string();
            let close = rest.rfind(')').ok_or_else(|| ddl_err("missing closing ')'"))?;
            if close < open {
                return Err(ddl_err("mismatched parentheses"));
            }
            Ok((name, Some(rest[open + 1..close].to_string())))
        }
        None => Ok((rest.to_string(), None)),
    }
}

fn parse_kv_options(body: &str) -> Result<HashMap<String, String>> {
    let mut map = HashMap::new();
    for item in split_top_level(body) {
        let (k, v) = item
            .split_once('=')
            .ok_or_else(|| ddl_err(format!("expected KEY=VALUE, got '{item}'")))?;
        map.insert(k.trim().to_ascii_uppercase(), v.trim().to_string());
    }
    Ok(map)
}

fn parse_create_region(rest: &str) -> Result<DdlStatement> {
    let (name, body) = name_and_body(rest)?;
    if name.is_empty() || name.contains(char::is_whitespace) {
        return Err(ddl_err(format!("invalid region name '{name}'")));
    }
    let mut dies = None;
    let mut max_chips = None;
    let mut max_channels = None;
    let mut max_size_bytes = None;
    let mut placement = None;
    let mut class = None;
    if let Some(body) = body {
        let opts = parse_kv_options(&body)?;
        for (k, v) in opts {
            match k.as_str() {
                "DIES" => {
                    dies = Some(v.parse().map_err(|_| ddl_err(format!("bad DIES value '{v}'")))?)
                }
                "MAX_CHIPS" => {
                    max_chips =
                        Some(v.parse().map_err(|_| ddl_err(format!("bad MAX_CHIPS value '{v}'")))?)
                }
                "MAX_CHANNELS" => {
                    max_channels = Some(
                        v.parse().map_err(|_| ddl_err(format!("bad MAX_CHANNELS value '{v}'")))?,
                    )
                }
                "MAX_SIZE" => max_size_bytes = Some(parse_size(&v)?),
                "PLACEMENT" => {
                    placement = Some(PlacementPolicyKind::parse(&v).ok_or_else(|| {
                        ddl_err(format!(
                            "bad PLACEMENT value '{v}' (expected ROUND_ROBIN or QUEUE_AWARE)"
                        ))
                    })?)
                }
                "CLASS" => {
                    class = Some(ServiceClass::parse(&v).ok_or_else(|| {
                        ddl_err(format!(
                            "bad CLASS value '{v}' (expected LATENCY, THROUGHPUT or BACKGROUND)"
                        ))
                    })?)
                }
                other => return Err(ddl_err(format!("unknown CREATE REGION option '{other}'"))),
            }
        }
    }
    Ok(DdlStatement::CreateRegion {
        name,
        dies,
        max_chips,
        max_channels,
        max_size_bytes,
        placement,
        class,
    })
}

fn parse_create_tablespace(rest: &str) -> Result<DdlStatement> {
    let (name, body) = name_and_body(rest)?;
    if name.is_empty() || name.contains(char::is_whitespace) {
        return Err(ddl_err(format!("invalid tablespace name '{name}'")));
    }
    let body = body.ok_or_else(|| ddl_err("CREATE TABLESPACE requires (REGION=...)"))?;
    let opts = parse_kv_options(&body)?;
    let mut region = None;
    let mut extent_size_bytes = None;
    for (k, v) in opts {
        match k.as_str() {
            "REGION" => region = Some(v),
            "EXTENT_SIZE" | "EXTENT SIZE" => extent_size_bytes = Some(parse_size(&v)?),
            other => return Err(ddl_err(format!("unknown CREATE TABLESPACE option '{other}'"))),
        }
    }
    let region = region.ok_or_else(|| ddl_err("CREATE TABLESPACE requires REGION=<name>"))?;
    Ok(DdlStatement::CreateTablespace { name, region, extent_size_bytes })
}

fn parse_create_table(rest: &str) -> Result<DdlStatement> {
    let rest = rest.trim();
    let upper = rest.to_ascii_uppercase();
    let ts_pos = upper
        .rfind("TABLESPACE")
        .ok_or_else(|| ddl_err("CREATE TABLE requires a TABLESPACE clause"))?;
    let tablespace = rest[ts_pos + "TABLESPACE".len()..].trim().to_string();
    if tablespace.is_empty() {
        return Err(ddl_err("TABLESPACE clause requires a name"));
    }
    let head = rest[..ts_pos].trim();
    let (name, body) = name_and_body(head)?;
    if name.is_empty() || name.contains(char::is_whitespace) {
        return Err(ddl_err(format!("invalid table name '{name}'")));
    }
    let columns = body.map(|b| split_top_level(&b)).unwrap_or_default();
    Ok(DdlStatement::CreateTable { name, columns, tablespace })
}

/// Parse a script of `;`-separated statements (blank statements are skipped).
pub fn parse_script(sql: &str) -> Result<Vec<DdlStatement>> {
    sql.split(';').map(str::trim).filter(|s| !s.is_empty()).map(parse_statement).collect()
}

/// A tablespace: a named binding to a region (plus the declared extent
/// size, which the DBMS layer uses for its own extent allocation).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Tablespace {
    /// Tablespace name.
    pub name: String,
    /// The region the tablespace maps to.
    pub region: RegionId,
    /// Declared extent size in bytes (None = engine default).
    pub extent_size_bytes: Option<u64>,
}

/// DDL executor: applies parsed statements to a [`NoFtl`] instance and
/// keeps the tablespace catalog.
pub struct Ddl<'a> {
    noftl: &'a NoFtl,
    tablespaces: Mutex<HashMap<String, Tablespace>>,
    tables: Mutex<HashMap<String, ObjectId>>,
}

impl<'a> Ddl<'a> {
    /// Create an executor bound to a storage manager.
    pub fn new(noftl: &'a NoFtl) -> Self {
        Ddl { noftl, tablespaces: Mutex::new(HashMap::new()), tables: Mutex::new(HashMap::new()) }
    }

    /// Execute a single parsed statement.
    pub fn execute(&self, stmt: &DdlStatement) -> Result<()> {
        match stmt {
            DdlStatement::CreateRegion {
                name,
                dies,
                max_chips,
                max_channels,
                max_size_bytes,
                placement,
                class,
            } => {
                let mut spec = RegionSpec::named(name.clone());
                spec.die_count = *dies;
                spec.max_chips = *max_chips;
                spec.max_channels = *max_channels;
                spec.max_size_bytes = *max_size_bytes;
                spec.placement = *placement;
                spec.service_class = *class;
                self.noftl.create_region(spec)?;
                Ok(())
            }
            DdlStatement::CreateTablespace { name, region, extent_size_bytes } => {
                let rid = self
                    .noftl
                    .region_id(region)
                    .ok_or_else(|| NoFtlError::UnknownRegion { region: region.clone() })?;
                let mut tablespaces = self.tablespaces.lock();
                if tablespaces.contains_key(name) {
                    return Err(ddl_err(format!("tablespace '{name}' already exists")));
                }
                tablespaces.insert(
                    name.clone(),
                    Tablespace {
                        name: name.clone(),
                        region: rid,
                        extent_size_bytes: *extent_size_bytes,
                    },
                );
                Ok(())
            }
            DdlStatement::CreateTable { name, tablespace, .. } => {
                let region = {
                    let tablespaces = self.tablespaces.lock();
                    tablespaces
                        .get(tablespace)
                        .map(|ts| ts.region)
                        .ok_or_else(|| ddl_err(format!("unknown tablespace '{tablespace}'")))?
                };
                let obj = self.noftl.create_object(name, region)?;
                self.tables.lock().insert(name.clone(), obj);
                Ok(())
            }
            DdlStatement::DropRegion { name } => {
                let rid = self
                    .noftl
                    .region_id(name)
                    .ok_or_else(|| NoFtlError::UnknownRegion { region: name.clone() })?;
                self.noftl.drop_region(rid, flash_sim::SimTime::ZERO)?;
                self.tablespaces.lock().retain(|_, ts| ts.region != rid);
                Ok(())
            }
            DdlStatement::DropTable { name } => {
                let obj = self
                    .tables
                    .lock()
                    .remove(name)
                    .ok_or_else(|| NoFtlError::UnknownObject { object: name.clone() })?;
                self.noftl.drop_object(obj)
            }
        }
    }

    /// Parse and execute a script of statements.
    pub fn run_script(&self, sql: &str) -> Result<()> {
        for stmt in parse_script(sql)? {
            self.execute(&stmt)?;
        }
        Ok(())
    }

    /// Look up a tablespace by name.
    pub fn tablespace(&self, name: &str) -> Option<Tablespace> {
        self.tablespaces.lock().get(name).cloned()
    }

    /// Look up a table's object id by name.
    pub fn table(&self, name: &str) -> Option<ObjectId> {
        self.tables.lock().get(name).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NoFtlConfig;
    use flash_sim::{DeviceBuilder, FlashGeometry};
    use std::sync::Arc;

    #[test]
    fn parse_sizes() {
        assert_eq!(parse_size("128K").unwrap(), 128 * 1024);
        assert_eq!(parse_size("1280M").unwrap(), 1280 * 1024 * 1024);
        assert_eq!(parse_size("2G").unwrap(), 2 * 1024 * 1024 * 1024);
        assert_eq!(parse_size("4096").unwrap(), 4096);
        assert!(parse_size("").is_err());
        assert!(parse_size("abcM").is_err());
    }

    #[test]
    fn parse_paper_example_statements() {
        let s = parse_statement(
            "CREATE REGION rgHotTbl (MAX_CHIPS=8, MAX_CHANNELS=4, MAX_SIZE=1280M);",
        )
        .unwrap();
        assert_eq!(
            s,
            DdlStatement::CreateRegion {
                name: "rgHotTbl".into(),
                dies: None,
                max_chips: Some(8),
                max_channels: Some(4),
                max_size_bytes: Some(1280 * 1024 * 1024),
                placement: None,
                class: None,
            }
        );
        let s = parse_statement("CREATE REGION rgBusy (DIES=2, PLACEMENT=QUEUE_AWARE)").unwrap();
        assert_eq!(
            s,
            DdlStatement::CreateRegion {
                name: "rgBusy".into(),
                dies: Some(2),
                max_chips: None,
                max_channels: None,
                max_size_bytes: None,
                placement: Some(PlacementPolicyKind::QueueAware),
                class: None,
            }
        );
        assert!(parse_statement("CREATE REGION rgBad (PLACEMENT=FANCY)").is_err());
        let s = parse_statement("CREATE REGION rgOltp (DIES=2, CLASS=LATENCY)").unwrap();
        assert_eq!(
            s,
            DdlStatement::CreateRegion {
                name: "rgOltp".into(),
                dies: Some(2),
                max_chips: None,
                max_channels: None,
                max_size_bytes: None,
                placement: None,
                class: Some(ServiceClass::Latency),
            }
        );
        assert!(parse_statement("CREATE REGION rgBad (CLASS=URGENT)").is_err());
        let s = parse_statement("CREATE TABLESPACE tsHotTbl (REGION=rgHotTbl, EXTENT_SIZE=128K)")
            .unwrap();
        assert_eq!(
            s,
            DdlStatement::CreateTablespace {
                name: "tsHotTbl".into(),
                region: "rgHotTbl".into(),
                extent_size_bytes: Some(128 * 1024),
            }
        );
        let s = parse_statement("CREATE TABLE T (t_id NUMBER(3)) TABLESPACE tsHotTbl").unwrap();
        assert_eq!(
            s,
            DdlStatement::CreateTable {
                name: "T".into(),
                columns: vec!["t_id NUMBER(3)".into()],
                tablespace: "tsHotTbl".into(),
            }
        );
    }

    #[test]
    fn parse_multi_column_table_and_drops() {
        let s = parse_statement(
            "create table orders (o_id NUMBER(8), o_entry_d DATE, o_comment VARCHAR(24)) tablespace tsA",
        )
        .unwrap();
        match s {
            DdlStatement::CreateTable { name, columns, tablespace } => {
                assert_eq!(name, "orders");
                assert_eq!(columns.len(), 3);
                assert_eq!(tablespace, "tsA");
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(
            parse_statement("DROP REGION rgX").unwrap(),
            DdlStatement::DropRegion { name: "rgX".into() }
        );
        assert_eq!(
            parse_statement("DROP TABLE t1;").unwrap(),
            DdlStatement::DropTable { name: "t1".into() }
        );
    }

    #[test]
    fn parse_errors() {
        assert!(parse_statement("SELECT * FROM t").is_err());
        assert!(parse_statement("CREATE REGION r (FOO=1)").is_err());
        assert!(parse_statement("CREATE REGION r (MAX_CHIPS=x)").is_err());
        assert!(parse_statement("CREATE TABLESPACE ts (EXTENT_SIZE=1K)").is_err());
        assert!(parse_statement("CREATE TABLE t (a INT)").is_err());
        assert!(parse_statement("DROP REGION").is_err());
        assert!(parse_statement("CREATE REGION r (MAX_CHIPS=8").is_err());
    }

    #[test]
    fn parse_script_splits_statements() {
        let script = "CREATE REGION a (DIES=1);\n\nCREATE REGION b (DIES=1);";
        let stmts = parse_script(script).unwrap();
        assert_eq!(stmts.len(), 2);
    }

    fn noftl() -> NoFtl {
        let device = Arc::new(DeviceBuilder::new(FlashGeometry::small_test()).build());
        NoFtl::new(device, NoFtlConfig::default())
    }

    #[test]
    fn executor_applies_paper_script() {
        let noftl = noftl();
        let ddl = Ddl::new(&noftl);
        ddl.run_script(
            "CREATE REGION rgHotTbl (DIES=2);\n             CREATE TABLESPACE tsHotTbl (REGION=rgHotTbl, EXTENT_SIZE=128K);\n             CREATE TABLE T (t_id NUMBER(3)) TABLESPACE tsHotTbl;",
        )
        .unwrap();
        let ts = ddl.tablespace("tsHotTbl").unwrap();
        assert_eq!(ts.extent_size_bytes, Some(128 * 1024));
        let obj = ddl.table("T").unwrap();
        assert_eq!(noftl.object_id("T"), Some(obj));
        assert_eq!(noftl.region_dies(ts.region).unwrap().len(), 2);
        // The object is usable through the storage manager.
        noftl.write(obj, 0, &vec![1u8; 4096], flash_sim::SimTime::ZERO).unwrap();
    }

    #[test]
    fn executor_error_paths() {
        let noftl = noftl();
        let ddl = Ddl::new(&noftl);
        // Unknown region in tablespace.
        assert!(ddl
            .execute(&DdlStatement::CreateTablespace {
                name: "ts".into(),
                region: "nope".into(),
                extent_size_bytes: None,
            })
            .is_err());
        // Unknown tablespace in table.
        assert!(ddl
            .execute(&DdlStatement::CreateTable {
                name: "t".into(),
                columns: vec![],
                tablespace: "nope".into(),
            })
            .is_err());
        // Drop of unknown things.
        assert!(ddl.execute(&DdlStatement::DropRegion { name: "nope".into() }).is_err());
        assert!(ddl.execute(&DdlStatement::DropTable { name: "nope".into() }).is_err());
        // Duplicate tablespace.
        ddl.run_script("CREATE REGION rg (DIES=1); CREATE TABLESPACE ts (REGION=rg);").unwrap();
        assert!(ddl
            .execute(&DdlStatement::CreateTablespace {
                name: "ts".into(),
                region: "rg".into(),
                extent_size_bytes: None,
            })
            .is_err());
    }

    #[test]
    fn drop_table_and_region_through_ddl() {
        let noftl = noftl();
        let ddl = Ddl::new(&noftl);
        ddl.run_script(
            "CREATE REGION rg (DIES=1); CREATE TABLESPACE ts (REGION=rg); CREATE TABLE t (a INT) TABLESPACE ts;",
        )
        .unwrap();
        ddl.execute(&DdlStatement::DropTable { name: "t".into() }).unwrap();
        assert!(ddl.table("t").is_none());
        ddl.execute(&DdlStatement::DropRegion { name: "rg".into() }).unwrap();
        assert!(noftl.region_id("rg").is_none());
        assert!(ddl.tablespace("ts").is_none());
    }
}
