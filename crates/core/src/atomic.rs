//! Short atomic writes.
//!
//! Advantage (iv) of NoFTL in the paper's introduction: *"direct control
//! over the out-of-place updates, which allows implementing short atomic
//! writes without additional overhead."*  Because every write already goes
//! to a fresh flash page and only becomes visible when the address
//! translation is switched, multi-page atomicity costs nothing extra: no
//! double-write buffer, no payload journaling.
//!
//! [`AtomicWrite`] is a small builder over
//! [`NoFtl::write_atomic`](crate::NoFtl::write_atomic).

use flash_sim::SimTime;

use crate::manager::NoFtl;
use crate::object::ObjectId;
use crate::Result;

/// A staged multi-page atomic write.
#[derive(Debug, Default)]
pub struct AtomicWrite {
    writes: Vec<(ObjectId, u64, Vec<u8>)>,
}

impl AtomicWrite {
    /// Start an empty atomic write.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a page to the batch (builder style).
    pub fn with_page(mut self, obj: ObjectId, page: u64, data: Vec<u8>) -> Self {
        self.writes.push((obj, page, data));
        self
    }

    /// Add a page to the batch.
    pub fn add_page(&mut self, obj: ObjectId, page: u64, data: Vec<u8>) -> &mut Self {
        self.writes.push((obj, page, data));
        self
    }

    /// Number of pages staged.
    pub fn len(&self) -> usize {
        self.writes.len()
    }

    /// True if no pages are staged.
    pub fn is_empty(&self) -> bool {
        self.writes.is_empty()
    }

    /// Execute the batch atomically: either every staged page becomes
    /// visible or none does.  Returns the completion time.
    pub fn commit(self, noftl: &NoFtl, at: SimTime) -> Result<SimTime> {
        if self.writes.is_empty() {
            return Ok(at);
        }
        noftl.write_atomic(&self.writes, at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NoFtlConfig;
    use crate::region::RegionSpec;
    use flash_sim::{DeviceBuilder, FlashGeometry};
    use std::sync::Arc;

    fn setup() -> (NoFtl, ObjectId) {
        let device = Arc::new(DeviceBuilder::new(FlashGeometry::small_test()).build());
        let noftl = NoFtl::new(device, NoFtlConfig::default());
        let r = noftl.create_region(RegionSpec::named("rg").with_die_count(2)).unwrap();
        let obj = noftl.create_object("t", r).unwrap();
        (noftl, obj)
    }

    fn page(b: u8) -> Vec<u8> {
        vec![b; 4096]
    }

    #[test]
    fn builder_accumulates_pages() {
        let mut w = AtomicWrite::new();
        assert!(w.is_empty());
        w.add_page(1, 0, page(1));
        let w = w.with_page(1, 1, page(2));
        assert_eq!(w.len(), 2);
    }

    #[test]
    fn commit_applies_all_pages() {
        let (noftl, obj) = setup();
        let done = AtomicWrite::new()
            .with_page(obj, 0, page(0xA))
            .with_page(obj, 1, page(0xB))
            .with_page(obj, 2, page(0xC))
            .commit(&noftl, SimTime::ZERO)
            .unwrap();
        assert_eq!(noftl.read(obj, 0, done).unwrap().0, page(0xA));
        assert_eq!(noftl.read(obj, 1, done).unwrap().0, page(0xB));
        assert_eq!(noftl.read(obj, 2, done).unwrap().0, page(0xC));
    }

    #[test]
    fn failed_commit_leaves_old_versions_visible() {
        let (noftl, obj) = setup();
        noftl.write(obj, 0, &page(1), SimTime::ZERO).unwrap();
        let err = AtomicWrite::new()
            .with_page(obj, 0, page(2))
            .with_page(9999, 0, page(2)) // unknown object → the batch must abort
            .commit(&noftl, SimTime::ZERO);
        assert!(err.is_err());
        assert_eq!(noftl.read(obj, 0, SimTime::ZERO).unwrap().0, page(1));
    }

    #[test]
    fn empty_commit_is_a_noop() {
        let (noftl, _) = setup();
        let t = SimTime::from_us(5);
        assert_eq!(AtomicWrite::new().commit(&noftl, t).unwrap(), t);
    }
}
