//! Background flusher: a completion-driven write-back pipeline.
//!
//! The paper's Figure 1 shows "Flushers" next to the buffer manager: the
//! threads that write dirty pages back to flash in the background.  The
//! flusher accumulates dirty pages and writes them out through the
//! storage manager's asynchronous interface
//! ([`NoFtl::submit_write`]/[`NoFtl::wait_io`]), keeping a bounded
//! **window** of pages in flight: the first `window` pages are issued at
//! the flush instant, and every later page is issued the moment the
//! oldest outstanding write completes — exactly how a depth-limited host
//! driver feeds a device.  With a window at least as deep as the region's
//! die count, an N-page flush still completes in roughly
//! `ceil(N / dies)` program times, but the host never holds more than
//! `window` page submissions outstanding, and the clock the next
//! submission carries is a *real completion time*, so flush progress
//! interleaves honestly with concurrent WAL forces and reads.
//!
//! The returned completion is the **maximum across the whole window** —
//! with queue-aware placement a later page steered to an idle die can
//! complete before an earlier page queued behind a busy one, so "the last
//! page's completion" would under-report the flush.

use flash_sim::SimTime;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use crate::manager::NoFtl;
use crate::object::ObjectId;
use crate::Result;

/// Default bound on in-flight pages of a flush ([`Flusher::new`]): the
/// die count of the largest preset geometry (`FlashGeometry::edbt_paper`
/// has 64 dies), so the default saturates every preset's die-level
/// parallelism while still bounding outstanding I/O.
pub const DEFAULT_WINDOW: usize = 64;

/// Statistics of a flusher.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlusherStats {
    /// Number of flush batches submitted.
    pub batches: u64,
    /// Total pages written by the flusher.
    pub pages: u64,
    /// Largest batch submitted.
    pub max_batch: u64,
    /// Deepest the in-flight window has ever been.
    pub inflight_hwm: u64,
}

/// Accumulates dirty pages and writes them back through a bounded
/// completion-driven pipeline.
pub struct Flusher {
    batch_size: usize,
    window: usize,
    queue: Mutex<Vec<(ObjectId, u64, Vec<u8>)>>,
    stats: Mutex<FlusherStats>,
}

impl Flusher {
    /// Create a flusher that submits a batch whenever `batch_size` pages
    /// have accumulated (a batch size of 1 degenerates to synchronous
    /// writes), keeping at most [`DEFAULT_WINDOW`] pages in flight.
    pub fn new(batch_size: usize) -> Self {
        Self::with_window(batch_size, DEFAULT_WINDOW)
    }

    /// Create a flusher with an explicit in-flight window bound.
    pub fn with_window(batch_size: usize, window: usize) -> Self {
        Flusher {
            batch_size: batch_size.max(1),
            window: window.max(1),
            queue: Mutex::new(Vec::new()),
            stats: Mutex::new(FlusherStats::default()),
        }
    }

    /// Maximum number of pages kept in flight by a flush.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Number of pages currently queued.
    pub fn queued(&self) -> usize {
        self.queue.lock().len()
    }

    /// Flusher statistics.
    pub fn stats(&self) -> FlusherStats {
        *self.stats.lock()
    }

    /// Enqueue a dirty page.  If the queue reaches the batch size the batch
    /// is written out immediately and the completion time is returned;
    /// otherwise the page just sits in the queue (`None`).
    pub fn submit(
        &self,
        noftl: &NoFtl,
        obj: ObjectId,
        page: u64,
        data: Vec<u8>,
        at: SimTime,
    ) -> Result<Option<SimTime>> {
        let batch = {
            let mut q = self.queue.lock();
            q.push((obj, page, data));
            if q.len() >= self.batch_size {
                Some(std::mem::take(&mut *q))
            } else {
                None
            }
        };
        match batch {
            Some(batch) => self.write_out(noftl, batch, at).map(Some),
            None => Ok(None),
        }
    }

    /// Write out everything currently queued, regardless of batch size.
    /// Returns the completion time of the last page (or `at` when the queue
    /// was empty).
    pub fn flush_all(&self, noftl: &NoFtl, at: SimTime) -> Result<SimTime> {
        let batch = std::mem::take(&mut *self.queue.lock());
        if batch.is_empty() {
            return Ok(at);
        }
        self.write_out(noftl, batch, at)
    }

    /// Drive the batch through the storage manager's completion-driven
    /// pipeline ([`NoFtl::write_windowed`]): keep up to `window`
    /// asynchronous writes outstanding, issue the next page at the
    /// completion instant of the oldest one, and fold the maximum
    /// completion over the *entire* window into the returned time.
    fn write_out(
        &self,
        noftl: &NoFtl,
        batch: Vec<(ObjectId, u64, Vec<u8>)>,
        at: SimTime,
    ) -> Result<SimTime> {
        let n = batch.len() as u64;
        let done = noftl.write_windowed(&batch, at, self.window)?;
        let mut stats = self.stats.lock();
        stats.batches += 1;
        stats.pages += n;
        stats.max_batch = stats.max_batch.max(n);
        // The pipeline fills its window whenever the batch is deep enough.
        stats.inflight_hwm = stats.inflight_hwm.max((self.window as u64).min(n));
        noftl.obs().note_flusher_batch(n, stats.inflight_hwm);
        Ok(done)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NoFtlConfig;
    use crate::region::RegionSpec;
    use flash_sim::{DeviceBuilder, FlashGeometry, TimingModel};
    use std::sync::Arc;

    fn setup() -> (NoFtl, ObjectId) {
        let device = Arc::new(
            DeviceBuilder::new(FlashGeometry::small_test()).timing(TimingModel::mlc_2015()).build(),
        );
        let noftl = NoFtl::new(device, NoFtlConfig::default());
        let r = noftl.create_region(RegionSpec::named("rg").with_die_count(4)).unwrap();
        let obj = noftl.create_object("t", r).unwrap();
        (noftl, obj)
    }

    fn page(b: u8) -> Vec<u8> {
        vec![b; 4096]
    }

    #[test]
    fn batches_are_submitted_when_full() {
        let (noftl, obj) = setup();
        let flusher = Flusher::new(4);
        let mut flushed_at = None;
        for i in 0..4u64 {
            let r = flusher.submit(&noftl, obj, i, page(i as u8), SimTime::ZERO).unwrap();
            if i < 3 {
                assert!(r.is_none());
                assert_eq!(flusher.queued(), (i + 1) as usize);
            } else {
                flushed_at = r;
            }
        }
        assert!(flushed_at.is_some());
        assert_eq!(flusher.queued(), 0);
        let s = flusher.stats();
        assert_eq!(s.batches, 1);
        assert_eq!(s.pages, 4);
        assert_eq!(s.max_batch, 4);
        // Data is durable.
        for i in 0..4u64 {
            assert_eq!(noftl.read(obj, i, flushed_at.unwrap()).unwrap().0, page(i as u8));
        }
    }

    #[test]
    fn flush_all_drains_partial_batches() {
        let (noftl, obj) = setup();
        let flusher = Flusher::new(100);
        for i in 0..3u64 {
            flusher.submit(&noftl, obj, i, page(9), SimTime::ZERO).unwrap();
        }
        assert_eq!(flusher.queued(), 3);
        let done = flusher.flush_all(&noftl, SimTime::ZERO).unwrap();
        assert!(done > SimTime::ZERO);
        assert_eq!(flusher.queued(), 0);
        // Flushing an empty queue is a no-op returning the issue time.
        assert_eq!(flusher.flush_all(&noftl, done).unwrap(), done);
    }

    #[test]
    fn batched_flush_is_faster_than_serial_writes() {
        // 8 pages over 4 dies in one batch should finish in ~2 program
        // rounds; 8 strictly serial writes take ~8.
        let (noftl, obj) = setup();
        let flusher = Flusher::new(8);
        let mut batch_done = SimTime::ZERO;
        for i in 0..8u64 {
            if let Some(done) = flusher.submit(&noftl, obj, i, page(1), SimTime::ZERO).unwrap() {
                batch_done = done;
            }
        }
        let (noftl2, obj2) = setup();
        let mut serial_done = SimTime::ZERO;
        for i in 0..8u64 {
            serial_done = noftl2.write(obj2, i, &page(1), serial_done).unwrap();
        }
        assert!(
            batch_done < serial_done,
            "batched flush ({batch_done}) should beat serial writes ({serial_done})"
        );
    }

    #[test]
    fn zero_batch_size_is_clamped_to_one() {
        let (noftl, obj) = setup();
        let flusher = Flusher::new(0);
        let r = flusher.submit(&noftl, obj, 0, page(1), SimTime::ZERO).unwrap();
        assert!(r.is_some(), "batch size 1 flushes immediately");
        assert_eq!(Flusher::with_window(4, 0).window(), 1, "window is clamped too");
    }

    #[test]
    fn flush_returns_max_completion_across_the_window_not_the_last() {
        // Regression for the headline-fix satellite: two pages, the
        // *first* of which lands on a die that is busy with background
        // erases.  The second page (idle die) completes much earlier, so
        // an implementation returning the last-collected completion would
        // under-report the flush.  The correct answer is the instant the
        // device quiesces — the slow first page.
        let device = Arc::new(
            DeviceBuilder::new(FlashGeometry::small_test()).timing(TimingModel::mlc_2015()).build(),
        );
        let noftl = NoFtl::new(device.clone(), NoFtlConfig::default());
        let r = noftl.create_region(RegionSpec::named("rg").with_die_count(2)).unwrap();
        let obj = noftl.create_object("t", r).unwrap();
        let dies = noftl.region_dies(r).unwrap();
        for b in 0..4u32 {
            device.erase_block(flash_sim::BlockAddr::new(dies[0], 0, b), SimTime::ZERO).unwrap();
        }
        let busy_until = device.die_busy_until(dies[0]);
        let flusher = Flusher::with_window(100, 2);
        flusher.submit(&noftl, obj, 0, page(1), SimTime::ZERO).unwrap();
        flusher.submit(&noftl, obj, 1, page(2), SimTime::ZERO).unwrap();
        let done = flusher.flush_all(&noftl, SimTime::ZERO).unwrap();
        assert!(
            done > busy_until,
            "the flush completion ({done}) must cover the page stuck behind the erases \
             ({busy_until})"
        );
        assert_eq!(done, device.quiesce_time(), "max across the window == device quiesce");
    }

    #[test]
    fn pipeline_bounds_the_inflight_window() {
        let (noftl, obj) = setup();
        let flusher = Flusher::with_window(100, 2);
        for i in 0..8u64 {
            flusher.submit(&noftl, obj, i, page(i as u8), SimTime::ZERO).unwrap();
        }
        let done = flusher.flush_all(&noftl, SimTime::ZERO).unwrap();
        let s = flusher.stats();
        assert_eq!(s.pages, 8);
        assert_eq!(s.inflight_hwm, 2, "never more than `window` pages outstanding");
        for i in 0..8u64 {
            assert_eq!(noftl.read(obj, i, done).unwrap().0, page(i as u8));
        }
    }

    #[test]
    fn deep_window_matches_full_fanout_timing() {
        // With a window at least the batch size, every page is issued at
        // the flush instant — the pipeline reproduces the one-shot
        // write_batch fan-out timing exactly.
        let (noftl, obj) = setup();
        let flusher = Flusher::with_window(100, 16);
        for i in 0..8u64 {
            flusher.submit(&noftl, obj, i, page(7), SimTime::ZERO).unwrap();
        }
        let piped = flusher.flush_all(&noftl, SimTime::ZERO).unwrap();
        let (noftl2, obj2) = setup();
        let batch: Vec<(ObjectId, u64, Vec<u8>)> = (0..8u64).map(|i| (obj2, i, page(7))).collect();
        let batched = noftl2.write_batch(&batch, SimTime::ZERO).unwrap();
        assert_eq!(piped, batched);
    }
}
